"""Table 3: single-machine training throughput, all 11 models.

Columns mirror the paper: (A) imperative, (B) JANUS, (C) symbolic,
(B)/(A) the JANUS speedup over imperative, (B)/(C)-1 the gap to the
symbolic baseline.  Expected shape: JANUS well above imperative on
fine-grained models (TreeNNs by the most), within a few percent of
symbolic everywhere.
"""

import os

import pytest

from repro import observability as obs

from harness import (MODEL_BENCHES, MODEL_ORDER, format_table,
                     measure_throughput, save_results, items_in)

_RESULTS = {}


def _run_mode(spec, mode, benchmark):
    step, batches, _model = spec.build(mode)
    for i in range(4):  # warm the cache / trace / profile
        step(*batches[i % len(batches)])

    counter = {"i": 0}

    def one_step():
        batch = batches[counter["i"] % len(batches)]
        counter["i"] += 1
        step(*batch)
        return items_in(spec, batch)

    benchmark.pedantic(one_step, rounds=3, iterations=2, warmup_rounds=1)
    throughput = measure_throughput(step, batches, spec, warmup=2,
                                    iters=6, min_seconds=0.8)
    _RESULTS.setdefault(spec.name, {})[mode] = throughput
    return throughput


# Mode varies fastest so each model's three columns are measured
# back-to-back: the regression gates' ratio arguments (janus/imperative,
# janus/symbolic) assume both columns of a run share the same host
# conditions, which phase-separated mode sweeps do not provide on a
# noisy shared machine.
@pytest.mark.parametrize("mode", ["imperative", "janus", "symbolic"])
@pytest.mark.parametrize("name", MODEL_ORDER)
def test_throughput(name, mode, benchmark):
    spec = MODEL_BENCHES[name]
    throughput = _run_mode(spec, mode, benchmark)
    assert throughput > 0


def test_zz_report(benchmark):
    """Prints the Table 3 replica from the measurements above."""
    benchmark.pedantic(lambda: None, rounds=1)
    rows = []
    payload = {}
    for name in MODEL_ORDER:
        modes = _RESULTS.get(name, {})
        if not {"imperative", "janus", "symbolic"} <= set(modes):
            continue
        imp, jan, sym = (modes["imperative"], modes["janus"],
                         modes["symbolic"])
        speedup = jan / imp
        gap = (jan / sym - 1.0) * 100
        unit = MODEL_BENCHES[name].unit
        rows.append([name, "%.1f" % imp, "%.1f" % jan, "%.1f" % sym,
                     "%.2fx" % speedup, "%+.1f%%" % gap, unit])
        payload[name] = {"imperative": imp, "janus": jan,
                         "symbolic": sym, "speedup_vs_imp": speedup,
                         "gap_vs_sym_pct": gap, "unit": unit}
    print()
    print(format_table(
        ["Model", "(A) Imp.", "(B) JANUS", "(C) Sym.", "(B)/(A)",
         "(B)/(C)-1", "unit"],
        rows, title="Table 3 — single-machine training throughput"))
    # Every run embeds the runtime-counter totals alongside throughput,
    # so a results file is enough to audit what the run actually did
    # (graphs generated/compiled, cache traffic, pass-analysis reuse).
    payload["meta"] = {
        "label": os.environ.get("BENCH_LABEL", "dev"),
        "counters": obs.get_counters().snapshot(),
    }
    save_results("table3_throughput", payload)
    label = os.environ.get("BENCH_LABEL")
    if label:
        # Per-PR snapshot: kept under version control so `make
        # bench-check` regressions are attributable to a specific change.
        save_results("table3_throughput-%s" % label, payload)
    # Shape assertions on the models whose gains are robust to this
    # host's single-core timing noise: JANUS beats imperative execution
    # on the fine-grained workloads.  (The paper's TreeNN gains rely on
    # TF's C++ executor and 36-way parallelism; our Python nested
    # executor keeps TreeNNs near parity — see EXPERIMENTS.md.)
    for name in ("LSTM", "A3C", "AN"):
        if name in payload:
            assert payload[name]["speedup_vs_imp"] > 1.0, \
                (name, payload[name])

"""Figure 7: contribution of each optimization (cumulative ablation).

IMP is the imperative baseline; BASE converts to a graph with every
JANUS optimization disabled; +UNRL adds stable-control-flow unrolling;
+SPCN adds type/shape/value specialization plus the graph passes;
+PARL adds the level-parallel schedule.

Expected shape (paper section 6.3.1): BASE already beats IMP on
fine-grained models, +UNRL helps RNNs most, +SPCN adds a few percent,
+PARL helps models with concurrently-executable operations.  Note: this
reproduction's benchmark host has a single CPU core, so +PARL cannot show
gains here (the executor detects this and runs sequentially).
"""

import pytest

from repro import janus
from harness import (MODEL_BENCHES, format_table, measure_throughput,
                     save_results)

#: The ablation axis, in the paper's cumulative order.
STAGES = ["IMP", "BASE", "+UNRL", "+SPCN", "+PARL"]

#: A representative subset: fine-grained (LeNet/LSTM/TreeRNN/A3C/AN) and
#: coarse-grained (ResNet) workloads.
ABLATION_MODELS = ["LeNet", "ResNet", "LSTM", "TreeRNN", "A3C", "AN"]

_RESULTS = {}


def _stage_config(stage):
    if stage == "IMP":
        return None
    return janus.JanusConfig(**janus.ABLATION_STAGES[stage])


@pytest.mark.parametrize("model_name", ABLATION_MODELS)
@pytest.mark.parametrize("stage", STAGES)
def test_ablation(model_name, stage, benchmark):
    spec = MODEL_BENCHES[model_name]
    if stage == "IMP":
        step, batches, _ = spec.build("imperative")
    else:
        step, batches, _ = spec.build("janus",
                                      config=_stage_config(stage))
    for i in range(4):
        step(*batches[i % len(batches)])

    counter = {"i": 0}

    def one_step():
        step(*batches[counter["i"] % len(batches)])
        counter["i"] += 1

    benchmark.pedantic(one_step, rounds=5, iterations=2, warmup_rounds=1)
    throughput = measure_throughput(step, batches, spec, warmup=2,
                                    iters=6)
    _RESULTS.setdefault(model_name, {})[stage] = throughput
    if stage != "IMP" and hasattr(step, "imperative_only"):
        assert not step.imperative_only, step.not_convertible_reason


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1)
    rows = []
    payload = {}
    for name in ABLATION_MODELS:
        stages = _RESULTS.get(name, {})
        if "IMP" not in stages:
            continue
        imp = stages["IMP"]
        row = [name]
        payload[name] = {}
        for stage in STAGES:
            if stage in stages:
                speedup = stages[stage] / imp
                row.append("%.2fx" % speedup)
                payload[name][stage] = speedup
            else:
                row.append("-")
        rows.append(row)
    print()
    print(format_table(["Model"] + STAGES, rows,
                       title="Figure 7 — cumulative optimization "
                             "speedups over imperative execution"))
    save_results("fig7_ablation", payload)
    # Shape: unrolling must not cost the RNN its BASE gains.  The bound
    # is loose because single-core throughput ratios on this host carry
    # ±20-30% run-to-run noise (see EXPERIMENTS.md, host caveat).
    if "LSTM" in payload and "+UNRL" in payload["LSTM"]:
        assert payload["LSTM"]["+UNRL"] >= \
            payload["LSTM"]["BASE"] * 0.7, payload["LSTM"]

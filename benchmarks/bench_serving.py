"""Multi-tenant serving throughput vs client concurrency.

The serving layer (:mod:`repro.serving`, docs/serving.md) claims that
shape-compatible dynamic batching turns concurrent clients into
throughput: while one graph run is in flight, arriving requests queue
up, and the next dispatch coalesces them into a single stacked
execution whose cost is dominated by the same per-call dispatch
overhead a single request pays.  This bench measures end-to-end
request throughput through a ``Server`` at 1, 2, 4, and 8 client
threads against one warm ``janus.function`` endpoint, with
``batch_linger_s=0`` so batches form only from natural queueing (no
artificial latency is traded for the throughput number).

``--check`` gates the claim: on a multi-core host, 4 client threads
must reach at least ``--threshold`` (default 1.5x) the single-client
throughput.  On a single-core host the gate is **skipped with a logged
reason** — the dispatcher and the clients then share one core, so the
4-client run measures scheduler contention as much as batching, and a
threshold there would gate the host, not the code.  Run standalone or
via ``make bench-check``::

    PYTHONPATH=src python benchmarks/bench_serving.py --check

``BENCH_LABEL=foo`` writes ``results/serving-foo.json``.
"""

import argparse
import gc
import os
import statistics
import sys
import threading
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from harness import format_table, save_results  # noqa: E402

#: Client-thread counts swept (first entry is the baseline).
CLIENTS = (1, 2, 4, 8)
#: Requests each client issues per timed round.
REQUESTS_PER_CLIENT = 60
#: Timed rounds per client count (median reported).
REPEATS = 3
#: Input rows x features per request.
ROWS, FEATURES = 4, 32


def build_endpoint():
    import repro as R
    from repro import janus

    rng = np.random.default_rng(11)
    w1 = R.constant(rng.normal(size=(FEATURES, FEATURES),
                               scale=0.1).astype(np.float32))
    w2 = R.constant(rng.normal(size=(FEATURES, FEATURES),
                               scale=0.1).astype(np.float32))

    @janus.function(config=janus.JanusConfig(
        fail_on_not_convertible=True, parallel_execution=False,
        profile_runs=2))
    def predict(x):
        h = R.tanh(R.matmul(x, w1))
        return R.matmul(h, w2)

    return predict


def _timed_round(server, n_clients, request):
    barrier = threading.Barrier(n_clients + 1)
    errors = []

    def client(_):
        barrier.wait()
        try:
            for _ in range(REQUESTS_PER_CLIENT):
                server.call("predict", request)
        except Exception as exc:  # noqa: BLE001 - fails the bench
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(n_clients)]
    for t in threads:
        t.start()
    barrier.wait()
    start = time.perf_counter()
    for t in threads:
        t.join(120.0)
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    return (n_clients * REQUESTS_PER_CLIENT) / elapsed


def run_bench():
    import repro as R
    from repro.observability import SERVING
    from repro.serving import Server, ServingConfig

    predict = build_endpoint()
    rng = np.random.default_rng(23)
    request = R.constant(rng.normal(size=(ROWS, FEATURES))
                         .astype(np.float32))
    # Warm outside the server: profile, generate, and settle the graph
    # so every timed round measures steady-state serving.
    for _ in range(6):
        predict(request)
    assert predict.stats["graph_runs"] > 0, predict.stats

    results = {}
    with Server(ServingConfig(max_batch_size=8, batch_linger_s=0.0,
                              max_queue_depth=256)) as server:
        server.register("predict", predict)
        server.call("predict", request)        # warm the dispatcher
        gc.collect()
        gc.disable()
        try:
            for n in CLIENTS:
                SERVING.clear()
                samples = [_timed_round(server, n, request)
                           for _ in range(REPEATS)]
                snap = SERVING.snapshot()
                dispatches = max(1, snap["batches"])
                results["%d-client" % n] = {
                    "clients": n,
                    "requests_per_s": statistics.median(samples),
                    "mean_batch": snap["requests"] / dispatches,
                    "batched_requests": snap["batched_requests"],
                }
        finally:
            gc.enable()

    base = results["1-client"]["requests_per_s"]
    for row in results.values():
        row["speedup_vs_1"] = row["requests_per_s"] / base
    results["meta"] = {
        "rows": ROWS, "features": FEATURES,
        "requests_per_client": REQUESTS_PER_CLIENT, "repeats": REPEATS,
        "cpu_count": os.cpu_count(),
    }
    return results


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="fail unless 4 clients reach the threshold "
                             "over 1 client (multi-core hosts only)")
    parser.add_argument("--threshold", type=float, default=1.5,
                        help="required 4-client/1-client speedup")
    args = parser.parse_args(argv)

    results = run_bench()
    rows = []
    for n in CLIENTS:
        row = results["%d-client" % n]
        rows.append([row["clients"], "%.0f" % row["requests_per_s"],
                     "%.2f" % row["mean_batch"],
                     "%.2fx" % row["speedup_vs_1"]])
    print(format_table(
        ["clients", "req/s", "mean batch", "vs 1 client"], rows,
        title="Serving throughput (%dx%d requests, batch<=8, linger 0)"
              % (ROWS, FEATURES)))

    label = os.environ.get("BENCH_LABEL")
    path = save_results("serving" + ("-" + label if label else ""),
                        results)
    print("results written to %s" % path)

    if args.check:
        cores = os.cpu_count() or 1
        if cores < 2:
            print("gate SKIPPED: host has %d CPU core(s); the 4-client "
                  "throughput gate needs the dispatcher and clients on "
                  "separate cores to measure batching rather than "
                  "scheduler contention" % cores)
            return 0
        speedup = results["4-client"]["speedup_vs_1"]
        print("gate: 4 clients reach %.2fx single-client throughput "
              "(floor %.2fx)" % (speedup, args.threshold))
        if speedup < args.threshold:
            print("FAIL: dynamic batching is not converting concurrency "
                  "into throughput")
            return 1
        print("OK: serving throughput scales with client concurrency")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Ablation: deferred local-copy state updates vs naive in-place mutation.

Section 4.2.3 rejects the 'trivial solution' of running heap mutations as
PyFunc-style operations because (a) in-place mutation breaks the
all-or-nothing fallback guarantee and (b) the GIL-bound Python call
serializes execution.  This bench measures both effects on the figure-1
LSTM workload: correctness under assumption failure, and step time.
"""

import time

import numpy as np
import pytest

import repro as R
from repro import janus
from harness import format_table, save_results

_RESULTS = {}


class _Carrier:
    def __init__(self):
        self.state = R.constant(np.zeros((8, 16), np.float32))


def _make_step(deferred):
    carrier = _Carrier()
    weights = R.Variable(
        np.random.default_rng(0).normal(
            scale=0.2, size=(16, 16)).astype(np.float32), name="w")

    def step(x):
        state = carrier.state
        for t in range(4):
            state = R.tanh(R.matmul(state, weights.value()) + x)
        carrier.state = state
        return R.reduce_mean(state)

    cfg = janus.JanusConfig(fail_on_not_convertible=True,
                            deferred_state_update=deferred)
    return janus.function(step, config=cfg), carrier


@pytest.mark.parametrize("deferred", [True, False],
                         ids=["deferred", "naive"])
def test_throughput(deferred, benchmark):
    step, _carrier = _make_step(deferred)
    x = np.random.default_rng(1).normal(
        size=(8, 16)).astype(np.float32) * 0.1
    for _ in range(5):
        step(x)
    assert step.stats["graph_runs"] > 0

    def one():
        step(x)

    benchmark.pedantic(one, rounds=5, iterations=4, warmup_rounds=1)
    start = time.perf_counter()
    for _ in range(40):
        step(x)
    elapsed = (time.perf_counter() - start) / 40
    label = "deferred" if deferred else "naive"
    _RESULTS.setdefault(label, {})["step_ms"] = elapsed * 1e3


def test_all_or_nothing_difference(benchmark):
    """Only the deferred design preserves exactly-once state semantics
    across an assumption failure."""
    benchmark.pedantic(lambda: None, rounds=1)

    def run(deferred):
        holder = type("H", (), {})()
        holder.count = R.constant(np.float32(0.0))
        holder.gate = R.constant(np.ones(1, np.float32))

        def program():
            holder.count = holder.count + 1.0
            if R.reduce_sum(holder.gate) > 0.0:
                return holder.count * 1.0
            return holder.count * -1.0

        jf = janus.function(program, config=janus.JanusConfig(
            fail_on_not_convertible=True,
            deferred_state_update=deferred))
        calls = 0
        for k in range(5):
            holder.gate = R.constant(np.full(1, 1.0 + k, np.float32))
            jf()
            calls += 1
        holder.gate = R.constant(-np.ones(1, np.float32))
        jf()       # assumption failure mid-graph
        calls += 1
        counted = float(holder.count.numpy())
        return calls, counted, jf.stats["fallbacks"]

    calls_d, counted_d, fb_d = run(True)
    calls_n, counted_n, fb_n = run(False)
    _RESULTS.setdefault("deferred", {})["writes_per_call"] = \
        counted_d / calls_d
    _RESULTS.setdefault("naive", {})["writes_per_call"] = \
        counted_n / calls_n
    assert fb_d == 1 and fb_n == 1
    assert counted_d == calls_d          # exactly-once
    assert counted_n > calls_n           # double-applied on fallback


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1)
    rows = []
    for label in ("deferred", "naive"):
        r = _RESULTS.get(label, {})
        rows.append([label,
                     "%.3f" % r.get("step_ms", float("nan")),
                     "%.2f" % r.get("writes_per_call", float("nan"))])
    print()
    print(format_table(
        ["state updates", "step (ms)", "heap writes per logical call"],
        rows,
        title="Deferred vs naive state updates (section 4.2.3 ablation)"))
    print("writes-per-call > 1 under 'naive' shows the all-or-nothing "
          "violation the paper's design removes.")
    save_results("deferred_state_ablation", _RESULTS)

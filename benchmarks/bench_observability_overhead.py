"""Level-0 observability overhead gate.

The metrics/health subsystem promises that *disabled* instrumentation
costs one attribute load + one truth test per site.  This gate proves it
stays that way on the Table-3 quickstart model (the `examples/quickstart.py`
MLP training step):

1. measure the steady-state JANUS step time with metrics disabled;
2. measure the actual per-site cost of a disabled gate
   (:func:`repro.observability.metrics.disabled_site_cost` — the exact
   ``if METRICS.enabled:`` operation every site performs);
3. bound the per-step gate cost as ``site_cost × sites_per_step``, where
   ``sites_per_step`` deliberately over-counts (every compiled
   instruction plus a fixed allowance for the api/cache/profiler gates,
   though only py_get nodes actually carry a guard gate);
4. FAIL if that bound exceeds ``--threshold`` (default 2%) of the
   measured step time.

The request-tracing layer (PR 10) adds its own inactive gates — one
contextvar read returning None per request-scoped site
(:func:`repro.observability.reqtrace.disabled_request_cost`).  Those
are folded into the same bound with their own conservative per-step
site count, so a regression on *either* disabled path trips the gate.

This is deterministic where an A/B wall-clock comparison against a
stored pre-instrumentation baseline is not: host noise swings short
runs by ±15-20%, but the site cost is measured in-process against the
same interpreter the step runs on.  If a future change makes the
disabled path allocate, lock, or take a timestamp, the site cost jumps
an order of magnitude and the bound blows through the threshold.

An informational A/B (metrics on vs off, interleaved medians) is also
printed — useful locally, not gated.

Run standalone or via ``make bench-check``::

    PYTHONPATH=src python benchmarks/bench_observability_overhead.py --check
"""

import argparse
import json
import os
import statistics
import sys
import time

import numpy as np

#: Fixed allowance for gates outside the executor loop: the api-level
#: call/health/precheck/graphgen gates, cache accounting, profiler and
#: eager-path gates.  Generous — the real count is under a dozen.
NON_EXECUTOR_SITES = 64

#: Allowance for request-scoped tracing gates per step: serving
#: queue/dispatch spans, coexec fragment/gap spans, dispatch notes,
#: disk-cache probes.  Generous — a non-serving training step hits
#: none of these, and a served request hits well under a dozen.
REQUEST_SITES = 32

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def build_quickstart_step():
    """The Table-3 quickstart MLP training step under JANUS."""
    import repro as R
    from repro import janus, nn

    nn.init.seed(0)
    model = nn.Sequential([
        nn.Dense(8, 32, activation=R.relu),
        nn.Dense(32, 32, activation=R.relu),
        nn.Dense(32, 2),
    ])
    optimizer = nn.SGD(0.1)

    @janus.function(optimizer=optimizer,
                    config=janus.JanusConfig(fail_on_not_convertible=True,
                                             parallel_execution=False))
    def train_step(x, y):
        logits = model(x)
        return nn.losses.softmax_cross_entropy(logits, y)

    rng = np.random.default_rng(0)
    x = rng.normal(size=(64, 8)).astype(np.float32)
    y = (x[:, 0] > 0).astype(np.int64)
    return train_step, x, y


def median_step_seconds(train_step, x, y, inner=20, repeats=7):
    """Median per-step wall time over ``repeats`` timed batches."""
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            train_step(x, y)
        times.append((time.perf_counter() - start) / inner)
    return statistics.median(times)


def instruction_count(train_step):
    """Compiled-instruction count of the cached steady-state graph."""
    entries = train_step.cache.entries()
    if not entries:
        return 0
    _, entry = entries[-1]
    return len(entry.executor._instructions)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--threshold", type=float, default=0.02,
                        help="max tolerated gate-cost fraction of the "
                             "step time (default 2%%)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero when the bound exceeds the "
                             "threshold (make bench-check mode)")
    parser.add_argument("--out", default=None,
                        help="optional JSON results path")
    args = parser.parse_args(argv)

    from repro import observability as obs
    from repro.observability.metrics import disabled_site_cost
    from repro.observability.reqtrace import disabled_request_cost

    obs.set_trace_level(0)
    obs.set_metrics_enabled(False)

    train_step, x, y = build_quickstart_step()
    for _ in range(20):                      # profile + generate + warm
        train_step(x, y)
    assert train_step.stats["graph_runs"] > 0, \
        "quickstart step failed to reach graph execution"

    step_disabled = median_step_seconds(train_step, x, y)
    site_cost = disabled_site_cost()
    request_cost = disabled_request_cost()
    sites_per_step = instruction_count(train_step) + NON_EXECUTOR_SITES
    gate_cost = (site_cost * sites_per_step
                 + request_cost * REQUEST_SITES)
    fraction = gate_cost / step_disabled if step_disabled else 0.0

    # Informational A/B: enabled vs disabled, interleaved so drift hits
    # both arms equally.  Not gated (host noise exceeds the effect).
    obs.set_metrics_enabled(True)
    step_enabled = median_step_seconds(train_step, x, y)
    obs.set_metrics_enabled(False)
    obs.clear()

    print("observability overhead gate (quickstart MLP, %d instructions)"
          % instruction_count(train_step))
    print("  step time (metrics off):   %9.3f us" % (step_disabled * 1e6))
    print("  step time (metrics on):    %9.3f us  (informational)"
          % (step_enabled * 1e6))
    print("  disabled gate cost/site:   %9.3f ns" % (site_cost * 1e9))
    print("  inactive reqtrace cost:    %9.3f ns/site x %d sites"
          % (request_cost * 1e9, REQUEST_SITES))
    print("  gated sites/step (bound):  %9d" % sites_per_step)
    print("  gate cost/step (bound):    %9.3f ns  = %.4f%% of step"
          % (gate_cost * 1e9, fraction * 100.0))

    if args.out:
        with open(args.out, "w") as fh:
            json.dump({
                "step_disabled_s": step_disabled,
                "step_enabled_s": step_enabled,
                "site_cost_s": site_cost,
                "request_site_cost_s": request_cost,
                "sites_per_step": sites_per_step,
                "gate_fraction": fraction,
                "threshold": args.threshold,
            }, fh, indent=1)

    if fraction > args.threshold:
        print("FAIL: disabled-metrics gate cost %.4f%% of the step time "
              "exceeds the %.1f%% budget — the level-0 path regressed "
              "beyond one attribute load + compare per site"
              % (fraction * 100.0, args.threshold * 100.0))
        return 1
    print("OK: level-0 observability cost bound %.4f%% < %.1f%% of the "
          "quickstart step" % (fraction * 100.0, args.threshold * 100.0))
    return 0


if __name__ == "__main__":
    sys.exit(main())

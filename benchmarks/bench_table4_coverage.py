"""Appendix Table 4: Python feature coverage of the graph generator.

The paper maps every CPython opcode to the section describing its
conversion rule, or marks it imperative-only.  This reproduction works at
the AST level; the bench exercises one probe program per feature family
and reports whether the generator converts it or routes it to the
imperative executor — regenerating the appendix's coverage map for this
implementation.

The coverage map is the *whole-function* verdict, so the probes pin
``coexecution=False``.  A second pass re-probes the imperative-only
families with co-execution on (docs/coexecution.md) and counts which of
them become **partially converted** — symbolic fragments around the
unconvertible statement — a column Table 4 has no analogue for.
"""

import numpy as np
import pytest

import repro as R
from repro import janus
from harness import format_table, save_results

_ROWS = []


import importlib.util
import os
import tempfile

_PROBE_DIR = tempfile.mkdtemp(prefix="janus_probes_")
_PROBE_COUNTER = [0]


def _load_probe(source):
    """Materialize probe source as a real module (getsource works)."""
    _PROBE_COUNTER[0] += 1
    name = "janus_probe_%d" % _PROBE_COUNTER[0]
    file_path = os.path.join(_PROBE_DIR, name + ".py")
    with open(file_path, "w") as fh:
        fh.write("import numpy as np\nimport repro as R\n\n" + source
                 + "\n")
    spec_ = importlib.util.spec_from_file_location(name, file_path)
    module = importlib.util.module_from_spec(spec_)
    spec_.loader.exec_module(module)
    return module.probe


def _probe(family, section, source, n_args=1, convertible=True):
    """Build a probe JanusFunction from source and test conversion.

    Pinned to ``coexecution=False``: Table 4 reports the all-or-nothing
    conversion verdict, and with co-execution on the imperative-only
    probes would land on the ``partial`` state instead (that dimension
    is reported separately by ``test_coexec_partial_coverage``).
    """
    func = _load_probe(source)
    jf = janus.function(config=janus.JanusConfig(coexecution=False))(func)
    args = [R.constant(np.ones(2, np.float32)) for _ in range(n_args)]
    for _ in range(5):
        try:
            jf(*args)
        except Exception as exc:  # pragma: no cover - report either way
            _ROWS.append([family, section, "ERROR: %s" % exc])
            return False
    converted = not jf.imperative_only
    status = "converted" if converted else \
        "imperative-only (%s)" % (jf.not_convertible_reason or "")[:40]
    _ROWS.append([family, section, status])
    assert converted == convertible, (family, jf.not_convertible_reason)
    return converted


FAMILIES = [
    ("constants / locals", "4.1",
     "def probe(x):\n    y = x * 2.0\n    return y + 1.0", True),
    ("mathematical operators", "4.1",
     "def probe(x):\n    return (-x + 3.0) * x / 2.0 ** 2.0", True),
    ("comparisons", "4.1",
     "def probe(x):\n    return R.cast(x > 0.0, 'float32')", True),
    ("dynamic control flow: if", "4.2.1",
     "def probe(x):\n"
     "    if R.reduce_sum(x) > 0.0:\n        return x\n"
     "    return -x", True),
    ("dynamic control flow: for", "4.2.1",
     "def probe(x):\n"
     "    t = x * 0.0\n"
     "    for i in range(3):\n        t = t + x\n    return t", True),
    ("dynamic control flow: while", "4.2.1",
     "def probe(x):\n"
     "    i = R.constant(0.0)\n    t = x * 0.0\n"
     "    while R.reduce_sum(i) < 2.0:\n"
     "        t = t + x\n        i = i + 1.0\n    return t", True),
    ("function calls / inlining", "4.2.1, 4.3.1",
     "def helper(v):\n    return v * 3.0\n"
     "def probe(x):\n    return helper(x)", True),
    ("list / tuple / dict", "4.2.2, 4.2.3",
     "def probe(x):\n"
     "    parts = [x, x * 2.0]\n    d = {'k': parts[1]}\n"
     "    return R.reduce_sum(R.stack(parts)) + R.reduce_sum(d['k'])",
     True),
    ("non-local state (attributes)", "4.2.3",
     "class _H:\n    pass\n"
     "_h = _H()\n_h.state = 0.0\n"
     "def probe(x):\n"
     "    _h.state = R.reduce_sum(x)\n    return _h.state", True),
    ("user assert", "Appendix A (exceptions)",
     "def probe(x):\n"
     "    assert R.reduce_sum(x) > -1e9\n    return x", True),
    ("try / finally", "Appendix A",
     "def probe(x):\n"
     "    try:\n        y = x * 2.0\n"
     "    finally:\n        z = 1.0\n    return y * z", True),
    ("except handlers", "Appendix A (fallback only)",
     "def probe(x):\n"
     "    try:\n        y = x\n"
     "    except ValueError:\n        y = -x\n    return y", False),
    ("generators (yield)", "4.3.2",
     "def probe(x):\n"
     "    def g():\n        yield x\n"
     "    return R.stack(list(g()))", False),
    ("inline import", "4.3.2",
     "def probe(x):\n    import math\n    return x", False),
    ("inline class definition", "4.3.2",
     "def probe(x):\n"
     "    class C:\n        pass\n    return x", False),
    ("with statement", "Appendix A (__enter__/__exit__ calls)",
     "class _Ctx:\n"
     "    def __enter__(self):\n        return self\n"
     "    def __exit__(self, *a):\n        return False\n"
     "_ctx = _Ctx()\n"
     "def probe(x):\n"
     "    with _ctx:\n        y = x * 2.0\n    return y", True),
    ("break / continue (unrolled loops)", "4.2.1",
     "def probe(x):\n"
     "    t = x * 0.0\n"
     "    for i in range(8):\n"
     "        if i == 5:\n            break\n"
     "        if i % 2 == 0:\n            continue\n"
     "        t = t + x\n"
     "    return t", True),
]


@pytest.mark.parametrize("family,section,source,convertible", FAMILIES,
                         ids=[f[0] for f in FAMILIES])
def test_coverage(family, section, source, convertible, benchmark):
    benchmark.pedantic(
        lambda: _probe(family, section, source, convertible=convertible),
        rounds=1)


_COEXEC_ROWS = []


def test_coexec_partial_coverage(benchmark):
    """Re-probe the imperative-only families with co-execution on: how
    many convert *partially* (symbolic fragments around the gap)?"""

    def run():
        for family, section, source, convertible in FAMILIES:
            if convertible:
                continue
            jf = janus.function(
                config=janus.JanusConfig(coexecution=True))(
                    _load_probe(source))
            x = R.constant(np.ones(2, np.float32))
            for _ in range(6):
                jf(x)
            if jf.stats["coexec_runs"]:
                plan = jf.coexec_plan
                ratio = plan.converted_ratio if plan is not None else None
                status = "partial" if ratio is None else \
                    "partial (%.0f%% symbolic)" % (ratio * 100.0)
            else:
                status = "imperative-only"
            _COEXEC_ROWS.append([family, section, status])
        # At least one imperative-only family must recover symbolic
        # fragments under co-execution.
        assert any(r[2].startswith("partial") for r in _COEXEC_ROWS), \
            _COEXEC_ROWS

    benchmark.pedantic(run, rounds=1)


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1)
    print()
    print(format_table(
        ["Feature family", "Paper section", "This reproduction"],
        _ROWS, title="Table 4 — Python coverage of the graph generator"))
    converted = sum(1 for r in _ROWS if r[2] == "converted")
    print("\n%d/%d probe families convert; the rest run imperatively "
          "(full Python coverage via the imperative executor)"
          % (converted, len(_ROWS)))
    if _COEXEC_ROWS:
        print()
        print(format_table(
            ["Feature family", "Paper section", "With co-execution"],
            _COEXEC_ROWS,
            title="Imperative-only families under co-execution "
                  "(beyond Table 4)"))
        partial = sum(1 for r in _COEXEC_ROWS
                      if r[2].startswith("partial"))
        print("\n%d/%d imperative-only families partially convert under "
              "co-execution (docs/coexecution.md)"
              % (partial, len(_COEXEC_ROWS)))
    save_results("table4_coverage",
                 {"whole_function":
                  [dict(zip(("family", "section", "status"), r))
                   for r in _ROWS],
                  "coexecution":
                  [dict(zip(("family", "section", "status"), r))
                   for r in _COEXEC_ROWS]})

"""Executor-dispatch cost across the lowering ladder.

The lowering pipeline (docs/lowering.md) claims two separable wins on
dispatch-bound graphs: elementwise **fusion** shrinks the instruction
count, and **linearization** replaces the node-walking executor's
per-instruction kind dispatch with a flat closure loop.  This bench
isolates both on a deliberately dispatch-heavy workload — ``LAYERS``
rounds of ``tanh(x * a + b)`` over small vectors, where kernel time is
negligible and scheduling overhead dominates — by timing the same graph
through four executors:

* ``dict-env``   — a reference interpreter keeping results in a dict
  keyed by node output (the executor design lowering left behind twice
  over: no register slots, no precompiled schedule);
* ``node-walk``  — the sequential :class:`GraphExecutor` (tagged-tuple
  schedule over a flat slot list);
* ``flat``       — :class:`LoweredExecutor` over the *unfused* graph
  (isolates linearization);
* ``flat+fused`` — :class:`LoweredExecutor` after
  :func:`fuse_graph` (the production configuration).

All four must agree bit-for-bit before anything is timed.  Timing is
interleaved round-robin with the GC paused, and each variant reports
the median of ``REPEATS`` rounds — the same noise discipline as the
Table-3 gate.

``--check`` gates ``flat+fused`` against ``node-walk``: the production
lowering configuration must not be slower than the executor it replaces
(``--threshold``, default 1.0 after a 2% noise allowance).  Run
standalone or via ``make bench-check``::

    PYTHONPATH=src python benchmarks/bench_lowering.py --check

``BENCH_LABEL=foo`` writes ``results/lowering-foo.json``.
"""

import argparse
import gc
import os
import statistics
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from harness import format_table, save_results  # noqa: E402

#: Rounds of tanh(x * a + b); each round is 3 elementwise instructions
#: before fusion and 1 fused instruction after.
LAYERS = 24
#: Vector width — small on purpose so dispatch, not kernels, dominates.
ELEMS = 32
#: Timed rounds per variant (median gates).
REPEATS = 7
#: Graph executions per timed round.
INNER = 400


def build_graph():
    import repro as R
    from repro.graph.builder import GraphBuilder
    from repro.ops import api

    rng = np.random.default_rng(7)
    b = GraphBuilder(name="lowering_bench")
    with b:
        x = b.placeholder("x", shape=(ELEMS,), dtype=R.float32)
        h = x
        for _ in range(LAYERS):
            a = b.convert(rng.normal(size=(ELEMS,)).astype(np.float32))
            c = b.convert(rng.normal(size=(ELEMS,)).astype(np.float32))
            h = api.tanh(api.add(api.mul(h, a), c))
        b.mark_outputs([api.reduce_sum(h)])
    return b.graph


def dict_env_run(graph, feeds):
    """Reference interpreter: topological walk, dict-of-results env.

    What graph execution looked like before register slots: every value
    lookup is a dict hash on ``(id(node), index)`` and every node pays
    an op-kind branch at run time.  Supports exactly the ops this
    bench's graph uses.
    """
    from repro.graph.executor import _internalize

    env = {}
    feed_iter = iter(feeds)
    for node in graph.topological_order():
        if node.op_name == "placeholder":
            env[(id(node), 0)] = next(feed_iter)
            continue
        if node.op_name == "constant":
            env[(id(node), 0)] = _internalize(node.constant_value)
            continue
        args = [env[(id(i.node), i.index)] for i in node.inputs]
        result = node.op_def.kernel(node.attrs, *args)
        if result.__class__ is not np.ndarray:
            result = np.asarray(result)
        env[(id(node), 0)] = result
    return [env[(id(o.node), o.index)] for o in graph.outputs]


def median_seconds(fn, inner=INNER, repeats=REPEATS):
    fn()                                       # warm
    gc.collect()
    gc.disable()
    try:
        samples = []
        for _ in range(repeats):
            start = time.perf_counter()
            for _ in range(inner):
                fn()
            samples.append((time.perf_counter() - start) / inner)
    finally:
        gc.enable()
    return statistics.median(samples)


def run_bench():
    from repro.graph.executor import GraphExecutor
    from repro.graph.lowering import fuse_graph, lower_executor

    unfused = build_graph()
    fused = build_graph()
    fused_ops = fuse_graph(fused)

    walker = GraphExecutor(unfused)
    flat = lower_executor(GraphExecutor(unfused))
    flat_fused = lower_executor(GraphExecutor(fused))

    feed = np.linspace(-1.0, 1.0, ELEMS).astype(np.float32)
    want = dict_env_run(unfused, [feed])[0]
    variants = [
        ("dict-env", len(unfused.nodes), lambda: dict_env_run(unfused,
                                                              [feed])),
        ("node-walk", walker.instruction_count
         if hasattr(walker, "instruction_count")
         else len(walker._instructions), lambda: walker.run([feed])),
        ("flat", flat.instruction_count, lambda: flat.run([feed])),
        ("flat+fused", flat_fused.instruction_count,
         lambda: flat_fused.run([feed])),
    ]
    for name, _, fn in variants:
        got = fn()[0]
        assert np.array_equal(got, want), (name, got, want)

    # Interleaved: one timed round per variant, round-robin, so host
    # drift lands on every variant equally.
    samples = {name: [] for name, _, _ in variants}
    for name, _, fn in variants:
        fn()                                   # warm all before timing
    gc.collect()
    gc.disable()
    try:
        for _ in range(REPEATS):
            for name, _, fn in variants:
                start = time.perf_counter()
                for _ in range(INNER):
                    fn()
                samples[name].append((time.perf_counter() - start) / INNER)
    finally:
        gc.enable()

    results = {}
    base = None
    for name, instructions, _ in variants:
        per_run_us = statistics.median(samples[name]) * 1e6
        if base is None:
            base = per_run_us
        results[name] = {
            "instructions": instructions,
            "per_run_us": per_run_us,
            "speedup_vs_dict_env": base / per_run_us,
        }
    results["meta"] = {
        "layers": LAYERS, "elems": ELEMS, "fused_ops": fused_ops,
        "inner": INNER, "repeats": REPEATS,
    }
    return results


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="fail unless flat+fused >= node-walk "
                             "(within the noise allowance)")
    parser.add_argument("--threshold", type=float, default=1.0,
                        help="required flat+fused/node-walk speedup")
    parser.add_argument("--noise", type=float, default=0.02,
                        help="fractional noise allowance on the gate")
    args = parser.parse_args(argv)

    results = run_bench()
    rows = []
    for name in ("dict-env", "node-walk", "flat", "flat+fused"):
        row = results[name]
        rows.append([name, row["instructions"],
                     "%.2f" % row["per_run_us"],
                     "%.2fx" % row["speedup_vs_dict_env"]])
    print(format_table(
        ["executor", "instructions", "us/run", "vs dict-env"], rows,
        title="Lowering ladder (%d layers x %d elems, %d ops fused)"
              % (LAYERS, ELEMS, results["meta"]["fused_ops"])))

    label = os.environ.get("BENCH_LABEL")
    path = save_results("lowering" + ("-" + label if label else ""),
                        results)
    print("results written to %s" % path)

    if args.check:
        speedup = (results["node-walk"]["per_run_us"]
                   / results["flat+fused"]["per_run_us"])
        floor = args.threshold * (1.0 - args.noise)
        print("gate: flat+fused is %.2fx node-walk (floor %.2fx)"
              % (speedup, floor))
        if speedup < floor:
            print("FAIL: lowering made the dispatch-bound graph slower")
            return 1
        print("OK: lowered execution holds its speedup")
    return 0


if __name__ == "__main__":
    sys.exit(main())

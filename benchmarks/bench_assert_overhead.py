"""Section 6.3.1 assertion-overhead claim.

The paper measured the cost of runtime assumption validation and found it
negligible because AssertOps execute concurrently with the main network.
Here we compare the JANUS-generated LSTM and LeNet training graphs against
copies with every assertion (and heap-read guard) stripped.
"""

import time

import pytest

from repro.graph.executor import GraphExecutor
from harness import MODEL_BENCHES, format_table, save_results

_RESULTS = {}


def _strip_assumption_checks(graph):
    """Remove AssertOps and expectation guards from a generated graph."""
    dead = [n for n in graph.nodes if n.op_name == "assert"]
    removed = len(dead)
    for node in graph.nodes:
        node.control_inputs = [c for c in node.control_inputs
                               if c.op_name != "assert"]
        if node.op_name.startswith("py_get") and \
                node.attrs.pop("expected", None) is not None:
            removed += 1
    graph.remove_nodes(dead)
    graph._executor_cache.clear()
    return removed


def _timed(executor, feeds, iters=10, repeats=5):
    """Noise-robust timing: min of several windows, GC paused."""
    import gc
    executor.run(list(feeds))
    gc.collect()
    gc.disable()
    try:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            for _ in range(iters):
                executor.run(list(feeds))
            best = min(best, (time.perf_counter() - start) / iters)
    finally:
        gc.enable()
    return best


@pytest.mark.parametrize("name", ["LeNet", "LSTM"])
def test_assert_overhead(name, benchmark):
    spec = MODEL_BENCHES[name]
    step, batches, _ = spec.build("janus")
    for i in range(4):
        step(*batches[i % len(batches)])
    entry = next(iter(step.cache._entries.values()))
    generated = entry.generated
    feeds = generated.bind_feeds(batches[0])

    guarded = GraphExecutor(generated.graph)
    t_guarded = benchmark.pedantic(lambda: _timed(guarded, feeds),
                                   rounds=1)

    n_asserts = _strip_assumption_checks(generated.graph)
    stripped = GraphExecutor(generated.graph)
    t_stripped = _timed(stripped, feeds)

    overhead = (t_guarded / t_stripped - 1.0) * 100
    _RESULTS[name] = {"asserts_removed": n_asserts,
                      "guarded_ms": t_guarded * 1e3,
                      "stripped_ms": t_stripped * 1e3,
                      "overhead_pct": overhead}
    # The paper reports the effect is within the error range; allow a
    # generous bound for a single-core host.
    assert abs(overhead) < 15.0, _RESULTS[name]


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1)
    rows = [[name, r["asserts_removed"], "%.2f" % r["guarded_ms"],
             "%.2f" % r["stripped_ms"], "%+.1f%%" % r["overhead_pct"]]
            for name, r in _RESULTS.items()]
    print()
    print(format_table(
        ["Model", "checks removed", "with checks (ms)",
         "without (ms)", "overhead"],
        rows, title="Assumption-validation overhead (section 6.3.1)"))
    save_results("assert_overhead", _RESULTS)

"""Figure 8: data-parallel scalability on the simulated cluster.

For ResNet, Inception, LM, and PPO: measure the real single-worker step
on this machine, then apply the ring-allreduce cost model at the paper's
cluster sizes (36 GPUs for the CNNs, 12 for LM, 6 for PPO).  Graph modes
(JANUS / symbolic) overlap gradient communication with backward compute;
imperative execution cannot — the exact mechanism behind the paper's
scale-factor gap (JANUS 0.77/0.81/0.18 vs Eager 0.24/0.24/0.14).
"""

import numpy as np
import pytest

from repro.distributed import (AllReduceCostModel, DataParallelSimulator,
                               measure_step, StepTiming)
from harness import (MODEL_BENCHES, format_table, save_results)

#: (model, worker counts) mirroring figure 8's x axes.
SCALING = {
    "ResNet": [1, 3, 6, 12, 24, 36],
    "Inception": [1, 3, 6, 12, 24, 36],
    "LM": [1, 2, 3, 6, 12],
    "PPO": [1, 2, 3, 4, 5, 6],
}

#: Gradient sizes scaled up to the paper's model sizes (bytes): the cost
#: model should see realistic communication volumes, not our CPU-scaled
#: parameter counts.  ResNet50 ~25M params, Inception-v3 ~24M, LM 0.83B
#: (the paper notes LM saturates the network), PPO small.
PAPER_GRAD_BYTES = {
    "ResNet": 25_000_000 * 4,
    "Inception": 24_000_000 * 4,
    "LM": 830_000_000 * 4,
    "PPO": 1_000_000 * 4,
}

_RESULTS = {}


def _measure(name, mode, benchmark):
    spec = MODEL_BENCHES[name]
    step, batches, model = spec.build(mode)
    for i in range(4):
        step(*batches[i % len(batches)])
    timing = benchmark.pedantic(
        lambda: measure_step(step, batches[0], warmup=1, iters=4,
                             variables=model.variables,
                             examples_per_step=spec.items_per_batch or 64),
        rounds=1)
    timing.grad_bytes = PAPER_GRAD_BYTES[name]
    return timing


@pytest.mark.parametrize("name", list(SCALING))
@pytest.mark.parametrize("mode", ["imperative", "janus", "symbolic"])
def test_scalability(name, mode, benchmark):
    timing = _measure(name, mode, benchmark)
    simulator = DataParallelSimulator(AllReduceCostModel())
    overlap = mode in ("janus", "symbolic")
    series = []
    for workers in SCALING[name]:
        series.append({
            "workers": workers,
            "throughput": simulator.throughput(timing, workers, overlap),
            "scale_factor": simulator.scale_factor(timing, workers,
                                                   overlap),
        })
    _RESULTS.setdefault(name, {})[mode] = series
    assert series[0]["scale_factor"] == pytest.approx(1.0)


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1)
    rows = []
    for name, modes in _RESULTS.items():
        max_workers = SCALING[name][-1]
        for mode, series in modes.items():
            last = series[-1]
            rows.append([name, mode, max_workers,
                         "%.0f" % last["throughput"],
                         "%.2f" % last["scale_factor"]])
    print()
    print(format_table(
        ["Model", "Framework", "GPUs", "items/s (simulated)",
         "scale factor"],
        rows, title="Figure 8 — simulated data-parallel scalability"))
    save_results("fig8_scalability", _RESULTS)
    # Shape assertions.  For compute-bound models the graph modes
    # out-scale imperative execution (comm/compute overlap).  LM's 3.3 GB
    # gradient exchange saturates the interconnect for *every* framework
    # — the paper reports scale factor 0.18 across the board there.
    for name, modes in _RESULTS.items():
        if {"janus", "imperative"} <= set(modes):
            graph_sf = modes["janus"][-1]["scale_factor"]
            imp_sf = modes["imperative"][-1]["scale_factor"]
            if name == "LM":
                assert graph_sf < 0.5 and imp_sf < 0.5
            else:
                assert graph_sf >= imp_sf * 0.95, name

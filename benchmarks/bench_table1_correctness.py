"""Table 1: correct support for DCF / DT / IF across converters.

Three adversarial micro-programs — a flipping branch (DCF), a value whose
type/shape changes (DT), and cross-call global-state mutation (IF) — run
under each converter.  A cell is 'correct' when the converter's results
match pure imperative execution on every call.  Expected matrix (the
paper's): JANUS correct on all three; the trace-based converter silently
wrong on all three; imperative trivially correct.
"""

import numpy as np
import pytest

import repro as R
from repro import janus
from repro.baselines import trace_function, TracingLimitation
from harness import format_table, save_results

_MATRIX = {}


def _flipping_branch_program():
    def f(x):
        if float(R.reduce_sum(x).numpy()) > 0:
            return x * 2.0
        return x - 100.0
    # JANUS needs a convertible (non-materializing) variant.

    def f_convertible(x):
        if R.reduce_sum(x) > 0.0:
            return x * 2.0
        return x - 100.0

    inputs = [np.ones(2, np.float32), np.ones(2, np.float32),
              np.ones(2, np.float32), -np.ones(2, np.float32),
              np.ones(2, np.float32), -np.ones(2, np.float32)]
    return f, f_convertible, inputs


def _dynamic_shape_program():
    def f(x):
        total = R.constant(0.0)
        for row in x:
            total = total + R.reduce_sum(row)
        return total

    inputs = [np.ones((3, 2), np.float32), np.ones((3, 2), np.float32),
              np.ones((3, 2), np.float32), np.ones((5, 2), np.float32),
              np.ones((4, 2), np.float32)]
    return f, f, inputs


def _impure_program():
    class Holder:
        pass

    def make():
        h = Holder()
        h.state = R.constant(np.float32(0.0))

        def f(x):
            h.state = h.state + R.reduce_sum(x)
            return h.state
        return f

    inputs = [np.ones(1, np.float32)] * 6
    return make, inputs


def _val(out):
    return np.asarray(out.numpy() if hasattr(out, "numpy") else out)


def _run_converter(step, inputs):
    outs = []
    for x in inputs:
        try:
            outs.append(_val(step(x)))
        except TracingLimitation:
            return None
        except Exception:
            return None
    return outs


def _same(got, expected):
    if got is None or len(got) != len(expected):
        return False
    return all(np.allclose(g, e, rtol=1e-4, atol=1e-5)
               for g, e in zip(got, expected))


def _record(feature, converter, ok):
    _MATRIX.setdefault(converter, {})[feature] = ok


class TestDynamicControlFlow:
    def test_matrix_dcf(self, benchmark):
        f, f_conv, inputs = _flipping_branch_program()
        expected = [_val(f(R.constant(x))) for x in inputs]

        jf = janus.function(f_conv)
        got = benchmark.pedantic(lambda: _run_converter(jf, inputs),
                                 rounds=1)
        _record("DCF", "janus", _same(got, expected))

        tf = trace_function(f)
        _record("DCF", "tracing", _same(_run_converter(tf, inputs),
                                        expected))
        assert _MATRIX["janus"]["DCF"]
        assert not _MATRIX["tracing"]["DCF"]  # silently wrong


class TestDynamicTypes:
    def test_matrix_dt(self, benchmark):
        f, f_conv, inputs = _dynamic_shape_program()
        expected = [_val(f(R.constant(x))) for x in inputs]

        jf = janus.function(f_conv)
        got = benchmark.pedantic(lambda: _run_converter(jf, inputs),
                                 rounds=1)
        _record("DT", "janus", _same(got, expected))

        tf = trace_function(f)
        _record("DT", "tracing", _same(_run_converter(tf, inputs),
                                       expected))
        assert _MATRIX["janus"]["DT"]
        assert not _MATRIX["tracing"]["DT"]  # burned-in trip count


class TestImpureFunctions:
    def test_matrix_if(self, benchmark):
        make, inputs = _impure_program()
        expected = _run_converter(make(), inputs)   # imperative truth

        jf = janus.function(make())
        got = benchmark.pedantic(lambda: _run_converter(jf, inputs),
                                 rounds=1)
        _record("IF", "janus", _same(got, expected))

        tf = trace_function(make())
        _record("IF", "tracing", _same(_run_converter(tf, inputs),
                                       expected))
        assert _MATRIX["janus"]["IF"]
        assert not _MATRIX["tracing"]["IF"]  # frozen heap state


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1)
    rows = []
    for converter in ("imperative", "janus", "tracing"):
        cells = _MATRIX.get(converter, {})
        if converter == "imperative":
            cells = {"DCF": True, "DT": True, "IF": True}
        rows.append([converter] + [
            "correct" if cells.get(k) else "WRONG/unsupported"
            for k in ("DCF", "DT", "IF")])
    print()
    print(format_table(["Converter", "DCF", "DT", "IF"], rows,
                       title="Table 1 — correctness of converted "
                             "dynamic features"))
    save_results("table1_correctness", _MATRIX)

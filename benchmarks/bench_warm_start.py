"""Cold vs warm time-to-first-graph-hit with the persistent compile cache.

The disk tier (:mod:`repro.janus.diskcache`, docs/compilation.md
"Persistence & warm start") claims that a worker joining a fleet whose
cache already holds its artifact skips profiling and graph generation
entirely: its first call loads, re-fuses, and re-lowers the published
pre-fusion graph and executes it directly.  This bench measures exactly
that boundary, in real subprocesses:

* **cold** — a fresh worker with an *empty* cache directory: its
  time-to-first-graph-hit spans ``profile_runs`` imperative profiling
  runs, AST conversion, specialization, fusion, and lowering,
* **warm** — an identical worker against a *seeded* cache directory:
  one disk load plus the deterministic rebuild pipeline.

Timing happens **inside** each worker, from the first call to the first
call that executes as a graph — interpreter/numpy startup (identical in
both arms) is excluded.  Medians over ``REPEATS`` workers per arm.

``--check`` gates the headline: warm time-to-first-graph-hit must be at
least ``--threshold`` (default 5x) faster than cold.  Run standalone or
via ``make bench-check``::

    PYTHONPATH=src python benchmarks/bench_warm_start.py --check

``BENCH_LABEL=foo`` writes ``results/warm_start-foo.json``.
"""

import argparse
import json
import os
import shutil
import statistics
import subprocess
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from harness import format_table, save_results  # noqa: E402

#: Workers per arm (medians reported).
REPEATS = 5
#: Model shape: LAYERS unrolled (matmul + tanh + residual) blocks.
LAYERS = 24
FEATURES = 64

_WORKER_SRC = """\
import json
import time

import numpy as np

import repro as R
from repro import janus


@janus.function
def forward(x, w):
    h = x
    for _ in range(%(layers)d):
        h = R.tanh(h @ w) + h * 0.5
    return R.reduce_sum(h * h)


def main():
    rng = np.random.RandomState(3)
    x = rng.rand(%(features)d, %(features)d).astype(np.float32) * 0.1
    w = rng.rand(%(features)d, %(features)d).astype(np.float32) * 0.1
    start = time.perf_counter()
    elapsed = None
    for _ in range(64):
        out = forward(x, w)
        if forward.stats["graph_runs"] > 0:
            elapsed = time.perf_counter() - start
            break
    print(json.dumps({
        "time_to_first_graph_hit": elapsed,
        "profiling_runs": forward.stats["imperative_runs"],
        "graphs_compiled": forward.stats["graphs_generated"],
        "warm_starts": forward.stats["warm_starts"],
        "checksum": float(out.numpy()),
    }))


main()
"""


def _run_worker(script, cache_dir):
    src_root = os.path.join(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))), "src")
    env = os.environ.copy()
    env["JANUS_CACHE_DIR"] = cache_dir
    env["PYTHONPATH"] = src_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.run(
        [sys.executable, script], env=env, capture_output=True,
        text=True, timeout=300)
    if proc.returncode != 0:
        raise RuntimeError("worker failed:\n%s" % proc.stderr)
    return json.loads(proc.stdout.strip().splitlines()[-1])


def run_bench():
    workdir = tempfile.mkdtemp(prefix="janus-warmbench-")
    try:
        script = os.path.join(workdir, "worker.py")
        with open(script, "w") as fh:
            fh.write(_WORKER_SRC % {"layers": LAYERS,
                                    "features": FEATURES})

        # Seed the shared cache once (not timed as either arm).
        seeded_dir = os.path.join(workdir, "seeded")
        seed = _run_worker(script, seeded_dir)
        assert seed["graphs_compiled"] == 1, seed

        cold, warm = [], []
        for i in range(REPEATS):
            # Each cold worker gets its own empty directory, so every
            # sample pays the full pipeline.
            cold_dir = os.path.join(workdir, "cold-%d" % i)
            cold.append(_run_worker(script, cold_dir))
            warm.append(_run_worker(script, seeded_dir))

        for rec in cold:
            assert rec["warm_starts"] == 0 and \
                rec["graphs_compiled"] == 1, rec
        for rec in warm:
            assert rec["warm_starts"] == 1 and \
                rec["profiling_runs"] == 0 and \
                rec["graphs_compiled"] == 0, rec
        checksums = {r["checksum"] for r in cold + warm + [seed]}
        assert len(checksums) == 1, "outputs diverged: %r" % checksums

        cold_s = statistics.median(
            r["time_to_first_graph_hit"] for r in cold)
        warm_s = statistics.median(
            r["time_to_first_graph_hit"] for r in warm)
        return {
            "cold": {"time_to_first_graph_hit_ms": cold_s * 1e3,
                     "profiling_runs": cold[0]["profiling_runs"]},
            "warm": {"time_to_first_graph_hit_ms": warm_s * 1e3,
                     "profiling_runs": 0},
            "speedup": cold_s / warm_s,
            "meta": {"layers": LAYERS, "features": FEATURES,
                     "repeats": REPEATS,
                     "outputs_identical": True},
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="fail unless warm start beats cold start "
                             "by the threshold")
    parser.add_argument("--threshold", type=float, default=5.0,
                        help="required cold/warm speedup (default 5x)")
    args = parser.parse_args(argv)

    results = run_bench()
    rows = [
        ["cold", "%.1f" % results["cold"]["time_to_first_graph_hit_ms"],
         results["cold"]["profiling_runs"], "1.0x"],
        ["warm", "%.1f" % results["warm"]["time_to_first_graph_hit_ms"],
         0, "%.1fx" % results["speedup"]],
    ]
    print(format_table(
        ["arm", "first graph hit (ms)", "profiling runs", "speedup"],
        rows,
        title="Warm start via disk cache (%d layers, %dx%d, median of %d)"
              % (LAYERS, FEATURES, FEATURES, REPEATS)))

    label = os.environ.get("BENCH_LABEL")
    path = save_results("warm_start" + ("-" + label if label else ""),
                        results)
    print("results written to %s" % path)

    if args.check:
        print("gate: warm start is %.1fx faster than cold "
              "(floor %.1fx)" % (results["speedup"], args.threshold))
        if results["speedup"] < args.threshold:
            print("FAIL: the disk cache is not delivering warm starts")
            return 1
        print("OK: persistent cache turns cold compiles into warm starts")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Incremental regeneration latency after an assumption failure.

When a runtime assumption breaks (figure 2 E), JANUS falls back, relaxes
the assumption, and regenerates the graph.  This bench measures that
regeneration with the fragment cache off (every region reconverted from
the AST) and on (unchanged cond/loop regions spliced from the previous
conversion, argument specs seeded from the retired artifact).

The workload is shaped like the recovery case the optimisation targets:
one speculated heap attribute feeding a chain of six dynamic branches
whose arms call a two-matmul helper.  Relaxing the attribute dirties
only the straight-line prologue, so an incremental rebuild reuses all
six branch fragments; the full rebuild reconverts twelve helper bodies.

Run via ``pytest benchmarks/bench_regeneration.py --benchmark-only``;
``BENCH_LABEL=foo`` writes ``results/regeneration-foo.json``.
"""

import os
import statistics
import time

import numpy as np
import pytest

import repro as R
from repro import janus
from repro.janus.compiled import compile_generated
from repro.janus.graphgen import GraphGenerator

from harness import format_table, save_results

_rng = np.random.default_rng(7)
W1 = R.constant(_rng.normal(size=(64, 64)).astype(np.float32) * 0.1)
W2 = R.constant(_rng.normal(size=(64, 64)).astype(np.float32) * 0.1)

_RESULTS = {}


def _mix(h, wa, wb):
    h = R.tanh(R.matmul(h, wa))
    return R.tanh(R.matmul(h, wb))


class _Knob:
    def __init__(self):
        self.gain = 1.0


def _build():
    knob = _Knob()
    cfg = janus.JanusConfig(fail_on_not_convertible=True,
                            parallel_execution=False)

    @janus.function(config=cfg)
    def f(x, g0, g1, g2, g3, g4, g5):
        h = R.tanh(x * knob.gain)
        if R.reduce_sum(g0) > 0.0:
            h = _mix(h, W1, W2)
        else:
            h = _mix(h, W2, W1)
        if R.reduce_sum(g1) > 0.0:
            h = _mix(h, W1, W2)
        else:
            h = _mix(h, W2, W1)
        if R.reduce_sum(g2) > 0.0:
            h = _mix(h, W1, W2)
        else:
            h = _mix(h, W2, W1)
        if R.reduce_sum(g3) > 0.0:
            h = _mix(h, W1, W2)
        else:
            h = _mix(h, W2, W1)
        if R.reduce_sum(g4) > 0.0:
            h = _mix(h, W1, W2)
        else:
            h = _mix(h, W2, W1)
        if R.reduce_sum(g5) > 0.0:
            h = _mix(h, W1, W2)
        else:
            h = _mix(h, W2, W1)
        return R.reduce_sum(h)

    return f, knob


def _gates(sign):
    return [R.constant(np.full((1,), sign, np.float32)) for _ in range(6)]


def _timed(thunk, reps=15):
    """Per-rep wall times (GC paused), after one untimed warm rep."""
    import gc
    thunk()
    gc.collect()
    gc.disable()
    try:
        times = []
        for _ in range(reps):
            start = time.perf_counter()
            thunk()
            times.append(time.perf_counter() - start)
    finally:
        gc.enable()
    return times


def test_incremental_regeneration_speedup(benchmark):
    f, knob = _build()
    x = R.constant(_rng.normal(size=(8, 64)).astype(np.float32))

    # Profile with alternating gate signs so every branch converts as a
    # dynamic cond (and therefore records a reusable fragment), then let
    # the first graph generate and run.
    for k in range(5):
        f(x, *_gates(1.0 if k % 2 == 0 else -1.0))
    assert f.stats["graphs_generated"] == 1

    # Single-assumption relaxation: the speculated knob.gain constant
    # breaks, the runtime falls back and leaves behind a dirty site plus
    # a regeneration seed for the signature.
    knob.gain = 2.0
    args = (x, *_gates(1.0))
    f(*args)
    assert f.stats["fallbacks"] == 1
    signature = f.cache.signature_of(args)
    seed = f.cache._seeds.get(signature)
    assert seed is not None
    dirty = frozenset(f._dirty_sites) | seed.dirty_sites
    assert dirty

    def regenerate_full():
        return GraphGenerator(f.func, f.profiler, f.config,
                              signature=signature).generate()

    def regenerate_incremental():
        gen = GraphGenerator(f.func, f.profiler, f.config,
                             signature=signature,
                             fragments=f._fragment_cache,
                             dirty_sites=dirty, seed=seed)
        generated = gen.generate()
        assert gen.fragments_reused == 6, gen.fragments_reused
        return generated

    # Both rebuilds must agree with the imperative program bit-for-bit.
    feeds_args = list(args)
    expected = f.func(*feeds_args).numpy()
    for regen in (regenerate_full, regenerate_incremental):
        compiled = compile_generated(regen(), f.config,
                                     signature=signature)
        flat = compiled.run_flat(compiled.bind_feeds(feeds_args))
        out = compiled.repack_outputs(flat)
        np.testing.assert_array_equal(out.numpy(), expected)

    t_full = _timed(regenerate_full)
    t_incr = _timed(regenerate_incremental)
    full_ms = statistics.median(t_full) * 1e3
    incr_ms = statistics.median(t_incr) * 1e3
    ratio = full_ms / incr_ms
    benchmark.pedantic(regenerate_incremental, rounds=3, iterations=1)

    _RESULTS["regeneration"] = {
        "full_ms": full_ms,
        "incremental_ms": incr_ms,
        "speedup": ratio,
        "fragments_reused": 6,
        "reps": len(t_full),
    }
    assert ratio >= 2.0, _RESULTS["regeneration"]


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1)
    if not _RESULTS:
        pytest.skip("no measurements")
    r = _RESULTS["regeneration"]
    print()
    print(format_table(
        ["full (ms)", "incremental (ms)", "speedup", "fragments reused"],
        [["%.2f" % r["full_ms"], "%.2f" % r["incremental_ms"],
          "%.2fx" % r["speedup"], r["fragments_reused"]]],
        title="Graph regeneration after one relaxed assumption"))
    label = os.environ.get("BENCH_LABEL")
    payload = dict(_RESULTS)
    payload["meta"] = {"label": label or "dev"}
    save_results("regeneration" + ("-" + label if label else ""), payload)

"""Benchmark-suite fixtures: deterministic seeds, import path."""

import os
import sys

import numpy as np
import pytest

sys.path.insert(0, os.path.dirname(__file__))

from repro import nn  # noqa: E402
from repro.ops import random_ops  # noqa: E402


@pytest.fixture(autouse=True)
def _deterministic():
    np.random.seed(0)
    random_ops.seed(0)
    nn.init.seed(0)
    yield

"""Figure 6: convergence vs. wall time on four frameworks.

Five experiments, mirroring the paper's panels at CPU scale:

  (a) ResNet  — test accuracy (paper: top-1 error on ImageNet)
  (b) LM      — validation perplexity
  (c) TreeLSTM— test accuracy on sentiment trees
  (d) PPO     — mean episode reward on Pong-lite
  (e) AN      — discriminator loss

Each runs under JANUS / symbolic / imperative / tracing.  The expected
*shape*: the three sound frameworks converge to the same place (JANUS and
symbolic faster per wall-second than imperative), while the trace-based
converter silently diverges on (a) (batch-norm branch), fails to pass
state on (b), cannot convert (c) (recursion), and loses the heap-state
telemetry on (d).
"""

import time

import numpy as np
import pytest

import repro as R
from repro import janus, nn, data, envs, models
from repro.baselines import TracingLimitation
from repro.modes import make_step
from harness import format_table, save_results

_SERIES = {}
MODES = ("janus", "symbolic", "imperative", "tracing")


def _record(panel, mode, points, note=""):
    _SERIES.setdefault(panel, {})[mode] = {
        "points": points, "note": note}


def _mode_step(loss_fn, lr, mode):
    cfg = janus.JanusConfig() if mode == "janus" else None
    return make_step(loss_fn, nn.SGD(lr), mode, config=cfg)


# -- (a) ResNet accuracy --------------------------------------------------------


def _resnet_accuracy(model, images, labels):
    nn.set_training(model, False)
    logits = model(R.constant(images))
    nn.set_training(model, True)
    pred = np.argmax(logits.numpy(), axis=1)
    return float(np.mean(pred == labels))


class TestPanelA_ResNet:
    @pytest.mark.parametrize("mode", MODES)
    def test_resnet(self, mode, benchmark):
        def run():
            ds = data.imagenet_like(n=48, batch_size=16, image_size=16,
                                    num_classes=4, seed=0)
            test = data.imagenet_like(n=32, batch_size=32, image_size=16,
                                      num_classes=4, seed=99)
            test_images, test_labels = next(iter(test.batches(False)))
            model = models.resnet.ResNet([8], [1], num_classes=4, seed=5)
            step = _mode_step(models.resnet.make_loss_fn(model), 0.05,
                              mode)
            batches = [tuple(b) for b in ds.batches(shuffle=False)]
            points = []
            start = time.perf_counter()
            # The paper's unsafe-tracing scenario: the model is evaluated
            # once (training=False) before training begins.
            if mode == "tracing":
                nn.set_training(model, False)
                step(*batches[0])
                nn.set_training(model, True)
            for epoch in range(8):
                for batch in batches:
                    step(*batch)
                points.append((time.perf_counter() - start,
                               _resnet_accuracy(model, test_images,
                                                test_labels)))
            return points

        points = benchmark.pedantic(run, rounds=1)
        note = ""
        if mode == "tracing":
            note = ("traced with training=False burned in: batch-norm "
                    "uses stale moving statistics during training")
        _record("(a) ResNet test accuracy", mode, points, note)
        if mode in ("janus", "symbolic", "imperative"):
            assert points[-1][1] > 0.5, (mode, points[-1])


# -- (b) LM perplexity ------------------------------------------------------------


class TestPanelB_LM:
    @pytest.mark.parametrize("mode", MODES)
    def test_lm(self, mode, benchmark):
        def run():
            corpus = data.markov_corpus(n_tokens=6000, vocab_size=60,
                                        seed=0)
            model = models.lm1b.BigLanguageModel(
                vocab_size=60, embed_dim=16, hidden_dim=32,
                batch_size=10, seed=4)
            step = _mode_step(models.lm1b.make_loss_fn(model), 0.5, mode)
            points = []
            start = time.perf_counter()
            for epoch in range(4):
                losses = []
                for x, y in corpus.bptt_batches(batch_size=10, seq_len=8):
                    out = step(x, y)
                    losses.append(float(np.asarray(
                        out.numpy() if hasattr(out, "numpy") else out)))
                ppl = float(np.exp(min(np.mean(losses), 30)))
                points.append((time.perf_counter() - start, ppl))
            return points

        points = benchmark.pedantic(run, rounds=1)
        note = ""
        if mode == "tracing":
            note = ("trace froze the initial hidden state: per-epoch "
                    "perplexity stalls above the sound frameworks")
        _record("(b) LM validation perplexity", mode, points, note)
        if mode in ("janus", "symbolic", "imperative"):
            assert points[-1][1] < points[0][1], mode

    def test_tracing_is_worse(self, benchmark):
        benchmark.pedantic(lambda: None, rounds=1)
        panel = _SERIES.get("(b) LM validation perplexity", {})
        if {"tracing", "janus"} <= set(panel):
            traced = panel["tracing"]["points"][-1][1]
            sound = panel["janus"]["points"][-1][1]
            assert traced >= sound * 0.98


# -- (c) TreeLSTM accuracy ----------------------------------------------------------


class TestPanelC_TreeLSTM:
    @pytest.mark.parametrize("mode", MODES)
    def test_treelstm(self, mode, benchmark):
        def run():
            trees = data.sst_like(n_trees=150, vocab_size=16,
                                  negation_rate=0.0, seed=0)
            train, test = data.train_test_split(trees, 0.2, seed=1)
            model = models.treelstm.TreeLSTM(vocab_size=16,
                                             hidden_dim=16, seed=3)
            step = _mode_step(models.treelstm.make_loss_fn(model), 0.2,
                              mode)
            points = []
            start = time.perf_counter()
            for epoch in range(5):
                for tree in train:
                    step(tree)
                acc = models.treernn.tree_accuracy(model, test)
                points.append((time.perf_counter() - start, acc))
            return points

        if mode == "tracing":
            with pytest.raises(Exception):
                # Recursion has no finite trace (paper: "could not be
                # converted into the symbolic graph at all").
                run()
            _record("(c) TreeLSTM test accuracy", mode, [],
                    "not convertible: recursive function call")
            return
        points = benchmark.pedantic(run, rounds=1)
        _record("(c) TreeLSTM test accuracy", mode, points)
        assert points[-1][1] > 0.7, (mode, points)


# -- (d) PPO episode reward -----------------------------------------------------------


class TestPanelD_PPO:
    @pytest.mark.parametrize("mode", ("janus", "symbolic", "imperative"))
    def test_ppo(self, mode, benchmark):
        def run():
            env = envs.PongLite(seed=0, rallies=4)
            agent = models.ppo.PPOAgent(hidden=32, seed=6)
            step = _mode_step(models.ppo.make_loss_fn(agent), 0.02, mode)
            rng = np.random.RandomState(0)
            points = []
            start = time.perf_counter()
            for it in range(6):
                rollout = models.ppo.collect_rollout(
                    agent, env, rng, horizon=96)
                batch, reward = rollout[:5], rollout[5]
                for _ in range(2):
                    step(*batch)
                points.append((time.perf_counter() - start, reward))
            return points

        points = benchmark.pedantic(run, rounds=1)
        _record("(d) PPO episode reward", mode, points)
        assert len(points) == 6

    def test_tracing_loses_heap_state(self, benchmark):
        """The paper could not collect PPO metrics with defun; here the
        trace silently drops the agent's heap-state updates."""
        benchmark.pedantic(lambda: None, rounds=1)
        env = envs.PongLite(seed=0, rallies=4)
        agent = models.ppo.PPOAgent(hidden=32, seed=6)
        step = make_step(models.ppo.make_loss_fn(agent), nn.SGD(0.02),
                         "tracing")
        rng = np.random.RandomState(0)
        rollout = models.ppo.collect_rollout(agent, env, rng, horizon=64)
        for _ in range(4):
            step(*rollout[:5])
        # the trace executed the counter update once (during tracing);
        # replays never advance it — silently wrong bookkeeping.
        updates = float(np.asarray(
            agent.updates_done.numpy()
            if hasattr(agent.updates_done, "numpy")
            else agent.updates_done))
        assert updates == 1.0
        _record("(d) PPO episode reward", "tracing", [],
                "heap-state updates silently dropped after tracing")


# -- (e) AN discriminator loss ---------------------------------------------------------


class TestPanelE_AN:
    @pytest.mark.parametrize("mode", MODES)
    def test_an(self, mode, benchmark):
        def run():
            ds = data.mnist_like(n=128, batch_size=32, seed=0)
            gan = models.gan_an.AdversarialNets(latent_dim=8,
                                                image_size=28,
                                                hidden=32, seed=8)
            d_step = _mode_step(models.gan_an.make_d_loss_fn(gan), 0.05,
                                mode)
            g_step = _mode_step(models.gan_an.make_g_loss_fn(gan), 0.05,
                                mode)
            rng = np.random.RandomState(0)
            points = []
            start = time.perf_counter()
            for epoch in range(4):
                for images, _ in ds.batches(shuffle=False):
                    if images.shape[0] != 32:
                        continue
                    z = models.gan_an.sample_latent(rng, 32, 8)
                    d_loss = d_step(images, z)
                    g_step(z)
                points.append((time.perf_counter() - start,
                               float(np.asarray(
                                   d_loss.numpy()
                                   if hasattr(d_loss, "numpy")
                                   else d_loss))))
            return points

        points = benchmark.pedantic(run, rounds=1)
        _record("(e) AN discriminator loss", mode, points)
        assert np.isfinite(points[-1][1])


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1)
    rows = []
    for panel in sorted(_SERIES):
        for mode in MODES:
            entry = _SERIES[panel].get(mode)
            if entry is None:
                continue
            points = entry["points"]
            if points:
                final = "%.3f @ %.1fs" % (points[-1][1], points[-1][0])
            else:
                final = "n/a"
            rows.append([panel, mode, final, entry["note"][:46]])
    print()
    print(format_table(["Panel", "Framework", "final metric @ time",
                        "note"], rows,
                       title="Figure 6 — convergence vs wall time"))
    save_results("fig6_convergence", _SERIES)

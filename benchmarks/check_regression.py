"""Throughput regression gates for the Table-3 benchmark.

Compares a fresh ``table3_throughput.json`` run against the stored
baseline (``baseline_table3.json``) and exits non-zero when a gate
fails.  Run via ``make bench-check``::

    python benchmarks/check_regression.py \
        [--baseline PATH] [--current PATH ...] [--threshold 0.10]

Only the JANUS column gates against the baseline: that is the number
this repo exists to protect.  Imperative and symbolic columns are
reported for context — drops there usually mean host noise, not a
runtime change.

Host noise on shared machines swings individual models by +/-15-20%
between runs, so a single run trips the 10% gate spuriously.  Passing
several ``--current`` files (separate benchmark runs of the same code)
gates each model on its **median** throughput across the runs instead.

Three gates, each a separate invocation (``make bench-check`` runs all):

* **absolute** (default) — median JANUS throughput vs the baseline's.
  Catches "everything got slower"; vulnerable to host drift.
* **relative** (``--relative``) — the per-model **JANUS/imperative
  ratio** vs the baseline's.  Both columns of each run come from the
  same host at the same moment, so uniform host drift cancels.  The
  ratio gate has its own blind spot (ROADMAP "Relative-gate
  baseline"): a PR that deliberately changes the *eager* path moves
  the denominator, and a stale baseline ratio then reads as a JANUS
  regression.  The gate therefore re-measures the drift of the
  imperative column itself: a model whose current imperative
  throughput moved more than ``--imperative-drift`` from the
  baseline's is reported but **excluded from ratio gating** — its
  ratio is not comparable until the baseline is re-measured in the
  same PR (the absolute gate still covers it).
* **symbolic parity** (``--symbolic-parity``) — the paper's Table-3
  claim, baseline-free: on the historically lagging models
  (``--parity-models``) the median JANUS throughput must reach at
  least ``--parity-tolerance`` of the same runs' symbolic throughput
  on at least ``--parity-min`` models.  Tolerance exists because on a
  single-core host the two modes run identical kernels and differ by
  ~1-2% of scheduling noise; parity, not victory, is the claim.
"""

import argparse
import json
import os
import statistics
import sys

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Keys in a results file that are not model rows.
RESERVED = ("meta", "observability")

#: Models the paper's Table 3 shows trailing pure symbolic execution —
#: the set the parity gate watches (see docs/lowering.md for why
#: TreeRNN may stay behind: per-call signature/bind overhead on
#: hundreds of tiny per-topology graphs, not executor dispatch).
PARITY_MODELS = ("ResNet", "Inception", "LM", "TreeRNN")


def load_models(path):
    with open(path) as fh:
        data = json.load(fh)
    return {name: row for name, row in data.items()
            if name not in RESERVED and isinstance(row, dict)
            and "janus" in row}


def relative_ratio(row):
    """A model row's JANUS/imperative throughput ratio, or ``None``.

    Both throughputs come from the same run, so host drift cancels;
    rows without a positive ``imperative`` column cannot be ratio-gated.
    """
    imperative = row.get("imperative")
    if not imperative:
        return None
    return row["janus"] / imperative


def median_column(runs, name, column):
    """Median of ``column`` for model ``name`` across ``runs`` (or None)."""
    samples = [run[name].get(column) for run in runs if name in run]
    samples = [s for s in samples if s]
    return statistics.median(samples) if samples else None


def check_symbolic_parity(runs, models, tolerance, minimum):
    """The Table-3 parity gate: JANUS vs symbolic, no baseline.

    Each run's JANUS and symbolic columns share that run's host
    conditions, so the per-run ratio is the noise-resistant quantity
    (same pairing argument as the ``--relative`` gate); models gate on
    the **median of per-run ratios**, not the ratio of medians, so one
    contaminated run cannot skew the comparison.
    """
    print("gated metric: JANUS vs symbolic parity "
          "(tolerance %.2f, need %d of %d models)"
          % (tolerance, minimum, len(models)))
    print("%-10s %12s %12s %8s %7s" % ("Model", "janus", "symbolic",
                                       "ratio", "parity"))
    passed = 0
    compared = 0
    for name in models:
        janus = median_column(runs, name, "janus")
        symbolic = median_column(runs, name, "symbolic")
        ratios = [run[name]["janus"] / run[name]["symbolic"]
                  for run in runs
                  if name in run and run[name].get("symbolic")]
        if janus is None or not ratios:
            print("%-10s %12s" % (name, "missing"))
            continue
        compared += 1
        ratio = statistics.median(ratios)
        ok = ratio >= tolerance
        passed += ok
        print("%-10s %12.1f %12.1f %7.2fx %7s"
              % (name, janus, symbolic, ratio, "ok" if ok else "BEHIND"))
    if compared < len(models):
        print("note: %d parity model(s) missing from the current runs"
              % (len(models) - compared))
    if passed < minimum:
        print("\nFAIL: JANUS reaches symbolic parity on only %d of %d "
              "lagging models (need %d)" % (passed, len(models), minimum))
        return 1
    print("\nOK: JANUS at symbolic parity on %d of %d lagging models"
          % (passed, len(models)))
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline",
                        default=os.path.join(RESULTS_DIR,
                                             "baseline_table3.json"))
    parser.add_argument("--current", nargs="+",
                        default=[os.path.join(RESULTS_DIR,
                                              "table3_throughput.json")],
                        help="one or more result files; with several, "
                             "each model gates on its median")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="fractional drop that fails the gate")
    parser.add_argument("--relative", action="store_true",
                        help="gate the JANUS/imperative ratio instead of "
                             "absolute JANUS throughput (host-drift-"
                             "immune; rows need an 'imperative' column)")
    parser.add_argument("--imperative-drift", type=float, default=0.15,
                        help="fractional move of the imperative column "
                             "beyond which a model's ratio is treated "
                             "as not comparable to the baseline's "
                             "(relative gate only)")
    parser.add_argument("--symbolic-parity", action="store_true",
                        help="gate JANUS vs symbolic throughput on the "
                             "lagging Table-3 models (baseline-free)")
    parser.add_argument("--parity-models", nargs="+",
                        default=list(PARITY_MODELS))
    parser.add_argument("--parity-tolerance", type=float, default=0.95,
                        help="required median JANUS/symbolic ratio")
    parser.add_argument("--parity-min", type=int, default=3,
                        help="models that must reach parity")
    args = parser.parse_args(argv)

    current_paths = list(args.current)
    for path in ([args.baseline] if not args.symbolic_parity else []) \
            + current_paths:
        if not os.path.exists(path):
            print("check_regression: missing %s" % path)
            return 2
    runs = [load_models(path) for path in current_paths]
    if len(runs) > 1:
        print("gating on the median of %d runs" % len(runs))

    if args.symbolic_parity:
        return check_symbolic_parity(runs, args.parity_models,
                                     args.parity_tolerance,
                                     args.parity_min)

    metric_of = relative_ratio if args.relative else \
        (lambda row: row["janus"])
    metric_name = "JANUS/imperative ratio" if args.relative \
        else "JANUS throughput"
    baseline_rows = load_models(args.baseline)
    baseline = {}
    for name, row in baseline_rows.items():
        value = metric_of(row)
        if value is not None:
            baseline[name] = value
    current = {}
    for name in runs[0]:
        samples = [metric_of(run[name]) for run in runs if name in run]
        samples = [s for s in samples if s is not None]
        if samples:
            current[name] = statistics.median(samples)

    shared = [name for name in baseline if name in current]
    if not shared:
        print("check_regression: no models shared between %s and %s"
              % (args.baseline, ", ".join(current_paths)))
        return 2

    # Relative gate: a model whose imperative column itself drifted
    # beyond the allowance has a stale ratio baseline (ROADMAP,
    # "Relative-gate baseline") — report it, but gate it on the
    # absolute invocation instead of failing on a non-comparable ratio.
    drifted = {}
    if args.relative:
        for name in shared:
            base_imp = baseline_rows[name].get("imperative")
            cur_imp = median_column(runs, name, "imperative")
            if base_imp and cur_imp:
                drift = cur_imp / base_imp - 1.0
                if abs(drift) > args.imperative_drift:
                    drifted[name] = drift

    fmt = "%-10s %12.3f %12.3f %7.2fx%s" if args.relative else \
        "%-10s %12.1f %12.1f %7.2fx%s"
    regressions = []
    print("gated metric: %s" % metric_name)
    print("%-10s %12s %12s %8s" % ("Model", "baseline", "current",
                                   "ratio"))
    for name in shared:
        base = baseline[name]
        cur = current[name]
        ratio = cur / base if base else float("inf")
        flag = ""
        if name in drifted:
            flag = "  imperative drifted %+.0f%%: ratio not gated" \
                % (drifted[name] * 100)
        elif ratio < 1.0 - args.threshold:
            flag = "  REGRESSION"
            regressions.append((name, base, cur, ratio))
        print(fmt % (name, base, cur, ratio, flag))
    missing = sorted(set(baseline) - set(current))
    if missing:
        print("note: models missing from current run: %s"
              % ", ".join(missing))
    if drifted:
        print("note: the eager path moved on %s — re-measure the "
              "baseline in this PR to restore their ratio gate"
              % ", ".join(sorted(drifted)))

    if regressions:
        print("\nFAIL: %d model(s) regressed more than %.0f%% on %s"
              % (len(regressions), args.threshold * 100, metric_name))
        with open(args.baseline) as fh:
            meta = json.load(fh).get("meta", {})
        print("compared against baseline %s (label: %s)"
              % (args.baseline, meta.get("label", "unlabelled")))
        if meta.get("note"):
            print("baseline note: %s" % meta["note"])
        return 1
    print("\nOK: no regression beyond %.0f%% on %s (%d models compared)"
          % (args.threshold * 100, metric_name, len(shared)))
    return 0


if __name__ == "__main__":
    sys.exit(main())

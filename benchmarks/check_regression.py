"""Throughput regression gate for the Table-3 benchmark.

Compares a fresh ``table3_throughput.json`` run against the stored
baseline (``baseline_table3.json``) and exits non-zero when any model's
JANUS throughput dropped more than the threshold (default 10%).  Run via
``make bench-check``::

    python benchmarks/check_regression.py \
        [--baseline PATH] [--current PATH ...] [--threshold 0.10]

Only the JANUS column gates: that is the number this repo exists to
protect.  Imperative and symbolic columns are reported for context —
drops there usually mean host noise, not a runtime change.

Host noise on shared machines swings individual models by +/-15-20%
between runs, so a single run trips the 10% gate spuriously.  Passing
several ``--current`` files (separate benchmark runs of the same code)
gates each model on its **median** throughput across the runs instead.

``--relative`` switches the gated metric from absolute JANUS throughput
to the per-model **JANUS/imperative ratio**.  Both columns come from
the same run on the same host, so uniform host drift (a slower CI
machine, a noisy neighbor) cancels out of the ratio — only a change in
the runtime's overhead relative to eager execution can move it.  The
two gates are complementary: absolute catches "everything got slower",
relative stays meaningful when the host itself changed.  ``make
bench-check`` runs both.
"""

import argparse
import json
import os
import statistics
import sys

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Keys in a results file that are not model rows.
RESERVED = ("meta", "observability")


def load_models(path):
    with open(path) as fh:
        data = json.load(fh)
    return {name: row for name, row in data.items()
            if name not in RESERVED and isinstance(row, dict)
            and "janus" in row}


def relative_ratio(row):
    """A model row's JANUS/imperative throughput ratio, or ``None``.

    Both throughputs come from the same run, so host drift cancels;
    rows without a positive ``imperative`` column cannot be ratio-gated.
    """
    imperative = row.get("imperative")
    if not imperative:
        return None
    return row["janus"] / imperative


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline",
                        default=os.path.join(RESULTS_DIR,
                                             "baseline_table3.json"))
    parser.add_argument("--current", nargs="+",
                        default=[os.path.join(RESULTS_DIR,
                                              "table3_throughput.json")],
                        help="one or more result files; with several, "
                             "each model gates on its median")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="fractional drop that fails the gate")
    parser.add_argument("--relative", action="store_true",
                        help="gate the JANUS/imperative ratio instead of "
                             "absolute JANUS throughput (host-drift-"
                             "immune; rows need an 'imperative' column)")
    args = parser.parse_args(argv)

    for path in [args.baseline] + args.current:
        if not os.path.exists(path):
            print("check_regression: missing %s" % path)
            return 2
    metric_of = relative_ratio if args.relative else \
        (lambda row: row["janus"])
    metric_name = "JANUS/imperative ratio" if args.relative \
        else "JANUS throughput"
    baseline = {}
    for name, row in load_models(args.baseline).items():
        value = metric_of(row)
        if value is not None:
            baseline[name] = value
    runs = [load_models(path) for path in args.current]
    current = {}
    for name in runs[0]:
        samples = [metric_of(run[name]) for run in runs if name in run]
        samples = [s for s in samples if s is not None]
        if samples:
            current[name] = statistics.median(samples)
    if len(runs) > 1:
        print("gating on the median of %d runs" % len(runs))

    shared = [name for name in baseline if name in current]
    if not shared:
        print("check_regression: no models shared between %s and %s"
              % (args.baseline, ", ".join(args.current)))
        return 2

    fmt = "%-10s %12.3f %12.3f %7.2fx%s" if args.relative else \
        "%-10s %12.1f %12.1f %7.2fx%s"
    regressions = []
    print("gated metric: %s" % metric_name)
    print("%-10s %12s %12s %8s" % ("Model", "baseline", "current",
                                   "ratio"))
    for name in shared:
        base = baseline[name]
        cur = current[name]
        ratio = cur / base if base else float("inf")
        flag = ""
        if ratio < 1.0 - args.threshold:
            flag = "  REGRESSION"
            regressions.append((name, base, cur, ratio))
        print(fmt % (name, base, cur, ratio, flag))
    missing = sorted(set(baseline) - set(current))
    if missing:
        print("note: models missing from current run: %s"
              % ", ".join(missing))

    if regressions:
        print("\nFAIL: %d model(s) regressed more than %.0f%% on %s"
              % (len(regressions), args.threshold * 100, metric_name))
        with open(args.baseline) as fh:
            meta = json.load(fh).get("meta", {})
        print("compared against baseline %s (label: %s)"
              % (args.baseline, meta.get("label", "unlabelled")))
        if meta.get("note"):
            print("baseline note: %s" % meta["note"])
        if args.relative:
            print("the ratio gate reuses this baseline's 'imperative' "
                  "column: if this PR deliberately changed the eager "
                  "path, re-measure the baseline in the same PR "
                  "(see ROADMAP.md, relative-gate baseline)")
        return 1
    print("\nOK: no regression beyond %.0f%% on %s (%d models compared)"
          % (args.threshold * 100, metric_name, len(shared)))
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Bind/precheck cost for many-constant-tensor-arg signatures.

A signature whose arguments profile as stable constant tensors (frozen
weights passed positionally — the ResNet parity laggard) burns one
:class:`~repro.janus.specialization.ArgConstTensor` precheck per
argument, and the warm dispatch path re-validates every one of them on
every call.  Historically each validation was a full ``np.array_equal``
over the argument — O(total weight bytes) per call.  The precheck now
memoizes a successful match through the tensor write barrier as
``(TensorValue identity, version)``: a sealed buffer cannot change
content without a COW rebind or a version bump, so the steady-state
cost per argument drops to two identity checks.

Two arms over byte-identical content:

* **memoized** — Tensor arguments (sealable TensorValues): after the
  first call each precheck hits its (identity, version) memo,
* **full-compare** — raw ndarray arguments: unmemoizable (no version
  stamp), every call pays the element compare.

The micro section times the precheck list directly; the end-to-end
section pushes the same shape through a real ``janus.function``
dispatch.  Staleness is asserted, not assumed: an in-place mutation of
a matched argument must fail the precheck (the version bump kills the
memo), and a content-equal rebind must re-earn it.

Run via ``pytest benchmarks/bench_bind_precheck.py --benchmark-only``;
``BENCH_LABEL=foo`` writes ``results/bind_precheck-foo.json``.
"""

import gc
import linecache
import os
import statistics
import time

import numpy as np
import pytest

import repro as R
from repro import janus
from repro.janus.specialization import ArgConstTensor

from harness import format_table, save_results

#: Constant tensor arguments per signature (weights passed positionally).
ARGS = 24
#: Elements per weight (float32: 64 KiB each, ~1.5 MiB compared per call
#: on the unmemoized path).
ELEMS = 16384

_RESULTS = {}


def _weights(rng):
    return [rng.normal(size=(ELEMS,)).astype(np.float32)
            for _ in range(ARGS)]


def _loop_seconds(fn, reps, rounds=5):
    fn()                              # warm
    gc.collect()
    gc.disable()
    try:
        samples = []
        for _ in range(rounds):
            start = time.perf_counter()
            for _ in range(reps):
                fn()
            samples.append((time.perf_counter() - start) / reps)
    finally:
        gc.enable()
    return statistics.median(samples)


# -- micro: the precheck list alone -------------------------------------------

def test_const_tensor_precheck_memo_speedup(benchmark):
    rng = np.random.default_rng(23)
    ws = _weights(rng)
    checks = [ArgConstTensor(i, w) for i, w in enumerate(ws)]
    args_tensor = tuple(R.constant(w) for w in ws)
    args_ndarray = tuple(ws)

    def validate(args):
        for check in checks:
            if not check(args):
                return False
        return True

    # Both arms pass; the tensor arm earns its memos on the first pass.
    assert validate(args_ndarray)
    assert validate(args_tensor)
    assert all(c._memo is not None for c in checks)

    # Staleness: an in-place write bumps the version, the memo misses,
    # and the full compare correctly rejects the changed content.
    victim = args_tensor[3]
    victim.add_(1.0)
    assert not checks[3](args_tensor)
    # A content-equal rebind re-earns the memo through a full compare.
    repaired = args_tensor[:3] + (R.constant(ws[3]),) + args_tensor[4:]
    assert checks[3](repaired)
    assert validate(repaired)

    memo_s = _loop_seconds(lambda: validate(repaired), reps=2000)
    full_s = _loop_seconds(lambda: validate(args_ndarray), reps=200)
    benchmark.pedantic(lambda: validate(repaired), rounds=3, iterations=200)

    ratio = full_s / memo_s
    _RESULTS["micro"] = {
        "args": ARGS,
        "elems_per_arg": ELEMS,
        "per_call_memo_us": memo_s * 1e6,
        "per_call_full_us": full_s * 1e6,
        "speedup": ratio,
    }
    assert ratio >= 3.0, _RESULTS["micro"]


# -- end-to-end: warm janus.function dispatch ---------------------------------

def _make_prog():
    params = ", ".join("w%d" % i for i in range(ARGS))
    lines = ["def prog(x, %s):" % params, "    y = x * 1.0"]
    lines += ["    y = y + w%d" % i for i in range(ARGS)]
    lines.append("    return R.reduce_sum(y)")
    src = "\n".join(lines) + "\n"
    filename = "<bindbench>"
    linecache.cache[filename] = (len(src), None, src.splitlines(True),
                                 filename)
    ns = {"R": R}
    exec(compile(src, filename, "exec"), ns)
    return ns["prog"], filename


def _warm_function(prog, call_args):
    cfg = janus.JanusConfig(fail_on_not_convertible=True,
                            parallel_execution=False, profile_runs=2)
    f = janus.function(config=cfg)(prog)
    for _ in range(4):
        out = f(*call_args)
    assert f.stats["graph_runs"] > 0, f.stats
    return f, out


def test_dispatch_with_constant_weight_args(benchmark):
    rng = np.random.default_rng(29)
    ws = _weights(rng)
    x = R.constant(rng.normal(size=(ELEMS,)).astype(np.float32))
    prog, filename = _make_prog()
    try:
        f_t, out_t = _warm_function(prog, (x,) + tuple(
            R.constant(w) for w in ws))
        f_nd, out_nd = _warm_function(prog, (x,) + tuple(ws))
        assert np.array_equal(out_t.numpy(), out_nd.numpy())

        args_t = (x,) + tuple(R.constant(w) for w in ws)
        # Fresh Tensors: first warm call re-earns the memos, then steady
        # state is the memoized path.
        for _ in range(2):
            f_t(*args_t)
        args_nd = (x,) + tuple(ws)

        t_s = _loop_seconds(lambda: f_t(*args_t), reps=300)
        nd_s = _loop_seconds(lambda: f_nd(*args_nd), reps=100)
        benchmark.pedantic(lambda: f_t(*args_t), rounds=3, iterations=50)

        assert f_t.stats["graph_runs"] > 4, f_t.stats
        _RESULTS["dispatch"] = {
            "args": ARGS,
            "per_call_tensor_us": t_s * 1e6,
            "per_call_ndarray_us": nd_s * 1e6,
            "speedup": nd_s / t_s,
        }
        # The end-to-end win is bounded by kernel time; just require the
        # memoized arm not to lose.
        assert nd_s / t_s >= 0.9, _RESULTS["dispatch"]
    finally:
        linecache.cache.pop(filename, None)


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1)
    if not _RESULTS:
        pytest.skip("no measurements")
    rows = []
    micro = _RESULTS.get("micro")
    if micro:
        rows.append(["precheck list", "%.1f" % micro["per_call_memo_us"],
                     "%.1f" % micro["per_call_full_us"],
                     "%.1fx" % micro["speedup"]])
    disp = _RESULTS.get("dispatch")
    if disp:
        rows.append(["warm dispatch", "%.1f" % disp["per_call_tensor_us"],
                     "%.1f" % disp["per_call_ndarray_us"],
                     "%.2fx" % disp["speedup"]])
    print()
    print(format_table(
        ["path", "memoized (us/call)", "full compare (us/call)", "speedup"],
        rows,
        title="ArgConstTensor precheck cost (%d const args x %d elems)"
              % (ARGS, ELEMS)))
    label = os.environ.get("BENCH_LABEL")
    payload = dict(_RESULTS)
    payload["meta"] = {"label": label or "dev"}
    save_results("bind_precheck" + ("-" + label if label else ""), payload)

"""Per-read cost of guarded Tensor-typed heap reads, barrier on vs off.

The PR-2 identity memo skipped re-internalization and guard checks for
immutable scalar attributes only; Tensor-typed ``py_get_attr`` reads
paid the full internalize + dtype/shape-guard path on every run.  The
tensor write barrier extends the memo to those reads — keyed on
``(identity, TensorValue.version)`` with the buffer sealed against
unsanctioned mutation — so a steady-state read costs an identity check,
a version compare, and a shape/dtype compare.

The workload isolates exactly that path: one graph of ``READS``
``py_get_attr`` nodes with profiled tensor guards and nothing else,
executed by two schedules compiled from the same graph — one with
``tensor_write_barrier`` on, one with it off.  Everything outside the
read closures (RunState setup, commit, output collection) is identical,
so the per-run difference is pure heap-read cost.

Run via ``pytest benchmarks/bench_write_barrier.py --benchmark-only``;
``BENCH_LABEL=foo`` writes ``results/write_barrier-foo.json``.
"""

import os
import statistics
import time

import numpy as np
import pytest

import repro as R
from repro.graph.builder import GraphBuilder
from repro.graph.executor import GraphExecutor
from repro.tensor import Shape, float32

from harness import format_table, save_results

#: Guarded Tensor reads per graph run.
READS = 64
#: Elements per read tensor (small on purpose: the read overhead, not
#: kernel time, is what this bench isolates).
ELEMS = 16

_RESULTS = {}


class _Holder:
    pass


def _build_read_graph(holder):
    builder = GraphBuilder(name="heap_reads")
    outputs = []
    shape = Shape((ELEMS,))
    for i in range(READS):
        outputs.append(builder.py_get_attr(
            holder, "t%d" % i, expected=("tensor", float32, shape)))
    builder.mark_outputs(outputs)
    return builder.graph


def _fresh_holder(rng):
    holder = _Holder()
    for i in range(READS):
        setattr(holder, "t%d" % i,
                R.constant(rng.normal(size=(ELEMS,)).astype(np.float32)))
    return holder


def _per_run_seconds(executor, reps=2000):
    executor.run(())                       # warm: validate + memoize
    import gc
    gc.collect()
    gc.disable()
    try:
        samples = []
        for _ in range(5):
            start = time.perf_counter()
            for _ in range(reps):
                executor.run(())
            samples.append((time.perf_counter() - start) / reps)
    finally:
        gc.enable()
    return statistics.median(samples)


def test_tensor_heap_read_memo_speedup(benchmark):
    rng = np.random.default_rng(11)
    holder_on = _fresh_holder(rng)
    holder_off = _fresh_holder(rng)
    exec_on = GraphExecutor(_build_read_graph(holder_on),
                            tensor_write_barrier=True)
    exec_off = GraphExecutor(_build_read_graph(holder_off),
                             tensor_write_barrier=False)

    # Same values out of both schedules, and the memoized path returns
    # the live buffer (content aliasing preserved).
    out_on = exec_on.run(())
    out_off = exec_off.run(())
    for i in range(READS):
        np.testing.assert_array_equal(out_on[i],
                                      getattr(holder_on, "t%d" % i).numpy())
        np.testing.assert_array_equal(out_off[i],
                                      getattr(holder_off, "t%d" % i).numpy())
    assert holder_on.t0.value.tracked
    assert not holder_off.t0.value.tracked

    on_s = _per_run_seconds(exec_on)
    off_s = _per_run_seconds(exec_off)
    benchmark.pedantic(lambda: exec_on.run(()), rounds=3, iterations=100)

    per_read_on_us = on_s / READS * 1e6
    per_read_off_us = off_s / READS * 1e6
    ratio = off_s / on_s
    _RESULTS["write_barrier"] = {
        "reads_per_run": READS,
        "per_read_on_us": per_read_on_us,
        "per_read_off_us": per_read_off_us,
        "speedup": ratio,
    }
    assert ratio >= 1.5, _RESULTS["write_barrier"]


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1)
    if not _RESULTS:
        pytest.skip("no measurements")
    r = _RESULTS["write_barrier"]
    print()
    print(format_table(
        ["barrier on (us/read)", "barrier off (us/read)", "speedup"],
        [["%.3f" % r["per_read_on_us"], "%.3f" % r["per_read_off_us"],
          "%.2fx" % r["speedup"]]],
        title="Guarded Tensor heap-read cost (%d reads/run)" % READS))
    label = os.environ.get("BENCH_LABEL")
    payload = dict(_RESULTS)
    payload["meta"] = {"label": label or "dev"}
    save_results("write_barrier" + ("-" + label if label else ""), payload)

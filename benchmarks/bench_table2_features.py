"""Table 2: the model inventory and its dynamic-feature usage.

Verifies — by static inspection of the actual model source — that each
workload uses exactly the dynamic features the paper's Table 2 lists for
it, and prints the replica table.
"""

import ast
import inspect
import textwrap

import pytest

from repro import models
from harness import MODEL_BENCHES, MODEL_ORDER, format_table, save_results

#: Paper Table 2 feature rows (DCF, DT, IF).
PAPER_FEATURES = {
    "LeNet": (False, True, False),
    "ResNet": (True, True, False),
    "Inception": (True, True, False),
    "LSTM": (True, True, True),
    "LM": (True, True, True),
    "TreeRNN": (True, True, True),
    "TreeLSTM": (True, True, True),
    "A3C": (True, True, True),
    "PPO": (False, True, True),
    "AN": (False, True, True),
    "pix2pix": (False, True, True),
}

#: The module whose source defines each model's training computation.
MODEL_SOURCES = {
    "LeNet": models.lenet, "ResNet": models.resnet,
    "Inception": models.inception, "LSTM": models.lstm_ptb,
    "LM": models.lm1b, "TreeRNN": models.treernn,
    "TreeLSTM": models.treelstm, "A3C": models.a3c, "PPO": models.ppo,
    "AN": models.gan_an, "pix2pix": models.pix2pix,
}

#: Models whose DCF lives in shared layer code (BatchNorm's training
#: branch) rather than the model module itself.
DCF_VIA_BATCHNORM = {"ResNet", "Inception"}


def _is_eager_guard(node):
    """True for the `if api.executing_eagerly():` telemetry guard."""
    test = node.test if isinstance(node, ast.If) else None
    return (isinstance(test, ast.Call)
            and isinstance(test.func, ast.Attribute)
            and test.func.attr == "executing_eagerly")


def _module_uses(module):
    """(has_control_flow, has_impure_access) by AST inspection of the
    model's computational methods (call / encode / *loss*)."""
    source = textwrap.dedent(inspect.getsource(module))
    tree = ast.parse(source)
    has_cf = False
    has_if = False
    functions = [n for n in ast.walk(tree)
                 if isinstance(n, ast.FunctionDef)
                 and (n.name in ("call", "encode") or "loss" in n.name)]
    for fn in functions:
        params = {a.arg for a in fn.args.args} - {"self"}
        for node in ast.walk(fn):
            if isinstance(node, (ast.For, ast.While, ast.IfExp)):
                has_cf = True
            elif isinstance(node, ast.If) and not _is_eager_guard(node):
                has_cf = True
            if isinstance(node, ast.Attribute):
                if isinstance(node.ctx, ast.Store):
                    has_if = True   # heap mutation
                elif isinstance(node.value, ast.Name) and \
                        node.value.id in params:
                    has_if = True   # object state reads (tree nodes)
            # direct or method recursion
            if isinstance(node, ast.Call):
                callee = node.func
                name = callee.attr if isinstance(callee, ast.Attribute) \
                    else getattr(callee, "id", None)
                if name == fn.name:
                    has_cf = True
    return has_cf, has_if


@pytest.mark.parametrize("name", MODEL_ORDER)
def test_features_match_paper(name, benchmark):
    module = MODEL_SOURCES[name]
    has_cf, has_heap = benchmark.pedantic(
        lambda: _module_uses(module), rounds=1)
    dcf, dt, impure = PAPER_FEATURES[name]
    if name in DCF_VIA_BATCHNORM:
        from repro.nn import layers
        bn_cf, _ = _module_uses(layers)
        has_cf = has_cf or bn_cf
    assert has_cf == dcf, "%s: DCF mismatch" % name
    assert has_heap == impure, "%s: IF mismatch" % name
    # DT holds for every model (varying batch shapes / dynamic values).
    assert dt


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1)
    rows = []
    for name in MODEL_ORDER:
        spec = MODEL_BENCHES[name]
        dcf, dt, impure = PAPER_FEATURES[name]
        rows.append([spec.category, name, spec.unit,
                     "x" if dcf else "-", "x" if dt else "-",
                     "x" if impure else "-"])
    print()
    print(format_table(
        ["Category", "Model", "Throughput unit", "DCF", "DT", "IF"],
        rows, title="Table 2 — evaluated models and dynamic features"))
    save_results("table2_features",
                 {k: dict(zip(("DCF", "DT", "IF"), v))
                  for k, v in PAPER_FEATURES.items()})

"""Shared benchmark harness: model registry, step builders, reporting.

Each entry in :data:`MODEL_BENCHES` wires one of the paper's 11 workloads
(Table 2) at CPU scale: a model factory, its imperative loss function,
representative input batches, and the throughput unit the paper reports
(images/s, words/s, sentences/s, frames/s).
"""

import json
import os
import time

import numpy as np

import repro as R
from repro import janus, nn, data, envs, models
from repro import observability as obs
from repro.modes import make_step

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def save_results(name, payload):
    os.makedirs(RESULTS_DIR, exist_ok=True)
    if obs.trace_level() and isinstance(payload, dict):
        # Tracing was on for this benchmark run: embed the counter totals
        # and write the chrome trace next to the JSON results.
        payload = dict(payload)
        payload["observability"] = obs.get_counters().snapshot()
        obs.write_chrome_trace(os.path.join(RESULTS_DIR,
                                            name + ".trace.json"))
    path = os.path.join(RESULTS_DIR, name + ".json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, default=str)
    return path


class BenchSpec:
    """One benchmarkable workload."""

    def __init__(self, name, category, unit, make_model, make_loss,
                 make_batches, items_per_batch, lr=0.01,
                 dynamic_features=("DT",)):
        self.name = name
        self.category = category
        self.unit = unit
        self.make_model = make_model
        self.make_loss = make_loss
        self.make_batches = make_batches
        self.items_per_batch = items_per_batch
        self.lr = lr
        self.dynamic_features = dynamic_features

    def build(self, mode, seed=1, config=None, parallel=True):
        """(step, batches) for one execution mode; fresh model + optimizer."""
        model = self.make_model(seed)
        loss_fn = self.make_loss(model)
        step = make_step(loss_fn, nn.SGD(self.lr), mode, config=config,
                         parallel=parallel)
        batches = self.make_batches(seed)
        return step, batches, model


def _mnist_batches(seed, n=100, bs=50):
    ds = data.mnist_like(n=n, batch_size=bs, seed=seed)
    return [tuple(b) for b in ds.batches(shuffle=False)][:2]


def _imagenet_batches(seed, n=16, bs=8, size=16):
    ds = data.imagenet_like(n=n, batch_size=bs, image_size=size, seed=seed)
    return [tuple(b) for b in ds.batches(shuffle=False)][:2]


def _ptb_batches(seed, bs=20, seq=10):
    corpus = data.ptb_like(seed=seed)
    return list(corpus.bptt_batches(batch_size=bs, seq_len=seq))[:3]


def _lm_batches(seed, bs=32, seq=8):
    corpus = data.one_billion_like(seed=seed)
    return list(corpus.bptt_batches(batch_size=bs, seq_len=seq))[:3]


def _tree_batches(seed, n=64):
    # A realistic corpus streams *novel* trees; a symbolic (TF-1-style)
    # implementation pays a graph build per unseen structure.  Enough
    # distinct trees keeps that cost visible in the measurement window.
    return [(t,) for t in data.sst_like(n_trees=n, seed=seed)]


def _a3c_batches(seed, n=4):
    env = envs.CartPole(seed=seed)
    probe = models.a3c.ActorCritic(seed=seed + 100)
    rng = np.random.RandomState(seed)
    return [models.a3c.collect_episode(probe, env, rng) for _ in range(n)]


def _ppo_batches(seed, n=2, horizon=64):
    env = envs.PongLite(seed=seed)
    probe = models.ppo.PPOAgent(seed=seed + 100)
    rng = np.random.RandomState(seed)
    return [models.ppo.collect_rollout(probe, env, rng,
                                       horizon=horizon)[:5]
            for _ in range(n)]


def _an_batches(seed, bs=64):
    ds = data.mnist_like(n=bs, batch_size=bs, seed=seed)
    images = next(iter(ds.batches(shuffle=False)))[0]
    rng = np.random.RandomState(seed)
    z = models.gan_an.sample_latent(rng, bs, 16)
    return [(images, z)]


def _p2p_batches(seed, n=2):
    ds = data.facades_like(n=n, batch_size=1, image_size=16, seed=seed)
    return [tuple(b) for b in ds.batches(shuffle=False)]


def _an_model(seed):
    return models.gan_an.AdversarialNets(seed=seed)


MODEL_BENCHES = {
    "LeNet": BenchSpec(
        "LeNet", "CNN", "images/s",
        lambda seed: models.lenet.LeNet(seed=seed),
        models.lenet.make_loss_fn,
        _mnist_batches, items_per_batch=50,
        dynamic_features=("DT",)),
    "ResNet": BenchSpec(
        "ResNet", "CNN", "images/s",
        lambda seed: models.resnet.resnet_tiny(seed=seed),
        models.resnet.make_loss_fn,
        _imagenet_batches, items_per_batch=8,
        dynamic_features=("DCF", "DT")),
    "Inception": BenchSpec(
        "Inception", "CNN", "images/s",
        lambda seed: models.inception.InceptionNet(seed=seed),
        models.inception.make_loss_fn,
        _imagenet_batches, items_per_batch=8,
        dynamic_features=("DCF", "DT")),
    "LSTM": BenchSpec(
        "LSTM", "RNN", "words/s",
        lambda seed: models.lstm_ptb.LSTMLanguageModel(
            vocab_size=200, embed_dim=32, hidden_dim=64, batch_size=20,
            seed=seed),
        models.lstm_ptb.make_loss_fn,
        _ptb_batches, items_per_batch=20 * 10,
        dynamic_features=("DCF", "DT", "IF")),
    "LM": BenchSpec(
        "LM", "RNN", "words/s",
        lambda seed: models.lm1b.BigLanguageModel(
            vocab_size=800, embed_dim=64, hidden_dim=128, batch_size=32,
            seed=seed),
        models.lm1b.make_loss_fn,
        _lm_batches, items_per_batch=32 * 8,
        dynamic_features=("DCF", "DT", "IF")),
    "TreeRNN": BenchSpec(
        "TreeRNN", "TreeNN", "sentences/s",
        lambda seed: models.treernn.TreeRNN(seed=seed),
        models.treernn.make_loss_fn,
        _tree_batches, items_per_batch=1,
        dynamic_features=("DCF", "DT", "IF")),
    "TreeLSTM": BenchSpec(
        "TreeLSTM", "TreeNN", "sentences/s",
        lambda seed: models.treelstm.TreeLSTM(seed=seed),
        models.treelstm.make_loss_fn,
        _tree_batches, items_per_batch=1,
        dynamic_features=("DCF", "DT", "IF")),
    "A3C": BenchSpec(
        "A3C", "DRL", "frames/s",
        lambda seed: models.a3c.ActorCritic(seed=seed),
        models.a3c.make_loss_fn,
        _a3c_batches, items_per_batch=None,   # per-episode length
        dynamic_features=("DCF", "DT", "IF")),
    "PPO": BenchSpec(
        "PPO", "DRL", "frames/s",
        lambda seed: models.ppo.PPOAgent(seed=seed),
        models.ppo.make_loss_fn,
        _ppo_batches, items_per_batch=64,
        dynamic_features=("DT", "IF")),
    "AN": BenchSpec(
        "AN", "GAN", "images/s",
        _an_model,
        models.gan_an.make_d_loss_fn,
        _an_batches, items_per_batch=64,
        dynamic_features=("DT", "IF")),
    "pix2pix": BenchSpec(
        "pix2pix", "GAN", "images/s",
        lambda seed: models.pix2pix.Pix2Pix(image_size=16, seed=seed),
        models.pix2pix.make_g_loss_fn,
        _p2p_batches, items_per_batch=1,
        dynamic_features=("DT", "IF")),
}

#: Order matching paper Table 3.
MODEL_ORDER = ["LeNet", "ResNet", "Inception", "LSTM", "LM", "TreeRNN",
               "TreeLSTM", "A3C", "PPO", "AN", "pix2pix"]


def items_in(spec, batch):
    if spec.items_per_batch is not None:
        return spec.items_per_batch
    # A3C: frames per episode = episode length
    return len(batch[1])


def measure_throughput(step, batches, spec, warmup=4, iters=8,
                       min_seconds=0.6):
    """Items/second of a training step over the batch cycle.

    Runs for at least ``min_seconds`` (and ``iters`` steps) with the
    garbage collector paused, which keeps single-core measurements stable
    enough to compare executors.
    """
    import gc
    for i in range(warmup):
        step(*batches[i % len(batches)])
    gc.collect()
    gc.disable()
    try:
        total_items = 0
        count = 0
        with obs.TRACER.span("bench", spec.name):
            start = time.perf_counter()
            while count < iters or \
                    time.perf_counter() - start < min_seconds:
                batch = batches[count % len(batches)]
                step(*batch)
                total_items += items_in(spec, batch)
                count += 1
                if count > 10000:
                    break
            elapsed = time.perf_counter() - start
    finally:
        gc.enable()
    if obs.trace_level():
        obs.get_counters().inc("bench.%s.steps" % spec.name, count)
        obs.get_counters().add_time("bench.%s" % spec.name, elapsed)
    return total_items / elapsed


def format_table(headers, rows, title=None):
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows))
              for i, h in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w)
                           for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(c).ljust(w)
                               for c, w in zip(row, widths)))
    return "\n".join(lines)

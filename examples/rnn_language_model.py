"""Language-model training: dynamic control flow plus impure state.

This is the paper's figure-1 workload: the training step loops over time
steps with a native Python ``for`` and passes the final LSTM state to the
next batch through object attributes (truncated BPTT).  JANUS unrolls the
stable-length loop behind assertion guards and converts the attribute
reads/writes into deferred PyGetAttr/PySetAttr operations — so the state
keeps flowing across batches, unlike a trace-based converter.

Run:  python examples/rnn_language_model.py
"""

import time

import numpy as np

import repro as R
from repro import data, janus, models, nn


def main():
    corpus = data.ptb_like(seed=0)
    model = models.lstm_ptb.LSTMLanguageModel(
        vocab_size=200, embed_dim=32, hidden_dim=64, batch_size=20,
        seed=7)
    optimizer = nn.SGD(0.5)

    train_step = janus.function(models.lstm_ptb.make_loss_fn(model),
                                optimizer=optimizer)

    print("epoch  perplexity  words/s  (executor)")
    for epoch in range(3):
        model.reset_state()
        losses = []
        words = 0
        start = time.perf_counter()
        for inputs, targets in corpus.bptt_batches(batch_size=20,
                                                   seq_len=10):
            loss = train_step(inputs, targets)
            losses.append(float(loss.numpy()))
            words += inputs.size
        elapsed = time.perf_counter() - start
        perplexity = models.lstm_ptb.perplexity(float(np.mean(losses)))
        executor = "graph" if train_step.stats["graph_runs"] else \
            "imperative"
        print("%5d  %10.2f  %7.0f  (%s)"
              % (epoch, perplexity, words / elapsed, executor))

    stats = train_step.cache_stats()
    print("\ngraphs generated: %d   graph runs: %d   fallbacks: %d"
          % (stats["graphs_generated"], stats["graph_runs"],
             stats["fallbacks"]))
    print("the LSTM state flowed across batches through the Python heap:")
    print("  model.state_h:", model.state_h)


if __name__ == "__main__":
    main()

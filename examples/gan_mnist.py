"""Adversarial nets on MNIST-shaped data: two JANUS training functions.

The generator and discriminator steps are separate imperative functions
sharing the same model object; each gets its own speculative graph.  The
models track running losses on the Python heap, exercising the deferred
state-update machinery every step.

Run:  python examples/gan_mnist.py
"""

import numpy as np

import repro as R
from repro import data, janus, models, nn


def main():
    ds = data.mnist_like(n=256, batch_size=64, seed=0)
    gan = models.gan_an.AdversarialNets(latent_dim=16, image_size=28,
                                        hidden=64, seed=5)
    d_step = janus.function(models.gan_an.make_d_loss_fn(gan),
                            optimizer=nn.SGD(0.05))
    g_step = janus.function(models.gan_an.make_g_loss_fn(gan),
                            optimizer=nn.SGD(0.05))

    rng = np.random.RandomState(0)
    print("epoch  d_loss  g_loss")
    for epoch in range(6):
        d_losses, g_losses = [], []
        for images, _labels in ds.batches(shuffle=True):
            if images.shape[0] != 64:
                continue
            z = models.gan_an.sample_latent(rng, 64, 16)
            d_losses.append(float(d_step(images, z).numpy()))
            z = models.gan_an.sample_latent(rng, 64, 16)
            g_losses.append(float(g_step(z).numpy()))
        print("%5d  %.4f  %.4f"
              % (epoch, np.mean(d_losses), np.mean(g_losses)))

    print("\nd-step cache:", d_step.cache_stats())
    print("g-step cache:", g_step.cache_stats())
    samples = gan.generator(R.constant(
        models.gan_an.sample_latent(rng, 4, 16)))
    print("generated sample batch:", samples.shape,
          "value range [%.2f, %.2f]"
          % (samples.numpy().min(), samples.numpy().max()))


if __name__ == "__main__":
    main()

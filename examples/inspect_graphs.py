"""Inspecting what the speculative generator produced.

Every JanusFunction exposes its cached generated graphs; this example
converts a small stateful program, prints a node census (which guards,
heap accesses, and control-flow ops the graph contains), demonstrates an
assumption failure with relaxation, and writes a Graphviz DOT rendering.

Run:  python examples/inspect_graphs.py            # writes janus_graph.dot
      dot -Tsvg janus_graph.dot -o janus_graph.svg  # optional rendering
"""

import numpy as np

import repro as R
from repro import janus
from repro.graph import export


class Accumulator:
    def __init__(self):
        self.history = R.constant(np.zeros((4,), np.float32))


acc = Accumulator()


@janus.function
def step(x):
    blended = acc.history * 0.9 + x * 0.1
    if R.reduce_sum(blended) > -1e6:       # stable branch -> unrolled
        acc.history = blended
    total = R.constant(0.0)
    for i in range(3):                      # stable loop -> unrolled
        total = total + R.reduce_sum(blended) * float(i)
    return total


def census_table(graph):
    census = export.node_census(graph)
    width = max(len(k) for k in census)
    return "\n".join("  %s %4d" % (k.ljust(width), census[k])
                     for k in sorted(census))


def main():
    x = R.constant(np.ones(4, np.float32))
    for _ in range(5):
        step(x)

    entry = next(iter(step.cache._entries.values()))
    graph = entry.generated.graph
    print("generated graph: %d nodes" % len(graph.nodes))
    print("node census:")
    print(census_table(graph))

    print("\nprecheckable assumptions:")
    for description, _check in entry.generated.prechecks:
        print("  -", description)

    path = export.save_dot(graph, "janus_graph.dot")
    print("\nDOT rendering written to", path)

    # Break the heap-shape assumption: fallback + relaxation + regrowth.
    print("\nbreaking the heap-shape assumption (history: (4,) -> (6,))")
    acc.history = R.constant(np.zeros((6,), np.float32))
    step(R.constant(np.ones(6, np.float32)))
    print("stats after failure:", step.cache_stats())
    step(R.constant(np.ones(6, np.float32)))
    print("stats after regeneration:", step.cache_stats())


if __name__ == "__main__":
    main()

"""TreeLSTM sentiment classification: recursion in a symbolic graph.

The encoder walks binary parse trees with a *recursive Python function*
branching on ``node.is_leaf`` and reading child nodes from the Python
heap — dynamic control flow, dynamic types, and impure functions all at
once (paper Table 2).  JANUS converts the recursion into InvokeOp-based
graphs: one generated graph serves every tree shape, where a TF-1-style
symbolic implementation must rebuild (or bucket) per input structure.

Run:  python examples/treelstm_sentiment.py
"""

import time

import numpy as np

import repro as R
from repro import data, janus, models, nn
from repro.modes import make_step


def epoch_pass(step, trees):
    losses = []
    for tree in trees:
        out = step(tree)
        losses.append(float(np.asarray(
            out.numpy() if hasattr(out, "numpy") else out)))
    return float(np.mean(losses))


def main():
    trees = data.sst_like(n_trees=150, vocab_size=16, negation_rate=0.0,
                          seed=0)
    train, test = data.train_test_split(trees, 0.2, seed=1)
    sizes = sorted({t.size() for t in trees})
    print("%d trees, %d distinct sizes (%d..%d nodes)"
          % (len(trees), len(sizes), sizes[0], sizes[-1]))

    model = models.treelstm.TreeLSTM(vocab_size=16, hidden_dim=16, seed=3)
    optimizer = nn.SGD(0.2)
    train_step = janus.function(models.treelstm.make_loss_fn(model),
                                optimizer=optimizer)

    print("\nepoch  loss    test accuracy")
    for epoch in range(5):
        loss = epoch_pass(train_step, train)
        accuracy = models.treernn.tree_accuracy(model, test)
        print("%5d  %.4f  %.2f" % (epoch, loss, accuracy))

    stats = train_step.cache_stats()
    print("\none generated graph covered every tree shape:")
    print("  cache entries: %d   graph runs: %d"
          % (stats["entries"], stats["graph_runs"]))

    # Contrast: the symbolic baseline must build a graph per tree.
    sym_model = models.treelstm.TreeLSTM(vocab_size=16, hidden_dim=16,
                                         seed=3)
    sym_step = make_step(models.treelstm.make_loss_fn(sym_model),
                         nn.SGD(0.2), "symbolic")
    start = time.perf_counter()
    epoch_pass(sym_step, train[:30])
    elapsed = time.perf_counter() - start
    print("\nsymbolic (TF-1-style) baseline on 30 trees: "
          "%d graph builds in %.2fs" % (sym_step.builds, elapsed))


if __name__ == "__main__":
    main()

"""Quickstart: speculative graph execution of an imperative program.

Decorate an imperative training function with ``@janus.function``.  The
first few calls execute imperatively under the profiler; then JANUS
converts the program into an optimized symbolic dataflow graph and every
subsequent call runs the graph — transparently, with identical results.

Run:  python examples/quickstart.py
"""

import time

import numpy as np

import repro as R
from repro import janus, nn


def main():
    nn.init.seed(0)
    model = nn.Sequential([
        nn.Dense(8, 32, activation=R.relu),
        nn.Dense(32, 32, activation=R.relu),
        nn.Dense(32, 2),
    ])
    optimizer = nn.SGD(0.1)

    # An imperative training step: ordinary Python calling the op API.
    # The decorator adds speculative graph conversion; with
    # ``optimizer=...`` JANUS also inserts the gradient computation and
    # parameter updates into the generated graph.
    @janus.function(optimizer=optimizer)
    def train_step(x, y):
        logits = model(x)
        return nn.losses.softmax_cross_entropy(logits, y)

    rng = np.random.default_rng(0)
    x = rng.normal(size=(64, 8)).astype(np.float32)
    y = (x[:, 0] > 0).astype(np.int64)

    print("step  loss     executor")
    for step in range(10):
        loss = train_step(x, y)
        stats = train_step.stats
        executor = "graph" if stats["graph_runs"] > step - 3 and \
            stats["graph_runs"] > 0 else "imperative (profiling)"
        print("%4d  %.4f   %s" % (step, float(loss.numpy()), executor))

    print("\ncache statistics:", train_step.cache_stats())

    # Throughput comparison against pure imperative execution.
    def imperative_step(x, y):
        with R.GradientTape() as tape:
            loss = nn.losses.softmax_cross_entropy(model(x), y)
        variables = model.trainable_variables
        grads = tape.gradient(loss, variables)
        optimizer.apply_gradients(zip(grads, variables))
        return loss

    for name, step_fn in (("janus", train_step),
                          ("imperative", imperative_step)):
        step_fn(x, y)
        start = time.perf_counter()
        for _ in range(50):
            step_fn(x, y)
        elapsed = time.perf_counter() - start
        print("%-11s %6.2f steps/s" % (name, 50 / elapsed))


if __name__ == "__main__":
    main()

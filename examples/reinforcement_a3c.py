"""A3C on CartPole: dynamic episode lengths and heap-side bookkeeping.

Every episode has a different length, so the training loss loops over a
trajectory whose trip count never stabilizes — JANUS converts the loop
into a dynamic while_loop operation, and one generated graph covers every
episode length.  The agent also logs running statistics onto itself
(global-state mutation), which become deferred PySetAttr operations.

Run:  python examples/reinforcement_a3c.py
"""

import time

import numpy as np

import repro as R
from repro import envs, janus, models, nn


def main():
    env = envs.CartPole(seed=0)
    agent = models.a3c.ActorCritic(seed=11)
    optimizer = nn.SGD(0.02)
    train_step = janus.function(models.a3c.make_loss_fn(agent),
                                optimizer=optimizer)

    rng = np.random.RandomState(0)
    lengths = []
    rewards = []
    print("iter  episode-len  mean-reward(20)  executor")
    for iteration in range(60):
        states, actions, returns = models.a3c.collect_episode(
            agent, env, rng)
        train_step(states, actions, returns)
        lengths.append(len(actions))
        rewards.append(float(len(actions)))
        if iteration % 10 == 9:
            executor = "graph" if train_step.stats["graph_runs"] else \
                "imperative"
            print("%4d  %11d  %15.1f  %s"
                  % (iteration, lengths[-1],
                     np.mean(rewards[-20:]), executor))

    stats = train_step.cache_stats()
    print("\ndistinct episode lengths seen: %d" % len(set(lengths)))
    print("graphs generated: %d  (one dynamic-loop graph covers all "
          "lengths)" % stats["graphs_generated"])
    print("graph runs: %d   fallbacks: %d"
          % (stats["graph_runs"], stats["fallbacks"]))
    print("heap telemetry written back by the graph executor:")
    print("  agent.steps_trained =", agent.steps_trained)


if __name__ == "__main__":
    main()

"""Graph optimization passes: each pass's effect plus semantic safety."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro as R
from repro.graph import (GraphBuilder, GraphExecutor, PassManager,
                         DeadCodeElimination, ConstantFolding,
                         CommonSubexpressionElimination,
                         ArithmeticSimplification)
from repro.ops import api


def count_ops(graph, name):
    return sum(1 for n in graph.nodes if n.op_name == name)


class TestDeadCodeElimination:
    def test_removes_unused(self):
        b = GraphBuilder()
        with b:
            x = b.placeholder("x", shape=(), dtype=R.float32)
            out = api.add(x, 1.0)
            _dead = api.mul(api.exp(x), 3.0)
            b.mark_outputs([out])
        DeadCodeElimination().run(b.graph)
        assert count_ops(b.graph, "mul") == 0
        assert count_ops(b.graph, "exp") == 0

    def test_keeps_asserts(self):
        b = GraphBuilder()
        with b:
            x = b.placeholder("x", shape=(), dtype=R.bool_)
            api.assert_that(x)
            b.mark_outputs([b.convert(1.0)])
        DeadCodeElimination().run(b.graph)
        assert count_ops(b.graph, "assert") == 1

    def test_noop_when_all_live(self):
        b = GraphBuilder()
        with b:
            x = b.placeholder("x", shape=(), dtype=R.float32)
            b.mark_outputs([api.add(x, 1.0)])
        assert DeadCodeElimination().run(b.graph) is False


class TestConstantFolding:
    def test_folds_constant_expression(self):
        b = GraphBuilder()
        with b:
            x = b.placeholder("x", shape=(), dtype=R.float32)
            c = api.mul(api.add(b.convert(2.0), b.convert(3.0)),
                        b.convert(4.0))
            b.mark_outputs([api.add(x, c)])
        ConstantFolding().run(b.graph)
        assert count_ops(b.graph, "mul") == 0
        out, = GraphExecutor(b.graph).run([np.float32(1.0)])
        assert out == pytest.approx(21.0)

    def test_does_not_fold_random(self):
        b = GraphBuilder()
        with b:
            r = api.random_normal((3,))
            b.mark_outputs([api.add(r, 0.0)])
        ConstantFolding().run(b.graph)
        assert count_ops(b.graph, "random_normal") == 1

    def test_does_not_fold_through_placeholder(self):
        b = GraphBuilder()
        with b:
            x = b.placeholder("x", shape=(), dtype=R.float32)
            b.mark_outputs([api.add(x, 1.0)])
        ConstantFolding().run(b.graph)
        assert count_ops(b.graph, "add") == 1

    def test_size_cap_respected(self):
        b = GraphBuilder()
        with b:
            big = api.fill((600, 600), 1.0)   # ~1.4 MB > 1 MB cap
            b.mark_outputs([api.add(big, 1.0)])
        ConstantFolding().run(b.graph)
        assert count_ops(b.graph, "fill") == 1


class TestCSE:
    def test_deduplicates_identical_subtrees(self):
        b = GraphBuilder()
        with b:
            x = b.placeholder("x", shape=(2,), dtype=R.float32)
            a = api.tanh(api.add(x, 1.0))
            c = api.tanh(api.add(x, 1.0))
            b.mark_outputs([api.add(a, c)])
        CommonSubexpressionElimination().run(b.graph)
        assert count_ops(b.graph, "tanh") == 1
        assert count_ops(b.graph, "add") == 2  # x+1 and a+c

    def test_commutative_match(self):
        b = GraphBuilder()
        with b:
            x = b.placeholder("x", shape=(), dtype=R.float32)
            y = b.placeholder("y", shape=(), dtype=R.float32)
            b.mark_outputs([api.add(api.mul(x, y), api.mul(y, x))])
        CommonSubexpressionElimination().run(b.graph)
        assert count_ops(b.graph, "mul") == 1

    def test_random_ops_never_merged(self):
        b = GraphBuilder()
        with b:
            a = api.random_normal((2,))
            c = api.random_normal((2,))
            b.mark_outputs([api.add(a, c)])
        CommonSubexpressionElimination().run(b.graph)
        assert count_ops(b.graph, "random_normal") == 2

    def test_semantics_preserved(self):
        b = GraphBuilder()
        with b:
            x = b.placeholder("x", shape=(3,), dtype=R.float32)
            out = api.add(api.exp(x), api.exp(x))
            b.mark_outputs([out])
        feed = np.array([0.1, 0.2, 0.3], np.float32)
        before = GraphExecutor(b.graph).run([feed])[0].copy()
        CommonSubexpressionElimination().run(b.graph)
        after = GraphExecutor(b.graph).run([feed])[0]
        np.testing.assert_allclose(before, after)


class TestArithmeticSimplification:
    @pytest.mark.parametrize("build,expect_gone", [
        (lambda x: api.add(x, 0.0), "add"),
        (lambda x: api.mul(x, 1.0), "mul"),
        (lambda x: api.sub(x, 0.0), "sub"),
        (lambda x: api.div(x, 1.0), "div"),
        (lambda x: api.pow(x, 1.0), "pow"),
    ])
    def test_identity_removed(self, build, expect_gone):
        b = GraphBuilder()
        with b:
            x = b.placeholder("x", shape=(2,), dtype=R.float32)
            b.mark_outputs([build(x)])
        ArithmeticSimplification().run(b.graph)
        assert count_ops(b.graph, expect_gone) == 0

    def test_broadcasting_identity_not_removed(self):
        """x:(1,3) + 0 where output must stay (1,3) — shape-safe only."""
        b = GraphBuilder()
        with b:
            x = b.placeholder("x", shape=(3,), dtype=R.float32)
            zero = b.convert(np.zeros((2, 3), np.float32))
            b.mark_outputs([api.add(x, zero)])
        ArithmeticSimplification().run(b.graph)
        assert count_ops(b.graph, "add") == 1  # changes shape: kept

    def test_int_x_plus_float_zero_not_removed(self):
        b = GraphBuilder()
        with b:
            x = b.placeholder("x", shape=(2,), dtype=R.int64)
            b.mark_outputs([api.add(x, 0.0)])
        ArithmeticSimplification().run(b.graph)
        assert count_ops(b.graph, "add") == 1  # changes dtype: kept


class TestPassManagerEndToEnd:
    @given(st.lists(st.floats(-5, 5, width=32), min_size=1, max_size=6))
    @settings(max_examples=20, deadline=None)
    def test_optimized_graph_is_equivalent(self, values):
        """Property: the full pass pipeline never changes results."""
        feed = np.asarray(values, np.float32)
        b = GraphBuilder()
        with b:
            x = b.placeholder("x", shape=feed.shape, dtype=R.float32)
            c = api.add(b.convert(2.0), b.convert(2.0))
            y = api.add(api.mul(x, c), 0.0)
            z1 = api.tanh(y)
            z2 = api.tanh(y)
            b.mark_outputs([api.add(z1, z2)])
        before = GraphExecutor(b.graph).run([feed])[0].copy()
        PassManager().run(b.graph)
        after = GraphExecutor(b.graph).run([feed])[0]
        np.testing.assert_allclose(before, after, atol=1e-6)

    def test_recurses_into_nested_functions(self):
        inner = GraphBuilder()
        with inner:
            x = inner.placeholder("x", shape=(), dtype=R.float32)
            c = api.add(inner.convert(1.0), inner.convert(1.0))
            inner.mark_outputs([api.add(x, c)])
        func = inner.finalize_function("body")
        outer = GraphBuilder()
        with outer:
            x = outer.placeholder("x", shape=(), dtype=R.float32)
            out = outer.invoke(func, [x], [(R.Shape(()), R.float32)])
            outer.mark_outputs([out])
        PassManager().run(outer.graph)
        # Inner constant add folded away.
        assert count_ops(func.graph, "add") == 1

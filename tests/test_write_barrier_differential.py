"""Differential mutation-guard suite for the tensor write barrier.

The write barrier lets the executor's identity memo cover heap Tensor
reads: a sealed ``TensorValue`` cannot change content without bumping
its ``version``, so a guarded ``py_get_attr`` read that sees the same
``(identity, version)`` pair skips re-internalization entirely.  That
optimization is only sound if *every* way a program can change the
value a graph speculated on is either caught by a guard or flows
through legitimately (live-buffer aliasing for unsealed arrays,
``var_read`` for Variables).

This suite checks exactly that, differentially: a seeded generator
builds small programs over a heap model object — mixing Tensor
attributes, raw ndarray attributes, aliased attributes, burned scalar
attributes, Variables, and input-dependent branches — runs them under
``janus.function``, then interleaves randomized mutations (in-place
ndarray writes, sanctioned ``Tensor.add_``, same-shape and
shape-changing attribute rebinding, scalar rebinding, Variable
assignment, branch-direction flips) between calls.  After every call
the JANUS result must match the pure imperative oracle (``f.func``)
bit-for-bit, and every mutation of guarded state must trip a guard
(``fallbacks``) or stale the memo (``executor.memo_stale``).

The full matrix runs barrier on/off x ``incremental_regeneration``
on/off: ``SEEDS`` programs per arm, 4 arms, >= 200 programs total.
With the barrier off, tensor-content mutations legitimately produce no
guard signal (nothing was memoized or sealed), so only the
spec/constant guards are asserted there — equality is asserted
everywhere, always.
"""

import linecache
import random

import numpy as np
import pytest

import repro as R
from repro import janus
from repro.observability import COUNTERS, clear, set_trace_level, trace_level
from repro.tensor import TensorValue, set_write_barrier

#: Generated programs per matrix arm; 4 arms -> >= 200 programs total.
SEEDS = 52

MATRIX = pytest.mark.parametrize(
    "barrier,incremental",
    [(True, True), (True, False), (False, True), (False, False)],
    ids=["barrier-incr", "barrier-full", "nobarrier-incr", "nobarrier-full"])


def counters():
    return dict(COUNTERS.snapshot()["counters"])


def delta(before, key):
    return counters().get(key, 0) - before.get(key, 0)


@pytest.fixture(autouse=True)
def _traced():
    # The executor flushes its memo tallies to COUNTERS only on traced
    # runs; level 1 is the cheap lifecycle tier.
    prev = trace_level()
    set_trace_level(max(prev, 1))
    try:
        yield
    finally:
        set_trace_level(prev)
        clear()


@pytest.fixture
def _barrier(request):
    yield


# -- program generator -------------------------------------------------------

class _Model:
    """Heap object whose attributes the generated programs read."""


#: Statement pool, keyed by the attribute each statement exercises.
_STMTS = {
    "t":    "    y = y + m.t",
    "t2":   "    y = y * m.t2",
    "w":    "    y = y + m.w",
    "gain": "    y = y * m.gain",
    "var":  "    y = y + m.var.value()",
}

_BRANCH = [
    "    if R.reduce_sum(x) > 0.0:",
    "        y = y * 2.0",
    "    else:",
    "        y = y - 1.0",
]


def _vec(nprng, n=4):
    return nprng.normal(size=(n,)).astype(np.float32)


def _gen_program(seed, tag):
    """One random program + its heap model, with retrievable source.

    JANUS converts from the AST, so ``inspect.getsource`` must work on
    the generated function: the source is registered in ``linecache``
    under a ``<...>`` filename (the doctest trick) before ``exec``.
    Returns ``(prog, model, used_kinds, has_branch, filename)``.
    """
    rng = random.Random(seed)
    nprng = np.random.default_rng(10_000 + seed)

    kinds = sorted(_STMTS)
    rng.shuffle(kinds)
    used = kinds[:rng.randint(2, 4)]
    body = [_STMTS[k] for k in used]
    rng.shuffle(body)
    has_branch = rng.random() < 0.5
    lines = ["def prog(x):", "    y = x * 1.0"] + body
    if has_branch:
        lines += _BRANCH
    lines.append("    return R.reduce_sum(y * y)")
    src = "\n".join(lines) + "\n"

    m = _Model()
    m.w = _vec(nprng)
    m.t = R.constant(_vec(nprng))
    # Aliasing: sometimes both Tensor attributes are the same object,
    # so two read sites share one TensorValue.
    if "t" in used and "t2" in used and rng.random() < 0.4:
        m.t2 = m.t
    else:
        m.t2 = R.constant(_vec(nprng))
    m.gain = float(round(rng.uniform(0.5, 2.0), 3))
    m.var = R.Variable(_vec(nprng))

    filename = "<wbdiff-%s-%d>" % (tag, seed)
    linecache.cache[filename] = (len(src), None, src.splitlines(True),
                                 filename)
    ns = {"R": R, "m": m}
    exec(compile(src, filename, "exec"), ns)
    return ns["prog"], m, used, has_branch, filename


# -- mutations ---------------------------------------------------------------

#: Kinds whose mutation must produce a guard/stale signal when the
#: barrier is ON (tensor reads memoized + sealed).
_GUARDED_ON = {"t_inplace", "t_rebind_same", "t_rebind_shape", "t2_rebind",
               "gain_change", "x_flip"}
#: With the barrier OFF tensor reads are re-internalized every run, so
#: only spec guards (shape change), burned constants, and branch
#: assertions still fire.
_GUARDED_OFF = {"t_rebind_shape", "gain_change", "x_flip"}


def _mutation_pool(used, has_branch):
    pool = []
    if "w" in used:
        pool.append("w_inplace")
    if "t" in used:
        pool += ["t_inplace", "t_rebind_same", "t_rebind_shape"]
    if "t2" in used:
        pool.append("t2_rebind")
    if "gain" in used:
        pool.append("gain_change")
    if "var" in used:
        pool.append("var_assign")
    if has_branch:
        pool.append("x_flip")
    return pool


def _apply_mutation(kind, m, nprng, state):
    if kind == "w_inplace":
        m.w[int(nprng.integers(0, m.w.shape[0]))] += 0.75
    elif kind == "t_inplace":
        m.t.add_(1.25)
    elif kind == "t_rebind_same":
        m.t = R.constant(_vec(nprng, m.t.value.array.shape[0]))
    elif kind == "t_rebind_shape":
        # (4,) -> (1,): still broadcastable, so the imperative oracle
        # stays well-defined while the concrete shape guard breaks.
        m.t = R.constant(_vec(nprng, 1))
    elif kind == "t2_rebind":
        m.t2 = R.constant(_vec(nprng))
    elif kind == "gain_change":
        m.gain = float(round(m.gain + 0.375, 3))
    elif kind == "var_assign":
        m.var.assign(R.constant(_vec(nprng)))
    elif kind == "x_flip":
        state["x"] = state["x_neg"]
    else:  # pragma: no cover - generator bug
        raise AssertionError(kind)


# -- the differential run ----------------------------------------------------

def _assert_matches_oracle(f, out, x, ctx):
    expect = f.func(x)
    assert np.array_equal(out.numpy(), expect.numpy()), ctx


def _run_program(seed, tag, barrier, incremental):
    prog, m, used, has_branch, filename = _gen_program(seed, tag)
    rng = random.Random(7_000 + seed)
    nprng = np.random.default_rng(20_000 + seed)
    cfg = janus.JanusConfig(fail_on_not_convertible=True,
                            parallel_execution=False,
                            profile_runs=2,
                            incremental_regeneration=incremental,
                            tensor_write_barrier=barrier)
    f = janus.function(config=cfg)(prog)

    x_pos = R.constant(np.abs(_vec(nprng)) + 0.1)
    state = {"x": x_pos, "x_neg": R.constant(-(x_pos.numpy()))}

    try:
        # Warm: profile, generate, and get at least one real graph run
        # with a stable branch direction.
        for k in range(4):
            out = f(state["x"])
            _assert_matches_oracle(f, out, state["x"],
                                   (seed, "warm", k, barrier, incremental))
        assert f.stats["graph_runs"] > 0, (seed, f.stats)

        tracked_after_warm = m.t.value.tracked if "t" in used else None

        pool = _mutation_pool(used, has_branch)
        rng.shuffle(pool)
        required = _GUARDED_ON if barrier else _GUARDED_OFF
        for kind in pool[:rng.randint(1, min(3, len(pool)))]:
            before_counters = counters()
            before_fallbacks = f.stats["fallbacks"]
            before_generated = f.stats["graphs_generated"]
            _apply_mutation(kind, m, nprng, state)
            # Two calls: the first absorbs any guard trip + fallback,
            # the second runs (and flushes) the regenerated graph.
            for k in range(2):
                out = f(state["x"])
                _assert_matches_oracle(
                    f, out, state["x"],
                    (seed, kind, k, barrier, incremental))
            # A caught mutation shows up as a runtime fallback, a stale
            # memo transition, or a re-specialization (bound-arg
            # prechecks reroute to a fresh graph before any assert op
            # can fire — still the guard machinery catching it).
            signal = (f.stats["fallbacks"] - before_fallbacks
                      + f.stats["graphs_generated"] - before_generated
                      + delta(before_counters, "executor.memo_stale"))
            if kind in required:
                assert signal >= 1, (seed, kind, barrier, incremental,
                                     f.stats)
    finally:
        linecache.cache.pop(filename, None)
    return tracked_after_warm


@MATRIX
def test_generated_programs_match_imperative(barrier, incremental):
    prev = set_write_barrier(barrier)
    before = counters()
    tracked_any = False
    try:
        for seed in range(SEEDS):
            tracked = _run_program(
                seed, "%s-%s" % (int(barrier), int(incremental)),
                barrier, incremental)
            tracked_any = tracked_any or bool(tracked)
    finally:
        set_write_barrier(prev)

    if barrier:
        # The memo must actually engage across the arm: hits on steady
        # state, stale transitions on mutations, and at least one
        # program whose Tensor attribute got sealed.
        assert delta(before, "executor.memo_hit") > 0
        assert delta(before, "executor.memo_stale") > 0
        assert tracked_any
    else:
        # Nothing is sealed, so no copy-on-write can ever trigger and
        # no Tensor attribute may end up tracked.
        assert delta(before, "tensor.cow_copies") == 0
        assert not tracked_any


# -- targeted mechanics ------------------------------------------------------

class TestWriteBarrierMechanics:
    def test_track_seals_and_direct_write_raises(self):
        tv = TensorValue.of(np.arange(4, dtype=np.float32))
        assert tv.track()
        assert tv.tracked
        assert not tv.array.flags.writeable
        with pytest.raises(ValueError):
            tv.array[0] = 9.0

    def test_track_refuses_views(self):
        base = np.arange(8, dtype=np.float32)
        tv = TensorValue(base[2:6])
        assert not tv.track()
        assert tv.array.flags.writeable

    def test_inplace_write_on_sealed_copies_and_bumps_version(self):
        tv = TensorValue.of(np.arange(4, dtype=np.float32))
        tv.track()
        sealed = tv.array
        tv.inplace_write(lambda dst: np.add(dst, 1.0, out=dst))
        assert tv.version == 1
        assert tv.array is not sealed                  # copy-on-write
        assert tv.array.flags.writeable
        assert np.array_equal(sealed, np.arange(4, dtype=np.float32))
        assert np.array_equal(tv.array, np.arange(4, dtype=np.float32) + 1)

    def test_inplace_write_unsealed_mutates_in_place(self):
        tv = TensorValue.of(np.arange(4, dtype=np.float32))
        buf = tv.array
        tv.inplace_write(lambda dst: np.add(dst, 1.0, out=dst))
        assert tv.array is buf
        assert tv.version == 1

    def test_barrier_off_never_tracks(self):
        prev = set_write_barrier(False)
        try:
            tv = TensorValue.of(np.arange(4, dtype=np.float32))
            assert not tv.track()
            assert tv.array.flags.writeable
        finally:
            set_write_barrier(prev)

    def test_copy_is_private_and_writable(self):
        tv = TensorValue.of(np.arange(4, dtype=np.float32))
        tv.track()
        dup = tv.copy()
        assert not dup.tracked
        assert dup.array.flags.writeable
        dup.array[0] = 5.0                             # no ValueError

    def test_eager_inplace_ops_bump_version_and_match_numpy(self):
        t = R.constant(np.arange(4, dtype=np.float32))
        t.add_(1.0).mul_(2.0).sub_(0.5)
        assert t.value.version == 3
        expect = (np.arange(4, dtype=np.float32) + 1.0) * 2.0 - 0.5
        assert np.array_equal(t.numpy(), expect)
        t.assign_(np.zeros(4, np.float32))
        assert t.value.version == 4
        assert np.array_equal(t.numpy(), np.zeros(4, np.float32))

    def test_variable_assign_bumps_variable_version(self):
        v = R.Variable(np.arange(4, dtype=np.float32))
        assert v.version == 0
        v.assign(R.constant(np.ones(4, np.float32)))
        assert v.version == 1
        v.assign_add(R.constant(np.ones(4, np.float32)))
        assert v.version == 2

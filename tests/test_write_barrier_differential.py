"""Differential mutation-guard suite for the tensor write barrier.

The write barrier lets the executor's identity memo cover heap Tensor
reads: a sealed ``TensorValue`` cannot change content without bumping
its ``version``, so a guarded ``py_get_attr`` read that sees the same
``(identity, version)`` pair skips re-internalization entirely.  That
optimization is only sound if *every* way a program can change the
value a graph speculated on is either caught by a guard or flows
through legitimately (live-buffer aliasing for unsealed arrays,
``var_read`` for Variables).

This suite checks exactly that, differentially: a seeded generator
builds small programs over a heap model object — mixing Tensor
attributes, raw ndarray attributes, aliased attributes, burned scalar
attributes, Variables, and input-dependent branches — runs them under
``janus.function``, then interleaves randomized mutations (in-place
ndarray writes, sanctioned ``Tensor.add_``, same-shape and
shape-changing attribute rebinding, scalar rebinding, Variable
assignment, branch-direction flips) between calls.  After every call
the JANUS result must match the pure imperative oracle (``f.func``)
bit-for-bit, and every mutation of guarded state must trip a guard
(``fallbacks``) or stale the memo (``executor.memo_stale``).

The full matrix runs barrier on/off x ``incremental_regeneration``
on/off: ``SEEDS`` programs per arm, 4 arms, >= 200 programs total.
With the barrier off, tensor-content mutations legitimately produce no
guard signal (nothing was memoized or sealed), so only the
spec/constant guards are asserted there — equality is asserted
everywhere, always.
"""

import linecache
import random

import numpy as np
import pytest

import repro as R
from repro import janus
from repro.observability import COUNTERS, clear, set_trace_level, trace_level
from repro.tensor import TensorValue, set_write_barrier

#: Generated programs per matrix arm; 4 arms -> >= 200 programs total.
SEEDS = 52

MATRIX = pytest.mark.parametrize(
    "barrier,incremental",
    [(True, True), (True, False), (False, True), (False, False)],
    ids=["barrier-incr", "barrier-full", "nobarrier-incr", "nobarrier-full"])


def counters():
    return dict(COUNTERS.snapshot()["counters"])


def delta(before, key):
    return counters().get(key, 0) - before.get(key, 0)


@pytest.fixture(autouse=True)
def _traced():
    # The executor flushes its memo tallies to COUNTERS only on traced
    # runs; level 1 is the cheap lifecycle tier.
    prev = trace_level()
    set_trace_level(max(prev, 1))
    try:
        yield
    finally:
        set_trace_level(prev)
        clear()


@pytest.fixture
def _barrier(request):
    yield


# -- program generator / mutations (shared; see tests/progen.py) ------------

from progen import (GUARDED_OFF as _GUARDED_OFF,        # noqa: E402
                    GUARDED_ON as _GUARDED_ON,
                    apply_mutation as _apply_mutation,
                    gen_program as _gen_program,
                    mutation_pool as _mutation_pool, vec as _vec)

# -- the differential run ----------------------------------------------------

def _assert_matches_oracle(f, out, x, ctx):
    expect = f.func(x)
    assert np.array_equal(out.numpy(), expect.numpy()), ctx


def _run_program(seed, tag, barrier, incremental):
    prog, m, used, has_branch, filename = _gen_program(seed, tag)
    rng = random.Random(7_000 + seed)
    nprng = np.random.default_rng(20_000 + seed)
    cfg = janus.JanusConfig(fail_on_not_convertible=True,
                            parallel_execution=False,
                            profile_runs=2,
                            incremental_regeneration=incremental,
                            tensor_write_barrier=barrier)
    f = janus.function(config=cfg)(prog)

    x_pos = R.constant(np.abs(_vec(nprng)) + 0.1)
    state = {"x": x_pos, "x_neg": R.constant(-(x_pos.numpy()))}

    try:
        # Warm: profile, generate, and get at least one real graph run
        # with a stable branch direction.
        for k in range(4):
            out = f(state["x"])
            _assert_matches_oracle(f, out, state["x"],
                                   (seed, "warm", k, barrier, incremental))
        assert f.stats["graph_runs"] > 0, (seed, f.stats)

        tracked_after_warm = m.t.value.tracked if "t" in used else None

        pool = _mutation_pool(used, has_branch)
        rng.shuffle(pool)
        required = _GUARDED_ON if barrier else _GUARDED_OFF
        for kind in pool[:rng.randint(1, min(3, len(pool)))]:
            before_counters = counters()
            before_fallbacks = f.stats["fallbacks"]
            before_generated = f.stats["graphs_generated"]
            _apply_mutation(kind, m, nprng, state)
            # Two calls: the first absorbs any guard trip + fallback,
            # the second runs (and flushes) the regenerated graph.
            for k in range(2):
                out = f(state["x"])
                _assert_matches_oracle(
                    f, out, state["x"],
                    (seed, kind, k, barrier, incremental))
            # A caught mutation shows up as a runtime fallback, a stale
            # memo transition, or a re-specialization (bound-arg
            # prechecks reroute to a fresh graph before any assert op
            # can fire — still the guard machinery catching it).
            signal = (f.stats["fallbacks"] - before_fallbacks
                      + f.stats["graphs_generated"] - before_generated
                      + delta(before_counters, "executor.memo_stale"))
            if kind in required:
                assert signal >= 1, (seed, kind, barrier, incremental,
                                     f.stats)
    finally:
        linecache.cache.pop(filename, None)
    return tracked_after_warm


@MATRIX
def test_generated_programs_match_imperative(barrier, incremental):
    prev = set_write_barrier(barrier)
    before = counters()
    tracked_any = False
    try:
        for seed in range(SEEDS):
            tracked = _run_program(
                seed, "%s-%s" % (int(barrier), int(incremental)),
                barrier, incremental)
            tracked_any = tracked_any or bool(tracked)
    finally:
        set_write_barrier(prev)

    if barrier:
        # The memo must actually engage across the arm: hits on steady
        # state, stale transitions on mutations, and at least one
        # program whose Tensor attribute got sealed.
        assert delta(before, "executor.memo_hit") > 0
        assert delta(before, "executor.memo_stale") > 0
        assert tracked_any
    else:
        # Nothing is sealed, so no copy-on-write can ever trigger and
        # no Tensor attribute may end up tracked.
        assert delta(before, "tensor.cow_copies") == 0
        assert not tracked_any


# -- targeted mechanics ------------------------------------------------------

class TestWriteBarrierMechanics:
    def test_track_seals_and_direct_write_raises(self):
        tv = TensorValue.of(np.arange(4, dtype=np.float32))
        assert tv.track()
        assert tv.tracked
        assert not tv.array.flags.writeable
        with pytest.raises(ValueError):
            tv.array[0] = 9.0

    def test_track_refuses_views(self):
        base = np.arange(8, dtype=np.float32)
        tv = TensorValue(base[2:6])
        assert not tv.track()
        assert tv.array.flags.writeable

    def test_inplace_write_on_sealed_copies_and_bumps_version(self):
        tv = TensorValue.of(np.arange(4, dtype=np.float32))
        tv.track()
        sealed = tv.array
        tv.inplace_write(lambda dst: np.add(dst, 1.0, out=dst))
        assert tv.version == 1
        assert tv.array is not sealed                  # copy-on-write
        assert tv.array.flags.writeable
        assert np.array_equal(sealed, np.arange(4, dtype=np.float32))
        assert np.array_equal(tv.array, np.arange(4, dtype=np.float32) + 1)

    def test_inplace_write_unsealed_mutates_in_place(self):
        tv = TensorValue.of(np.arange(4, dtype=np.float32))
        buf = tv.array
        tv.inplace_write(lambda dst: np.add(dst, 1.0, out=dst))
        assert tv.array is buf
        assert tv.version == 1

    def test_barrier_off_never_tracks(self):
        prev = set_write_barrier(False)
        try:
            tv = TensorValue.of(np.arange(4, dtype=np.float32))
            assert not tv.track()
            assert tv.array.flags.writeable
        finally:
            set_write_barrier(prev)

    def test_copy_is_private_and_writable(self):
        tv = TensorValue.of(np.arange(4, dtype=np.float32))
        tv.track()
        dup = tv.copy()
        assert not dup.tracked
        assert dup.array.flags.writeable
        dup.array[0] = 5.0                             # no ValueError

    def test_eager_inplace_ops_bump_version_and_match_numpy(self):
        t = R.constant(np.arange(4, dtype=np.float32))
        t.add_(1.0).mul_(2.0).sub_(0.5)
        assert t.value.version == 3
        expect = (np.arange(4, dtype=np.float32) + 1.0) * 2.0 - 0.5
        assert np.array_equal(t.numpy(), expect)
        t.assign_(np.zeros(4, np.float32))
        assert t.value.version == 4
        assert np.array_equal(t.numpy(), np.zeros(4, np.float32))

    def test_variable_assign_bumps_variable_version(self):
        v = R.Variable(np.arange(4, dtype=np.float32))
        assert v.version == 0
        v.assign(R.constant(np.ones(4, np.float32)))
        assert v.version == 1
        v.assign_add(R.constant(np.ones(4, np.float32)))
        assert v.version == 2

"""Persistent compile-cache suite (docs/compilation.md, "Persistence").

Four concerns, each with its own class:

* **Bit-for-bit warm start** — a seeded generator builds pure-tensor
  programs; each is compiled cold (publishing to a shared cache dir),
  then a *fresh* ``janus.function`` instance over the same source is
  called once.  The fresh instance must reach the graph path with zero
  profiling runs, its artifact must be marked ``from_disk`` with the
  same node/fusion shape, and its output must match the cold graph
  output bit-for-bit.
* **Tolerance** — truncated, corrupt, version-skewed, key-mismatched,
  and rebuild-failing entries are counted misses, never errors, and
  recognizably-bad files are dropped so the next publish heals the
  cache.
* **Portability boundary** — artifacts pinning process state
  (Variables, heap reads, identity prechecks, unportable signatures)
  are never published and never probed; the picklable Precheck family
  round-trips and keeps its semantics.
* **Multi-process sharing** — a cold-start stampede of workers on one
  cache dir all succeed with identical outputs (atomic publication; no
  torn reads), leaving exactly one entry, and a late worker warm-starts.

Plus the observability contract: DiskCacheStats snapshot round-trip,
the janus-stats bundle carrying (and tolerating the absence of) the
``diskcache`` section.
"""

import json
import linecache
import os
import pickle
import random
import subprocess
import sys

import numpy as np
import pytest

import repro as R
from repro import janus
from repro.janus import diskcache as dc
from repro.janus import specialization as spec
from repro.janus.compiled import (ARTIFACT_FORMAT, UnportableArtifact,
                                  compile_generated, load_compiled,
                                  portability_blockers, serialize_generated)
from repro.janus.config import JanusConfig
from repro.observability import DISKCACHE, clear
from repro.observability.cli import load_stats, write_stats_json
from repro.observability.diskcache import (DiskCacheStats,
                                           format_diskcache_table)


@pytest.fixture(autouse=True)
def _isolated(monkeypatch):
    # Persistence must be opt-in per test: a JANUS_CACHE_DIR leaking in
    # from the environment would silently share state across tests.
    monkeypatch.delenv("JANUS_CACHE_DIR", raising=False)
    monkeypatch.delenv("JANUS_CACHE_MAX_BYTES", raising=False)
    yield
    clear()


def _entries(cache_dir):
    return sorted(name for name in os.listdir(str(cache_dir))
                  if name.endswith(dc.SUFFIX))


# -- seeded pure-tensor program generator ------------------------------------

_STMTS = [
    "    y = y + x * {c}",
    "    y = y * {c} - x",
    "    y = (y + x) * {c}",
    "    y = y @ w",
    "    y = y - x",
]


def _gen_program(seed, tag):
    """One random *portable* program (pure tensor math, no heap reads).

    The source is registered in ``linecache`` (the doctest trick) so
    both graph conversion and ``diskcache.source_hash`` can retrieve it.
    Returns ``(prog, filename)``.
    """
    rng = random.Random(seed)
    lines = ["def prog(x, w):", "    y = x @ w"]
    for _ in range(rng.randint(2, 5)):
        stmt = rng.choice(_STMTS)
        lines.append(stmt.format(c=round(rng.uniform(0.5, 1.5), 3)))
    lines.append("    return y + x * 0.25")
    src = "\n".join(lines) + "\n"
    filename = "<persist-%s-%d>" % (tag, seed)
    linecache.cache[filename] = (len(src), None, src.splitlines(True),
                                 filename)
    ns = {}
    exec(compile(src, filename, "exec"), ns)
    return ns["prog"], filename


def _inputs(seed, n=6):
    nprng = np.random.default_rng(40_000 + seed)
    return (nprng.normal(size=(n, n)).astype(np.float32),
            nprng.normal(size=(n, n)).astype(np.float32))


# -- bit-for-bit warm start --------------------------------------------------

class TestWarmStartDifferential:

    @pytest.mark.parametrize("seed", range(8))
    def test_fresh_instance_warm_starts_bit_for_bit(self, seed, tmp_path):
        prog, filename = _gen_program(seed, "diff")
        x, w = _inputs(seed)
        cfg = JanusConfig(cache_dir=str(tmp_path))
        try:
            cold = janus.function(prog, config=cfg)
            for _ in range(cfg.profile_runs + 1):
                cold(x, w)
            cold_out = cold(x, w)           # a settled graph run
            assert cold.stats["graphs_generated"] == 1
            assert cold.stats["warm_starts"] == 0
            assert _entries(tmp_path), "cold worker published nothing"

            warm = janus.function(prog, config=cfg)
            warm_out = warm(x, w)
            assert warm.stats["imperative_runs"] == 0, \
                "warm start must skip profiling entirely"
            assert warm.stats["graph_runs"] == 1
            assert warm.stats["graphs_generated"] == 0
            assert warm.stats["warm_starts"] == 1
            assert np.array_equal(cold_out.numpy(), warm_out.numpy())

            e_cold = cold.cache.entries()[0][1].compiled
            e_warm = warm.cache.entries()[0][1].compiled
            assert e_warm.from_disk and not e_cold.from_disk
            assert e_warm.node_count == e_cold.node_count
            assert e_warm.fused_ops == e_cold.fused_ops
            assert e_warm.lowering_bailout == e_cold.lowering_bailout
            assert (e_warm.lowered is None) == (e_cold.lowered is None)
        finally:
            linecache.cache.pop(filename, None)

    @pytest.mark.parametrize("seed", range(4))
    def test_load_compiled_matches_fresh_compile(self, seed, tmp_path):
        """The artifact rebuilt from the payload runs identically."""
        prog, filename = _gen_program(100 + seed, "load")
        x, w = _inputs(100 + seed)
        cfg = JanusConfig(cache_dir=str(tmp_path))
        try:
            f = janus.function(prog, config=cfg)
            for _ in range(cfg.profile_runs + 1):
                f(x, w)
            fresh_out = f(x, w)

            store = dc.store_for(cfg)
            (key,) = (name[:-len(dc.SUFFIX)]
                      for name in _entries(tmp_path))
            payload = store.load(key)
            assert isinstance(payload, bytes)
            signature = f.cache.entries()[0][0]
            loaded = load_compiled(payload, cfg, signature=signature)
            assert loaded.from_disk
            assert loaded.check_preconditions((x, w))
            feeds = loaded.bind_feeds(
                tuple(R.constant(a) for a in (x, w)))
            out = loaded.repack_outputs(loaded.run_flat(feeds))
            assert np.array_equal(out.numpy(), fresh_out.numpy())
        finally:
            linecache.cache.pop(filename, None)

    def test_second_process_equivalent_instance_reuses_entry(self, tmp_path):
        """Two instances -> one disk entry (same source/spec/config key)."""
        prog, filename = _gen_program(999, "dedup")
        x, w = _inputs(999)
        cfg = JanusConfig(cache_dir=str(tmp_path))
        try:
            for _ in range(3):
                f = janus.function(prog, config=cfg)
                for _ in range(cfg.profile_runs + 1):
                    f(x, w)
            assert len(_entries(tmp_path)) == 1
        finally:
            linecache.cache.pop(filename, None)

    def test_default_config_never_touches_disk(self, tmp_path, monkeypatch):
        """No cache_dir, no env var -> byte-identical legacy behavior."""
        monkeypatch.chdir(tmp_path)
        assert dc.store_for(JanusConfig()) is None
        prog, filename = _gen_program(7, "off")
        x, w = _inputs(7)
        try:
            f = janus.function(prog)
            for _ in range(f.config.profile_runs + 2):
                f(x, w)
            assert f.stats["graphs_generated"] == 1
            assert f.stats["warm_starts"] == 0
            snap = DISKCACHE.snapshot()
            assert snap["loads"] == 0 and snap["stores"] == 0
            assert not any(name.endswith(dc.SUFFIX)
                           for name in os.listdir(str(tmp_path)))
        finally:
            linecache.cache.pop(filename, None)


# -- key derivation ----------------------------------------------------------

class TestKeys:

    def test_key_varies_with_each_component(self):
        sig = (("T", "float32", 2),)
        base = dc.entry_key("src", sig, JanusConfig())
        assert base == dc.entry_key("src", sig, JanusConfig())
        assert dc.entry_key("other", sig, JanusConfig()) != base
        assert dc.entry_key("src", (("T", "float64", 2),),
                            JanusConfig()) != base
        assert dc.entry_key("src", sig,
                            JanusConfig(max_unroll=7)) != base

    def test_irrelevant_config_knobs_do_not_split_cache(self):
        sig = (("T", "float32", 2),)
        assert dc.entry_key("src", sig, JanusConfig()) == \
            dc.entry_key("src", sig, JanusConfig(cache_max_bytes=1))

    def test_signature_portability(self):
        assert dc.signature_portable((("T", "float32", 2), ("N",)))
        assert dc.signature_portable((("C", 3), ("C", "s"), ("C", None)))
        assert dc.signature_portable(
            (("L", 2, (("T", "float32", 1), ("C", 1.5))),))
        assert not dc.signature_portable((("C", np.float32(3)),))
        assert not dc.signature_portable((("F", "f"),))
        assert not dc.signature_portable((("V", 1),))
        assert not dc.signature_portable((("P", "obj"),))
        assert not dc.signature_portable(
            (("L", 1, (("P", "obj"),)),))

    def test_source_hash_none_for_unretrievable_source(self):
        exec_ns = {}
        exec("def ghost(x):\n    return x\n", exec_ns)
        assert dc.source_hash(exec_ns["ghost"]) is None
        assert dc.source_hash(_gen_program.__wrapped__
                              if hasattr(_gen_program, "__wrapped__")
                              else _gen_program) is not None


# -- tolerance: bad entries are misses, never errors -------------------------

class TestTolerance:

    KEY = "ab" * 32
    OTHER = "cd" * 32

    def _store(self, tmp_path, max_bytes=1 << 20):
        return dc.DiskGraphStore(str(tmp_path), max_bytes)

    def _miss_count(self, reason):
        return DISKCACHE.snapshot()["miss_reasons"].get(reason, 0)

    def test_absent_entry_is_a_miss(self, tmp_path):
        store = self._store(tmp_path)
        assert store.load(self.KEY) is None
        assert self._miss_count("absent") == 1

    def test_truncated_entry_is_a_miss_and_dropped(self, tmp_path):
        store = self._store(tmp_path)
        assert store.store(self.KEY, b"payload-bytes")
        path = store._entry_path(self.KEY)
        raw = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(raw[:len(raw) // 2])
        assert store.load(self.KEY) is None
        assert self._miss_count("corrupt") == 1
        assert not os.path.exists(path), "bad entry must be dropped"
        # The cache heals: republish, then hit.
        assert store.store(self.KEY, b"payload-bytes")
        assert store.load(self.KEY) == b"payload-bytes"

    def test_garbage_entry_is_a_miss(self, tmp_path):
        store = self._store(tmp_path)
        with open(store._entry_path(self.KEY), "wb") as fh:
            fh.write(b"\x00\x01not a pickle")
        assert store.load(self.KEY) is None
        assert self._miss_count("corrupt") == 1

    def test_non_dict_record_is_a_miss(self, tmp_path):
        store = self._store(tmp_path)
        with open(store._entry_path(self.KEY), "wb") as fh:
            pickle.dump(["not", "a", "record"], fh)
        assert store.load(self.KEY) is None
        assert self._miss_count("corrupt") == 1

    def _record(self, payload=b"payload-bytes", **overrides):
        import hashlib
        record = {
            "format": ARTIFACT_FORMAT,
            "version": R.__version__,
            "key": self.KEY,
            "payload": payload,
            "sha256": hashlib.sha256(payload).hexdigest(),
        }
        record.update(overrides)
        return record

    def _write_record(self, store, record, key=None):
        with open(store._entry_path(key or self.KEY), "wb") as fh:
            pickle.dump(record, fh)

    def test_format_skew_is_a_version_miss(self, tmp_path):
        store = self._store(tmp_path)
        self._write_record(store, self._record(format=ARTIFACT_FORMAT + 1))
        assert store.load(self.KEY) is None
        assert self._miss_count("version") == 1

    def test_version_skew_is_a_version_miss(self, tmp_path):
        store = self._store(tmp_path)
        self._write_record(store, self._record(version="0.0.0-elsewhere"))
        assert store.load(self.KEY) is None
        assert self._miss_count("version") == 1

    def test_key_mismatch_is_a_miss(self, tmp_path):
        store = self._store(tmp_path)
        # A record that claims KEY but sits under OTHER's path (e.g. a
        # hand-renamed file): provably not what the prober asked for.
        self._write_record(store, self._record(), key=self.OTHER)
        assert store.load(self.OTHER) is None
        assert self._miss_count("key_mismatch") == 1

    def test_payload_digest_mismatch_is_a_miss(self, tmp_path):
        store = self._store(tmp_path)
        self._write_record(store, self._record(sha256="0" * 64))
        assert store.load(self.KEY) is None
        assert self._miss_count("corrupt") == 1

    def test_rebuild_failure_is_a_miss(self, tmp_path):
        store = self._store(tmp_path)
        assert store.store(self.KEY, b"payload-bytes")

        def boom(payload):
            raise ValueError("not a GeneratedGraph")

        assert store.load(self.KEY, rebuild=boom) is None
        assert self._miss_count("rebuild") == 1
        # The poisoned entry was dropped, not retried forever.
        assert store.load(self.KEY) is None
        assert self._miss_count("absent") == 1

    def test_corrupted_entry_end_to_end_recompiles(self, tmp_path):
        """A worker facing a stale entry compiles and republishes."""
        prog, filename = _gen_program(55, "heal")
        x, w = _inputs(55)
        cfg = JanusConfig(cache_dir=str(tmp_path))
        try:
            cold = janus.function(prog, config=cfg)
            for _ in range(cfg.profile_runs + 1):
                cold(x, w)
            (name,) = _entries(tmp_path)
            with open(os.path.join(str(tmp_path), name), "wb") as fh:
                fh.write(b"garbage")

            healer = janus.function(prog, config=cfg)
            for _ in range(cfg.profile_runs + 1):
                healer(x, w)
            assert healer.stats["warm_starts"] == 0
            assert healer.stats["graphs_generated"] == 1
            assert self._miss_count("corrupt") == 1
            # ... and the entry is good again for the next worker.
            warm = janus.function(prog, config=cfg)
            warm(x, w)
            assert warm.stats["warm_starts"] == 1
        finally:
            linecache.cache.pop(filename, None)

    def test_lru_eviction_drops_oldest(self, tmp_path):
        # One record (payload + pickle/header overhead) fits the bound;
        # two do not — so the second publish must evict the first.
        store = self._store(tmp_path, max_bytes=2000)
        payload = b"x" * 1000
        assert store.store(self.KEY, payload)
        old = store._entry_path(self.KEY)
        os.utime(old, (1_000_000, 1_000_000))
        assert store.store(self.OTHER, payload)
        assert not os.path.exists(old), "oldest entry must be evicted"
        assert os.path.exists(store._entry_path(self.OTHER))
        assert DISKCACHE.snapshot()["evictions"] >= 1


# -- portability boundary ----------------------------------------------------

_PANEL_GAIN = 2.0


def _module_func():
    return _PANEL_GAIN


class TestPortability:

    def test_variable_artifact_never_published(self, tmp_path):
        var = R.Variable(np.ones((3,), dtype=np.float32))

        @janus.function(config=JanusConfig(cache_dir=str(tmp_path)))
        def with_state(x):
            return x + var.value()

        x = R.constant(np.ones((3,), dtype=np.float32))
        for _ in range(5):
            with_state(x)
        assert with_state.stats["graphs_generated"] == 1
        assert not _entries(tmp_path)
        compiled = with_state.cache.entries()[0][1].compiled
        assert compiled.portable_skip == "variable"
        assert DISKCACHE.snapshot()["store_skips"] == 1

    def test_heap_read_blocks_persistence(self, tmp_path):
        class Holder:
            pass

        m = Holder()
        m.t = R.constant(np.ones((3,), dtype=np.float32))

        @janus.function(config=JanusConfig(cache_dir=str(tmp_path)))
        def reads_heap(x):
            return x * m.t

        x = R.constant(np.ones((3,), dtype=np.float32))
        for _ in range(5):
            reads_heap(x)
        assert reads_heap.stats["graphs_generated"] == 1
        assert not _entries(tmp_path)
        assert with_stats_skip_reason(reads_heap) in (
            "identity_precheck", "heap_access")

    def test_unportable_signature_never_probes_disk(self, tmp_path):
        @janus.function(config=JanusConfig(cache_dir=str(tmp_path)))
        def apply(x, fn):
            return fn(x) + x

        x = R.constant(np.ones((3,), dtype=np.float32))
        for _ in range(5):
            apply(x, lambda t: t * 2.0)
        assert not _entries(tmp_path)
        snap = DISKCACHE.snapshot()
        assert snap["hits"] == 0
        assert snap["miss_reasons"].get("unportable", 0) >= 1

    def test_serialize_raises_unportable_for_identity_prechecks(self):
        class Gen:
            prechecks = [("pins an object", spec.ArgIsObject(0, object()))]
            graph = None
        with pytest.raises(UnportableArtifact) as exc:
            serialize_generated(Gen())
        assert exc.value.reason == "identity_precheck"

    def test_precheck_family_pickles_with_semantics(self):
        arr = np.arange(4, dtype=np.float32)
        checks = [
            spec.ArgConstTensor(0, arr),
            spec.ArgEquals(0, 3),
            spec.ArgSeqLen(0, 2),
        ]
        for check in checks:
            clone = pickle.loads(pickle.dumps(check))
            assert type(clone) is type(check)
        clone = pickle.loads(pickle.dumps(spec.ArgConstTensor(0, arr)))
        assert clone((R.constant(arr.copy()),))
        assert not clone((R.constant(arr + 1),))
        assert pickle.loads(pickle.dumps(spec.ArgEquals(0, 3)))((3,))
        assert pickle.loads(pickle.dumps(spec.ArgSeqLen(0, 2)))(([1, 2],))

    def test_identity_prechecks_flagged_unportable(self):
        assert spec.ArgCallableIs(0, _module_func).portable is False
        assert spec.ArgIsObject(0, object()).portable is False
        assert spec.ArgTypeIs(0, int).portable is False
        assert spec.ArgConstTensor(0, np.ones(2)).portable is True
        assert spec.ArgEquals(0, 1).portable is True

    def test_global_equals_portable_round_trip(self, monkeypatch):
        check = spec.GlobalEquals(_module_func, "_PANEL_GAIN", _PANEL_GAIN)
        assert check.portable
        clone = pickle.loads(pickle.dumps(check))
        assert clone(())
        monkeypatch.setattr(
            sys.modules[__name__], "_PANEL_GAIN", 99.0)
        assert not clone(())

    def test_global_equals_pins_synthetic_globals(self):
        ns = {"G": 1}
        exec("def f():\n    return G\n", ns)
        check = spec.GlobalEquals(ns["f"], "G", 1)
        assert not check.portable
        assert check(())
        ns["G"] = 2
        assert not check(())

    def test_portable_artifact_has_no_blockers(self, tmp_path):
        prog, filename = _gen_program(11, "clean")
        x, w = _inputs(11)
        cfg = JanusConfig(cache_dir=str(tmp_path))
        try:
            f = janus.function(prog, config=cfg)
            for _ in range(cfg.profile_runs + 1):
                f(x, w)
            store = dc.store_for(cfg)
            (key,) = (n[:-len(dc.SUFFIX)] for n in _entries(tmp_path))
            payload = store.load(key)
            loaded = load_compiled(payload, JanusConfig(lowering=False))
            # Pre-fusion payloads carry zero blockers by construction.
            assert portability_blockers(loaded.generated) is None
        finally:
            linecache.cache.pop(filename, None)


def with_stats_skip_reason(f):
    return f.cache.entries()[0][1].compiled.portable_skip


# -- multi-process sharing ---------------------------------------------------

_WORKER_SRC = """\
import json
import sys

import numpy as np

import repro as R
from repro import janus
from repro.observability import DISKCACHE


@janus.function
def step(x, w):
    y = x @ w
    y = y * 1.5 + x
    y = y @ w
    return y + x * 0.25


def main():
    rng = np.random.RandomState(7)
    x = rng.rand(8, 8).astype(np.float32)
    w = rng.rand(8, 8).astype(np.float32)
    out = None
    for _ in range(6):
        out = step(x, w)
    print(json.dumps({
        "imperative_runs": step.stats["imperative_runs"],
        "graphs_generated": step.stats["graphs_generated"],
        "graph_runs": step.stats["graph_runs"],
        "warm_starts": step.stats["warm_starts"],
        "disk": DISKCACHE.snapshot(),
        "sum": float(out.numpy().sum()),
    }))


main()
"""


@pytest.mark.slow
class TestMultiProcess:

    def _spawn(self, script, cache_dir):
        src_root = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "src")
        env = os.environ.copy()
        env["JANUS_CACHE_DIR"] = str(cache_dir)
        env["PYTHONPATH"] = src_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        return subprocess.Popen(
            [sys.executable, str(script)], env=env,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)

    def test_cold_stampede_then_warm_worker(self, tmp_path):
        script = tmp_path / "stampede_step.py"
        script.write_text(_WORKER_SRC)
        cache_dir = tmp_path / "cache"

        procs = [self._spawn(script, cache_dir) for _ in range(4)]
        results = []
        for proc in procs:
            out, err = proc.communicate(timeout=300)
            assert proc.returncode == 0, err
            results.append(json.loads(out.strip().splitlines()[-1]))

        # Atomic publication: racing publishers never tear the entry,
        # every worker finishes, and all outputs are identical.
        assert len({r["sum"] for r in results}) == 1
        assert len(_entries(cache_dir)) == 1
        assert all(r["graph_runs"] > 0 for r in results)

        proc = self._spawn(script, cache_dir)
        out, err = proc.communicate(timeout=300)
        assert proc.returncode == 0, err
        late = json.loads(out.strip().splitlines()[-1])
        assert late["imperative_runs"] == 0
        assert late["graphs_generated"] == 0
        assert late["warm_starts"] == 1
        assert late["disk"]["hits"] == 1
        assert late["sum"] == results[0]["sum"]


# -- observability contract --------------------------------------------------

class TestDiskCacheStats:

    def _populated(self):
        stats = DiskCacheStats()
        stats.record_hit(0.002)
        stats.record_miss("absent")
        stats.record_miss("corrupt")
        stats.record_miss("corrupt")
        stats.record_store(2048)
        stats.record_store_skip()
        stats.record_evictions(3)
        stats.set_disk_usage(4096, 2)
        return stats

    def test_snapshot_round_trip(self):
        stats = self._populated()
        clone = DiskCacheStats.from_snapshot(stats.snapshot())
        assert clone.snapshot() == stats.snapshot()

    def test_format_table_idle_and_populated(self):
        assert format_diskcache_table(DiskCacheStats()) == []
        lines = format_diskcache_table(self._populated())
        joined = "\n".join(lines)
        assert "loads: 4 (1 hits, 3 misses)" in joined
        assert "corrupt: 2" in joined
        assert "absent: 1" in joined
        assert "on disk: 2 entries" in joined
        assert "load latency" in joined

    def test_stats_bundle_round_trip(self, tmp_path):
        path = str(tmp_path / "stats.json")
        write_stats_json(path, diskcache=self._populated())
        _, _, _, _, diskcache = load_stats(path)
        assert diskcache.hits == 1
        assert diskcache.miss_reasons == {"absent": 1, "corrupt": 2}
        assert diskcache.store_bytes == 2048
        assert diskcache.load_latency.count == 1

    def test_legacy_bundle_without_diskcache_section_loads(self, tmp_path):
        path = str(tmp_path / "legacy.json")
        write_stats_json(path)
        with open(path) as fh:
            payload = json.load(fh)
        del payload["diskcache"]
        with open(path, "w") as fh:
            json.dump(payload, fh)
        _, _, _, _, diskcache = load_stats(path)
        assert diskcache.loads == 0
        assert format_diskcache_table(diskcache) == []

"""Differential suite for graph lowering: flat programs vs the oracle.

Lowering (docs/lowering.md) re-encodes a compiled schedule — fused
kernels plus a flat closure loop — without changing semantics.  The
strongest statement of that claim is differential: the same randomized
heap-mutating programs the write-barrier suite uses
(:mod:`test_write_barrier_differential`) must produce bit-for-bit
identical results whether a JANUS function runs the node-walking
executor (``lowering=False``) or the lowered program (``lowering=True``)
— and both must match the pure imperative oracle after every mutation.

The generator is imported from :mod:`progen`, not copied: any program
shape or mutation kind added there automatically extends this suite.  Each seed runs both
arms on identical inputs through warmup, a mutation storm, and the
post-regeneration calls; besides equality, the lowered arm must prove
it actually engaged (``lowering.graphs_lowered`` advanced) so a silent
global bailout cannot green the suite.
"""

import linecache
import random

import numpy as np
import pytest

import repro as R
from repro import janus
from repro.observability import COUNTERS, clear, set_trace_level, trace_level

from progen import (apply_mutation as _apply_mutation,
                    gen_program as _gen_program,
                    mutation_pool as _mutation_pool, vec as _vec)

#: Seeded programs; each runs a lowered and a node-walking arm.
SEEDS = 30


def counters():
    return dict(COUNTERS.snapshot()["counters"])


@pytest.fixture(autouse=True)
def _traced():
    prev = trace_level()
    set_trace_level(max(prev, 1))
    try:
        yield
    finally:
        set_trace_level(prev)
        clear()


def _run_arms(seed):
    """One generated program, two arms on identical call sequences.

    Returns the per-call outputs of the lowered arm, the node-walking
    arm, and the imperative oracle, aligned call for call.  Heap
    mutations are applied to both arms' models from one mutation plan
    (each arm owns its model instance, regenerated from the same seed,
    so the arms cannot observe each other's guard fallout).
    """
    outs = {"lowered": [], "walking": [], "oracle": []}
    plans = None
    for arm, lowering in (("lowered", True), ("walking", False)):
        prog, m, used, has_branch, filename = _gen_program(
            seed, "lowdiff-%s" % arm)
        rng = random.Random(9_000 + seed)
        nprng = np.random.default_rng(30_000 + seed)
        cfg = janus.JanusConfig(fail_on_not_convertible=True,
                                parallel_execution=False,
                                profile_runs=2,
                                lowering=lowering)
        f = janus.function(config=cfg)(prog)

        x_pos = R.constant(np.abs(_vec(nprng)) + 0.1)
        state = {"x": x_pos, "x_neg": R.constant(-(x_pos.numpy()))}

        pool = _mutation_pool(used, has_branch)
        rng.shuffle(pool)
        plan = pool[:rng.randint(1, min(3, len(pool)))]
        if plans is None:
            plans = plan
        else:
            assert plan == plans, (seed, "arms diverged on mutation plan")

        try:
            for _ in range(4):
                out = f(state["x"])
                outs[arm].append(out.numpy())
                if arm == "lowered":
                    outs["oracle"].append(f.func(state["x"]).numpy())
            assert f.stats["graph_runs"] > 0, (seed, arm, f.stats)
            for kind in plan:
                _apply_mutation(kind, m, nprng, state)
                for _ in range(2):
                    out = f(state["x"])
                    outs[arm].append(out.numpy())
                    if arm == "lowered":
                        outs["oracle"].append(f.func(state["x"]).numpy())
        finally:
            linecache.cache.pop(filename, None)
    return outs


def test_lowered_vs_node_walking_vs_imperative():
    before = counters()
    for seed in range(SEEDS):
        outs = _run_arms(seed)
        assert len(outs["lowered"]) == len(outs["walking"]) \
            == len(outs["oracle"])
        for k, (lo, wa, im) in enumerate(zip(outs["lowered"],
                                             outs["walking"],
                                             outs["oracle"])):
            assert np.array_equal(lo, wa), (seed, k, "lowered!=walking")
            assert np.array_equal(lo, im), (seed, k, "lowered!=oracle")
    after = counters()
    # The lowered arms must actually have lowered graphs, and the
    # node-walking arms must actually have declined to.
    assert after.get("lowering.graphs_lowered", 0) \
        > before.get("lowering.graphs_lowered", 0)
    assert after.get("lowering.bailout.disabled", 0) \
        > before.get("lowering.bailout.disabled", 0)


def test_fusion_engages_across_generated_programs():
    """At least some generated programs contain fusable chains."""
    before = counters()
    for seed in range(6):
        prog, m, used, has_branch, filename = _gen_program(seed, "lowfuse")
        nprng = np.random.default_rng(40_000 + seed)
        cfg = janus.JanusConfig(fail_on_not_convertible=True,
                                parallel_execution=False, profile_runs=2,
                                lowering=True)
        f = janus.function(config=cfg)(prog)
        x = R.constant(np.abs(_vec(nprng)) + 0.1)
        try:
            for _ in range(4):
                out = f(x)
                assert np.array_equal(out.numpy(), f.func(x).numpy()), seed
        finally:
            linecache.cache.pop(filename, None)
    assert counters().get("lowering.fused_ops", 0) \
        > before.get("lowering.fused_ops", 0)

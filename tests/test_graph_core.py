"""Graph IR: construction, topological order, liveness, signatures."""

import numpy as np
import pytest

import repro as R
from repro.errors import GraphError
from repro.graph import Graph, GraphBuilder
from repro.graph.core import GraphFunction, collect_variables
from repro.ops import api


def small_graph():
    b = GraphBuilder(name="g")
    with b:
        x = b.placeholder("x", shape=(2,), dtype=R.float32)
        y = api.add(x, 1.0)
        z = api.mul(y, y)
        b.mark_outputs([z])
    return b.graph, b


class TestTopology:
    def test_topological_order_respects_edges(self):
        g, _ = small_graph()
        order = g.topological_order()
        position = {id(n): i for i, n in enumerate(order)}
        for node in g.nodes:
            for inp in node.inputs:
                assert position[id(inp.node)] < position[id(node)]

    def test_targets_restrict_to_ancestors(self):
        b = GraphBuilder()
        with b:
            x = b.placeholder("x", shape=(), dtype=R.float32)
            used = api.add(x, 1.0)
            _unused = api.mul(x, 50.0)
        order = b.graph.topological_order(targets=[used.node])
        names = {n.op_name for n in order}
        assert "mul" not in names

    def test_cycle_detected(self):
        g, b = small_graph()
        node = g.nodes[-1]
        node.inputs.append(node.outputs[0])  # self-loop
        with pytest.raises(GraphError):
            g.topological_order()

    def test_validate_catches_removed_producer(self):
        g, _ = small_graph()
        add_node = next(n for n in g.nodes if n.op_name == "add")
        g.remove_nodes([add_node])
        with pytest.raises(GraphError):
            g.validate()


class TestLiveness:
    def test_dead_node_not_live(self):
        b = GraphBuilder()
        with b:
            x = b.placeholder("x", shape=(), dtype=R.float32)
            out = api.add(x, 1.0)
            _dead = api.mul(x, 2.0)
            b.mark_outputs([out])
        live = b.graph.live_nodes()
        assert all(n.op_name != "mul" for n in live)

    def test_placeholders_always_live(self):
        b = GraphBuilder()
        with b:
            _unused = b.placeholder("u", shape=(), dtype=R.float32)
            out = b.convert(1.0)
            b.mark_outputs([out])
        live = b.graph.live_nodes()
        assert any(n.op_name == "placeholder" for n in live)

    def test_effectful_nodes_live(self):
        v = R.Variable(np.float32(0.0))
        b = GraphBuilder()
        with b:
            x = b.placeholder("x", shape=(), dtype=R.float32)
            b.assign_variable(v, x)
            b.mark_outputs([b.convert(0.0)])
        live = b.graph.live_nodes()
        assert any(n.op_name == "var_assign" for n in live)

    def test_assert_nodes_live(self):
        b = GraphBuilder()
        with b:
            x = b.placeholder("x", shape=(), dtype=R.bool_)
            api.assert_that(x)
            b.mark_outputs([b.convert(0.0)])
        assert any(n.op_name == "assert" for n in b.graph.live_nodes())


class TestSignatures:
    def test_identical_pure_nodes_share_signature(self):
        b = GraphBuilder()
        with b:
            x = b.placeholder("x", shape=(2,), dtype=R.float32)
            a = api.add(x, 1.0)
            c = api.add(x, 1.0)
        assert a.node.signature() == c.node.signature()

    def test_commutative_signature(self):
        b = GraphBuilder()
        with b:
            x = b.placeholder("x", shape=(2,), dtype=R.float32)
            y = b.placeholder("y", shape=(2,), dtype=R.float32)
            a = api.add(x, y)
            c = api.add(y, x)
        assert a.node.signature() == c.node.signature()

    def test_noncommutative_order_matters(self):
        b = GraphBuilder()
        with b:
            x = b.placeholder("x", shape=(2,), dtype=R.float32)
            y = b.placeholder("y", shape=(2,), dtype=R.float32)
            a = api.sub(x, y)
            c = api.sub(y, x)
        assert a.node.signature() != c.node.signature()

    def test_stateful_not_deduplicable(self):
        b = GraphBuilder()
        with b:
            r = api.random_normal((2,))
        assert r.node.signature() is None


class TestGraphFunction:
    def test_recursive_function_has_effects_terminates(self):
        f = GraphFunction("rec")
        b = GraphBuilder()
        with b:
            x = b.placeholder("x", shape=(), dtype=R.float32)
            out = b.invoke(f, [x], [(R.Shape(()), R.float32)])
            b.mark_outputs([out])
        f.finalize(b.graph)
        assert f.has_effects in (True, False)  # terminates

    def test_collect_variables_through_recursion(self):
        v = R.Variable(np.float32(1.0))
        f = GraphFunction("rec")
        b = GraphBuilder()
        with b:
            x = b.placeholder("x", shape=(), dtype=R.float32)
            val = api.mul(x, b.read_variable(v))
            out = b.invoke(f, [val], [(R.Shape(()), R.float32)])
            b.mark_outputs([out])
        f.finalize(b.graph)
        assert collect_variables(b.graph) == {v}
        assert f.variables == [v]


class TestNodeOutputProtocol:
    def test_static_len_and_iter(self):
        b = GraphBuilder()
        with b:
            x = b.placeholder("x", shape=(3, 2), dtype=R.float32)
            assert len(x) == 3
            rows = list(x)
        assert len(rows) == 3
        assert rows[0].shape == R.Shape((2,))

    def test_dynamic_len_raises(self):
        from repro.errors import ShapeError
        b = GraphBuilder()
        with b:
            x = b.placeholder("x", shape=(None, 2), dtype=R.float32)
            with pytest.raises(ShapeError):
                len(x)

    def test_operators_build_nodes(self):
        b = GraphBuilder()
        with b:
            x = b.placeholder("x", shape=(2,), dtype=R.float32)
            y = (x + 1.0) * x - 3.0
        assert y.node.op_name == "sub"

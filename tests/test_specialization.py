"""The specialization lattice (paper figure 4): observe, merge, match."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro as R
from repro.janus import specialization as spec
from repro.tensor.shape import Shape


class Thing:
    pass


class TestObserve:
    def test_tensor(self):
        s = spec.observe(R.constant(np.zeros((4, 8), np.float32)))
        assert s.kind == spec.CONST_TENSOR
        assert s.dtype is R.float32
        assert s.shape == Shape((4, 8))

    def test_python_scalars(self):
        assert spec.observe(1.5).dtype is R.float32
        assert spec.observe(3).dtype is R.int64
        assert spec.observe(True).dtype is R.bool_

    def test_none(self):
        assert spec.observe(None).kind == spec.NONE

    def test_string_is_const(self):
        s = spec.observe("hello")
        assert s.kind == spec.CONST_PY and s.value == "hello"

    def test_callable_resolves_underlying_function(self):
        t = Thing()
        t.m = lambda: None
        obj_method_spec = spec.observe(R.Variable(np.float32(0.0)).assign)
        assert obj_method_spec.kind == spec.CALLABLE

    def test_variable(self):
        v = R.Variable(np.float32(0.0))
        s = spec.observe(v)
        assert s.kind == spec.VARIABLE and s.value is v

    def test_object(self):
        t = Thing()
        s = spec.observe(t)
        assert s.kind == spec.PYOBJ and s.py_type is Thing

    def test_list_of_tensors(self):
        s = spec.observe([R.constant(1.0), R.constant(2.0)])
        assert s.kind == spec.LIST and len(s.elements) == 2


class TestMerge:
    """Relaxation down the figure-4 hierarchy."""

    def test_identical_constant_stays_constant(self):
        a = spec.observe(np.float32(1.0))
        assert spec.merge(a, spec.observe(np.float32(1.0))).kind == \
            spec.CONST_TENSOR

    def test_different_values_same_shape_relax_to_shape(self):
        a = spec.observe(np.ones((4, 8), np.float32))
        b = spec.observe(np.zeros((4, 8), np.float32))
        merged = spec.merge(a, b)
        assert merged.kind == spec.TENSOR
        assert merged.shape == Shape((4, 8))

    def test_figure4_shape_relaxation(self):
        """(4, 8) then (3, 8) -> (?, 8), then (2, 8) needs no new graph."""
        a = spec.observe(np.zeros((4, 8), np.float32))
        b = spec.observe(np.zeros((3, 8), np.float32))
        merged = spec.merge(a, b)
        assert merged.shape == Shape((None, 8))
        assert spec.matches(merged, np.zeros((2, 8), np.float32))
        assert spec.matches(merged, np.zeros((6, 8), np.float32))

    def test_dtype_conflict_is_bottom(self):
        a = spec.observe(np.zeros(2, np.float32))
        b = spec.observe(np.zeros(2, np.int64))
        assert spec.merge(a, b).kind == spec.BOTTOM

    def test_object_identity_stable(self):
        t = Thing()
        merged = spec.merge(spec.observe(t), spec.observe(t))
        assert merged.value is t

    def test_object_identity_varies_keeps_type(self):
        merged = spec.merge(spec.observe(Thing()), spec.observe(Thing()))
        assert merged.kind == spec.PYOBJ
        assert merged.value is None
        assert merged.py_type is Thing

    def test_kind_mismatch_is_bottom(self):
        assert spec.merge(spec.observe(Thing()),
                          spec.observe(1.0)).kind == spec.BOTTOM

    def test_list_merges_elementwise(self):
        a = spec.observe([np.zeros((2,), np.float32)])
        b = spec.observe([np.zeros((3,), np.float32)])
        merged = spec.merge(a, b)
        assert merged.elements[0].shape == Shape((None,))

    def test_list_length_mismatch_is_bottom(self):
        a = spec.observe([1.0])
        b = spec.observe([1.0, 2.0])
        assert spec.merge(a, b).kind == spec.BOTTOM

    @given(st.lists(st.integers(1, 5), min_size=1, max_size=3),
           st.lists(st.integers(1, 5), min_size=1, max_size=3))
    @settings(max_examples=25, deadline=None)
    def test_merged_spec_matches_both_inputs(self, d1, d2):
        a_val = np.zeros(tuple(d1), np.float32)
        b_val = np.zeros(tuple(d2), np.float32)
        merged = spec.merge(spec.observe(a_val), spec.observe(b_val))
        assert spec.matches(merged, a_val)
        assert spec.matches(merged, b_val)

    def test_merge_is_commutative_on_tensors(self):
        a = spec.observe(np.zeros((2, 3), np.float32))
        b = spec.observe(np.zeros((4, 3), np.float32))
        m1, m2 = spec.merge(a, b), spec.merge(b, a)
        assert m1.kind == m2.kind and m1.shape == m2.shape


class TestMatches:
    """Cache-retrieval prechecks (figure 2, check 1)."""

    def test_const_tensor_requires_equal_value(self):
        s = spec.observe(np.array([1.0, 2.0], np.float32))
        assert spec.matches(s, np.array([1.0, 2.0], np.float32))
        assert not spec.matches(s, np.array([1.0, 3.0], np.float32))

    def test_tensor_shape_check(self):
        s = spec.ValueSpec(spec.TENSOR, dtype=R.float32,
                           shape=Shape((None, 8)))
        assert spec.matches(s, np.zeros((4, 8), np.float32))
        assert not spec.matches(s, np.zeros((4, 9), np.float32))
        assert not spec.matches(s, np.zeros((4, 8), np.float64))

    def test_eager_tensor_accepted(self):
        s = spec.ValueSpec(spec.TENSOR, dtype=R.float32, shape=Shape((2,)))
        assert spec.matches(s, R.constant(np.zeros(2, np.float32)))

    def test_bottom_matches_nothing(self):
        assert not spec.matches(spec.ValueSpec.bottom(), 1.0)

    def test_object_type_check(self):
        s = spec.merge(spec.observe(Thing()), spec.observe(Thing()))
        assert spec.matches(s, Thing())
        assert not spec.matches(s, object())

    def test_signature_type_level_only(self):
        a = spec.observe(np.zeros((4, 8), np.float32))
        b = spec.observe(np.zeros((3, 8), np.float32))
        assert a.signature() == b.signature()   # same dtype + rank
        c = spec.observe(np.zeros((4, 8, 1), np.float32))
        assert a.signature() != c.signature()   # different rank


class TestRelaxConstants:
    def test_drops_value_keeps_shape(self):
        s = spec.observe(np.ones((2, 2), np.float32))
        relaxed = spec.relax_constants(s)
        assert relaxed.kind == spec.TENSOR
        assert relaxed.shape == Shape((2, 2))

"""Shared fixtures: deterministic seeds, numeric gradient checking."""

import numpy as np
import pytest

import repro as R
from repro import nn
from repro.ops import random_ops


@pytest.fixture(autouse=True)
def _deterministic():
    np.random.seed(0)
    random_ops.seed(0)
    nn.init.seed(0)
    yield


def numeric_gradient(f, x, eps=1e-3):
    """Central-difference gradient of scalar-valued f at numpy array x."""
    x = np.asarray(x, np.float64)
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        xp = x.copy()
        xm = x.copy()
        xp[idx] += eps
        xm[idx] -= eps
        grad[idx] = (f(xp) - f(xm)) / (2 * eps)
        it.iternext()
    return grad


@pytest.fixture
def gradcheck():
    """Compare a tape gradient against central differences."""

    def check(op_fn, x_init, atol=5e-2, rtol=5e-2):
        x_init = np.asarray(x_init, np.float32)
        v = R.Variable(x_init)
        with R.GradientTape() as tape:
            y = R.reduce_sum(op_fn(v.value()))
        analytic = tape.gradient(y, v).numpy()

        def scalar(x):
            return float(R.reduce_sum(
                op_fn(R.constant(x.astype(np.float32)))).numpy())

        numeric = numeric_gradient(scalar, x_init)
        np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=rtol)

    return check

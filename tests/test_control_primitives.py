"""The low-level Switch/Merge/Enter/Exit/NextIteration primitives.

These model paper section 4.2.1's basic translation rules; the
tagged-token interpreter executes graphs wired from them.
"""

import pytest

from repro.errors import ExecutionError
from repro.graph.control_primitives import (
    Compute, Switch, Merge, Enter, Exit, NextIteration, PrimitiveGraph,
    Token, Frame, ROOT_FRAME, build_cond, build_while)


class TestTokens:
    def test_frame_iteration_advance(self):
        f = Frame(ROOT_FRAME, "loop", 0)
        assert f.next_iteration().iteration == 1
        assert f.next_iteration().parent is ROOT_FRAME


class TestSwitchMerge:
    def test_switch_routes_true(self):
        sw = Switch("s", None, None)
        data = Token(42, ROOT_FRAME)
        pred = Token(True, ROOT_FRAME)
        out_t, out_f = sw.fire([data, pred])
        assert out_t.value == 42 and not out_t.dead
        assert out_f.dead

    def test_switch_routes_false(self):
        sw = Switch("s", None, None)
        out_t, out_f = sw.fire([Token(42, ROOT_FRAME),
                                Token(False, ROOT_FRAME)])
        assert out_t.dead and out_f.value == 42

    def test_merge_forwards_first_live(self):
        m = Merge("m", [None, None])
        live = Token(7, ROOT_FRAME)
        out, = m.fire([None, live])
        assert out.value == 7

    def test_merge_waits_without_tokens(self):
        m = Merge("m", [None, None])
        assert m.fire([None, None]) is None

    def test_merge_dead_when_all_dead(self):
        m = Merge("m", [None, None])
        dead = Token(None, ROOT_FRAME, dead=True)
        out, = m.fire([dead, dead])
        assert out.dead


class TestConditional:
    def _run_cond(self, value):
        g = PrimitiveGraph()
        data = g.source("x", value)
        pred = g.add(Compute("pred", [(data, 0)], lambda v: v > 0))
        out = build_cond(
            g, pred,
            lambda gg, inp: gg.add(Compute("double", [inp],
                                           lambda v: v * 2)),
            lambda gg, inp: gg.add(Compute("negate", [inp],
                                           lambda v: -v)),
            data)
        return g.run(out)

    def test_true_branch(self):
        assert self._run_cond(5) == 10

    def test_false_branch(self):
        assert self._run_cond(-3) == 3


class TestLoop:
    def _run_countdown(self, start):
        g = PrimitiveGraph()
        init = g.source("init", start)
        out = build_while(
            g, init,
            cond_fn=lambda gg, inp: gg.add(
                Compute("gt0", [inp], lambda v: v > 0)),
            body_fn=lambda gg, inp: gg.add(
                Compute("dec", [inp], lambda v: v - 1)))
        return g.run(out)

    def test_loop_runs_to_zero(self):
        assert self._run_countdown(5) == 0

    def test_zero_iterations(self):
        assert self._run_countdown(0) == 0

    def test_enter_creates_child_frame(self):
        e = Enter("e", None, "loop")
        out, = e.fire([Token(1, ROOT_FRAME)])
        assert out.frame.loop_name == "loop"
        assert out.frame.parent is ROOT_FRAME

    def test_exit_requires_frame(self):
        x = Exit("x", [None])
        with pytest.raises(ExecutionError):
            x.fire([Token(1, ROOT_FRAME)])

    def test_next_iteration_advances_tag(self):
        ni = NextIteration("n", [None])
        frame = Frame(ROOT_FRAME, "loop", 2)
        out, = ni.fire([Token(9, frame)])
        assert out.frame.iteration == 3


class TestNonTermination:
    def test_step_cap(self):
        g = PrimitiveGraph()
        init = g.source("init", 1)
        out = build_while(
            g, init,
            cond_fn=lambda gg, inp: gg.add(
                Compute("true", [inp], lambda v: True)),
            body_fn=lambda gg, inp: gg.add(
                Compute("inc", [inp], lambda v: v + 1)))
        with pytest.raises(ExecutionError):
            g.run(out, max_steps=500)

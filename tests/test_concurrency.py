"""Concurrency-safe runtime core: threaded differential + storm tests.

The dispatch layer (:mod:`repro.janus.api`) promises three things under
concurrent callers:

* **correctness** — N threads hammering one ``janus.function`` get
  bit-for-bit the results single-threaded execution produces (the
  speculate → guard → fallback machinery never leaks a wrong value to
  any caller, no matter how calls interleave with compiles and swaps),
* **single-flight compilation** — a cold-start stampede or an
  assumption-failure storm elects exactly one compile per signature;
  every other caller is served by the imperative fallback instead of
  duplicating graph generation,
* **no lost updates** — the stats/health/memo accounting survives the
  races that the old unlocked read-modify-write paths lost (the retired
  ``_MEMO_COUNTS`` flush being the canonical offender):
  ``calls == graph_runs + imperative_runs`` exactly.

The differential section reuses the seeded-program approach of
``test_write_barrier_differential``: generated programs over a heap
model run in 4 threads against the imperative oracle.  The storm
section forces a burned-constant guard failure under
``recompile_workers=1`` and asserts exactly one recompile ticket while
the stale window is served by fallbacks.
"""

import linecache
import random
import threading
import time

import numpy as np
import pytest

import repro as R
from repro import janus
from repro.janus.concurrency import RWLock, TicketTable, recompile_pool
from repro.observability import COUNTERS, clear

#: Generated differential programs; each runs THREADS x CALLS calls.
SEEDS = 10
THREADS = 4
CALLS_PER_THREAD = 6


def strict(**kw):
    return janus.JanusConfig(fail_on_not_convertible=True,
                             parallel_execution=False, **kw)


def warm(jf, *args, n=5):
    out = None
    for _ in range(n):
        out = jf(*args)
    return out


def counters():
    return dict(COUNTERS.snapshot()["counters"])


@pytest.fixture(autouse=True)
def _clean():
    clear()
    yield
    clear()


def _run_threads(n, target):
    """Start *n* threads on *target(index)* behind a common barrier and
    join them; returns the list of exceptions raised inside threads."""
    barrier = threading.Barrier(n)
    errors = []

    def runner(index):
        barrier.wait()
        try:
            target(index)
        except Exception as exc:  # noqa: BLE001 - re-raised by caller
            errors.append(exc)

    threads = [threading.Thread(target=runner, args=(i,))
               for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(30.0)
        assert not t.is_alive(), "worker thread hung"
    return errors


# -- primitives ---------------------------------------------------------------

class TestPrimitives:
    def test_rwlock_concurrent_readers(self):
        lock = RWLock()
        inside = []
        gate = threading.Barrier(3)

        def reader(_):
            with lock.read():
                inside.append(threading.get_ident())
                gate.wait(5.0)   # all 3 readers in simultaneously

        assert not _run_threads(3, reader)
        assert len(set(inside)) == 3

    def test_rwlock_writer_excludes_readers(self):
        lock = RWLock()
        log = []
        lock.acquire_write()

        def reader(_):
            with lock.read():
                log.append("read")

        t = threading.Thread(target=reader, args=(0,))
        t.start()
        time.sleep(0.05)
        assert log == []          # reader blocked behind the writer
        log.append("write")
        lock.release_write()
        t.join(5.0)
        assert log == ["write", "read"]

    def test_ticket_table_single_flight(self):
        table = TicketTable()
        wins = [table.claim("sig") for _ in range(5)]
        assert wins == [True, False, False, False, False]
        assert len(table) == 1
        table.release("sig")
        assert len(table) == 0
        assert table.claim("sig")

    def test_recompile_pool_shared(self):
        pool = recompile_pool(2)
        assert recompile_pool(2) is pool
        assert pool.submit(lambda: 21 * 2).result(5.0) == 42


# -- seeded threaded differential --------------------------------------------

# Shared seeded generator (tests/progen.py): CONCURRENCY_MIX reproduces
# the historical inline generator stream-for-stream — 4-kind pool, no
# t/t2 aliasing, model built t, w, gain, var.
from progen import CONCURRENCY_MIX, gen_program, vec as _vec  # noqa: E402


def _gen_program(seed):
    prog, _m, _used, _branch, filename = gen_program(
        seed, mix=CONCURRENCY_MIX)
    return prog, filename


def _differential_one(seed, recompile_workers):
    prog, filename = _gen_program(seed)
    nprng = np.random.default_rng(50_000 + seed)
    cfg = strict(profile_runs=2, recompile_workers=recompile_workers)
    f = janus.function(config=cfg)(prog)

    # Distinct inputs, both branch directions represented; the oracle
    # outputs come from the pure imperative function, single-threaded.
    inputs = [R.constant(np.abs(_vec(nprng)) + 0.1) for _ in range(3)]
    inputs.append(R.constant(-(inputs[0].numpy())))
    oracle = [f.func(x).numpy() for x in inputs]

    try:
        def client(index):
            order = list(range(len(inputs)))
            random.Random(seed * 100 + index).shuffle(order)
            for _ in range(CALLS_PER_THREAD):
                for j in order:
                    out = f(inputs[j])
                    assert np.array_equal(out.numpy(), oracle[j]), \
                        (seed, index, j)

        errors = _run_threads(THREADS, client)
        assert not errors, (seed, errors)

        total = THREADS * CALLS_PER_THREAD * len(inputs)
        stats = f.stats
        # Exact conservation: every call ran a graph, the fallback, or
        # a co-execution plan (zero here — these programs convert
        # whole).  A lost update in the locked counters breaks this.
        assert stats["calls"] == total, stats
        assert stats["graph_runs"] + stats["imperative_runs"] \
            + stats["coexec_runs"] == total, stats
        assert stats["graph_runs"] > 0, stats
    finally:
        # Let any background regeneration publish before teardown.
        deadline = time.time() + 10.0
        while f.recompiles_in_flight and time.time() < deadline:
            time.sleep(0.01)
        linecache.cache.pop(filename, None)


class TestThreadedDifferential:
    @pytest.mark.parametrize("seed", range(SEEDS))
    def test_threads_match_single_thread_oracle(self, seed):
        _differential_one(seed, recompile_workers=0)

    @pytest.mark.parametrize("seed", range(0, SEEDS, 3))
    def test_threads_match_oracle_with_background_recompile(self, seed):
        _differential_one(seed, recompile_workers=1)


# -- cold-start stampede ------------------------------------------------------

class TestColdStartStampede:
    def test_stampede_compiles_once(self):
        @janus.function(config=strict(profile_runs=2))
        def f(x):
            y = x * 2.0
            for _ in range(4):
                y = y + x
            return R.reduce_sum(y)

        x = R.constant(np.linspace(-1.0, 1.0, 8).astype(np.float32))
        expect = f.func(x).numpy()
        f(x)
        f(x)                       # profiling done; next call generates
        assert f.stats["graphs_generated"] == 0

        def client(_):
            out = f(x)
            assert np.array_equal(out.numpy(), expect)

        assert not _run_threads(8, client)
        # The stampede elected exactly one compiler; everyone else was
        # served (imperative fallback or the freshly published graph).
        assert f.stats["graphs_generated"] == 1, f.stats
        assert f.stats["calls"] == 10
        assert (f.stats["graph_runs"]
                + f.stats["imperative_runs"]) == 10, f.stats
        assert np.array_equal(f(x).numpy(), expect)
        assert f.stats["graph_runs"] >= 1


# -- assumption-failure storm -------------------------------------------------

class TestFailureStorm:
    def _storm(self, recompile_workers):
        knob = type("K", (), {})()
        knob.scale = 3.0

        cfg = strict(profile_runs=2,
                     recompile_workers=recompile_workers)

        @janus.function(config=cfg)
        def g(x):
            return x * knob.scale

        x = R.constant(np.linspace(-1.0, 1.0, 8).astype(np.float32))
        warm(g, x, n=5)
        assert g.stats["graph_runs"] >= 1
        before = counters()
        base_generated = g.stats["graphs_generated"]

        knob.scale = 5.0           # breaks the burned-in constant
        expect = x.numpy() * 5.0

        def client(_):
            out = g(x)
            assert np.array_equal(out.numpy(), expect)

        assert not _run_threads(8, client)
        return g, x, expect, before, base_generated

    def test_storm_elects_exactly_one_recompile_ticket(self):
        g, x, expect, before, base_generated = self._storm(
            recompile_workers=1)

        # Exactly one caller won the recompile ticket; the regeneration
        # ran on the background pool while the rest fell back.
        assert g.stats["recompile_tickets"] == 1, g.stats
        assert counters()["dispatch.recompile_tickets"] \
            - before.get("dispatch.recompile_tickets", 0) == 1
        assert counters()["dispatch.background_recompiles"] \
            - before.get("dispatch.background_recompiles", 0) == 1
        assert g.stats["fallbacks"] >= 1

        # Wait for the background publish, then the relaxed graph serves.
        deadline = time.time() + 10.0
        while g.recompiles_in_flight and time.time() < deadline:
            time.sleep(0.01)
        assert g.recompiles_in_flight == 0
        assert g.stats["graphs_generated"] == base_generated + 1, g.stats

        graph_runs = g.stats["graph_runs"]
        assert np.array_equal(g(x).numpy(), expect)
        assert g.stats["graph_runs"] == graph_runs + 1

    def test_storm_inline_mode_still_single_ticket(self):
        # recompile_workers=0: the ticket is released after retire and
        # the next call regenerates inline — but the storm itself must
        # still elect only one failure-path winner.
        g, x, expect, before, base_generated = self._storm(
            recompile_workers=0)
        assert g.stats["recompile_tickets"] == 1, g.stats
        assert counters()["dispatch.recompile_tickets"] \
            - before.get("dispatch.recompile_tickets", 0) == 1
        # Post-storm calls regenerate (possibly already during the
        # storm, under the cold-path single-flight ticket).
        assert np.array_equal(g(x).numpy(), expect)
        assert np.array_equal(g(x).numpy(), expect)
        assert g.stats["graphs_generated"] >= base_generated + 1


# -- accounting under contention ----------------------------------------------

class TestNoLostUpdates:
    def test_stats_and_cache_totals_conserved(self):
        holder = type("H", (), {})()
        holder.state = R.constant(np.ones(4, np.float32))

        @janus.function(config=strict(profile_runs=2))
        def f(x):
            return R.reduce_sum(x * holder.state)

        x = R.constant(np.full(4, 2.0, np.float32))
        warm(f, x, n=4)
        expect = f.func(x).numpy()

        per_thread = 25

        def client(_):
            for _ in range(per_thread):
                assert np.array_equal(f(x).numpy(), expect)

        assert not _run_threads(6, client)
        stats = f.stats
        total = 4 + 6 * per_thread
        assert stats["calls"] == total, stats
        assert stats["graph_runs"] + stats["imperative_runs"] == total, \
            stats
        # Cache totals are locked too: hits were recorded once per
        # warm-path graph dispatch.
        cache_stats = f.cache.stats()
        assert cache_stats["hits"] == stats["graph_runs"] \
            + stats["fallbacks"], (cache_stats, stats)

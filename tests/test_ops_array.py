"""Array manipulation ops: kernels and static shape inference."""

import numpy as np
import pytest

import repro as R
from repro.ops import get_op
from repro.ops.array_ops import encode_index, decode_index_spec
from repro.tensor.shape import Shape


def run(name, *arrays, **attrs):
    op = get_op(name)
    return op.kernel(attrs, *[np.asarray(a) for a in arrays])


class TestReshapeTranspose:
    def test_reshape(self):
        out = run("reshape", np.arange(6), shape=(2, 3))
        assert out.shape == (2, 3)

    def test_reshape_minus_one(self):
        out = run("reshape", np.arange(6), shape=(2, -1))
        assert out.shape == (2, 3)

    def test_reshape_like(self):
        out = run("reshape_like", np.arange(6), np.zeros((3, 2)))
        assert out.shape == (3, 2)

    def test_transpose_default(self):
        out = run("transpose", np.zeros((2, 3)), perm=None)
        assert out.shape == (3, 2)

    def test_transpose_perm(self):
        out = run("transpose", np.zeros((2, 3, 4)), perm=(2, 0, 1))
        assert out.shape == (4, 2, 3)


class TestConcatSplitStack:
    def test_concat(self):
        out = run("concat", np.ones((2, 1)), np.zeros((2, 2)), axis=1)
        assert out.shape == (2, 3)

    def test_split_roundtrip(self):
        x = np.arange(12).reshape(3, 4)
        parts = run("split", x, num=2, axis=1)
        assert len(parts) == 2
        np.testing.assert_array_equal(np.concatenate(parts, axis=1), x)

    def test_stack_unstack_roundtrip(self):
        xs = [np.full((2,), i) for i in range(3)]
        stacked = run("stack", *xs, axis=0)
        assert stacked.shape == (3, 2)
        parts = run("unstack", stacked, num=3, axis=0)
        for orig, part in zip(xs, parts):
            np.testing.assert_array_equal(orig, part)


class TestIndexSpec:
    def test_roundtrip_ints_and_slices(self):
        spec = encode_index((1, slice(None, 2), Ellipsis, None))
        idx = decode_index_spec(spec)
        assert idx == (1, slice(None, 2, None), Ellipsis, None)

    def test_spec_is_hashable(self):
        hash(encode_index((slice(1, 5, 2), 3)))

    def test_getitem_matches_numpy(self):
        x = np.arange(24).reshape(2, 3, 4)
        for index in (0, (1, 2), (slice(None), 1), (Ellipsis, 0),
                      (0, slice(1, 3))):
            out = run("getitem", x, spec=encode_index(index))
            np.testing.assert_array_equal(out, x[index])

    def test_getitem_grad_scatters(self):
        x = np.zeros((3, 4))
        grad = np.ones((4,))
        out = run("getitem_grad", grad, x, spec=encode_index(1))
        assert out[1].sum() == 4 and out.sum() == 4


class TestGather:
    def test_gather(self):
        params = np.arange(10) * 10
        out = run("gather", params, np.array([3, 3, 7]), axis=0)
        np.testing.assert_array_equal(out, [30, 30, 70])

    def test_gather_grad_accumulates_duplicates(self):
        params = np.zeros((5, 2))
        idx = np.array([1, 1, 4])
        grad = np.ones((3, 2))
        out = run("gather_grad", grad, idx, params, axis=0)
        np.testing.assert_array_equal(out[1], [2.0, 2.0])
        np.testing.assert_array_equal(out[4], [1.0, 1.0])


class TestConstruction:
    def test_fill(self):
        out = run("fill", shape=(2, 2), value=7, dtype="int32")
        assert out.dtype == np.int32 and out[0, 0] == 7

    def test_one_hot(self):
        out = run("one_hot", np.array([0, 2]), depth=3)
        np.testing.assert_array_equal(out, [[1, 0, 0], [0, 0, 1]])

    def test_one_hot_out_of_range_is_zero_row(self):
        out = run("one_hot", np.array([-1, 5]), depth=3)
        assert out.sum() == 0

    def test_range(self):
        np.testing.assert_array_equal(
            run("range", start=2, stop=8, step=2), [2, 4, 6])

    def test_shape_of(self):
        np.testing.assert_array_equal(
            run("shape_of", np.zeros((4, 5))), [4, 5])


class TestPadTile:
    def test_pad(self):
        out = run("pad", np.ones((2, 2)), paddings=((1, 0), (0, 2)))
        assert out.shape == (3, 4)
        assert out[0].sum() == 0

    def test_pad_grad_slices_back(self):
        grad = np.ones((3, 4))
        out = run("pad_grad", grad, paddings=((1, 0), (0, 2)))
        assert out.shape == (2, 2)

    def test_tile(self):
        out = run("tile", np.array([[1, 2]]), multiples=(2, 3))
        assert out.shape == (2, 6)


class TestShapeFns:
    def _infer(self, name, shapes, **attrs):
        op = get_op(name)
        return op.shape_fn(attrs, [Shape.of(s) for s in shapes],
                           [R.float32] * len(shapes))

    def test_concat_partial(self):
        (shape, _), = self._infer("concat", [(None, 2), (3, 2)], axis=0)
        assert shape == Shape((None, 2))

    def test_concat_sums_axis(self):
        (shape, _), = self._infer("concat", [(1, 2), (3, 2)], axis=0)
        assert shape == Shape((4, 2))

    def test_stack_inserts_dim(self):
        (shape, _), = self._infer("stack", [(2,), (2,)], axis=0)
        assert shape == Shape((2, 2))

    def test_expand_squeeze(self):
        (shape, _), = self._infer("expand_dims", [(2, 3)], axis=1)
        assert shape == Shape((2, 1, 3))
        (shape, _), = self._infer("squeeze", [(2, 1, 3)], axis=1)
        assert shape == Shape((2, 3))

    def test_gather_shape(self):
        (shape, _), = self._infer("gather", [(10, 4), (3,)], axis=0)
        assert shape == Shape((3, 4))

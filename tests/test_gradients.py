"""Gradient correctness: analytic (tape) vs central differences.

One gradcheck per differentiable op family, plus property-based checks on
invariants (linearity of the gradient accumulation, broadcast handling).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro as R
from repro.ops import api


RNG = np.random.default_rng(42)


def randn(*shape):
    return RNG.normal(0, 1, size=shape).astype(np.float32)


class TestUnaryGradients:
    @pytest.mark.parametrize("fn,domain", [
        (api.neg, None), (api.exp, None), (api.tanh, None),
        (api.sigmoid, None), (api.square, None), (api.relu, None),
        (api.abs, None),
        (api.log, "positive"), (api.sqrt, "positive"),
    ])
    def test_elementwise(self, gradcheck, fn, domain):
        x = randn(3, 4)
        if domain == "positive":
            x = np.abs(x) + 0.5
        else:
            # keep away from relu/abs kinks
            x = x + np.sign(x) * 0.1
        gradcheck(fn, x)

    def test_leaky_relu(self, gradcheck):
        gradcheck(lambda x: api.leaky_relu(x, 0.3),
                  randn(3, 3) + 0.05)

    def test_clip(self, gradcheck):
        x = np.linspace(-2, 2, 9).astype(np.float32) + 0.013
        gradcheck(lambda v: api.clip(v, -1.0, 1.0), x)


class TestBinaryGradients:
    @pytest.mark.parametrize("fn", [api.add, api.sub, api.mul, api.div])
    def test_same_shape(self, gradcheck, fn):
        b = randn(2, 3) + 3.0  # keep div away from zero
        gradcheck(lambda x: fn(x, R.constant(b)), randn(2, 3))
        gradcheck(lambda x: fn(R.constant(b), x), randn(2, 3) + 3.0)

    @pytest.mark.parametrize("fn", [api.add, api.mul])
    def test_broadcast_row(self, gradcheck, fn):
        b = randn(4, 3)
        gradcheck(lambda x: fn(x, R.constant(b)), randn(3))

    def test_broadcast_scalar(self, gradcheck):
        gradcheck(lambda x: api.mul(x, 2.5), randn(2, 2))

    def test_pow_positive_base(self, gradcheck):
        gradcheck(lambda x: api.pow(x, 3.0), np.abs(randn(3)) + 0.5)

    def test_maximum_minimum(self, gradcheck):
        b = randn(3, 3)
        gradcheck(lambda x: api.maximum(x, R.constant(b)),
                  randn(3, 3) + 0.2)
        gradcheck(lambda x: api.minimum(x, R.constant(b)),
                  randn(3, 3) + 0.2)

    def test_where(self, gradcheck):
        cond = R.constant(np.array([[True, False], [False, True]]))
        b = randn(2, 2)
        gradcheck(lambda x: api.where(cond, x, R.constant(b)), randn(2, 2))


class TestMatmulGradients:
    @pytest.mark.parametrize("ta,tb", [(False, False), (True, False),
                                       (False, True), (True, True)])
    def test_transpose_variants(self, gradcheck, ta, tb):
        b = randn(3, 3)
        gradcheck(lambda x: api.matmul(x, R.constant(b), transpose_a=ta,
                                       transpose_b=tb), randn(3, 3))

    def test_batched(self, gradcheck):
        b = randn(2, 3, 4)
        gradcheck(lambda x: api.matmul(x, R.constant(b)), randn(2, 2, 3))


class TestReductionGradients:
    @pytest.mark.parametrize("fn", [api.reduce_sum, api.reduce_mean])
    @pytest.mark.parametrize("axis,keepdims", [
        (None, False), (0, False), (1, True), ((0, 1), False)])
    def test_sum_mean(self, gradcheck, fn, axis, keepdims):
        gradcheck(lambda x: fn(x, axis=axis, keepdims=keepdims),
                  randn(3, 4))

    def test_reduce_max(self, gradcheck):
        # distinct values: unique argmax so numeric grad is well defined
        x = np.arange(12, dtype=np.float32).reshape(3, 4) * 0.37
        gradcheck(lambda v: api.reduce_max(v, axis=1), x)

    def test_reduce_prod(self, gradcheck):
        gradcheck(lambda x: api.reduce_prod(x, axis=0),
                  np.abs(randn(2, 3)) + 0.5)


class TestArrayGradients:
    def test_reshape(self, gradcheck):
        gradcheck(lambda x: api.reshape(x, (6,)), randn(2, 3))

    def test_transpose(self, gradcheck):
        gradcheck(lambda x: api.transpose(x, (1, 0)), randn(2, 3))

    def test_concat(self, gradcheck):
        b = randn(2, 2)
        gradcheck(lambda x: api.concat([x, R.constant(b)], axis=1),
                  randn(2, 3))

    def test_split(self, gradcheck):
        gradcheck(lambda x: api.split(x, 2, axis=0)[0], randn(4, 2))

    def test_stack_unstack(self, gradcheck):
        b = randn(3)
        gradcheck(lambda x: api.stack([x, R.constant(b)]), randn(3))
        gradcheck(lambda x: api.unstack(x, axis=0)[1], randn(2, 3))

    def test_getitem(self, gradcheck):
        gradcheck(lambda x: x[1], randn(3, 4))
        gradcheck(lambda x: x[:, 1:3], randn(3, 4))

    def test_gather(self, gradcheck):
        idx = R.constant(np.array([0, 2, 2], np.int64))
        gradcheck(lambda x: api.gather(x, idx), randn(4, 3))

    def test_pad(self, gradcheck):
        gradcheck(lambda x: api.pad(x, ((1, 1), (0, 2))), randn(2, 2))

    def test_tile(self, gradcheck):
        gradcheck(lambda x: api.tile(x, (2, 3)), randn(2, 2))

    def test_expand_squeeze(self, gradcheck):
        gradcheck(lambda x: api.expand_dims(x, 1), randn(3))
        gradcheck(lambda x: api.squeeze(x, 0), randn(1, 3))

    def test_cast_float_roundtrip(self, gradcheck):
        gradcheck(lambda x: api.cast(x, "float64"), randn(3))

    def test_stop_gradient_blocks(self):
        v = R.Variable(randn(3))
        with R.GradientTape() as tape:
            y = R.reduce_sum(api.stop_gradient(v.value()) * 2.0)
        assert tape.gradient(y, v) is None


class TestNNGradients:
    def test_conv2d(self, gradcheck):
        f = randn(3, 3, 2, 2) * 0.3
        gradcheck(lambda x: api.conv2d(x, R.constant(f), strides=1,
                                       padding="SAME"),
                  randn(1, 4, 4, 2))

    def test_conv2d_filters(self, gradcheck):
        x = randn(1, 4, 4, 2)
        gradcheck(lambda f: api.conv2d(R.constant(x), f, strides=2,
                                       padding="SAME"),
                  randn(3, 3, 2, 2) * 0.3)

    def test_conv2d_transpose(self, gradcheck):
        f = randn(2, 2, 1, 2) * 0.3
        gradcheck(lambda x: api.conv2d_transpose(
            x, R.constant(f), (4, 4, 1), strides=2, padding="SAME"),
            randn(1, 2, 2, 2))

    def test_max_pool(self, gradcheck):
        # unique values avoid tie non-differentiability
        x = (np.arange(16, dtype=np.float32) * 0.731).reshape(1, 4, 4, 1)
        gradcheck(lambda v: api.max_pool(v, 2, 2), x)

    def test_avg_pool(self, gradcheck):
        gradcheck(lambda x: api.avg_pool(x, 2, 2), randn(1, 4, 4, 2))

    def test_softmax(self, gradcheck):
        gradcheck(api.softmax, randn(3, 5))

    def test_log_softmax(self, gradcheck):
        gradcheck(api.log_softmax, randn(3, 5))

    def test_softmax_cross_entropy(self, gradcheck):
        labels = R.constant(np.array([0, 2, 1], np.int64))
        gradcheck(lambda x: api.softmax_cross_entropy(x, labels),
                  randn(3, 4))

    def test_sigmoid_cross_entropy(self, gradcheck):
        targets = R.constant(np.array([1.0, 0.0, 1.0], np.float32))
        gradcheck(lambda x: api.sigmoid_cross_entropy(x, targets),
                  randn(3))


class TestGradientProperties:
    @given(st.integers(1, 4), st.integers(1, 4))
    @settings(max_examples=10, deadline=None)
    def test_gradient_of_sum_is_ones(self, n, m):
        v = R.Variable(randn(n, m))
        with R.GradientTape() as tape:
            y = api.reduce_sum(v.value())
        np.testing.assert_allclose(tape.gradient(y, v).numpy(),
                                   np.ones((n, m)))

    @given(st.floats(-3, 3, width=32), st.floats(-3, 3, width=32))
    @settings(max_examples=20, deadline=None)
    def test_gradient_linearity(self, a, b):
        """grad(a*f + b*g) == a*grad(f) + b*grad(g)."""
        x0 = randn(4)
        v = R.Variable(x0)

        def grad_of(fn):
            with R.GradientTape() as tape:
                y = fn(v.value())
            g = tape.gradient(y, v)
            return np.zeros(4, np.float32) if g is None else g.numpy()

        f = lambda x: api.reduce_sum(api.square(x))  # noqa: E731
        g = lambda x: api.reduce_sum(api.tanh(x))  # noqa: E731
        combined = grad_of(lambda x: a * f(x) + b * g(x))
        separate = a * grad_of(f) + b * grad_of(g)
        np.testing.assert_allclose(combined, separate, atol=1e-4)

    def test_multiple_uses_accumulate(self):
        v = R.Variable(np.float32(3.0))
        with R.GradientTape() as tape:
            x = v.value()
            y = x * x + x  # dy/dx = 2x + 1 = 7
        assert float(tape.gradient(y, v).numpy()) == pytest.approx(7.0)

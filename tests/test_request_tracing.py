"""Request-scoped tracing, windowed metrics, and the flight recorder.

The acceptance spine of the observability tentpole: one request
submitted through :mod:`repro.serving` that takes the co-execution path
must leave a *single* causally-linked flow — queue wait, dispatch,
symbolic fragments, imperative gap — sharing one ``trace_id``, with the
fragment/gap spans parented under the dispatch span.  Around it:
``WindowedHistogram`` rotation and percentile math (injectable clock,
no sleeps), flight-recorder retention of the slowest and all
failed/fallback/rejected requests, rejected-request latency accounting,
the :class:`StatsBundle` tuple-compat contract, and a live HTTP scrape
of ``/metrics`` + ``/health``.
"""

import json
import threading
import time
import urllib.request

import numpy as np
import pytest

import repro as R
from repro import janus
from repro import observability as obs
from repro.observability import reqtrace
from repro.observability.cli import (StatsBundle, load_stats,
                                     write_stats_json)
from repro.observability.httpstat import StatsServer
from repro.observability.metrics import (METRICS, Histogram,
                                         MetricsRegistry,
                                         WindowedHistogram)
from repro.observability.reqtrace import (RECORDER, FlightRecorder,
                                          RequestContext)
from repro.observability.serving import SERVING, ServingStats
from repro.serving import Server, ServerOverloaded, ServingConfig


@pytest.fixture(autouse=True)
def _clean():
    obs.clear()
    obs.set_trace_level(0)
    saved_metrics = obs.set_metrics_enabled(False)
    saved_recorder = RECORDER.enabled
    RECORDER.set_enabled(True)
    yield
    obs.clear()
    obs.set_trace_level(0)
    obs.set_metrics_enabled(saved_metrics)
    RECORDER.set_enabled(saved_recorder)


class _FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


# ---------------------------------------------------------------------------
# WindowedHistogram
# ---------------------------------------------------------------------------

class TestWindowedHistogram:
    def test_cumulative_view_is_a_plain_histogram(self):
        hist = WindowedHistogram(window_s=60.0, slices=6)
        for value in (0.001, 0.002, 0.004):
            hist.observe(value)
        assert hist.count == 3
        assert hist.min == 0.001 and hist.max == 0.004
        assert hist.percentile(50) > 0.0

    def test_window_rotation_expires_old_slices(self):
        clock = _FakeClock()
        hist = WindowedHistogram(window_s=6.0, slices=3, clock=clock)
        hist.observe(0.001)                   # slice seq 0
        clock.t = 2.5
        hist.observe(0.002)                   # slice seq 1
        assert hist.window().count == 2
        # Advance past the window: both slices expire, cumulative stays.
        clock.t = 20.0
        assert hist.window().count == 0
        assert hist.count == 2
        hist.observe(0.003)
        assert hist.window().count == 1

    def test_slot_reuse_resets_stale_slice(self):
        clock = _FakeClock()
        hist = WindowedHistogram(window_s=3.0, slices=3, clock=clock)
        hist.observe(0.001)                   # seq 0 -> slot 0
        clock.t = 3.1                         # seq 3 -> slot 0 again
        hist.observe(0.002)
        window = hist.window()
        # The stale seq-0 observation must not leak into the new slot.
        assert window.count == 1
        assert window.max == 0.002

    def test_window_percentiles_merge_across_slices(self):
        clock = _FakeClock()
        hist = WindowedHistogram(window_s=10.0, slices=5, clock=clock)
        for i, value in enumerate([0.001] * 50 + [0.1] * 50):
            clock.t = i * 0.1                 # spread over ~5 slices
            hist.observe(value)
        stats = hist.window_percentiles()
        assert stats["count"] == 100
        assert stats["p50"] <= 0.01
        assert stats["p99"] >= 0.05

    def test_snapshot_roundtrip_preserves_window(self):
        clock = _FakeClock()
        hist = WindowedHistogram(window_s=6.0, slices=3, clock=clock)
        hist.observe(0.001)
        clock.t = 20.0
        hist.observe(0.002)                   # only this one is recent
        snap = hist.snapshot()
        assert snap["count"] == 2
        assert snap["window"]["merged"]["count"] == 1
        restored = WindowedHistogram.from_snapshot(snap)
        assert restored.count == 2
        assert restored.window().count == 1
        assert restored.window_s == 6.0 and restored.slices == 3

    def test_registry_restores_windowed_type(self):
        registry = MetricsRegistry(enabled=True)
        registry.observe_windowed("dispatch.latency", 0.001)
        registry.observe("graph.run", 0.002)
        restored = MetricsRegistry.from_snapshot(registry.snapshot())
        assert isinstance(restored.get("dispatch.latency"),
                          WindowedHistogram)
        assert not isinstance(restored.get("graph.run"),
                              WindowedHistogram)

    def test_mixed_name_stays_plain(self):
        registry = MetricsRegistry(enabled=True)
        registry.observe("x", 0.001)
        registry.observe_windowed("x", 0.002)   # name already plain
        assert not isinstance(registry.get("x"), WindowedHistogram)
        assert registry.get("x").count == 2


# ---------------------------------------------------------------------------
# RequestContext mechanics
# ---------------------------------------------------------------------------

class TestRequestContext:
    def test_new_request_gates_on_tracer_and_recorder(self):
        RECORDER.set_enabled(False)
        assert reqtrace.new_request("r") is None
        RECORDER.set_enabled(True)
        assert isinstance(reqtrace.new_request("r"), RequestContext)
        RECORDER.set_enabled(False)
        obs.set_trace_level(1)
        assert isinstance(reqtrace.new_request("r"), RequestContext)

    def test_tracer_events_are_annotated_inside_request(self):
        obs.set_trace_level(1)
        ctx = reqtrace.new_request("r")
        with reqtrace.using(ctx):
            obs.TRACER.instant("cache_hit", "fn", hits=1)
        outside = obs.TRACER
        outside.instant("cache_hit", "fn", hits=2)
        annotated = [e for e in obs.TRACER.events
                     if (e.args or {}).get("trace_id")]
        assert len(annotated) == 1
        assert annotated[0].args["trace_id"] == ctx.trace_id
        assert annotated[0].args["span_id"] >= 1
        # ...and mirrored into the request's bounded capture.
        assert len(ctx.events) == 1

    def test_span_nesting_links_parents(self):
        obs.set_trace_level(1)
        ctx = reqtrace.new_request("r")
        with reqtrace.using(ctx):
            with reqtrace.span("serve_dispatch", "outer") as outer:
                with reqtrace.span("coexec_fragment", "inner") as inner:
                    pass
        spans = {e.name: e for e in obs.TRACER.events if e.ph == "X"}
        assert spans["inner"].args["parent_span"] == \
            spans["outer"].args["span_id"]
        assert spans["inner"].args["trace_id"] == ctx.trace_id

    def test_capture_works_with_tracing_off(self):
        assert obs.TRACER.level == 0
        ctx = reqtrace.new_request("r")
        with reqtrace.using(ctx):
            with reqtrace.span("serve_dispatch", "d"):
                reqtrace.note("fallback", "f", flag="fallback")
        assert len(obs.TRACER.events) == 0     # tracer untouched
        categories = [e["cat"] for e in ctx.events]
        assert "serve_dispatch" in categories
        assert "fallback" in categories
        assert "fallback" in ctx.flags

    def test_capture_is_bounded(self):
        ctx = reqtrace.new_request("r")
        with reqtrace.using(ctx):
            for i in range(RequestContext.MAX_EVENTS + 25):
                reqtrace.note("op", "n%d" % i)
        assert len(ctx.events) == RequestContext.MAX_EVENTS
        assert ctx.dropped == 25


# ---------------------------------------------------------------------------
# The acceptance criterion: one causally-linked flow per served request
# ---------------------------------------------------------------------------

def _sandwich_function():
    log = []
    w = np.array([1.0, 2.0, 3.0, 4.0], np.float32)

    def sandwich(x):
        y = x * 2.0
        y = y + w
        log.append(float(R.reduce_sum(y).numpy()))
        z = y * y
        z = z + y
        return R.reduce_sum(z)

    return janus.function(
        config=janus.JanusConfig(profile_runs=2,
                                 parallel_execution=False,
                                 coexecution=True))(sandwich)


class TestServedCoexecFlow:
    def test_single_flow_with_linked_spans(self):
        f = _sandwich_function()
        x = R.constant(np.array([0.5, 1.5, 2.5, 3.5], np.float32))
        for _ in range(5):                     # profile + install plan
            f(x)
        assert f.coexec_plan is not None

        obs.TRACER.clear()
        obs.set_trace_level(1)
        with Server(ServingConfig(max_batch_size=1)) as server:
            server.register("sandwich", f, batchable=False)
            result = server.call("sandwich", x)
        obs.set_trace_level(0)
        assert result is not None

        flows = {}
        for event in obs.TRACER.events:
            trace_id = (event.args or {}).get("trace_id")
            if trace_id:
                flows.setdefault(trace_id, []).append(event)
        assert len(flows) == 1, "one request must yield one flow"
        (trace_id, events), = flows.items()

        by_cat = {}
        for event in events:
            by_cat.setdefault(event.category, []).append(event)
        # >= 4 causally-linked spans: queue, dispatch, fragment(s), gap.
        assert "serve_queue" in by_cat
        assert "serve_dispatch" in by_cat
        assert len(by_cat.get("coexec_fragment", ())) >= 1
        assert len(by_cat.get("coexec_gap", ())) >= 1
        assert len(events) >= 4

        dispatch = by_cat["serve_dispatch"][0]
        for category in ("coexec_fragment", "coexec_gap"):
            for span in by_cat[category]:
                assert span.args["parent_span"] == \
                    dispatch.args["span_id"], (category, span.args)

        # The chrome-trace export carries the linkage.
        chrome = obs.chrome_trace_events()
        linked = [e for e in chrome
                  if e.get("args", {}).get("trace_id") == trace_id]
        assert len(linked) >= 4

        # ...and the flight recorder kept the request as an exemplar.
        recent = RECORDER.recent()
        assert any(s["trace_id"] == trace_id and s["outcome"] == "ok"
                   for s in recent)

    def test_recorder_captures_flow_with_tracing_off(self):
        f = _sandwich_function()
        x = R.constant(np.array([0.5, 1.5, 2.5, 3.5], np.float32))
        for _ in range(5):
            f(x)
        assert f.coexec_plan is not None
        assert obs.TRACER.level == 0

        with Server(ServingConfig(max_batch_size=1)) as server:
            server.register("sandwich", f, batchable=False)
            server.call("sandwich", x)
        assert len(obs.TRACER.events) == 0
        summary = RECORDER.recent()[-1]
        categories = {e["cat"] for e in summary["events"]}
        assert {"serve_queue", "serve_dispatch",
                "coexec_fragment", "coexec_gap"} <= categories
        assert summary["duration_s"] > 0.0


# ---------------------------------------------------------------------------
# Flight recorder
# ---------------------------------------------------------------------------

def _finished(recorder, name, duration, outcome="ok", flags=()):
    ctx = RequestContext(name)
    ctx.started = time.perf_counter() - duration
    for item in flags:
        ctx.flags.add(item)
    ctx.outcome = outcome
    ctx.detail = None
    ctx.duration = time.perf_counter() - ctx.started
    recorder.record(ctx)
    return ctx


class TestFlightRecorder:
    def test_retains_n_slowest(self):
        recorder = FlightRecorder(keep_slowest=2)
        for name, duration in (("a", 0.01), ("b", 0.5), ("c", 0.001),
                               ("d", 0.3), ("e", 0.002)):
            _finished(recorder, name, duration)
        slowest = recorder.slowest()
        assert [s["name"] for s in slowest] == ["b", "d"]
        assert recorder.completed == 5

    def test_retains_all_failed_and_flagged(self):
        recorder = FlightRecorder(keep_slowest=1)
        _finished(recorder, "ok-fast", 0.001)
        _finished(recorder, "boom", 0.001, outcome="error")
        _finished(recorder, "fell-back", 0.002, flags=("fallback",))
        _finished(recorder, "bounced", 0.0001, outcome="rejected")
        failed = recorder.failed()
        assert [s["name"] for s in failed] == \
            ["boom", "fell-back", "bounced"]
        assert recorder.failures == 3

    def test_snapshot_roundtrip(self):
        recorder = FlightRecorder(keep_slowest=2)
        _finished(recorder, "slow", 0.2)
        _finished(recorder, "bad", 0.01, outcome="error")
        restored = FlightRecorder.from_snapshot(recorder.snapshot())
        assert restored.completed == 2 and restored.failures == 1
        assert [s["name"] for s in restored.slowest()] == ["slow", "bad"]
        assert [s["name"] for s in restored.failed()] == ["bad"]
        assert not restored.enabled    # restored recorders are read-only

    def test_disabled_recorder_records_nothing(self):
        recorder = FlightRecorder()
        recorder.set_enabled(False)
        _finished(recorder, "r", 0.01)
        assert recorder.completed == 0
        assert recorder.slowest() == []


# ---------------------------------------------------------------------------
# Rejected requests (satellite)
# ---------------------------------------------------------------------------

class TestRejectedRequests:
    def test_reject_lands_in_windowed_latency(self):
        stats = ServingStats()
        stats.record_enqueue(0)
        stats.record_reject(0.0005)
        rejected = stats.request_latency["rejected"]
        assert isinstance(rejected, WindowedHistogram)
        assert rejected.count == 1
        assert rejected.window().count == 1
        assert stats.rejection_rate == pytest.approx(0.5)

    def test_server_overload_counts_and_retains(self):
        release = threading.Event()
        started = threading.Event()

        def slow(x):
            started.set()
            release.wait(10.0)
            return x

        before = SERVING.rejected
        with Server(ServingConfig(max_batch_size=1,
                                  max_queue_depth=1)) as server:
            server.register("slow", slow, batchable=False)
            x = R.constant(np.ones(2, np.float32))
            blocker = threading.Thread(
                target=lambda: server.call("slow", x), daemon=True)
            blocker.start()
            assert started.wait(5.0)
            # Dispatcher is stuck in slow(); this fills the queue...
            filler = threading.Thread(
                target=lambda: server.call("slow", x), daemon=True)
            filler.start()
            deadline = time.time() + 5.0
            while time.time() < deadline:
                endpoint = server._endpoints["slow"]
                with endpoint.cond:
                    if len(endpoint.queue) >= 1:
                        break
                time.sleep(0.01)
            # ...and this one must bounce at the admission bound.
            with pytest.raises(ServerOverloaded):
                server.call("slow", x)
            release.set()
            blocker.join(5.0)
            filler.join(5.0)
        assert SERVING.rejected == before + 1
        assert SERVING.request_latency["rejected"].count >= 1
        rejected = [s for s in RECORDER.failed()
                    if s["outcome"] == "rejected"]
        assert rejected and "rejected" in rejected[0]["flags"]


# ---------------------------------------------------------------------------
# StatsBundle (satellite)
# ---------------------------------------------------------------------------

class TestStatsBundle:
    def test_tuple_unpacking_compat(self, tmp_path):
        obs.set_metrics_enabled(True)
        METRICS.observe("graph.run", 0.001)
        path = write_stats_json(str(tmp_path / "stats.json"))
        bundle = load_stats(path)
        metrics, health, counters, serving, diskcache = bundle
        assert metrics is bundle.metrics
        assert serving is bundle.serving
        assert len(bundle) == 5
        assert bundle[4] is bundle.diskcache
        assert metrics.get("graph.run").count == 1
        assert isinstance(bundle.requests, FlightRecorder)

    def test_legacy_bundle_loads_with_empty_new_sections(self, tmp_path):
        legacy = {
            "format": "janus-stats/1",
            "metrics": {"graph.run": Histogram().snapshot()},
            "health": {},
            "counters": {"counters": {"x": 3}, "timers": {}},
            # no serving / diskcache / requests keys at all
        }
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps(legacy))
        bundle = load_stats(str(path))
        assert bundle.serving.requests == 0
        assert bundle.requests.completed == 0
        assert bundle.counters.get("x") == 3
        for hist in bundle.serving.request_latency.values():
            assert hist.count == 0

    def test_legacy_serving_snapshot_without_latency(self):
        snap = {"requests": 4, "rejected": 1,
                "queue_wait": Histogram().snapshot()}
        stats = ServingStats.from_snapshot(snap)
        assert stats.requests == 4
        assert stats.request_latency["ok"].count == 0
        assert stats.rejection_rate == pytest.approx(0.2)


# ---------------------------------------------------------------------------
# Live scrape endpoint
# ---------------------------------------------------------------------------

def _get(url):
    with urllib.request.urlopen(url, timeout=10.0) as resp:
        return resp.read().decode("utf-8")


class TestHttpstat:
    def test_metrics_health_and_requests_scrape(self):
        obs.set_metrics_enabled(True)
        f = _sandwich_function()
        x = R.constant(np.array([0.5, 1.5, 2.5, 3.5], np.float32))
        with Server(ServingConfig(max_batch_size=1)) as server:
            server.register("sandwich", f, batchable=False)
            for _ in range(6):
                server.call("sandwich", x)
        with StatsServer(port=0) as stats:
            metrics_text = _get(stats.url + "/metrics")
            health = json.loads(_get(stats.url + "/health"))
            requests = json.loads(_get(stats.url + "/requests"))
            index = _get(stats.url + "/")
        samples = [line for line in metrics_text.splitlines()
                   if line and not line.startswith("#")]
        assert samples, "live /metrics must serve samples"
        assert any(line.startswith("janus_serving_requests_total")
                   for line in samples)
        assert health["status"] == "ok"
        assert any(fn["name"] == "sandwich"
                   for fn in health["functions"])
        assert health["serving"]["requests"] >= 6
        assert "request_latency_ok_window" in health["serving"]
        assert requests["completed"] >= 6
        assert "/metrics" in index

    def test_unknown_path_is_404(self):
        with StatsServer(port=0) as stats:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(stats.url + "/nope")
            assert excinfo.value.code == 404

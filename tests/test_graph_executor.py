"""Graph executor: feeds, commits, all-or-nothing aborts, parallelism."""

import numpy as np
import pytest

import repro as R
from repro.errors import AssumptionFailed, ExecutionError
from repro.graph import GraphBuilder, GraphExecutor
from repro.graph.core import GraphFunction
from repro.ops import api
from repro.tensor import PyRef


class TestBasicExecution:
    def test_feed_and_fetch(self):
        b = GraphBuilder()
        with b:
            x = b.placeholder("x", shape=(3,), dtype=R.float32)
            b.mark_outputs([api.mul(x, 2.0)])
        out, = GraphExecutor(b.graph).run([np.array([1, 2, 3], np.float32)])
        np.testing.assert_array_equal(out, [2, 4, 6])

    def test_wrong_feed_count(self):
        b = GraphBuilder()
        with b:
            b.placeholder("x", shape=(), dtype=R.float32)
            b.mark_outputs([b.convert(0.0)])
        with pytest.raises(ExecutionError):
            GraphExecutor(b.graph).run([])

    def test_multi_output_op(self):
        b = GraphBuilder()
        with b:
            x = b.placeholder("x", shape=(4, 2), dtype=R.float32)
            lo, hi = api.split(x, 2, axis=0)
            b.mark_outputs([lo, hi])
        ex = GraphExecutor(b.graph)
        lo_v, hi_v = ex.run([np.arange(8, dtype=np.float32).reshape(4, 2)])
        assert lo_v.shape == (2, 2) and hi_v[0, 0] == 4

    def test_executor_reusable_across_runs(self):
        b = GraphBuilder()
        with b:
            x = b.placeholder("x", shape=(), dtype=R.float32)
            b.mark_outputs([api.add(x, 1.0)])
        ex = GraphExecutor(b.graph)
        assert ex.run([np.float32(1.0)])[0] == 2.0
        assert ex.run([np.float32(5.0)])[0] == 6.0


class TestDeferredState:
    def test_variable_commit_on_success(self):
        v = R.Variable(np.float32(0.0))
        b = GraphBuilder()
        with b:
            b.assign_variable(v, 42.0)
            b.mark_outputs([b.convert(0.0)])
        GraphExecutor(b.graph).run([])
        assert float(v.numpy()) == 42.0

    def test_read_after_write_sees_write(self):
        v = R.Variable(np.float32(10.0))
        b = GraphBuilder()
        with b:
            b.assign_variable(v, 1.0)
            out = api.add(b.read_variable(v), 0.5)
            b.mark_outputs([out])
        out, = GraphExecutor(b.graph).run([])
        assert out == pytest.approx(1.5)

    def test_assert_failure_aborts_before_commit(self):
        """The all-or-nothing guarantee of paper section 3.2."""
        v = R.Variable(np.float32(7.0))
        holder = type("S", (), {"attr": 1.0})()
        b = GraphBuilder()
        with b:
            pred = b.placeholder("p", shape=(), dtype=R.bool_)
            b.assign_variable(v, 99.0)
            b.py_set_attr(PyRef(holder), "attr", 99.0)
            guard = api.assert_that(pred, message="boom")
            b.mark_outputs([b.convert(0.0)])
        ex = GraphExecutor(b.graph)
        with pytest.raises(AssumptionFailed):
            ex.run([np.bool_(False)])
        # Nothing was mutated.
        assert float(v.numpy()) == 7.0
        assert holder.attr == 1.0
        # A successful run commits both.
        ex.run([np.bool_(True)])
        assert float(v.numpy()) == 99.0
        assert float(np.asarray(holder.attr.numpy()
                     if hasattr(holder.attr, "numpy")
                     else holder.attr)) == 99.0

    def test_py_attr_local_copy_read_back(self):
        holder = type("S", (), {})()
        holder.state = R.constant(np.float32(5.0))
        b = GraphBuilder()
        with b:
            first = b.py_get_attr(PyRef(holder), "state",
                                  expected=("tensor", R.float32,
                                            R.Shape(())))
            b.py_set_attr(PyRef(holder), "state", api.add(first, 1.0))
            second = b.py_get_attr(PyRef(holder), "state")
            b.mark_outputs([second])
        out, = GraphExecutor(b.graph).run([])
        assert out == pytest.approx(6.0)       # read saw the local copy
        assert float(holder.state.numpy()) == pytest.approx(6.0)

    def test_heap_writeback_produces_eager_tensor(self):
        holder = type("S", (), {})()
        holder.x = R.constant(np.float32(1.0))
        b = GraphBuilder()
        with b:
            b.py_set_attr(PyRef(holder), "x", 3.0)
            b.mark_outputs([b.convert(0.0)])
        GraphExecutor(b.graph).run([])
        assert isinstance(holder.x, R.Tensor)

    def test_expected_tensor_shape_violation(self):
        holder = type("S", (), {})()
        holder.state = R.constant(np.zeros((4, 8), np.float32))
        b = GraphBuilder()
        with b:
            out = b.py_get_attr(PyRef(holder), "state",
                                expected=("tensor", R.float32,
                                          R.Shape((4, 8))))
            b.mark_outputs([out])
        ex = GraphExecutor(b.graph)
        ex.run([])  # matches
        holder.state = R.constant(np.zeros((3, 8), np.float32))
        with pytest.raises(AssumptionFailed):
            ex.run([])

    def test_expected_const_guard(self):
        holder = type("S", (), {"k": 2})()
        from repro.tensor import TensorValue
        b = GraphBuilder()
        with b:
            b.py_get_attr(PyRef(holder), "k",
                          expected=("const", R.int64,
                                    TensorValue.of(2).array))
            b.mark_outputs([b.convert(0.0)])
        ex = GraphExecutor(b.graph)
        ex.run([])
        holder.k = 3
        with pytest.raises(AssumptionFailed):
            ex.run([])


class TestFunctionalControlFlow:
    def _make_branch(self, fn, name):
        b = GraphBuilder(name=name)
        with b:
            x = b.placeholder("x", shape=(), dtype=R.float32)
            b.mark_outputs([fn(x)])
        return b.finalize_function(name)

    def test_cond_selects_branch(self):
        t = self._make_branch(lambda x: api.mul(x, 10.0), "t")
        f = self._make_branch(lambda x: api.neg(x), "f")
        b = GraphBuilder()
        with b:
            x = b.placeholder("x", shape=(), dtype=R.float32)
            out = b.cond(api.greater(x, 0.0), t, f, [x],
                         [(R.Shape(()), R.float32)])
            b.mark_outputs([out])
        ex = GraphExecutor(b.graph)
        assert ex.run([np.float32(2.0)])[0] == 20.0
        assert ex.run([np.float32(-2.0)])[0] == 2.0

    def test_while_loop_terminates_and_sums(self):
        cb = GraphBuilder()
        with cb:
            i = cb.placeholder("i", shape=(), dtype=R.int64)
            s = cb.placeholder("s", shape=(), dtype=R.float32)
            cb.mark_outputs([api.less(i, 4)])
        cond = cb.finalize_function("c")
        bb = GraphBuilder()
        with bb:
            i = bb.placeholder("i", shape=(), dtype=R.int64)
            s = bb.placeholder("s", shape=(), dtype=R.float32)
            bb.mark_outputs([api.add(i, 1),
                             api.add(s, api.cast(i, "float32"))])
        body = bb.finalize_function("b")
        b = GraphBuilder()
        with b:
            outs = b.while_loop(cond, body,
                                [b.convert(np.int64(0)),
                                 b.convert(np.float32(0.0))])
            b.mark_outputs([outs[1]])
        out, = GraphExecutor(b.graph).run([])
        assert out == pytest.approx(0 + 1 + 2 + 3)

    def test_while_loop_iteration_cap(self):
        cb = GraphBuilder()
        with cb:
            i = cb.placeholder("i", shape=(), dtype=R.int64)
            cb.mark_outputs([api.less(i, 10 ** 9)])
        cond = cb.finalize_function("c")
        bb = GraphBuilder()
        with bb:
            i = bb.placeholder("i", shape=(), dtype=R.int64)
            bb.mark_outputs([api.add(i, 1)])
        body = bb.finalize_function("b")
        b = GraphBuilder()
        with b:
            outs = b.while_loop(cond, body, [b.convert(np.int64(0))])
            b.mark_outputs([outs[0]])
        node = next(n for n in b.graph.nodes
                    if n.op_name == "while_loop")
        node.attrs["max_iterations"] = 50
        with pytest.raises(ExecutionError):
            GraphExecutor(b.graph).run([])

    def test_recursive_invoke(self):
        fib = GraphFunction("countdown")
        gb = GraphBuilder()
        with gb:
            n = gb.placeholder("n", shape=(), dtype=R.float32)
            base = GraphBuilder()
            with base:
                m = base.placeholder("n", shape=(), dtype=R.float32)
                base.mark_outputs([api.mul(m, 0.0)])
            base_f = base.finalize_function("base")
            rec = GraphBuilder()
            with rec:
                m = rec.placeholder("n", shape=(), dtype=R.float32)
                inner = rec.invoke(fib, [api.sub(m, 1.0)],
                                   [(R.Shape(()), R.float32)])
                rec.mark_outputs([api.add(m, inner)])
            rec_f = rec.finalize_function("rec")
            out = gb.cond(api.less_equal(n, 0.0), base_f, rec_f, [n],
                          [(R.Shape(()), R.float32)])
            gb.mark_outputs([out])
        fib.finalize(gb.graph)
        b = GraphBuilder()
        with b:
            n = b.placeholder("n", shape=(), dtype=R.float32)
            out = b.invoke(fib, [n], [(R.Shape(()), R.float32)])
            b.mark_outputs([out])
        out, = GraphExecutor(b.graph).run([np.float32(4.0)])
        assert out == pytest.approx(4 + 3 + 2 + 1)


class TestParallelExecution:
    def test_parallel_matches_sequential(self):
        rng = np.random.default_rng(0)
        w1 = rng.normal(size=(16, 16)).astype(np.float32)
        b = GraphBuilder()
        with b:
            x = b.placeholder("x", shape=(4, 16), dtype=R.float32)
            heads = [api.matmul(x, b.convert(w1 * (i + 1)))
                     for i in range(4)]
            total = heads[0]
            for h in heads[1:]:
                total = api.add(total, h)
            b.mark_outputs([total])
        feed = [rng.normal(size=(4, 16)).astype(np.float32)]
        seq = GraphExecutor(b.graph, parallel=False).run(list(feed))[0]
        par = GraphExecutor(b.graph, parallel=True).run(list(feed))[0]
        np.testing.assert_allclose(seq, par, atol=1e-5)

    def test_parallel_assert_failure_still_aborts(self):
        v = R.Variable(np.float32(1.0))
        b = GraphBuilder()
        with b:
            x = b.placeholder("x", shape=(8, 8), dtype=R.float32)
            m1 = api.matmul(x, x)
            m2 = api.matmul(x, api.neg(x))
            api.assert_that(b.convert(False), message="always fails")
            b.assign_variable(v, 2.0)
            b.mark_outputs([api.add(m1, m2)])
        ex = GraphExecutor(b.graph, parallel=True)
        with pytest.raises(AssumptionFailed):
            ex.run([np.zeros((8, 8), np.float32)])
        assert float(v.numpy()) == 1.0

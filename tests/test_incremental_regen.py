"""Incremental regeneration after assumption failures.

When an assumption breaks, the runtime relaxes it and regenerates the
graph.  With ``incremental_regeneration`` on, unchanged cond/loop
regions splice from the fragment cache and argument specs seed from the
retired artifact; with it off, every region reconverts from the AST.
Either way the regenerated graph must match pure imperative execution
bit-for-bit — these tests force branch, loop, and attribute failures
and check exactly that, plus that the fragment machinery engages (or
stays idle) when configured.
"""

import numpy as np
import pytest

import repro as R
from repro import janus
from repro.janus.fragments import Fragment, FragmentCache, FragmentRecorder
from repro.observability import COUNTERS


def strict(**kw):
    return janus.JanusConfig(fail_on_not_convertible=True,
                             parallel_execution=False, **kw)


def counters():
    return dict(COUNTERS.snapshot()["counters"])


def delta(before, key):
    return counters().get(key, 0) - before.get(key, 0)


BOTH_MODES = pytest.mark.parametrize("incremental", [True, False],
                                     ids=["incremental", "full"])


@BOTH_MODES
class TestForcedFailuresMatchImperative:
    def test_branch_failure(self, incremental):
        cfg = strict(incremental_regeneration=incremental)

        @janus.function(config=cfg)
        def f(x, gate):
            if R.reduce_sum(gate) > 0.0:
                y = x * 2.0 + 1.0
            else:
                y = x - 100.0
            return y

        x = R.constant(np.linspace(-1, 1, 8).astype(np.float32))
        # Varying positive gates: the direction is stable, so the branch
        # unrolls behind an AssertOp.
        for k in range(5):
            f(x, R.constant(np.full(1, 1.0 + k, np.float32)))
        assert f.stats["graph_runs"] > 0

        neg = R.constant(-np.ones(1, np.float32))
        out = f(x, neg)                       # assert fires -> fallback
        assert f.stats["fallbacks"] == 1
        assert np.array_equal(out.numpy(), f.func(x, neg).numpy())

        graph_runs = f.stats["graph_runs"]
        out_neg = f(x, neg)                   # regenerated, dynamic cond
        out_pos = f(x, R.constant(np.full(1, 9.0, np.float32)))
        assert f.stats["graph_runs"] >= graph_runs + 2
        assert np.array_equal(out_neg.numpy(), f.func(x, neg).numpy())
        assert np.array_equal(
            out_pos.numpy(),
            f.func(x, R.constant(np.full(1, 9.0, np.float32))).numpy())
        entry = next(iter(f.cache._entries.values()))
        ops = {n.op_name for n in entry.generated.graph.nodes}
        assert "cond" in ops                  # the dirty region went dynamic

    def test_loop_failure(self, incremental):
        cfg = strict(incremental_regeneration=incremental)

        @janus.function(config=cfg)
        def f(x, n):
            i = R.constant(0.0)
            total = x * 0.0
            while R.reduce_sum(i) < R.reduce_sum(n):
                total = total + x * 2.0
                i = i + 1.0
            return total

        x = R.constant(np.linspace(0, 1, 6).astype(np.float32))
        # Varying bounds with a stable trip count of 3: the loop unrolls
        # behind a trip-count assertion.
        for k in range(5):
            f(x, R.constant(np.full(1, 2.5 + 0.1 * k, np.float32)))
        assert f.stats["graph_runs"] > 0

        five = R.constant(np.full(1, 5.0, np.float32))
        out = f(x, five)                      # trip count changes
        assert f.stats["fallbacks"] == 1
        assert np.array_equal(out.numpy(), f.func(x, five).numpy())

        graph_runs = f.stats["graph_runs"]
        out5 = f(x, five)                     # regenerated, dynamic loop
        three = R.constant(np.full(1, 3.0, np.float32))
        out3 = f(x, three)
        assert f.stats["graph_runs"] >= graph_runs + 2
        assert np.array_equal(out5.numpy(), f.func(x, five).numpy())
        assert np.array_equal(out3.numpy(), f.func(x, three).numpy())

    def test_attr_failure(self, incremental):
        cfg = strict(incremental_regeneration=incremental)
        knob = type("K", (), {})()
        knob.gain = 1.5

        @janus.function(config=cfg)
        def f(x):
            return R.tanh(x * knob.gain) + x

        x = R.constant(np.linspace(-2, 2, 10).astype(np.float32))
        for _ in range(5):
            f(x)
        assert f.stats["graph_runs"] > 0

        knob.gain = 0.25                      # break the speculated const
        out = f(x)
        assert f.stats["fallbacks"] == 1
        assert np.array_equal(out.numpy(), f.func(x).numpy())
        out = f(x)                            # regenerated, gain dynamic
        assert np.array_equal(out.numpy(), f.func(x).numpy())
        knob.gain = -3.0                      # relaxed: no further fallback
        out = f(x)
        assert f.stats["fallbacks"] == 1
        assert np.array_equal(out.numpy(), f.func(x).numpy())


class TestFragmentReuse:
    def _build(self, incremental):
        cfg = strict(incremental_regeneration=incremental)
        knob = type("K", (), {})()
        knob.gain = 1.0

        @janus.function(config=cfg)
        def f(x, gate):
            h = R.tanh(x * knob.gain)
            if R.reduce_sum(gate) > 0.0:
                y = h * 2.0
            else:
                y = h * 0.5
            return y

        return f, knob

    def _warm_dynamic_branch(self, f, x):
        # Alternating gate signs: the branch converts as a dynamic cond
        # on the first generation, recording a reusable fragment.
        for k in range(5):
            sign = 1.0 if k % 2 == 0 else -1.0
            f(x, R.constant(np.full(1, sign * (1.0 + k), np.float32)))

    def test_unrelated_relaxation_reuses_branch_fragment(self):
        f, knob = self._build(incremental=True)
        x = R.constant(np.linspace(-1, 1, 8).astype(np.float32))
        self._warm_dynamic_branch(f, x)
        assert f.stats["graphs_generated"] == 1
        assert len(f._fragment_cache) >= 1

        knob.gain = 2.0                       # dirty only the prologue
        gate = R.constant(np.ones(1, np.float32))
        f(x, gate)                            # fallback + relax
        assert f.stats["fallbacks"] == 1

        before = counters()
        out = f(x, gate)                      # incremental regeneration
        assert f.stats["graphs_generated"] == 2
        assert delta(before, "graphgen.fragments_reused") >= 1
        assert np.array_equal(out.numpy(), f.func(x, gate).numpy())
        neg = R.constant(-np.ones(1, np.float32))
        assert np.array_equal(f(x, neg).numpy(), f.func(x, neg).numpy())

    def test_dirty_branch_is_reconverted_not_spliced(self):
        """A fragment whose own site failed must not be reused."""
        f, _knob = self._build(incremental=True)
        x = R.constant(np.linspace(-1, 1, 8).astype(np.float32))
        # Stable positive gates: the branch speculates (no fragment).
        for k in range(5):
            f(x, R.constant(np.full(1, 1.0 + k, np.float32)))
        neg = R.constant(-np.ones(1, np.float32))
        f(x, neg)                             # branch assert fails
        assert f.stats["fallbacks"] == 1

        before = counters()
        out = f(x, neg)                       # regeneration: branch dirty
        assert delta(before, "graphgen.fragments_reused") == 0
        assert delta(before, "graphgen.fragments_reconverted") >= 1
        assert np.array_equal(out.numpy(), f.func(x, neg).numpy())

    def test_off_mode_keeps_fragment_machinery_idle(self):
        f, knob = self._build(incremental=False)
        x = R.constant(np.linspace(-1, 1, 8).astype(np.float32))
        before = counters()
        self._warm_dynamic_branch(f, x)
        knob.gain = 2.0
        gate = R.constant(np.ones(1, np.float32))
        f(x, gate)
        out = f(x, gate)                      # full regeneration
        assert f.stats["graphs_generated"] == 2
        assert len(f._fragment_cache) == 0
        assert delta(before, "graphgen.fragments_reused") == 0
        assert delta(before, "graphgen.fragments_reconverted") == 0
        assert delta(before, "graphgen.specs_seeded") == 0
        assert np.array_equal(out.numpy(), f.func(x, gate).numpy())

    def test_modes_agree_bit_for_bit(self):
        """The config gate changes latency, never results."""
        outs = {}
        for incremental in (True, False):
            f, knob = self._build(incremental)
            x = R.constant(np.linspace(-1, 1, 8).astype(np.float32))
            self._warm_dynamic_branch(f, x)
            knob.gain = 2.0
            gate = R.constant(np.ones(1, np.float32))
            f(x, gate)
            outs[incremental] = f(x, gate).numpy()
        assert np.array_equal(outs[True], outs[False])


class TestFragmentCacheMechanics:
    def _frag(self, key="site"):
        return Fragment("cond", key, FragmentRecorder(), {}, [])

    def test_variant_list_is_mru_bounded(self):
        cache = FragmentCache()
        frags = [self._frag() for _ in range(FragmentCache.MAX_VARIANTS + 3)]
        for frag in frags:
            cache.store("site", frag)
        # Newest first, oldest evicted, bound respected.
        assert len(cache) == FragmentCache.MAX_VARIANTS
        expect = list(reversed(frags))[:FragmentCache.MAX_VARIANTS]
        assert list(cache.lookup("site")) == expect
        assert cache.stats["stores"] == len(frags)

    def test_touch_moves_variant_to_front(self):
        cache = FragmentCache()
        a, b, c = self._frag(), self._frag(), self._frag()
        for frag in (a, b, c):
            cache.store("site", frag)
        assert list(cache.lookup("site")) == [c, b, a]
        cache.touch("site", a)                 # hit on the oldest variant
        assert list(cache.lookup("site")) == [a, c, b]
        assert cache.stats["hits"] == 1
        # A touch for a fragment that was already evicted is a no-op.
        ghost = self._frag()
        cache.touch("site", ghost)
        assert list(cache.lookup("site")) == [a, c, b]

    def test_keys_are_independent(self):
        cache = FragmentCache()
        one, two = self._frag("one"), self._frag("two")
        cache.store("one", one)
        cache.store("two", two)
        assert list(cache.lookup("one")) == [one]
        assert list(cache.lookup("two")) == [two]
        assert cache.lookup("absent") == ()
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0

    def test_build_time_container_mutation_poisons_fragment(self):
        """A region whose conversion mutated a symbolic container must
        never be cached: splicing it back would skip the mutation replay.

        The appends here are arm-local (the list is created inside the
        dynamic branch arm and consumed there, via an unrolled loop), so
        the program is convertible and bit-exact — but the build-time
        ``SymSeq.append`` still poisons the active cond recorder.
        """
        cfg = strict(incremental_regeneration=True)
        knob = type("K", (), {})()
        knob.gain = 1.0

        @janus.function(config=cfg)
        def f(x, gate):
            h = R.tanh(x * knob.gain)
            if R.reduce_sum(gate) > 0.0:
                acc = [h * 2.0]
                for _k in range(2):
                    acc.append(acc[-1] * 2.0)
                y = acc[0] + acc[-1]
            else:
                y = h * 0.5
            return y

        x = R.constant(np.linspace(-1, 1, 8).astype(np.float32))
        # Alternating gate signs: the branch converts as a dynamic cond,
        # which would normally record a reusable fragment — but the true
        # arm's appends poison the recorder.
        for k in range(5):
            sign = 1.0 if k % 2 == 0 else -1.0
            gate_k = R.constant(np.full(1, sign * (1.0 + k), np.float32))
            out = f(x, gate_k)
            assert np.array_equal(out.numpy(), f.func(x, gate_k).numpy())
        assert f.stats["graphs_generated"] == 1
        assert len(f._fragment_cache) == 0     # poisoned, not stored

        knob.gain = 2.0                        # dirty only the prologue
        gate = R.constant(np.ones(1, np.float32))
        f(x, gate)                             # fallback + relax
        assert f.stats["fallbacks"] == 1

        before = counters()
        out = f(x, gate)                       # regeneration: no splice
        assert delta(before, "graphgen.fragments_reused") == 0
        assert delta(before, "graphgen.fragments_reconverted") >= 1
        assert np.array_equal(out.numpy(), f.func(x, gate).numpy())
        neg = R.constant(-np.ones(1, np.float32))
        assert np.array_equal(f(x, neg).numpy(), f.func(x, neg).numpy())

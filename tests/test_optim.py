"""Optimizers: convergence, slot state, and eager/graph-mode parity."""

import numpy as np
import pytest

import repro as R
from repro import nn
from repro.graph import GraphBuilder, GraphExecutor, autodiff
from repro.ops import api


def quadratic_converges(optimizer, steps=120, tol=0.1):
    """Minimize (w - 3)^2 from w=0; return the final w."""
    w = R.Variable(np.float32(0.0))
    for _ in range(steps):
        with R.GradientTape() as tape:
            loss = api.square(api.sub(w.value(), 3.0))
        g = tape.gradient(loss, w)
        optimizer.apply_gradients([(g, w)])
    return float(w.numpy())


class TestConvergence:
    @pytest.mark.parametrize("make_opt", [
        lambda: nn.SGD(0.1),
        lambda: nn.Momentum(0.02, 0.9),
        lambda: nn.RMSProp(0.05),
        lambda: nn.Adam(0.1),
    ])
    def test_reaches_minimum(self, make_opt):
        assert quadratic_converges(make_opt()) == pytest.approx(3.0,
                                                                abs=0.15)

    def test_none_gradients_skipped(self):
        w = R.Variable(np.float32(1.0))
        nn.SGD(0.1).apply_gradients([(None, w)])
        assert float(w.numpy()) == 1.0


class TestSlots:
    def test_momentum_slot_created_per_variable(self):
        opt = nn.Momentum(0.1)
        a = R.Variable(np.zeros(2, np.float32))
        b = R.Variable(np.zeros(3, np.float32))
        g = R.constant(np.ones(2, np.float32))
        opt.apply_gradients([(g, a)])
        opt.apply_gradients([(R.constant(np.ones(3, np.float32)), b)])
        assert len(opt._slots) == 2
        assert opt.slot(a, "velocity").shape == R.Shape((2,))

    def test_slots_not_trainable(self):
        opt = nn.Adam(0.1)
        v = R.Variable(np.zeros(2, np.float32))
        opt.apply_gradients([(R.constant(np.ones(2, np.float32)), v)])
        assert not opt.slot(v, "m").trainable

    def test_adam_step_counter_advances(self):
        opt = nn.Adam(0.1)
        v = R.Variable(np.float32(0.0))
        g = R.constant(np.float32(1.0))
        opt.apply_gradients([(g, v)])
        opt.apply_gradients([(g, v)])
        assert float(opt._step.numpy()) == 2.0


class TestModeParity:
    @pytest.mark.parametrize("make_opt", [
        lambda: nn.SGD(0.05),
        lambda: nn.Momentum(0.05, 0.9),
        lambda: nn.Adam(0.05),
    ])
    def test_graph_update_equals_eager_update(self, make_opt):
        """The same optimizer code emits graph ops that apply the exact
        update the eager path applies — the mode-polymorphism the JANUS
        training path depends on."""
        x = np.random.default_rng(0).normal(size=(8, 2)).astype(np.float32)
        y = (x @ np.array([[1.0], [-2.0]], np.float32))

        def train_eagerly(opt, steps):
            w = R.Variable(np.zeros((2, 1), np.float32))
            for _ in range(steps):
                with R.GradientTape() as tape:
                    loss = api.reduce_mean(api.square(api.sub(
                        api.matmul(R.constant(x), w.value()),
                        R.constant(y))))
                g = tape.gradient(loss, w)
                opt.apply_gradients([(g, w)])
            return w.numpy()

        def train_graph(opt, steps):
            w = R.Variable(np.zeros((2, 1), np.float32))
            b = GraphBuilder()
            with b:
                xp = b.placeholder("x", shape=x.shape, dtype=R.float32)
                yp = b.placeholder("y", shape=y.shape, dtype=R.float32)
                loss = api.reduce_mean(api.square(api.sub(
                    api.matmul(xp, b.read_variable(w)), yp)))
                grads = autodiff.add_training_gradients(b, loss)
                opt.apply_gradients([(g, v)
                                     for v, g in grads.items()])
                b.mark_outputs([loss])
            ex = GraphExecutor(b.graph)
            for _ in range(steps):
                ex.run([x, y])
            return w.numpy()

        eager_w = train_eagerly(make_opt(), 10)
        graph_w = train_graph(make_opt(), 10)
        np.testing.assert_allclose(eager_w, graph_w, rtol=1e-4,
                                   atol=1e-6)

    def test_minimize_convenience(self):
        w = R.Variable(np.float32(0.0))
        opt = nn.SGD(0.1)
        for _ in range(100):
            opt.minimize(lambda: api.square(api.sub(w.value(), 2.0)))
        assert float(w.numpy()) == pytest.approx(2.0, abs=0.1)

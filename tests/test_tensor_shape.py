"""Shape: partial dimensions, lattice operations, broadcasting."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ShapeError
from repro.tensor.shape import Shape, broadcast_shapes

dims = st.lists(st.one_of(st.integers(0, 8), st.none()), max_size=4)
known_dims = st.lists(st.integers(1, 6), min_size=0, max_size=4)


class TestConstruction:
    def test_from_tuple(self):
        assert Shape((2, 3)).dims == (2, 3)

    def test_unknown_rank(self):
        assert Shape.unknown().rank is None

    def test_scalar(self):
        s = Shape.scalar()
        assert s.rank == 0 and s.is_fully_known

    def test_partial(self):
        s = Shape((None, 8))
        assert not s.is_fully_known
        assert s.rank == 2

    def test_negative_rejected(self):
        with pytest.raises(ShapeError):
            Shape((-1, 2))

    def test_of_passthrough(self):
        s = Shape((1,))
        assert Shape.of(s) is s


class TestQueries:
    def test_num_elements(self):
        assert Shape((2, 3, 4)).num_elements == 24

    def test_num_elements_partial(self):
        assert Shape((None, 3)).num_elements is None

    def test_as_tuple_partial_raises(self):
        with pytest.raises(ShapeError):
            Shape((None,)).as_tuple()

    def test_matches_value(self):
        assert Shape((None, 8)).matches_value((4, 8))
        assert not Shape((None, 8)).matches_value((4, 9))
        assert not Shape((None, 8)).matches_value((4,))
        assert Shape.unknown().matches_value((1, 2, 3))

    def test_compatibility(self):
        assert Shape((None, 8)).is_compatible_with(Shape((4, 8)))
        assert not Shape((3, 8)).is_compatible_with(Shape((4, 8)))
        assert Shape.unknown().is_compatible_with(Shape((4, 8)))

    def test_indexing_and_slicing(self):
        s = Shape((2, None, 4))
        assert s[0] == 2 and s[1] is None
        assert s[1:] == Shape((None, 4))

    def test_iteration(self):
        assert list(Shape((1, 2))) == [1, 2]

    def test_iterate_unknown_rank_raises(self):
        with pytest.raises(ShapeError):
            list(Shape.unknown())


class TestLattice:
    """The specialization hierarchy of paper figure 4."""

    def test_relax_exact_to_partial(self):
        # (4, 8) then (3, 8) -> (?, 8): the figure's example.
        assert Shape((4, 8)).relax_against(Shape((3, 8))) == \
            Shape((None, 8))

    def test_relax_covers_future_shapes(self):
        relaxed = Shape((4, 8)).relax_against(Shape((3, 8)))
        for batch in (2, 6, 100):
            assert relaxed.matches_value((batch, 8))

    def test_relax_rank_mismatch_goes_unknown(self):
        assert Shape((4, 8)).relax_against(Shape((4,))).rank is None

    def test_relax_identity(self):
        assert Shape((4, 8)).relax_against(Shape((4, 8))) == Shape((4, 8))

    def test_merge_refines(self):
        assert Shape((None, 8)).merge_with(Shape((4, None))) == \
            Shape((4, 8))

    def test_merge_conflict_raises(self):
        with pytest.raises(ShapeError):
            Shape((3,)).merge_with(Shape((4,)))

    @given(known_dims)
    def test_relax_is_idempotent(self, ds):
        s = Shape(ds)
        assert s.relax_against(s) == s

    @given(known_dims, known_dims)
    def test_relax_commutative(self, a, b):
        assert Shape(a).relax_against(Shape(b)) == \
            Shape(b).relax_against(Shape(a))

    @given(known_dims, known_dims)
    def test_relax_generalizes_both(self, a, b):
        joined = Shape(a).relax_against(Shape(b))
        if joined.dims is not None:
            assert joined.matches_value(tuple(a))
            assert joined.matches_value(tuple(b))

    @given(dims)
    def test_merge_with_unknown_is_identity(self, ds):
        s = Shape(ds)
        assert s.merge_with(Shape.unknown()) == s


class TestBroadcast:
    def test_simple(self):
        assert broadcast_shapes((2, 1), (1, 3)) == Shape((2, 3))

    def test_rank_padding(self):
        assert broadcast_shapes((3,), (2, 3)) == Shape((2, 3))

    def test_scalar(self):
        assert broadcast_shapes((), (4, 5)) == Shape((4, 5))

    def test_partial_dim(self):
        assert broadcast_shapes((None, 3), (1, 3)) == Shape((None, 3))

    def test_incompatible(self):
        with pytest.raises(ShapeError):
            broadcast_shapes((2,), (3,))

    @given(known_dims, known_dims)
    def test_matches_numpy(self, a, b):
        try:
            expected = np.broadcast_shapes(tuple(a), tuple(b))
        except ValueError:
            with pytest.raises(ShapeError):
                broadcast_shapes(a, b)
            return
        assert broadcast_shapes(a, b) == Shape(expected)

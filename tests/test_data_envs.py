"""Synthetic datasets and RL environments."""

import numpy as np
import pytest

from repro import data, envs


class TestImageDatasets:
    def test_mnist_like_shapes(self):
        ds = data.mnist_like(n=100, batch_size=32)
        images, labels = next(iter(ds.batches(shuffle=False)))
        assert images.shape == (32, 28, 28, 1)
        assert images.dtype == np.float32
        assert labels.dtype == np.int64
        assert labels.min() >= 0 and labels.max() < 10

    def test_last_batch_is_short(self):
        """Varying batch shapes exercise the relaxation path (Table 2)."""
        ds = data.mnist_like(n=70, batch_size=32)
        sizes = [b[0].shape[0] for b in ds.batches(shuffle=False)]
        assert sizes == [32, 32, 6]

    def test_drop_remainder(self):
        ds = data.ImageDataset(np.zeros((70, 4, 4, 1), np.float32),
                               np.zeros(70, np.int64), 32,
                               drop_remainder=True)
        sizes = [b[0].shape[0] for b in ds.batches(shuffle=False)]
        assert sizes == [32, 32]

    def test_classes_are_learnable_signal(self):
        """Same-class images correlate more than cross-class ones."""
        ds = data.mnist_like(n=200, batch_size=200, seed=1)
        images, labels = next(iter(ds.batches(shuffle=False)))
        flat = images.reshape(len(images), -1)

        def mean_corr(mask_a, mask_b):
            a = flat[mask_a][:20]
            b = flat[mask_b][:20]
            return np.mean([np.corrcoef(x, y)[0, 1]
                            for x in a[:5] for y in b[:5]])

        same = mean_corr(labels == 1, labels == 1)
        cross = mean_corr(labels == 1, labels == 4)
        assert same > cross

    def test_facades_pairs(self):
        ds = data.facades_like(n=8, batch_size=2, image_size=16)
        edges, photos = next(iter(ds.batches(shuffle=False)))
        assert edges.shape == (2, 16, 16, 1)
        assert photos.shape == (2, 16, 16, 3)


class TestTextData:
    def test_bptt_batch_shapes(self):
        corpus = data.ptb_like()
        x, y = next(corpus.bptt_batches(batch_size=10, seq_len=7))
        assert x.shape == (7, 10) and y.shape == (7, 10)

    def test_targets_are_shifted_inputs(self):
        corpus = data.markov_corpus(n_tokens=500, vocab_size=20, seed=2)
        batches = list(corpus.bptt_batches(batch_size=2, seq_len=5))
        x0, y0 = batches[0]
        x1, y1 = batches[1]
        np.testing.assert_array_equal(x0[1:], y0[:-1])
        np.testing.assert_array_equal(x1[0], y0[-1])

    def test_markov_structure_beats_uniform(self):
        """The chain has learnable transitions: the empirical bigram
        distribution is far from uniform."""
        corpus = data.markov_corpus(n_tokens=5000, vocab_size=10, seed=0)
        t = corpus.tokens
        counts = np.zeros((10, 10))
        for a, b in zip(t[:-1], t[1:]):
            counts[a, b] += 1
        rows = counts / np.maximum(counts.sum(axis=1, keepdims=True), 1)
        max_prob = rows.max(axis=1).mean()
        assert max_prob > 0.3  # uniform would be 0.1


class TestTrees:
    def test_tree_structure(self):
        trees = data.sst_like(n_trees=20, seed=1)
        for t in trees:
            assert t.label in (0, 1)
            assert t.size() >= 2 * 3 - 1  # at least min_leaves leaves

    def test_leaf_labels_match_word_polarity(self):
        trees = data.sst_like(n_trees=10, vocab_size=60, seed=2)

        def walk(node):
            if node.is_leaf:
                assert node.label == (1 if node.word >= 30 else 0)
            else:
                walk(node.left)
                walk(node.right)

        for t in trees:
            walk(t)

    def test_sizes_vary(self):
        trees = data.sst_like(n_trees=30, seed=3)
        assert len({t.size() for t in trees}) > 3

    def test_split(self):
        trees = data.sst_like(n_trees=40, seed=4)
        train, test = data.train_test_split(trees, 0.25, seed=0)
        assert len(train) + len(test) == 40
        assert len(test) == 10


class TestCartPole:
    def test_episode_structure(self):
        env = envs.CartPole(seed=0)
        obs = env.reset()
        assert obs.shape == (4,)
        steps = 0
        done = False
        while not done:
            obs, reward, done, _ = env.step(steps % 2)
            assert reward == 1.0
            steps += 1
        assert 1 <= steps <= 200

    def test_deterministic_given_seed(self):
        def rollout():
            env = envs.CartPole(seed=5)
            env.reset()
            trace = []
            done = False
            i = 0
            while not done:
                obs, _, done, _ = env.step(i % 2)
                trace.append(obs.copy())
                i += 1
            return np.array(trace)

        np.testing.assert_array_equal(rollout(), rollout())

    def test_pole_falls_without_control(self):
        env = envs.CartPole(seed=0, max_steps=500)
        env.reset()
        done = False
        steps = 0
        while not done:
            _, _, done, _ = env.step(1)  # constant push
            steps += 1
        assert steps < 200  # fell before the cap


class TestPongLite:
    def test_observation_shape(self):
        env = envs.PongLite(seed=0)
        obs = env.reset()
        assert obs.shape == (16, 16, 1)
        assert obs.max() == 1.0  # ball visible

    def test_episode_ends_after_rallies(self):
        env = envs.PongLite(seed=0, rallies=3)
        env.reset()
        rewards = []
        done = False
        steps = 0
        while not done and steps < 2000:
            _, r, done, _ = env.step(0)
            if r != 0:
                rewards.append(r)
            steps += 1
        assert done and len(rewards) == 3
        assert set(rewards) <= {1.0, -1.0}

    def test_tracking_policy_scores_better(self):
        def play(policy, seed=3):
            env = envs.PongLite(seed=seed, rallies=10)
            obs = env.reset()
            total = 0.0
            done = False
            while not done:
                action = policy(env)
                obs, r, done, _ = env.step(action)
                total += r
            return total

        random_score = play(lambda e: np.random.default_rng(0)
                            .integers(0, 3))
        def track(env):
            if env.ball[1] < env.paddle - 1:
                return 1
            if env.ball[1] > env.paddle + 1:
                return 2
            return 0
        tracking_score = play(track)
        assert tracking_score > random_score

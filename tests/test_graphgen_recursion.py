"""Recursive function conversion via InvokeOp (paper section 4.2.1).

The TreeNN pattern: recursion + base-case branching + heap reads on tree
nodes, including gradients through the recursion.
"""

import numpy as np
import pytest

import repro as R
from repro import janus, nn


def strict(**kw):
    return janus.JanusConfig(fail_on_not_convertible=True, **kw)


class Node:
    def __init__(self, value=None, left=None, right=None):
        self.value = value
        self.left = left
        self.right = right
        self.is_leaf = left is None


def leaf(v):
    return Node(value=R.constant(np.float32(v)))


def full_tree(depth, counter=[0]):
    if depth == 0:
        counter[0] += 1
        return leaf(counter[0])
    return Node(left=full_tree(depth - 1, counter),
                right=full_tree(depth - 1, counter))


class TestRecursiveConversion:
    def test_tree_sum(self):
        def tree_sum(node):
            if node.is_leaf:
                return node.value
            return tree_sum(node.left) + tree_sum(node.right)

        @janus.function(config=strict())
        def run(root):
            return tree_sum(root) * 1.0

        trees = [Node(left=leaf(1), right=leaf(2)),
                 Node(left=Node(left=leaf(3), right=leaf(4)),
                      right=leaf(5))]
        expected = [3.0, 12.0]
        for _ in range(3):
            for t, want in zip(trees, expected):
                assert float(run(t).numpy()) == pytest.approx(want)
        assert run.stats["graph_runs"] > 0
        entry = next(iter(run.cache._entries.values()))
        ops = {n.op_name for n in entry.generated.graph.nodes}
        assert "invoke" in ops

    def test_one_graph_serves_all_tree_shapes(self):
        """Unlike per-shape symbolic builds, the recursive graph covers
        arbitrary trees (the paper's TreeNN advantage)."""
        def tree_sum(node):
            if node.is_leaf:
                return node.value
            return tree_sum(node.left) + tree_sum(node.right)

        @janus.function(config=strict())
        def run(root):
            return tree_sum(root) * 1.0

        rng = np.random.default_rng(0)

        def random_tree(depth):
            if depth == 0 or rng.random() < 0.3:
                return leaf(float(rng.integers(1, 5)))
            return Node(left=random_tree(depth - 1),
                        right=random_tree(depth - 1))

        def ref_sum(t):
            if t.is_leaf:
                return float(t.value.numpy())
            return ref_sum(t.left) + ref_sum(t.right)

        for _ in range(10):
            t = random_tree(4)
            assert float(run(t).numpy()) == pytest.approx(ref_sum(t))
        assert run.cache_stats()["entries"] == 1

    def test_recursion_with_variable_gradient(self):
        """Training through recursion: the TreeRNN core."""
        w = R.Variable(np.float32(1.0), name="w")
        opt = nn.SGD(0.0)   # lr 0: parameters unchanged, grads observable

        grads_seen = []
        orig_apply = opt.apply_gradients

        def spy(pairs):
            pairs = list(pairs)
            from repro.graph.core import NodeOutput
            if not any(isinstance(g, NodeOutput) for g, _ in pairs):
                # symbolic applications (graph build) are not observable
                grads_seen.append({v.name: np.asarray(_val(g))
                                   for g, v in pairs})
            orig_apply(pairs)

        def _val(g):
            return g.numpy() if hasattr(g, "numpy") else g

        opt.apply_gradients = spy

        def tree_eval(node):
            if node.is_leaf:
                return node.value * w.value()
            return tree_eval(node.left) + tree_eval(node.right)

        @janus.function(optimizer=opt, config=strict())
        def train(root):
            return tree_eval(root) * 1.0

        tree = Node(left=leaf(2), right=Node(left=leaf(3), right=leaf(4)))
        for _ in range(5):
            train(tree)
        # d(w * sum(leaves))/dw = 9 in every mode.
        for record in grads_seen:
            g = record["w"]
            assert float(np.asarray(g).reshape(())) == pytest.approx(9.0)
        assert train.stats["graph_runs"] > 0

    def test_mixed_depth_recursion_with_state_reads(self):
        cell = nn.Dense(2, 1, use_bias=False)

        def shrink(node):
            if node.is_leaf:
                return R.reshape(node.value, (1, 1))
            a = shrink(node.left)
            b = shrink(node.right)
            return cell(R.concat([a, b], axis=1))

        @janus.function(config=strict())
        def run(root):
            return R.reduce_sum(shrink(root))

        t1 = Node(left=leaf(1), right=leaf(2))
        t2 = Node(left=t1, right=leaf(3))
        outs = []
        for _ in range(3):
            outs = [float(run(t).numpy()) for t in (t1, t2)]
        # Compare against pure imperative execution.
        def ref(node):
            if node.is_leaf:
                return R.reshape(node.value, (1, 1))
            return cell(R.concat([ref(node.left), ref(node.right)],
                                 axis=1))
        want = [float(R.reduce_sum(ref(t)).numpy()) for t in (t1, t2)]
        assert outs == [pytest.approx(w, rel=1e-5) for w in want]

"""Speculation-health analytics: metrics, per-site attribution, CLI.

Forced assumption failures drive a ``janus.function`` through the state
model of :mod:`repro.observability.health` — profiling → specialized →
converged, and a cache-thrashing scenario — and the tests assert the
reported state, graph-hit ratios, per-site failure counts with their
relax chains, and percentile sanity of the latency histograms.  The
``janus-stats`` CLI is exercised on both the live registries and a
saved stats bundle, and the untracked→tracked digest-flip regression
(spurious fragment reconversion on the first regeneration after
write-barrier sealing) is pinned down at both the digest and the
fragment-reuse-metric level.
"""

import json

import numpy as np
import pytest

import repro as R
from repro import janus, observability as obs
from repro.janus import fragments
from repro.observability import COUNTERS
from repro.observability.cli import (load_stats, main as stats_main,
                                     prometheus_text, render_report,
                                     write_stats_json)
from repro.observability.counters import CounterRegistry
from repro.observability.health import (CONVERGED_RUNS, HEALTH,
                                        HealthRegistry, SpeculationHealth,
                                        site_key)
from repro.observability.metrics import (METRICS, Histogram,
                                         MetricsRegistry)
from repro.tensor import TensorValue


@pytest.fixture(autouse=True)
def _metrics_on():
    """Each test runs with metrics enabled and leaves registries clean."""
    previous = obs.set_metrics_enabled(True)
    obs.clear()
    yield
    obs.set_metrics_enabled(previous)
    obs.clear()


def strict(**kw):
    return janus.JanusConfig(fail_on_not_convertible=True,
                             parallel_execution=False, **kw)


def counters():
    return dict(COUNTERS.snapshot()["counters"])


# -- histogram unit behaviour -------------------------------------------------

class TestHistogram:
    def test_count_sum_min_max(self):
        hist = Histogram()
        for v in (0.001, 0.004, 0.002):
            hist.observe(v)
        assert hist.count == 3
        assert hist.total == pytest.approx(0.007)
        assert hist.min == pytest.approx(0.001)
        assert hist.max == pytest.approx(0.004)
        assert hist.mean == pytest.approx(0.007 / 3)

    def test_percentiles_monotonic_and_clamped(self):
        hist = Histogram()
        rng = np.random.default_rng(0)
        for v in rng.uniform(1e-5, 1e-2, size=500):
            hist.observe(float(v))
        pct = hist.percentiles()
        assert 0.0 < pct["p50"] <= pct["p95"] <= pct["p99"] <= hist.max
        assert hist.percentile(0) >= hist.min
        assert hist.percentile(100) <= hist.max

    def test_nonpositive_values_land_in_first_bucket(self):
        hist = Histogram()
        hist.observe(0.0)
        hist.observe(-1.0)
        assert hist.counts[0] == 2
        assert hist.percentile(50) <= 0.0

    def test_merge_matches_combined_stream(self):
        values_a = [1e-5, 3e-4, 2e-3]
        values_b = [7e-6, 5e-2]
        a, b, combined = Histogram(), Histogram(), Histogram()
        for v in values_a:
            a.observe(v)
            combined.observe(v)
        for v in values_b:
            b.observe(v)
            combined.observe(v)
        a.merge(b)
        assert a.counts == combined.counts
        assert a.count == combined.count
        assert a.total == pytest.approx(combined.total)
        assert a.min == combined.min and a.max == combined.max

    def test_snapshot_roundtrip_via_json(self):
        hist = Histogram()
        for v in (1e-4, 2e-4, 9e-1):
            hist.observe(v)
        snap = json.loads(json.dumps(hist.snapshot()))
        restored = Histogram.from_snapshot(snap)
        assert restored.counts == hist.counts
        assert restored.percentiles() == hist.percentiles()

    def test_registry_disabled_is_noop(self):
        registry = MetricsRegistry(enabled=False)
        registry.observe("x", 1.0)
        with registry.timer("x"):
            pass
        assert len(registry) == 0
        registry.set_enabled(True)
        with registry.timer("x"):
            pass
        assert registry.get("x").count == 1


# -- the state model, driven by real forced failures --------------------------

class TestLifecycleStates:
    def test_profiling_to_specialized_to_converged(self):
        knob = type("K", (), {})()
        knob.scale = 3.0

        @janus.function(config=strict())
        def f(x):
            return x * knob.scale

        x = R.constant(np.linspace(-1, 1, 8).astype(np.float32))
        f(x)
        f(x)
        health = HEALTH.get("f")
        assert health.state == "profiling"
        assert "profiling" in health.diagnosis()

        f(x)                                   # last profile run
        f(x)                                   # generate + first graph run
        assert f.stats["graph_runs"] == 1
        assert health.state == "specialized"
        assert "not yet converged" in health.diagnosis()

        for _ in range(CONVERGED_RUNS):
            f(x)
        assert health.state == "converged"
        assert health.consecutive_graph_runs >= CONVERGED_RUNS
        assert health.graph_hit_ratio == pytest.approx(
            health.graph_runs / health.calls)
        assert health.fallbacks == 0 and health.recompiles == 0

    def test_failure_attributes_site_relax_and_costs(self):
        knob = type("K", (), {})()
        knob.scale = 3.0

        @janus.function(config=strict())
        def g(x):
            return x * knob.scale

        x = R.constant(np.linspace(-1, 1, 8).astype(np.float32))
        for _ in range(4 + CONVERGED_RUNS):
            g(x)
        health = HEALTH.get("g")
        assert health.state == "converged"

        knob.scale = 5.0                       # breaks the const-attr guard
        out = g(x)                             # guard fails -> fallback
        assert g.stats["fallbacks"] == 1
        assert np.allclose(out.numpy(), x.numpy() * 5.0)
        assert health.fallbacks == 1

        worst = health.worst_site()
        assert worst is not None
        assert worst.kind == "attr"
        assert worst.failures == 1
        assert worst.last_guard and "scale" in worst.last_guard
        assert worst.relaxations >= 1
        assert worst.relax_chain and worst.relax_chain[0]["action"]
        assert worst.fallback_count == 1 and worst.fallback_total > 0.0

        g(x)                                   # regenerate + graph run
        assert health.recompiles == 1
        assert worst.recompile_count == 1 and worst.recompile_total > 0.0
        entry = health.failure_chain[0]
        assert entry["site"] == site_key(worst.site)
        assert entry["kind"] == "attr"
        assert entry["fallback_s"] > 0.0 and entry["recompile_s"] > 0.0
        assert np.allclose(g(x).numpy(), x.numpy() * 5.0)

        for _ in range(CONVERGED_RUNS):
            g(x)
        assert health.state == "converged"     # recovered after relaxing

    def test_lifecycle_histograms_and_percentile_sanity(self):
        knob = type("K", (), {})()
        knob.scale = 2.0

        @janus.function(config=strict())
        def h(x):
            return x * knob.scale

        x = R.constant(np.linspace(0, 1, 8).astype(np.float32))
        for _ in range(8):
            h(x)
        knob.scale = 4.0
        for _ in range(4):
            h(x)

        for name in ("graph.run", "graphgen.initial",
                     "graphgen.recompile", "fallback.imperative",
                     "profile.run", "guard.precheck"):
            hist = METRICS.get(name)
            assert hist is not None and hist.count > 0, name
            pct = hist.percentiles()
            assert 0.0 <= pct["p50"] <= pct["p95"] <= pct["p99"], name
            assert pct["p99"] <= hist.max, name
        assert METRICS.get("fallback.imperative").count == 1
        assert METRICS.get("graphgen.recompile").count == 1

    def test_thrashing_under_cache_churn(self):
        """Two alternating signatures with a one-entry cache: every call
        evicts and regenerates, so the function never converges and the
        recent-window disruption count flips the state to thrashing."""

        @janus.function(config=strict(graph_cache_entries=1))
        def t(x):
            return x * 2.0

        flat = R.constant(np.linspace(0, 1, 4).astype(np.float32))
        square = R.constant(np.ones((2, 2), np.float32))
        args = [flat, square]
        for i in range(16):
            t(args[i % 2])

        health = HEALTH.get("t")
        assert health.state == "thrashing"
        assert "disrupted" in health.diagnosis()
        assert health.recompiles >= 4
        assert health.cache_evictions >= 4
        assert health.consecutive_graph_runs < CONVERGED_RUNS
        # Graph runs still happen each call; the ratio reflects that the
        # cache never serves them for free.
        assert 0.0 < health.graph_hit_ratio < 1.0
        assert METRICS.get("graphgen.recompile").count >= 4

    def test_imperative_only_state(self):
        # no fail_on_not_convertible; coexecution off so the verdict is
        # the classic whole-function one (partial is tested below).
        @janus.function(config=janus.JanusConfig(coexecution=False))
        def u(x):
            import os  # noqa: F401 — inline import: imperative-only
            return x

        x = R.constant(np.ones(3, np.float32))
        for _ in range(5):
            u(x)
        health = HEALTH.get("u")
        assert u.imperative_only
        assert health.state == "imperative-only"
        assert "imperative" in health.diagnosis()
        assert health.graph_hit_ratio == 0.0


# -- snapshot / restore -------------------------------------------------------

class TestSnapshots:
    def test_health_snapshot_roundtrip(self):
        health = SpeculationHealth("f")
        health.record_call()
        health.record_profile_run()
        health.record_failure(("fk", "attr", "h.scale"), kind="attr",
                              guard="const changed")
        health.record_fallback(("fk", "attr", "h.scale"), 0.002,
                               kind="attr")
        health.record_relax(("fk", "attr", "h.scale"), "relax_attr_spec",
                            detail="const -> tensor", kind="attr")
        health.record_generation(0.01, regeneration=True)
        snap = json.loads(json.dumps(health.snapshot()))
        restored = SpeculationHealth.from_snapshot(snap)
        assert restored.state == health.state
        assert restored.fallbacks == 1 and restored.recompiles == 1
        key = site_key(("fk", "attr", "h.scale"))
        site = restored.sites[key]
        assert site.failures == 1 and site.kind == "attr"
        assert site.relax_chain[0]["detail"] == "const -> tensor"
        assert site.recompile_total == pytest.approx(0.01)
        assert restored.failure_chain[0]["fallback_s"] == \
            pytest.approx(0.002)

    def test_recompile_resets_convergence_streak(self):
        health = SpeculationHealth("f")
        health.record_generation(0.01, regeneration=False)
        for _ in range(CONVERGED_RUNS):
            health.record_graph_run()
        assert health.state == "converged"
        health.record_generation(0.01, regeneration=True)
        assert health.consecutive_graph_runs == 0
        assert health.state != "converged"


# -- the janus-stats CLI ------------------------------------------------------

def _drive_failing_function():
    knob = type("K", (), {})()
    knob.scale = 2.0

    @janus.function(config=strict())
    def step(x):
        return x * knob.scale

    x = R.constant(np.linspace(-1, 1, 6).astype(np.float32))
    for _ in range(8):
        step(x)
    knob.scale = 7.0
    for _ in range(1 + CONVERGED_RUNS):
        step(x)
    return step


class TestStatsCli:
    def test_render_report_on_live_registries(self):
        _drive_failing_function()
        report = render_report()
        assert "== janus-stats ==" in report
        assert "-- speculation health --" in report
        assert "-- latency histograms --" in report
        assert "-- post-mortem --" in report
        assert "step" in report and "converged" in report
        assert "graph.run" in report
        assert "relax:" in report
        assert "fallback cost:" in report

    def test_saved_bundle_roundtrip_and_check(self, tmp_path, capsys):
        _drive_failing_function()
        live_state = HEALTH.get("step").state
        live_count = METRICS.get("graph.run").count
        path = str(tmp_path / "stats.json")
        write_stats_json(path)
        obs.clear()                            # post-mortem: live data gone

        metrics, health, _counters, _serving, _diskcache = load_stats(path)
        assert health.get("step").state == live_state
        assert metrics.get("graph.run").count == live_count
        assert health.get("step").worst_site().failures == 1

        assert stats_main(["--input", path, "--check"]) == 0
        out = capsys.readouterr()
        assert "step" in out.out and "assumption failure" in out.out
        assert "check ok" in out.err

    def test_serving_stats_roundtrip_through_bundle(self, tmp_path):
        from repro.observability.serving import SERVING

        SERVING.client_started()
        SERVING.record_enqueue(0)
        SERVING.record_enqueue(3)
        SERVING.record_reject()
        SERVING.record_batch(2, [0.001, 0.004])
        SERVING.set_recompiles_in_flight(1)
        SERVING.client_finished()
        path = str(tmp_path / "stats.json")
        write_stats_json(path)
        obs.clear()

        _metrics, _health, _counters, serving, _diskcache = load_stats(path)
        assert serving.requests == 2
        assert serving.rejected == 1
        assert serving.batches == 1
        assert serving.batched_requests == 2
        assert serving.peak_clients == 1
        assert serving.recompiles_in_flight == 1
        assert serving.queue_depth.count == 2
        assert serving.queue_wait.count == 2
        report = render_report(serving=serving)
        assert "-- serving --" in report
        assert "1 rejected" in report

    def test_legacy_bundle_without_serving_section_loads(self, tmp_path):
        _drive_failing_function()
        path = tmp_path / "stats.json"
        write_stats_json(str(path))
        payload = json.loads(path.read_text())
        payload.pop("serving", None)           # bundle from an older build
        path.write_text(json.dumps(payload))
        _metrics, health, _counters, serving, _diskcache = \
            load_stats(str(path))
        assert health.get("step") is not None
        assert serving.requests == 0
        assert "-- serving --" not in render_report(serving=serving)

    def test_function_filter_limits_post_mortem(self, tmp_path, capsys):
        _drive_failing_function()
        path = str(tmp_path / "stats.json")
        write_stats_json(path)
        assert stats_main(["--input", path, "--function", "nope"]) == 0
        out = capsys.readouterr().out
        assert "no health recorded for function 'nope'" in out

    def test_prometheus_exposition(self, capsys):
        _drive_failing_function()
        text = prometheus_text()
        assert "# TYPE janus_graph_run_seconds histogram" in text
        assert 'janus_graph_run_seconds_bucket{le="+Inf"}' in text
        assert 'janus_function_graph_hit_ratio{function="step"}' in text
        assert 'janus_function_state{function="step",state="converged"} 1' \
            in text
        assert 'kind="attr"' in text
        # Bucket counts are cumulative: the +Inf bucket equals _count.
        hist = METRICS.get("graph.run")
        assert ('janus_graph_run_seconds_bucket{le="+Inf"} %d'
                % hist.count) in text
        assert stats_main(["--prometheus"]) == 0
        assert "janus_counter_total" in capsys.readouterr().out

    def test_non_bundle_input_is_exit_2(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps({"traceEvents": []}))
        assert stats_main(["--input", str(path)]) == 2
        assert "not a janus-stats file" in capsys.readouterr().err

    def test_check_fails_on_empty_registries(self, tmp_path, capsys):
        path = str(tmp_path / "empty.json")
        write_stats_json(path, metrics=MetricsRegistry(),
                         health=HealthRegistry(),
                         counters=CounterRegistry())
        assert stats_main(["--input", path, "--check"]) == 1
        assert "FAILED" in capsys.readouterr().err


# -- the partial (co-executed) state through the CLI surfaces -----------------

def _drive_partial_function():
    """A function with an unconvertible statement between two tensor-dense
    regions, run until the co-execution plan serves it (state partial)."""
    log = []

    def pstep(x):
        y = x * 2.0
        log.append(float(R.reduce_sum(y).numpy()))
        z = y * y
        z = z + y
        return R.reduce_sum(z)

    cfg = janus.JanusConfig(profile_runs=2, parallel_execution=False,
                            coexecution=True)
    f = janus.function(config=cfg)(pstep)
    x = R.constant(np.linspace(0.5, 2.0, 4).astype(np.float32))
    for _ in range(8):
        f(x)
    assert f.stats["coexec_runs"] >= 1, f.stats
    return f


class TestPartialStateCli:
    def test_partial_state_in_report_and_table(self):
        _drive_partial_function()
        report = render_report()
        assert "pstep" in report
        assert "partial" in report
        assert "partially converted" in report
        assert "fragment graph runs" in report

    def test_partial_state_in_prometheus_exposition(self):
        _drive_partial_function()
        text = prometheus_text()
        assert ('janus_function_state{function="pstep",state="partial"} 1'
                in text)

    def test_partial_state_bundle_roundtrip(self, tmp_path, capsys):
        f = _drive_partial_function()
        live = HEALTH.get("pstep")
        live_runs = live.coexec_runs
        live_frag_runs = live.coexec_fragment_runs
        live_ratio = live.converted_ratio
        assert live.state == "partial"
        path = str(tmp_path / "stats.json")
        write_stats_json(path)
        obs.clear()                            # post-mortem: live data gone

        _metrics, health, _counters, _serving, _diskcache = load_stats(path)
        restored = health.get("pstep")
        assert restored.state == "partial"
        assert restored.coexec_runs == live_runs
        assert restored.coexec_fragment_runs == live_frag_runs
        assert restored.converted_ratio == pytest.approx(live_ratio)
        assert "partially converted" in restored.diagnosis()

        assert stats_main(["--input", path, "--function", "pstep"]) == 0
        out = capsys.readouterr().out
        assert "pstep [partial]" in out
        del f

    def test_legacy_bundle_without_coexec_fields_loads(self, tmp_path):
        """A bundle written before co-execution existed has no
        coexec_runs / coexec_fragment_runs / converted_ratio keys: it
        must restore with the 0/None defaults and never report partial."""
        _drive_partial_function()
        path = tmp_path / "stats.json"
        write_stats_json(str(path))
        payload = json.loads(path.read_text())
        snap = payload["health"]["pstep"]
        for key in ("coexec_runs", "coexec_fragment_runs",
                    "converted_ratio"):
            snap.pop(key, None)
        path.write_text(json.dumps(payload))

        _metrics, health, _counters, _serving, _diskcache = \
            load_stats(str(path))
        restored = health.get("pstep")
        assert restored is not None
        assert restored.coexec_runs == 0
        assert restored.coexec_fragment_runs == 0
        assert restored.converted_ratio is None
        assert restored.state != "partial"
        # The restored model is still render- and diagnose-able.
        assert restored.diagnosis()
        assert "pstep" in render_report(health=health)


# -- digest-flip regression: fragment reuse across sealing --------------------

class TestDigestStableAcrossSealing:
    def test_value_digest_seals_and_never_flips(self):
        """Digesting an untracked-but-trackable TensorValue seals it, so
        the digest kind cannot flip untracked→tracked between a fragment
        store and the splice attempt on the next regeneration."""
        tv = TensorValue.of(np.arange(6, dtype=np.float32))
        assert not tv.tracked
        keep = []
        first = fragments.value_digest(tv, keep)
        assert tv.tracked                      # sealed at digest time
        assert first[0] == "tvv"
        assert fragments.value_digest(tv, keep) == first

    def test_fragment_reuse_survives_sealing_between_generations(self):
        """A dynamic cond fragment that closes over a tensor must splice
        on a regeneration forced by an *unrelated* attr failure, even
        though executing the first graph sealed the tensor behind the
        write barrier in between (the ROADMAP digest-flip bug)."""
        weights = R.constant(np.linspace(0.5, 1.5, 8).astype(np.float32))
        knob = type("K", (), {})()
        knob.gain = 2.0

        @janus.function(config=strict(incremental_regeneration=True))
        def f(x, gate):
            if R.reduce_sum(gate) > 0.0:
                y = x * weights
            else:
                y = x - weights
            return y * knob.gain

        x = R.constant(np.linspace(-1, 1, 8).astype(np.float32))
        pos = R.constant(np.ones(1, np.float32))
        neg = R.constant(-np.ones(1, np.float32))

        for k in range(5):                     # stable direction: unrolled
            f(x, R.constant(np.full(1, 1.0 + k, np.float32)))
        assert f.stats["graph_runs"] > 0
        f(x, neg)                              # branch fails -> dynamic cond
        f(x, neg)                              # regeneration stores fragment
        f(x, pos)

        before = counters()
        knob.gain = 9.0                        # unrelated attr assumption
        out = f(x, pos)                        # guard fails -> fallback
        final = f(x, pos)                      # regenerate: splice the cond
        assert np.allclose(out.numpy(), f.func(x, pos).numpy())
        assert np.allclose(final.numpy(), f.func(x, pos).numpy())
        reused = counters().get("graphgen.fragments_reused", 0) \
            - before.get("graphgen.fragments_reused", 0)
        assert reused >= 1, "cond fragment reconverted instead of splicing"

        health = HEALTH.get("f")
        frag_sites = [s for s in health.sites.values()
                      if s.fragments_reused or s.fragments_reconverted]
        assert frag_sites, "no per-site fragment attribution recorded"
        assert any(s.fragments_reused >= 1 for s in frag_sites)
        assert health.fragment_reuse_ratio > 0.0

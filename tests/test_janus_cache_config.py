"""GraphCache, JanusConfig, whitelist, and error-type behaviours."""

import numpy as np
import pytest

import repro as R
from repro import janus
from repro.errors import (AssumptionFailed, NotConvertible, ReproError,
                          ShapeError, GraphError, ExecutionError)
from repro.janus.cache import CacheEntry, GraphCache
from repro.janus.config import JanusConfig, ABLATION_STAGES
from repro.janus import whitelist
from repro.ops import api


class TestGraphCache:
    def test_signature_groups_by_type_level(self):
        cache = GraphCache()
        a = cache.signature_of([R.constant(np.zeros((4, 2), np.float32))])
        b = cache.signature_of([R.constant(np.zeros((9, 2), np.float32))])
        c = cache.signature_of([R.constant(np.zeros((4, 2), np.int64))])
        assert a == b       # same dtype + rank
        assert a != c       # dtype differs

    def test_store_lookup_invalidate(self):
        cache = GraphCache()
        entry = CacheEntry(None)
        cache.store(("sig",), entry)
        assert cache.lookup(("sig",)) is entry
        cache.invalidate(("sig",))
        assert cache.lookup(("sig",)) is None
        cache.invalidate(("sig",))  # idempotent

    def test_stats_aggregate(self):
        cache = GraphCache()
        e1, e2 = CacheEntry(None), CacheEntry(None)
        cache.store(("a",), e1)
        cache.store(("b",), e2)
        for _ in range(3):
            cache.record_hit(e1)
        cache.record_miss(e2)
        cache.record_failure(e2)
        cache.record_failure(e2)
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["hits"] == 3
        assert stats["misses"] == 1
        assert stats["assumption_failures"] == 2
        assert (e1.hits, e2.misses, e2.failures) == (3, 1, 2)

    def test_lifetime_totals_survive_invalidate(self):
        # Regression: stats used to be summed over live entries, so an
        # invalidate erased the history of everything that had happened.
        cache = GraphCache()
        entry = CacheEntry(None)
        cache.store(("sig",), entry)
        cache.record_hit(entry)
        cache.record_failure(entry)
        cache.invalidate(("sig",))
        stats = cache.stats()
        assert stats["entries"] == 0
        assert stats["hits"] == 1
        assert stats["assumption_failures"] == 1
        assert stats["invalidations"] == 1

    def test_lru_eviction_bound(self):
        cache = GraphCache(max_entries=2)
        a, b, c = CacheEntry(None), CacheEntry(None), CacheEntry(None)
        cache.store(("a",), a)
        cache.store(("b",), b)
        cache.lookup(("a",))        # refresh a: b is now LRU
        cache.store(("c",), c)
        assert len(cache) == 2
        assert cache.lookup(("b",)) is None
        assert cache.lookup(("a",)) is a
        assert cache.lookup(("c",)) is c
        assert cache.stats()["evictions"] == 1


class TestJanusConfig:
    def test_copy_overrides(self):
        cfg = JanusConfig()
        new = cfg.copy(profile_runs=7)
        assert new.profile_runs == 7
        assert cfg.profile_runs == 3    # original untouched

    def test_copy_rejects_unknown_field(self):
        with pytest.raises(AttributeError):
            JanusConfig().copy(bogus=True)

    def test_default_profile_runs_matches_paper(self):
        # Paper section 3.1 footnote: 3 iterations suffice.
        assert JanusConfig().profile_runs == 3

    def test_ablation_stages_are_cumulative(self):
        base = ABLATION_STAGES["BASE"]
        unrl = ABLATION_STAGES["+UNRL"]
        spcn = ABLATION_STAGES["+SPCN"]
        parl = ABLATION_STAGES["+PARL"]
        assert not base["unroll_stable_control_flow"]
        assert unrl["unroll_stable_control_flow"]
        assert not unrl["specialize_types"]
        assert spcn["specialize_types"] and spcn["optimize_graph"]
        assert parl["parallel_execution"]

    def test_global_config_swap(self):
        original = janus.get_config()
        try:
            janus.set_config(JanusConfig(profile_runs=1))
            assert janus.get_config().profile_runs == 1
        finally:
            janus.set_config(original)


class TestWhitelist:
    def test_framework_functions_whitelisted(self):
        for fn in (api.matmul, api.conv2d, api.reduce_sum, api.softmax):
            assert whitelist.is_whitelisted(fn)

    def test_builtins_whitelisted(self):
        assert whitelist.is_whitelisted(print)
        assert whitelist.is_whitelisted(len)
        assert whitelist.is_whitelisted(range)

    def test_user_function_not_whitelisted(self):
        def mine():
            pass
        assert not whitelist.is_whitelisted(mine)

    def test_names_listing_is_sorted_and_nonempty(self):
        names = whitelist.whitelisted_names()
        assert len(names) > 50
        assert names == sorted(names)

    def test_handler_for_framework_fn_is_identity(self):
        assert whitelist.handler_for(api.matmul) is api.matmul


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        for err in (ShapeError, GraphError, ExecutionError,
                    AssumptionFailed, NotConvertible):
            assert issubclass(err, ReproError)

    def test_assumption_failed_carries_site(self):
        exc = AssumptionFailed("boom", site=("branch", "s1"),
                              observed=42)
        assert exc.site == ("branch", "s1")
        assert exc.observed == 42

    def test_not_convertible_carries_feature(self):
        exc = NotConvertible("nope", feature="yield")
        assert exc.feature == "yield"


class TestJanusStatsAccounting:
    def test_fallback_increments_and_graph_regenerates(self):
        holder = type("H", (), {})()
        holder.state = R.constant(np.zeros((4, 2), np.float32))

        @janus.function(config=JanusConfig(
            fail_on_not_convertible=True))
        def f():
            return R.reduce_sum(holder.state)

        for _ in range(5):
            f()
        generated_before = f.stats["graphs_generated"]
        holder.state = R.constant(np.zeros((2, 2), np.float32))
        f()   # assert fails -> fallback
        assert f.stats["fallbacks"] == 1
        f()   # relaxed graph regenerated
        assert f.stats["graphs_generated"] == generated_before + 1
        # Relaxed shape covers both sizes without further regeneration.
        holder.state = R.constant(np.zeros((4, 2), np.float32))
        f()
        holder.state = R.constant(np.zeros((7, 2), np.float32))
        out = f()
        assert float(out.numpy()) == 0.0
        assert f.stats["graphs_generated"] == generated_before + 1

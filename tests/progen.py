"""Shared seeded program generator for the differential suites.

Grown out of the inline generators that test_write_barrier_differential,
test_lowering_differential, and test_concurrency each carried a copy of:
a seeded :func:`gen_program` builds a small tensor program over a heap
model object (Tensor attributes, raw ndarrays, aliased attributes,
burned scalars, Variables, input-dependent branches), registers its
source in ``linecache`` so JANUS can convert from the AST, and returns
the compiled function plus the model.  :func:`mutation_pool` /
:func:`apply_mutation` provide the randomized heap-mutation storm the
guard suites interleave between calls.

Everything is parameterized by a :class:`Mix` — the construct-mix
config.  The two predefined mixes reproduce the historical generators
**stream-for-stream** (same ``random``/``default_rng`` consumption
order, so the same seed yields byte-identical programs and models as
before the extraction):

* :data:`WRITE_BARRIER_MIX` — the 5-kind pool with t/t2 aliasing
  (test_write_barrier_differential, test_lowering_differential),
* :data:`CONCURRENCY_MIX` — the 4-kind pool without aliasing
  (test_concurrency).

``Mix.inject`` extends a mix with *unsupported constructs* planted at
random body positions — the co-execution differential suite
(test_coexec_differential.py) uses it to generate programs that cannot
convert whole: ``.numpy()`` materialization into opaque list mutation,
dict mutation through a sourceless helper, third-party-style sourceless
calls feeding values back into the tensor flow, and generator
expressions.  All injection draws happen on a *separate* rng stream, so
enabling injection never perturbs the base program generation.
"""

import linecache
import random

import numpy as np

import repro as R

__all__ = [
    "Mix", "Model", "WRITE_BARRIER_MIX", "CONCURRENCY_MIX",
    "COEXEC_MIX", "GUARDED_ON", "GUARDED_OFF", "INJECTIONS",
    "gen_program", "mutation_pool", "apply_mutation", "vec",
]


class Model:
    """Heap object whose attributes the generated programs read."""


#: Statement pool, keyed by the attribute each statement exercises.
STMTS = {
    "t":    "    y = y + m.t",
    "t2":   "    y = y * m.t2",
    "w":    "    y = y + m.w",
    "gain": "    y = y * m.gain",
    "var":  "    y = y + m.var.value()",
}

BRANCH = [
    "    if R.reduce_sum(x) > 0.0:",
    "        y = y * 2.0",
    "    else:",
    "        y = y - 1.0",
]

#: Unsupported-construct injection pool: each entry is a list of source
#: lines forming ONE top-level statement (multi-line constructs hide
#: under ``if True:`` so a single partition boundary isolates them).
#: ``opaque_record`` and ``thirdparty_norm`` are exec-created (no
#: retrievable source), modelling third-party library calls.
INJECTIONS = {
    # I/O-style materialization + opaque list mutation.
    "io_log": ["    m.log.append(float(R.reduce_sum(y).numpy()))"],
    # Dict mutation through a sourceless helper.
    "dict_mut": ["    opaque_record(m.metrics, 'sum', y)"],
    # Third-party-style call whose result feeds back into tensor flow.
    "thirdparty": ["    y = y * thirdparty_norm(y)"],
    # Generator expression consumed imperatively.
    "generator": ["    if True:",
                  "        gvals = (float(q) * 0.5 for q in y.numpy())",
                  "        m.log.append(max(gvals))"],
}

_HELPER_SRC = """
def opaque_record(d, key, v):
    d[key] = d.get(key, 0.0) + float(R.reduce_sum(v).numpy())

def thirdparty_norm(v):
    return 1.0 + abs(float(v.numpy().mean())) * 0.25
"""


class Mix:
    """Construct-mix configuration for :func:`gen_program`.

    ``kinds`` — statement pool (subset of :data:`STMTS` keys);
    ``nprng_offset`` — numpy rng namespace (keeps suites' value streams
    disjoint); ``aliasing`` — allow ``m.t2 is m.t``; ``model_order`` —
    heap-attribute creation order (it fixes the rng consumption order,
    so it is part of stream compatibility); ``filename_prefix`` — the
    linecache pseudo-filename family; ``inject`` — unsupported
    constructs from :data:`INJECTIONS` planted at random positions
    (1..min(2, len(inject)) of them per program).
    """

    def __init__(self, kinds=None, nprng_offset=10_000, aliasing=True,
                 model_order=("w", "t", "t2", "gain", "var"),
                 filename_prefix="progen", inject=()):
        self.kinds = sorted(STMTS if kinds is None else kinds)
        self.nprng_offset = nprng_offset
        self.aliasing = aliasing
        self.model_order = tuple(model_order)
        self.filename_prefix = filename_prefix
        self.inject = tuple(inject)


#: Stream-identical to the historical test_write_barrier_differential
#: generator (also consumed by test_lowering_differential).
WRITE_BARRIER_MIX = Mix(filename_prefix="wbdiff")

#: Stream-identical to the historical test_concurrency generator: no
#: t2 (hence no aliasing draw), model built t, w, gain, var.
CONCURRENCY_MIX = Mix(kinds=("t", "w", "gain", "var"),
                      nprng_offset=40_000, aliasing=False,
                      model_order=("t", "w", "gain", "var"),
                      filename_prefix="concdiff")

#: The co-execution mix: full statement pool plus every unsupported
#: construct class (test_coexec_differential.py).
COEXEC_MIX = Mix(nprng_offset=70_000, filename_prefix="coexdiff",
                 inject=tuple(sorted(INJECTIONS)))


def vec(nprng, n=4):
    return nprng.normal(size=(n,)).astype(np.float32)


def _build_model(mix, rng, nprng, used):
    m = Model()
    for attr in mix.model_order:
        if attr == "w":
            m.w = vec(nprng)
        elif attr == "t":
            m.t = R.constant(vec(nprng))
        elif attr == "t2":
            # Aliasing: sometimes both Tensor attributes are the same
            # object, so two read sites share one TensorValue.
            if mix.aliasing and "t" in used and "t2" in used \
                    and rng.random() < 0.4:
                m.t2 = m.t
            else:
                m.t2 = R.constant(vec(nprng))
        elif attr == "gain":
            m.gain = float(round(rng.uniform(0.5, 2.0), 3))
        elif attr == "var":
            m.var = R.Variable(vec(nprng))
        else:  # pragma: no cover - mix config bug
            raise AssertionError(attr)
    return m


def gen_program(seed, tag=None, mix=WRITE_BARRIER_MIX):
    """One random program + its heap model, with retrievable source.

    JANUS converts from the AST, so ``inspect.getsource`` must work on
    the generated function: the source is registered in ``linecache``
    under a ``<...>`` filename (the doctest trick) before ``exec``.
    Returns ``(prog, model, used_kinds, has_branch, filename)``.
    """
    rng = random.Random(seed)
    nprng = np.random.default_rng(mix.nprng_offset + seed)

    kinds = list(mix.kinds)
    rng.shuffle(kinds)
    used = kinds[:rng.randint(2, min(4, len(kinds)))]
    body = [STMTS[k] for k in used]
    rng.shuffle(body)
    has_branch = rng.random() < 0.5
    if mix.inject:
        # Separate stream: injection must not perturb base generation.
        irng = random.Random(90_000 + seed)
        picks = sorted(mix.inject)
        irng.shuffle(picks)
        for name in picks[:irng.randint(1, min(2, len(picks)))]:
            at = irng.randint(0, len(body))
            body[at:at] = INJECTIONS[name]
    lines = ["def prog(x):", "    y = x * 1.0"] + body
    if has_branch:
        lines += BRANCH
    lines.append("    return R.reduce_sum(y * y)")
    src = "\n".join(lines) + "\n"

    m = _build_model(mix, rng, nprng, used)
    if mix.inject:
        m.log = []
        m.metrics = {}

    filename = "<%s-%d>" % (mix.filename_prefix, seed) if tag is None \
        else "<%s-%s-%d>" % (mix.filename_prefix, tag, seed)
    linecache.cache[filename] = (len(src), None, src.splitlines(True),
                                 filename)
    ns = {"R": R, "m": m}
    if mix.inject:
        exec(compile(_HELPER_SRC, "<%s-helpers>" % mix.filename_prefix,
                     "exec"), ns)
    exec(compile(src, filename, "exec"), ns)
    return ns["prog"], m, used, has_branch, filename


# -- mutations ---------------------------------------------------------------

#: Kinds whose mutation must produce a guard/stale signal when the
#: write barrier is ON (tensor reads memoized + sealed).
GUARDED_ON = {"t_inplace", "t_rebind_same", "t_rebind_shape", "t2_rebind",
              "gain_change", "x_flip"}
#: With the barrier OFF tensor reads are re-internalized every run, so
#: only spec guards (shape change), burned constants, and branch
#: assertions still fire.
GUARDED_OFF = {"t_rebind_shape", "gain_change", "x_flip"}


def mutation_pool(used, has_branch):
    pool = []
    if "w" in used:
        pool.append("w_inplace")
    if "t" in used:
        pool += ["t_inplace", "t_rebind_same", "t_rebind_shape"]
    if "t2" in used:
        pool.append("t2_rebind")
    if "gain" in used:
        pool.append("gain_change")
    if "var" in used:
        pool.append("var_assign")
    if has_branch:
        pool.append("x_flip")
    return pool


def apply_mutation(kind, m, nprng, state):
    if kind == "w_inplace":
        m.w[int(nprng.integers(0, m.w.shape[0]))] += 0.75
    elif kind == "t_inplace":
        m.t.add_(1.25)
    elif kind == "t_rebind_same":
        m.t = R.constant(vec(nprng, m.t.value.array.shape[0]))
    elif kind == "t_rebind_shape":
        # (4,) -> (1,): still broadcastable, so the imperative oracle
        # stays well-defined while the concrete shape guard breaks.
        m.t = R.constant(vec(nprng, 1))
    elif kind == "t2_rebind":
        m.t2 = R.constant(vec(nprng))
    elif kind == "gain_change":
        m.gain = float(round(m.gain + 0.375, 3))
    elif kind == "var_assign":
        m.var.assign(R.constant(vec(nprng)))
    elif kind == "x_flip":
        state["x"] = state["x_neg"]
    else:  # pragma: no cover - generator bug
        raise AssertionError(kind)

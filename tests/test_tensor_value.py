"""TensorValue, DType, and PyRef semantics."""

import numpy as np
import pytest

from repro.tensor import (DType, TensorValue, PyRef, float32, float64,
                          int32, int64, bool_, result_dtype,
                          from_python_scalar, is_numeric_pyvalue)


class TestDType:
    def test_interning(self):
        assert DType.of("float32") is float32
        assert DType.of(np.float32) is float32
        assert DType.of(np.dtype("int64")) is int64

    def test_properties(self):
        assert float32.is_floating and not float32.is_integer
        assert int32.is_integer and int32.is_numeric
        assert bool_.is_bool and not bool_.is_numeric

    def test_promotion(self):
        assert result_dtype(float32, int64) is float64 or \
            result_dtype(float32, int64).is_floating
        assert result_dtype(int32, int64) is int64

    def test_python_scalar_rules(self):
        # Framework conventions: float -> float32, int -> int64.
        assert from_python_scalar(1.5) is float32
        assert from_python_scalar(3) is int64
        assert from_python_scalar(True) is bool_

    def test_unknown_dtype_raises(self):
        with pytest.raises((KeyError, TypeError)):
            DType.of("complex128")


class TestTensorValue:
    def test_python_float_becomes_float32(self):
        assert TensorValue.of(1.5).dtype is float32

    def test_python_int_becomes_int64(self):
        assert TensorValue.of(7).dtype is int64

    def test_float_list_becomes_float32(self):
        tv = TensorValue.of([1.0, 2.0])
        assert tv.dtype is float32
        assert tv.shape.as_tuple() == (2,)

    def test_numpy_dtype_preserved(self):
        tv = TensorValue.of(np.zeros(3, np.float64))
        assert tv.dtype is float64

    def test_explicit_dtype(self):
        tv = TensorValue.of([1, 2], dtype="float32")
        assert tv.dtype is float32

    def test_astype(self):
        tv = TensorValue.of([1, 2]).astype("float32")
        assert tv.dtype is float32

    def test_item(self):
        assert TensorValue.of(5).item() == 5

    def test_copy_is_independent(self):
        tv = TensorValue.of(np.zeros(2, np.float32))
        cp = tv.copy()
        cp.array[0] = 9
        assert tv.array[0] == 0


class TestPyRef:
    def test_identity_semantics(self):
        obj = object()
        assert PyRef(obj) == PyRef(obj)
        assert PyRef(obj) != PyRef(object())

    def test_hash_by_identity(self):
        obj = [1, 2]   # unhashable object still works
        assert hash(PyRef(obj)) == id(obj)


class TestNumericClassification:
    """The 'basic translation rule' of paper section 4.2.2."""

    def test_numeric_values(self):
        for v in (1, 2.5, True, np.zeros(3), [1, 2], (1.0, 2.0)):
            assert is_numeric_pyvalue(v)

    def test_non_numeric_values(self):
        class Thing:
            pass
        for v in (Thing(), "text", ["a", "b"], [object()]):
            assert not is_numeric_pyvalue(v)

"""Eager tensors: Python protocol, operators, conversion rules."""

import numpy as np
import pytest

import repro as R
from repro.imperative.eager import Tensor, constant


class TestConstruction:
    def test_scalar(self):
        t = constant(2.5)
        assert t.dtype is R.float32 and t.shape.rank == 0

    def test_list(self):
        t = constant([1, 2, 3])
        assert t.dtype is R.int64 and t.shape == R.Shape((3,))

    def test_numpy_passthrough_dtype(self):
        t = constant(np.zeros(2, np.float64))
        assert t.dtype is R.float64


class TestPythonProtocol:
    def test_bool_on_scalar(self):
        assert bool(constant(1.0))
        assert not bool(constant(0.0))

    def test_int_float_conversion(self):
        assert int(constant(3)) == 3
        assert float(constant(2.5)) == pytest.approx(2.5)

    def test_len(self):
        assert len(constant([[1, 2], [3, 4], [5, 6]])) == 3

    def test_len_scalar_raises(self):
        with pytest.raises(TypeError):
            len(constant(1.0))

    def test_iteration_yields_rows(self):
        rows = list(constant([[1.0, 2.0], [3.0, 4.0]]))
        assert len(rows) == 2
        np.testing.assert_array_equal(rows[1].numpy(), [3.0, 4.0])

    def test_getitem(self):
        t = constant(np.arange(12).reshape(3, 4))
        np.testing.assert_array_equal(t[1].numpy(), [4, 5, 6, 7])
        np.testing.assert_array_equal(t[0, 1:3].numpy(), [1, 2])

    def test_tensor_index_becomes_gather(self):
        t = constant(np.arange(5) * 10)
        idx = constant(np.array([0, 3], np.int64))
        np.testing.assert_array_equal(t[idx].numpy(), [0, 30])

    def test_hashable_by_identity(self):
        t = constant(1.0)
        assert {t: "x"}[t] == "x"


class TestOperators:
    def test_arithmetic(self):
        a, b = constant([2.0, 4.0]), constant([1.0, 2.0])
        np.testing.assert_array_equal((a + b).numpy(), [3.0, 6.0])
        np.testing.assert_array_equal((a - b).numpy(), [1.0, 2.0])
        np.testing.assert_array_equal((a * b).numpy(), [2.0, 8.0])
        np.testing.assert_array_equal((a / b).numpy(), [2.0, 2.0])
        np.testing.assert_array_equal((a ** 2).numpy(), [4.0, 16.0])
        np.testing.assert_array_equal((-a).numpy(), [-2.0, -4.0])
        np.testing.assert_array_equal(abs(-a).numpy(), [2.0, 4.0])

    def test_reflected_operators(self):
        a = constant([2.0])
        np.testing.assert_array_equal((10.0 - a).numpy(), [8.0])
        np.testing.assert_array_equal((10.0 / a).numpy(), [5.0])
        np.testing.assert_array_equal((1.0 + a).numpy(), [3.0])

    def test_matmul_operator(self):
        a = constant(np.eye(2, dtype=np.float32))
        b = constant([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_array_equal((a @ b).numpy(), b.numpy())

    def test_comparisons_elementwise(self):
        a = constant([1.0, 3.0])
        out = (a > 2.0).numpy()
        np.testing.assert_array_equal(out, [False, True])

    def test_floordiv_mod(self):
        a = constant([7])
        assert int((a // 2).numpy()[0]) == 3
        assert int((a % 2).numpy()[0]) == 1

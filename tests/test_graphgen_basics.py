"""Graph generation of basic programs (paper section 4.1, figure 3)."""

import numpy as np
import pytest

import repro as R
from repro import janus
from repro.ops import api


def strict():
    return janus.JanusConfig(fail_on_not_convertible=True)


def converged(jf):
    """True once the function runs from a generated graph."""
    return jf.stats["graph_runs"] > 0 and not jf.imperative_only


def warm(jf, *args, n=5):
    out = None
    for _ in range(n):
        out = jf(*args)
    return out


class TestFigure3:
    def test_linear_model(self):
        @janus.function(config=strict())
        def loss_fn(x, y):
            y_ = 0.5 * x + 1.5
            return (y_ - y) ** 2

        x = R.constant([1.0, 2.0, 3.0])
        y = R.constant([2.0, 2.0, 2.0])
        out = warm(loss_fn, x, y)
        np.testing.assert_allclose(out.numpy(), [0.0, 0.25, 1.0],
                                   atol=1e-6)
        assert converged(loss_fn)

    def test_literals_become_constants(self):
        @janus.function(config=strict())
        def f(x):
            return x * 2.0 + 10.0

        out = warm(f, R.constant(1.0))
        assert float(out.numpy()) == pytest.approx(12.0)
        entry = next(iter(f.cache._entries.values()))
        names = {n.op_name for n in entry.generated.graph.nodes}
        assert "constant" in names or "add" in names


class TestExpressions:
    def test_operator_coverage(self):
        @janus.function(config=strict())
        def f(x):
            a = x + 1.0
            b = a - 0.5
            c = b * 2.0
            d = c / 4.0
            e = d ** 2.0
            return -e + abs(e)

        out = warm(f, R.constant(3.0))
        x = 3.0
        expected = -(((x + 1 - 0.5) * 2 / 4) ** 2) + \
            abs(((x + 1 - 0.5) * 2 / 4) ** 2)
        assert float(out.numpy()) == pytest.approx(expected)
        assert converged(f)

    def test_comparisons_and_boolops(self):
        @janus.function(config=strict())
        def f(x):
            return R.logical_and(x > 0.0, x < 10.0)

        assert bool(warm(f, R.constant(5.0)).numpy())
        assert converged(f)

    def test_chained_comparison(self):
        @janus.function(config=strict())
        def f(x):
            return 0.0 < x < 10.0

        assert bool(warm(f, R.constant(5.0)).numpy())

    def test_matmul_operator(self):
        @janus.function(config=strict())
        def f(a, b):
            return a @ b

        a = R.constant(np.eye(2, dtype=np.float32))
        b = R.constant(np.array([[1.0, 2.0], [3.0, 4.0]], np.float32))
        np.testing.assert_allclose(warm(f, a, b).numpy(), b.numpy())
        assert converged(f)

    def test_subscripts(self):
        @janus.function(config=strict())
        def f(x):
            return x[1] + x[0, 0] + R.reduce_sum(x[:, 1])

        x = R.constant(np.arange(6, dtype=np.float32).reshape(2, 3))
        expected = x.numpy()[1] + x.numpy()[0, 0] + x.numpy()[:, 1].sum()
        np.testing.assert_allclose(warm(f, x).numpy(), expected)

    def test_tuple_unpacking(self):
        @janus.function(config=strict())
        def f(x):
            a, b = R.split(x, 2, axis=0)
            return R.reduce_sum(a) - R.reduce_sum(b)

        x = R.constant(np.arange(4, dtype=np.float32))
        assert float(warm(f, x).numpy()) == pytest.approx((0 + 1) - (2 + 3))

    def test_local_lists(self):
        @janus.function(config=strict())
        def f(x):
            outs = []
            outs.append(x * 1.0)
            outs += [x * 2.0]
            return R.reduce_sum(R.stack(outs))

        x = R.constant(np.ones(2, np.float32))
        assert float(warm(f, x).numpy()) == pytest.approx(2 + 4)
        assert converged(f)

    def test_dict_locals(self):
        @janus.function(config=strict())
        def f(x):
            d = {"a": x * 2.0, "b": x + 1.0}
            return d["a"] - d["b"]

        assert float(warm(f, R.constant(3.0)).numpy()) == \
            pytest.approx(6.0 - 4.0)

    def test_fstring_constant(self):
        @janus.function(config=strict())
        def f(x):
            name = f"scale_{2}"
            scale = 2.0 if name == "scale_2" else 0.0
            return x * scale

        assert float(warm(f, R.constant(4.0)).numpy()) == 8.0

    def test_list_comprehension_static(self):
        @janus.function(config=strict())
        def f(x):
            parts = [x * float(i) for i in range(3)]
            return R.reduce_sum(R.stack(parts))

        assert float(warm(f, R.constant(2.0)).numpy()) == \
            pytest.approx(0 + 2 + 4)


class TestCalls:
    def test_whitelisted_framework_calls(self):
        @janus.function(config=strict())
        def f(x):
            return R.reduce_mean(R.tanh(R.matmul(x, x)))

        x = R.constant(np.eye(3, dtype=np.float32))
        warm(f, x)
        assert converged(f)

    def test_user_function_inlined(self):
        def helper(v, scale):
            return v * scale

        @janus.function(config=strict())
        def f(x):
            return helper(x, 3.0) + helper(x, 4.0)

        assert float(warm(f, R.constant(2.0)).numpy()) == \
            pytest.approx(14.0)
        assert converged(f)

    def test_keyword_and_default_arguments(self):
        def helper(v, scale=2.0, shift=0.0):
            return v * scale + shift

        @janus.function(config=strict())
        def f(x):
            return helper(x, shift=1.0)

        assert float(warm(f, R.constant(3.0)).numpy()) == \
            pytest.approx(7.0)

    def test_lambda_inlined(self):
        @janus.function(config=strict())
        def f(x):
            double = lambda v: v * 2.0  # noqa: E731
            return double(x)

        assert float(warm(f, R.constant(4.0)).numpy()) == 8.0

    def test_nested_def_inlined(self):
        @janus.function(config=strict())
        def f(x):
            def inner(v):
                return v + 100.0
            return inner(x)

        assert float(warm(f, R.constant(1.0)).numpy()) == 101.0

    def test_builtin_len_range_sum(self):
        @janus.function(config=strict())
        def f(x):
            n = len(x)
            total = x * 0.0
            for i in range(n):
                total = total + x
            return sum([R.reduce_sum(total)])

        x = R.constant(np.ones(3, np.float32))
        assert float(warm(f, x).numpy()) == pytest.approx(9.0)

    def test_min_max_builtins(self):
        @janus.function(config=strict())
        def f(x, y):
            return max(x, y) - min(x, y)

        out = warm(f, R.constant(3.0), R.constant(5.0))
        assert float(out.numpy()) == pytest.approx(2.0)


class TestOutputStructures:
    def test_tuple_return(self):
        @janus.function(config=strict())
        def f(x):
            return x + 1.0, x * 2.0

        a, b = warm(f, R.constant(3.0))
        assert float(a.numpy()) == 4.0 and float(b.numpy()) == 6.0
        assert converged(f)

    def test_list_return(self):
        @janus.function(config=strict())
        def f(x):
            return [x, x + 1.0]

        out = warm(f, R.constant(1.0))
        assert isinstance(out, list) and float(out[1].numpy()) == 2.0

    def test_dict_return(self):
        @janus.function(config=strict())
        def f(x):
            return {"loss": x * 2.0, "aux": x}

        out = warm(f, R.constant(2.0))
        assert float(out["loss"].numpy()) == 4.0

    def test_none_return(self):
        sink = {"value": None}

        @janus.function(config=strict())
        def f(x):
            sink["value"] = x * 2.0

        assert warm(f, R.constant(2.0)) is None
        assert converged(f)
        assert float(np.asarray(sink["value"].numpy())) == 4.0


class TestAssertStatement:
    def test_user_assert_converts(self):
        @janus.function(config=strict())
        def f(x):
            assert R.reduce_sum(x) > -1e9
            return x * 2.0

        warm(f, R.constant(np.ones(2, np.float32)))
        assert converged(f)

"""The JanusFunction execution model (paper figure 2) end to end."""

import numpy as np
import pytest

import repro as R
from repro import janus
from repro.errors import NotConvertible


def strict(**kw):
    return janus.JanusConfig(fail_on_not_convertible=True, **kw)


class TestExecutionPhases:
    def test_profiling_runs_before_conversion(self):
        cfg = strict(profile_runs=3)

        @janus.function(config=cfg)
        def f(x):
            return x * 2.0

        x = R.constant(1.0)
        for i in range(3):
            f(x)
            assert f.stats["graph_runs"] == 0
            assert f.stats["imperative_runs"] == i + 1
        f(x)
        assert f.stats["graphs_generated"] == 1
        assert f.stats["graph_runs"] == 1

    def test_profile_run_count_configurable(self):
        @janus.function(config=strict(profile_runs=1))
        def f(x):
            return x + 1.0

        f(R.constant(1.0))
        f(R.constant(1.0))
        assert f.stats["graph_runs"] == 1

    def test_cache_hit_reuses_graph(self):
        @janus.function(config=strict())
        def f(x):
            return x * 3.0

        x = R.constant(np.ones(4, np.float32))
        for _ in range(10):
            f(x)
        stats = f.cache_stats()
        assert stats["graphs_generated"] == 1
        assert stats["hits"] >= 6

    def test_different_dtypes_get_separate_entries(self):
        @janus.function(config=strict())
        def f(x):
            return x + x

        xf = R.constant(np.ones(2, np.float32))
        xi = R.constant(np.ones(2, np.int64))
        for _ in range(6):
            f(xf)
            f(xi)
        assert f.cache_stats()["entries"] == 2

    def test_results_identical_to_plain_function(self):
        def plain(x, y):
            z = R.tanh(x) * y
            return R.reduce_sum(z * z)

        jf = janus.function(plain, config=strict())
        rng = np.random.default_rng(0)
        for i in range(8):
            x = R.constant(rng.normal(size=(3, 3)).astype(np.float32))
            y = R.constant(rng.normal(size=(3, 3)).astype(np.float32))
            assert float(jf(x, y).numpy()) == \
                pytest.approx(float(plain(x, y).numpy()), rel=1e-5)
        assert jf.stats["graph_runs"] > 0


class TestMethodDecorator:
    def test_decorating_a_method(self):
        class Model:
            def __init__(self):
                self.scale = R.constant(np.float32(2.0))

            @janus.function(config=strict())
            def forward(self, x):
                return x * self.scale

        m = Model()
        for _ in range(5):
            out = m.forward(R.constant(3.0))
        assert float(out.numpy()) == 6.0
        assert m.forward.stats["graph_runs"] > 0


class TestNotConvertibleRouting:
    def test_silent_fallback_by_default(self):
        # coexecution off: this tests the whole-function verdict.
        @janus.function(config=janus.JanusConfig(coexecution=False))
        def f(x):
            import os  # inline import: imperative-only
            return x

        out = None
        for _ in range(6):
            out = f(R.constant(1.0))
        assert float(out.numpy()) == 1.0
        assert f.imperative_only

    def test_strict_mode_raises(self):
        @janus.function(config=strict())
        def f(x):
            yield x

        with pytest.raises(NotConvertible):
            for _ in range(5):
                f(R.constant(1.0))

    def test_imperative_only_skips_profiling_overhead(self):
        @janus.function(config=janus.JanusConfig(coexecution=False))
        def f(x):
            import os  # noqa
            return x

        for _ in range(6):
            f(R.constant(1.0))
        runs_after_marking = f.stats["imperative_runs"]
        f(R.constant(1.0))
        assert f.stats["imperative_runs"] == runs_after_marking + 1


class TestConfigOverrides:
    def test_with_config_creates_independent_function(self):
        @janus.function(config=strict())
        def f(x):
            return x * 2.0

        g = f.with_config(profile_runs=1)
        g(R.constant(1.0))
        g(R.constant(1.0))
        assert g.stats["graph_runs"] == 1
        assert f.stats["calls"] == 0

    def test_ablation_stages_exist(self):
        for stage in ("BASE", "+UNRL", "+SPCN", "+PARL"):
            assert stage in janus.ABLATION_STAGES
        cfg = janus.JanusConfig(**janus.ABLATION_STAGES["BASE"])
        assert cfg.ablation_stage() == "BASE"
        cfg = janus.JanusConfig(**janus.ABLATION_STAGES["+PARL"])
        assert cfg.ablation_stage() == "+PARL"

    def test_base_mode_still_converts(self):
        cfg = strict(**janus.ABLATION_STAGES["BASE"])

        @janus.function(config=cfg)
        def f(x):
            total = x * 0.0
            for i in range(3):
                total = total + x
            return R.reduce_sum(total)

        x = R.constant(np.ones(2, np.float32))
        out = None
        for _ in range(5):
            out = f(x)
        assert float(out.numpy()) == pytest.approx(6.0)
        assert f.stats["graph_runs"] > 0


class TestNumpyArguments:
    def test_numpy_args_accepted(self):
        @janus.function(config=strict())
        def f(x):
            return R.reduce_sum(x)

        for _ in range(5):
            out = f(np.ones((2, 2), np.float32))
        assert float(out.numpy()) == 4.0
        assert f.stats["graph_runs"] > 0

"""Extended op set: softplus/elu/gelu/log1p/expm1/cumsum, LayerNorm,
and the graph export utilities."""

import numpy as np
import pytest

import repro as R
from repro import janus, nn
from repro.graph import GraphBuilder, export
from repro.ops import api


def randn(*shape):
    return np.random.default_rng(3).normal(size=shape).astype(np.float32)


class TestExtendedActivations:
    def test_softplus_values_and_stability(self):
        x = R.constant(np.array([-1000.0, 0.0, 1000.0], np.float32))
        out = api.softplus(x).numpy()
        np.testing.assert_allclose(out[1], np.log(2), atol=1e-5)
        assert out[0] == pytest.approx(0.0, abs=1e-5)
        assert out[2] == pytest.approx(1000.0, rel=1e-5)
        assert np.isfinite(out).all()

    def test_elu(self):
        out = api.elu(R.constant(np.array([-1.0, 2.0], np.float32)))
        np.testing.assert_allclose(out.numpy(),
                                   [np.expm1(-1.0), 2.0], atol=1e-6)

    def test_gelu_fixed_points(self):
        out = api.gelu(R.constant(np.array([0.0], np.float32)))
        assert float(out.numpy()[0]) == pytest.approx(0.0, abs=1e-6)
        # gelu(x) ~ x for large positive x
        out = api.gelu(R.constant(np.array([10.0], np.float32)))
        assert float(out.numpy()[0]) == pytest.approx(10.0, rel=1e-4)

    def test_log1p_expm1_roundtrip(self):
        x = R.constant(np.array([0.1, 0.5, 2.0], np.float32))
        back = api.expm1(api.log1p(x))
        np.testing.assert_allclose(back.numpy(), x.numpy(), rtol=1e-5)

    def test_cumsum(self):
        x = R.constant(np.arange(6, dtype=np.float32).reshape(2, 3))
        out = api.cumsum(x, axis=1).numpy()
        np.testing.assert_array_equal(out, [[0, 1, 3], [3, 7, 12]])

    @pytest.mark.parametrize("fn", [api.softplus, api.gelu,
                                    lambda x: api.elu(x, 0.7),
                                    api.log1p, api.expm1])
    def test_gradients(self, gradcheck, fn):
        gradcheck(fn, np.abs(randn(8)) * 0.5 + 0.1)

    def test_cumsum_gradient(self, gradcheck):
        gradcheck(lambda x: api.cumsum(x, axis=0), randn(5))
        gradcheck(lambda x: api.cumsum(x, axis=1), randn(2, 4))

    def test_layer_norm_normalizes(self):
        ln = nn.LayerNorm(8)
        x = R.constant(randn(4, 8) * 10 + 5)
        out = ln(x).numpy()
        np.testing.assert_allclose(out.mean(axis=-1), 0, atol=1e-4)
        np.testing.assert_allclose(out.std(axis=-1), 1, atol=1e-2)

    def test_layer_norm_gradient_flows(self):
        ln = nn.LayerNorm(4)
        x = R.constant(randn(2, 4))
        with R.GradientTape() as tape:
            loss = R.reduce_sum(R.square(ln(x)))
        g = tape.gradient(loss, ln.gamma)
        assert g is not None and np.isfinite(g.numpy()).all()

    def test_new_ops_convert_through_janus(self):
        @janus.function(config=janus.JanusConfig(
            fail_on_not_convertible=True))
        def f(x):
            return R.reduce_sum(R.gelu(R.softplus(x)))

        x = R.constant(randn(5))
        expected = float(R.reduce_sum(
            R.gelu(R.softplus(x))).numpy())
        out = None
        for _ in range(5):
            out = f(x)
        assert float(out.numpy()) == pytest.approx(expected, rel=1e-5)
        assert f.stats["graph_runs"] > 0


class TestGraphExport:
    def _sample_graph(self):
        v = R.Variable(np.float32(1.0), name="w")
        b = GraphBuilder(name="demo")
        with b:
            x = b.placeholder("x", shape=(2,), dtype=R.float32)
            y = api.tanh(api.mul(x, b.read_variable(v)))
            api.assert_that(b.convert(True), message="guard")
            b.assign_variable(v, api.reduce_sum(y))
            b.mark_outputs([y])
        return b.graph

    def test_dot_contains_nodes_and_edges(self):
        dot = export.to_dot(self._sample_graph())
        assert dot.startswith("digraph")
        assert "input x" in dot
        assert "read w" in dot
        assert "assign w" in dot
        assert "->" in dot
        assert dot.rstrip().endswith("}")

    def test_dot_nested_function_clusters(self):
        b = GraphBuilder()
        inner = GraphBuilder(name="body")
        with inner:
            x = inner.placeholder("x", shape=(), dtype=R.float32)
            inner.mark_outputs([api.square(x)])
        func = inner.finalize_function("body")
        with b:
            x = b.placeholder("x", shape=(), dtype=R.float32)
            out = b.invoke(func, [x], [(R.Shape(()), R.float32)])
            b.mark_outputs([out])
        dot = export.to_dot(b.graph)
        assert "subgraph cluster" in dot
        assert "invoke body" in dot

    def test_max_nodes_cap(self):
        b = GraphBuilder()
        with b:
            x = b.placeholder("x", shape=(), dtype=R.float32)
            for _ in range(30):
                x = api.add(x, 1.0)
            b.mark_outputs([x])
        dot = export.to_dot(b.graph, max_nodes=10)
        assert "more nodes" in dot

    def test_node_census(self):
        census = export.node_census(self._sample_graph())
        assert census["var_read"] == 1
        assert census["var_assign"] == 1
        assert census["assert"] == 1

    def test_census_recurses_into_functions(self):
        inner = GraphBuilder(name="body")
        with inner:
            x = inner.placeholder("x", shape=(), dtype=R.float32)
            inner.mark_outputs([api.square(api.square(x))])
        func = inner.finalize_function("body")
        b = GraphBuilder()
        with b:
            x = b.placeholder("x", shape=(), dtype=R.float32)
            out = b.invoke(func, [x], [(R.Shape(()), R.float32)])
            b.mark_outputs([out])
        census = export.node_census(b.graph)
        assert census["square"] == 2

    def test_save_dot(self, tmp_path):
        path = export.save_dot(self._sample_graph(),
                               str(tmp_path / "g.dot"))
        with open(path) as fh:
            assert fh.read().startswith("digraph")

    def test_janus_generated_graph_exports(self):
        @janus.function(config=janus.JanusConfig(
            fail_on_not_convertible=True))
        def f(x):
            total = x * 0.0
            for i in range(3):
                total = total + x
            return R.reduce_sum(total)

        for _ in range(4):
            f(R.constant(np.ones(2, np.float32)))
        entry = next(iter(f.cache._entries.values()))
        dot = export.to_dot(entry.generated.graph)
        assert "digraph" in dot

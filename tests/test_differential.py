"""Differential testing: every executor must agree with eager execution.

Hypothesis generates random expression programs (elementwise chains,
reductions, matmuls) and random control-flow parameters; the same
computation is run eagerly, as a hand-built graph, and through JANUS, and
all results must coincide.  This is the broadest correctness net in the
suite — any divergence between the three execution stacks is a bug.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro as R
from repro import janus
from repro.graph import GraphBuilder, GraphExecutor, PassManager
from repro.graph import autodiff
from repro.ops import api

UNARY = [api.tanh, api.sigmoid, api.relu, api.exp, api.neg, api.square]
BINARY = [api.add, api.sub, api.mul, api.maximum, api.minimum]


@st.composite
def programs(draw):
    """A random straight-line program over two (3, 3) inputs."""
    steps = []
    n_ops = draw(st.integers(2, 8))
    for _ in range(n_ops):
        if draw(st.booleans()):
            steps.append(("unary", draw(st.integers(0, len(UNARY) - 1))))
        else:
            steps.append(("binary", draw(st.integers(0, len(BINARY) - 1)),
                          draw(st.integers(0, 1))))
    reduction = draw(st.sampled_from(["sum", "mean", "none"]))
    return steps, reduction


def run_program(program, a, b):
    steps, reduction = program
    x, y = a, b
    for step in steps:
        if step[0] == "unary":
            x = UNARY[step[1]](x)
        else:
            other = (x, y)[step[2]]
            x = BINARY[step[1]](x, other)
        # keep magnitudes sane for exp chains
        x = api.tanh(x)
    if reduction == "sum":
        return api.reduce_sum(x)
    if reduction == "mean":
        return api.reduce_mean(x)
    return x


class TestEagerVsGraph:
    @given(programs(), st.integers(0, 10))
    @settings(max_examples=30, deadline=None)
    def test_graph_matches_eager(self, program, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(3, 3)).astype(np.float32)
        b = rng.normal(size=(3, 3)).astype(np.float32)

        eager = run_program(program, R.constant(a), R.constant(b))

        builder = GraphBuilder()
        with builder:
            pa = builder.placeholder("a", shape=(3, 3), dtype=R.float32)
            pb = builder.placeholder("b", shape=(3, 3), dtype=R.float32)
            out = run_program(program, pa, pb)
            builder.mark_outputs([out])
        got, = GraphExecutor(builder.graph).run([a, b])
        np.testing.assert_allclose(got, eager.numpy(), rtol=1e-4,
                                   atol=1e-5)

    @given(programs(), st.integers(0, 10))
    @settings(max_examples=15, deadline=None)
    def test_optimized_graph_matches_eager(self, program, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(3, 3)).astype(np.float32)
        b = rng.normal(size=(3, 3)).astype(np.float32)
        eager = run_program(program, R.constant(a), R.constant(b))

        builder = GraphBuilder()
        with builder:
            pa = builder.placeholder("a", shape=(3, 3), dtype=R.float32)
            pb = builder.placeholder("b", shape=(3, 3), dtype=R.float32)
            out = run_program(program, pa, pb)
            builder.mark_outputs([out])
        PassManager().run(builder.graph)
        got, = GraphExecutor(builder.graph).run([a, b])
        np.testing.assert_allclose(got, eager.numpy(), rtol=1e-4,
                                   atol=1e-5)


class TestGradientAgreement:
    @given(programs(), st.integers(0, 5))
    @settings(max_examples=15, deadline=None)
    def test_symbolic_grad_matches_tape(self, program, seed):
        steps, _ = program
        program = (steps, "sum")   # scalar target for gradients
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(3, 3)).astype(np.float32)
        b = rng.normal(size=(3, 3)).astype(np.float32)
        v = R.Variable(a.copy())

        with R.GradientTape() as tape:
            loss = run_program(program, v.value(), R.constant(b))
        tape_grad = tape.gradient(loss, v)

        builder = GraphBuilder()
        with builder:
            pb = builder.placeholder("b", shape=(3, 3), dtype=R.float32)
            out = run_program(program, builder.read_variable(v), pb)
            grads = autodiff.add_training_gradients(builder, out)
            builder.mark_outputs([grads[v]])
        graph_grad, = GraphExecutor(builder.graph).run([b])
        if tape_grad is None:
            np.testing.assert_allclose(graph_grad, 0, atol=1e-6)
        else:
            np.testing.assert_allclose(graph_grad, tape_grad.numpy(),
                                       rtol=1e-3, atol=1e-4)


# Module-level state for the JANUS differential test (functions need
# real source, so they are defined statically and parameterized).

_KNOBS = {"scale": 1.0, "loops": 3}


def _janus_program(x):
    total = x * 0.0
    for _ in range(_KNOBS["loops"]):
        total = total + R.tanh(x * _KNOBS["scale"])
    if R.reduce_sum(total) > 0.0:
        return R.reduce_mean(total)
    return R.reduce_mean(total) - 1.0


class TestJanusMatchesEager:
    @pytest.mark.parametrize("loops,scale", [(1, 0.5), (3, 1.0),
                                             (5, -1.3)])
    def test_agreement_across_inputs(self, loops, scale):
        _KNOBS["loops"] = loops
        _KNOBS["scale"] = scale
        jf = janus.function(_janus_program)
        rng = np.random.default_rng(loops)
        for i in range(8):
            x = rng.normal(size=(4,)).astype(np.float32)
            expected = float(_janus_program(R.constant(x)).numpy())
            got = float(jf(x).numpy())
            assert got == pytest.approx(expected, rel=1e-4, abs=1e-5)

"""The trace-based (defun-like) converter and its documented unsafety.

Reproduces the Table 1 / section 6.2 failure modes: burned-in control
flow, frozen heap state, and untraceable recursion — while confirming the
baseline is *correct* on the static programs it was designed for.
"""

import numpy as np
import pytest

import repro as R
from repro import nn
from repro.baselines import TracedFunction, TracingLimitation, \
    trace_function


class TestCorrectOnStaticPrograms:
    def test_pure_function(self):
        def f(x, y):
            return R.reduce_sum(x * y + 1.0)

        tf = trace_function(f)
        a = np.ones((2, 2), np.float32)
        b = np.full((2, 2), 3.0, np.float32)
        assert float(np.asarray(tf(a, b))) == pytest.approx(4 * 4.0)
        # replay on different values works (placeholders, not constants)
        assert float(np.asarray(tf(a * 2, b))) == pytest.approx(4 * 7.0)

    def test_variables_parameterized(self):
        v = R.Variable(np.float32(2.0))

        def f(x):
            return R.reduce_sum(x) * v.value()

        tf = trace_function(f)
        x = np.ones(2, np.float32)
        assert float(np.asarray(tf(x))) == 4.0
        v.assign(5.0)
        # variable reads are var_read nodes: new value is picked up
        assert float(np.asarray(tf(x))) == 10.0

    def test_training_step_updates_weights(self):
        w = R.Variable(np.float32(0.0))
        opt = nn.SGD(0.1)

        def loss(x):
            return R.square(w.value() - R.reduce_sum(x))

        tf = trace_function(loss, optimizer=opt)
        x = np.ones(1, np.float32)
        first = float(np.asarray(tf(x)))
        for _ in range(50):
            tf(x)
        last = float(np.asarray(tf(x)))
        assert last < first * 0.01


class TestUnsafeBehaviours:
    def test_branch_direction_burned_in(self):
        """The batch-norm bug of figure 6a, in miniature."""
        def f(x):
            if float(R.reduce_sum(x).numpy()) > 0:
                return x * 2.0
            return x - 100.0

        tf = trace_function(f)
        pos = np.ones(2, np.float32)
        neg = -np.ones(2, np.float32)
        np.testing.assert_allclose(tf(pos).numpy(), pos * 2)
        # silently wrong: the traced (positive) branch replays
        np.testing.assert_allclose(tf(neg).numpy(), neg * 2)

    def test_loop_count_burned_in(self):
        def f(x):
            total = R.constant(0.0)
            for i in range(int(x.shape[0])):
                total = total + x[i]
            return total

        tf = trace_function(f)
        assert float(np.asarray(tf(np.ones(3, np.float32)))) == 3.0
        # a longer input still sums only the traced 3 elements
        out = tf(np.ones(5, np.float32))
        assert float(np.asarray(out)) == 3.0

    def test_heap_state_frozen(self):
        """The LM state-passing bug of figure 6b, in miniature."""
        class Model:
            def __init__(self):
                self.state = R.constant(np.float32(0.0))

            def step(self, x):
                new = self.state + R.reduce_sum(x)
                self.state = new
                return new

        m = Model()

        def f(x):
            return m.step(x)

        tf = trace_function(f)
        x = np.ones(1, np.float32)
        v1 = float(np.asarray(tf(x)))
        v2 = float(np.asarray(tf(x)))
        v3 = float(np.asarray(tf(x)))
        # state was captured as a constant at trace time: no progression
        assert v1 == v2 == v3 == 1.0
        # whereas the true imperative semantics accumulate
        m2 = Model()
        outs = [float(m2.step(R.constant(x)).numpy()) for _ in range(3)]
        assert outs == [1.0, 2.0, 3.0]

    def test_recursion_not_traceable(self):
        """The TreeLSTM failure of figure 6c."""
        def rec(x):
            # value-dependent recursion cannot unroll into a finite graph
            if float(R.reduce_sum(x).numpy()) <= 0:
                return x
            return rec(x - 1.0)

        tf = TracedFunction(rec, max_trace_ops=50)
        with pytest.raises(TracingLimitation):
            tf(np.full(1, 100.0, np.float32))

"""Symbolic autodiff: static graphs, cond, while, and recursive invoke."""

import numpy as np
import pytest

import repro as R
from repro.graph import GraphBuilder, GraphExecutor, autodiff
from repro.graph.core import GraphFunction
from repro.ops import api


def build_and_run(build_fn, feeds=()):
    b = GraphBuilder()
    with b:
        outputs = build_fn(b)
        b.mark_outputs(list(outputs))
    return GraphExecutor(b.graph).run(list(feeds))


class TestStaticGradients:
    def test_matches_tape(self):
        w = R.Variable(np.array([[1.5]], np.float32))
        x = np.random.randn(5, 1).astype(np.float32)
        y = 2.0 * x

        def build(b):
            xp = b.placeholder("x", shape=(5, 1), dtype=R.float32)
            yp = b.placeholder("y", shape=(5, 1), dtype=R.float32)
            pred = api.matmul(xp, b.read_variable(w))
            loss = api.reduce_mean(api.square(api.sub(pred, yp)))
            grads = autodiff.add_training_gradients(b, loss)
            return [loss, grads[w]]

        loss_g, grad_g = build_and_run(build, [x, y])

        with R.GradientTape() as tape:
            loss_e = R.reduce_mean(R.square(
                R.matmul(R.constant(x), w.value()) - R.constant(y)))
        grad_e = tape.gradient(loss_e, w)
        assert loss_g == pytest.approx(float(loss_e.numpy()), rel=1e-5)
        np.testing.assert_allclose(grad_g, grad_e.numpy(), rtol=1e-5)

    def test_gradient_through_multiple_reads(self):
        v = R.Variable(np.float32(3.0))

        def build(b):
            x = api.mul(b.read_variable(v), b.read_variable(v))
            grads = autodiff.add_training_gradients(b, x)
            return [grads[v]]

        grad, = build_and_run(build)
        assert grad == pytest.approx(6.0)

    def test_gradients_for_outputs_wrt_placeholders(self):
        b = GraphBuilder()
        with b:
            x = b.placeholder("x", shape=(3,), dtype=R.float32)
            y = api.reduce_sum(api.square(x))
            gx, = autodiff.gradients(b, [y], [x])
            b.mark_outputs([gx])
        out, = GraphExecutor(b.graph).run(
            [np.array([1.0, 2.0, 3.0], np.float32)])
        np.testing.assert_allclose(out, [2.0, 4.0, 6.0])

    def test_stop_gradient_in_graph(self):
        v = R.Variable(np.float32(2.0))

        def build(b):
            x = b.read_variable(v)
            y = api.add(api.mul(x, 3.0),
                        api.mul(api.stop_gradient(x), 100.0))
            grads = autodiff.add_training_gradients(b, y)
            return [grads[v]]

        grad, = build_and_run(build)
        assert grad == pytest.approx(3.0)


class TestCondGradients:
    def _branch(self, fn, name, var=None):
        b = GraphBuilder(name=name)
        with b:
            x = b.placeholder("x", shape=(), dtype=R.float32)
            b.mark_outputs([fn(b, x)])
        return b.finalize_function(name)

    def test_gradient_follows_taken_branch(self):
        t = self._branch(lambda b, x: api.mul(x, 5.0), "t")
        f = self._branch(lambda b, x: api.mul(x, -2.0), "f")

        def make(pred_value):
            b = GraphBuilder()
            with b:
                x = b.placeholder("x", shape=(), dtype=R.float32)
                out = b.cond(b.convert(pred_value), t, f, [x],
                             [(R.Shape(()), R.float32)])
                gx, = autodiff.gradients(b, [out], [x])
                b.mark_outputs([gx])
            return GraphExecutor(b.graph).run([np.float32(1.0)])[0]

        assert make(True) == pytest.approx(5.0)
        assert make(False) == pytest.approx(-2.0)

    def test_variable_in_one_branch_gets_zero_from_other(self):
        v = R.Variable(np.float32(2.0))
        t = self._branch(lambda b, x: api.mul(x, b.read_variable(v)), "t")
        f = self._branch(lambda b, x: api.neg(x), "f")

        def run(pred_value):
            b = GraphBuilder()
            with b:
                x = b.placeholder("x", shape=(), dtype=R.float32)
                out = b.cond(b.convert(pred_value), t, f, [x],
                             [(R.Shape(()), R.float32)])
                grads = autodiff.add_training_gradients(b, out)
                b.mark_outputs([grads[v]])
            return GraphExecutor(b.graph).run([np.float32(4.0)])[0]

        assert run(True) == pytest.approx(4.0)
        assert run(False) == pytest.approx(0.0)


class TestWhileGradients:
    def _loop_funcs(self, var):
        cb = GraphBuilder()
        with cb:
            i = cb.placeholder("i", shape=(), dtype=R.int64)
            acc = cb.placeholder("acc", shape=(), dtype=R.float32)
            cb.mark_outputs([api.less(i, 3)])
        cond = cb.finalize_function("cond")
        bb = GraphBuilder()
        with bb:
            i = bb.placeholder("i", shape=(), dtype=R.int64)
            acc = bb.placeholder("acc", shape=(), dtype=R.float32)
            bb.mark_outputs([api.add(i, 1),
                             api.mul(acc, bb.read_variable(var))])
        body = bb.finalize_function("body")
        return cond, body

    def test_power_rule_through_loop(self):
        """acc = w^3 after 3 iterations; d/dw = 3 w^2."""
        w = R.Variable(np.float32(2.0))
        cond, body = self._loop_funcs(w)
        b = GraphBuilder()
        with b:
            outs = b.while_loop(cond, body,
                                [b.convert(np.int64(0)),
                                 b.convert(np.float32(1.0))])
            grads = autodiff.add_training_gradients(b, outs[1])
            b.mark_outputs([outs[1], grads[w]])
        val, grad = GraphExecutor(b.graph).run([])
        assert val == pytest.approx(8.0)
        assert grad == pytest.approx(12.0)

    def test_loop_var_initial_gradient(self):
        w = R.Variable(np.float32(2.0))
        cond, body = self._loop_funcs(w)
        b = GraphBuilder()
        with b:
            x0 = b.placeholder("x0", shape=(), dtype=R.float32)
            outs = b.while_loop(cond, body,
                                [b.convert(np.int64(0)), x0])
            gx, = autodiff.gradients(b, [outs[1]], [x0])
            b.mark_outputs([gx])
        grad, = GraphExecutor(b.graph).run([np.float32(5.0)])
        assert grad == pytest.approx(8.0)  # d(w^3 * x0)/dx0 = 8


class TestInvokeGradients:
    def test_recursive_gradient(self):
        """f(n) = w*n + f(n-1), f(0) = 0 -> df/dw = sum(1..n)."""
        w = R.Variable(np.float32(3.0))
        func = GraphFunction("sumrec")
        gb = GraphBuilder()
        with gb:
            n = gb.placeholder("n", shape=(), dtype=R.float32)
            base = GraphBuilder()
            with base:
                m = base.placeholder("n", shape=(), dtype=R.float32)
                base.mark_outputs([api.mul(m, 0.0)])
            base_f = base.finalize_function("base")
            rec = GraphBuilder()
            with rec:
                m = rec.placeholder("n", shape=(), dtype=R.float32)
                inner = rec.invoke(func, [api.sub(m, 1.0)],
                                   [(R.Shape(()), R.float32)])
                rec.mark_outputs([
                    api.add(api.mul(rec.read_variable(w), m), inner)])
            rec_f = rec.finalize_function("rec")
            out = gb.cond(api.less_equal(n, 0.0), base_f, rec_f, [n],
                          [(R.Shape(()), R.float32)])
            gb.mark_outputs([out])
        func.finalize(gb.graph)

        b = GraphBuilder()
        with b:
            n = b.placeholder("n", shape=(), dtype=R.float32)
            out = b.invoke(func, [n], [(R.Shape(()), R.float32)])
            grads = autodiff.add_training_gradients(b, out)
            b.mark_outputs([out, grads[w]])
        ex = GraphExecutor(b.graph)
        val, grad = ex.run([np.float32(4.0)])
        assert val == pytest.approx(3.0 * (4 + 3 + 2 + 1))
        assert np.asarray(grad).reshape(()) == pytest.approx(10.0)

    def test_gradient_function_cached(self):
        func = GraphFunction("f")
        gb = GraphBuilder()
        with gb:
            x = gb.placeholder("x", shape=(), dtype=R.float32)
            gb.mark_outputs([api.square(x)])
        func.finalize(gb.graph)
        g1 = autodiff.grad_function(func)
        g2 = autodiff.grad_function(func)
        assert g1 is g2

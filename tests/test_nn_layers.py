"""Layer library: shapes, training/eval behaviour, variable tracking."""

import numpy as np
import pytest

import repro as R
from repro import nn
from repro.ops import api


def randn(*shape):
    return np.random.default_rng(0).normal(size=shape).astype(np.float32)


class TestDense:
    def test_shape_and_activation(self):
        layer = nn.Dense(4, 8, activation=api.relu)
        out = layer(R.constant(randn(2, 4)))
        assert out.shape == R.Shape((2, 8))
        assert out.numpy().min() >= 0

    def test_no_bias(self):
        layer = nn.Dense(3, 3, use_bias=False)
        assert layer.bias is None
        assert len(layer.trainable_variables) == 1


class TestConv2D:
    def test_same_padding_keeps_spatial(self):
        layer = nn.Conv2D(3, 8, kernel_size=3, padding="SAME")
        out = layer(R.constant(randn(2, 10, 10, 3)))
        assert out.shape == R.Shape((2, 10, 10, 8))

    def test_strided(self):
        layer = nn.Conv2D(1, 4, kernel_size=3, strides=2, padding="SAME")
        out = layer(R.constant(randn(1, 8, 8, 1)))
        assert out.shape == R.Shape((1, 4, 4, 4))

    def test_transpose_upsamples(self):
        layer = nn.Conv2DTranspose(4, 2, output_hw=(8, 8), kernel_size=4,
                                   strides=2)
        out = layer(R.constant(randn(1, 4, 4, 4)))
        assert out.shape == R.Shape((1, 8, 8, 2))


class TestBatchNorm:
    def test_training_normalizes_batch(self):
        bn = nn.BatchNorm(4)
        x = R.constant(randn(64, 4) * 5.0 + 3.0)
        out = bn(x).numpy()
        np.testing.assert_allclose(out.mean(axis=0), 0, atol=1e-3)
        np.testing.assert_allclose(out.std(axis=0), 1, atol=1e-2)

    def test_moving_stats_updated_in_training(self):
        bn = nn.BatchNorm(2, momentum=0.5)
        before = bn.moving_mean.numpy().copy()
        bn(R.constant(randn(32, 2) + 10.0))
        after = bn.moving_mean.numpy()
        assert not np.allclose(before, after)

    def test_eval_uses_moving_stats(self):
        bn = nn.BatchNorm(2)
        x = R.constant(randn(32, 2) + 4.0)
        for _ in range(60):
            bn(x)   # converge moving stats
        bn.training = False
        frozen = bn.moving_mean.numpy().copy()
        out_eval = bn(x).numpy()
        np.testing.assert_array_equal(bn.moving_mean.numpy(), frozen)
        # roughly normalized using converged stats
        assert abs(out_eval.mean()) < 0.5

    def test_gamma_beta_trainable_stats_not(self):
        bn = nn.BatchNorm(2)
        trainables = {v.name.split("/")[-1]
                      for v in bn.trainable_variables}
        assert trainables == {"gamma", "beta"}


class TestDropoutEmbedding:
    def test_dropout_off_in_eval(self):
        d = nn.Dropout(0.5)
        d.training = False
        x = R.constant(randn(8, 8))
        np.testing.assert_array_equal(d(x).numpy(), x.numpy())

    def test_dropout_scales_in_training(self):
        d = nn.Dropout(0.5)
        x = R.constant(np.ones((2000,), np.float32))
        out = d(x).numpy()
        assert {0.0, 2.0} >= set(np.unique(out).tolist())
        assert out.mean() == pytest.approx(1.0, abs=0.1)

    def test_embedding_lookup(self):
        emb = nn.Embedding(10, 4)
        out = emb(R.constant(np.array([1, 1, 3], np.int64)))
        assert out.shape == R.Shape((3, 4))
        np.testing.assert_array_equal(out.numpy()[0], out.numpy()[1])


class TestRNNCells:
    @pytest.mark.parametrize("cell_cls", [nn.LSTMCell, nn.GRUCell,
                                          nn.RNNCell])
    def test_step_shapes(self, cell_cls):
        cell = cell_cls(4, 8)
        state = cell.zero_state(2)
        x = R.constant(randn(2, 4))
        new_state = cell(state, x)
        h = new_state[0] if isinstance(new_state, tuple) else new_state
        assert h.shape == R.Shape((2, 8))

    def test_lstm_cell_state_propagates(self):
        cell = nn.LSTMCell(2, 4)
        state = cell.zero_state(1)
        x = R.constant(randn(1, 2))
        s1 = cell(state, x)
        s2 = cell(s1, x)
        assert not np.allclose(s1[0].numpy(), s2[0].numpy())


class TestModuleTracking:
    def test_nested_variables_found(self):
        model = nn.Sequential([nn.Dense(2, 4), nn.Dense(4, 2)])
        assert len(model.variables) == 4

    def test_variables_in_dicts_and_lists(self):
        class M(nn.Module):
            def __init__(self):
                super().__init__()
                self.parts = {"a": nn.Dense(2, 2, use_bias=False)}
                self.stack = [nn.Dense(2, 2, use_bias=False)]

        assert len(M().variables) == 2

    def test_uid_ordering_deterministic(self):
        model = nn.Sequential([nn.Dense(2, 2), nn.Dense(2, 2)])
        names = [v.uid for v in model.variables]
        assert names == sorted(names)

    def test_set_training_recurses(self):
        model = nn.Sequential([nn.BatchNorm(2), nn.Dropout(0.1)])
        nn.set_training(model, False)
        assert model.layers[0].training is False
        assert model.layers[1].training is False


class TestLosses:
    def test_accuracy(self):
        logits = R.constant(np.array([[5.0, 0.0], [0.0, 5.0]], np.float32))
        labels = R.constant(np.array([0, 0], np.int64))
        assert float(nn.losses.accuracy(logits, labels).numpy()) == 0.5

    def test_mse_zero_for_equal(self):
        x = R.constant(randn(3, 3))
        assert float(nn.losses.mean_squared_error(x, x).numpy()) == 0.0

"""Multi-tenant serving layer: batching, admission, metrics, lifecycle.

:mod:`repro.serving` multiplexes N client threads over shared
``janus.function`` endpoints with shape-compatible dynamic batching.
These tests pin down:

* bit-for-bit correctness through the batch/split round trip (including
  mixed shapes that must not share a batch, and endpoints that are not
  batch-polymorphic and must transparently fall back to per-request
  execution),
* admission control at the queue bound (``ServerOverloaded`` + the
  rejected counter),
* client accounting, exception propagation, and close semantics,
* the serving section of the ``janus-stats`` report and Prometheus text.
"""

import threading
import time

import numpy as np
import pytest

import repro as R
from repro import janus
from repro.observability import SERVING, clear
from repro.observability.cli import prometheus_text, render_report
from repro.serving import (Server, ServerClosed, ServerOverloaded,
                           ServingConfig)


@pytest.fixture(autouse=True)
def _clean():
    clear()
    yield
    clear()


def strict(**kw):
    return janus.JanusConfig(fail_on_not_convertible=True,
                             parallel_execution=False, **kw)


def _rows(i, rows=2, cols=3):
    return R.constant(np.full((rows, cols), float(i), np.float32))


def _run_clients(n, target):
    barrier = threading.Barrier(n)
    errors = []

    def runner(index):
        barrier.wait()
        try:
            target(index)
        except Exception as exc:  # noqa: BLE001 - surfaced to the test
            errors.append(exc)

    threads = [threading.Thread(target=runner, args=(i,))
               for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(30.0)
        assert not t.is_alive(), "client thread hung"
    return errors


class TestBatching:
    def test_concurrent_clients_bitwise_correct_and_coalesced(self):
        @janus.function(config=strict(profile_runs=1))
        def affine(x):
            return x * 2.0 + 1.0

        results = {}
        with Server(ServingConfig(max_batch_size=8,
                                  batch_linger_s=0.05)) as server:
            server.register("affine", affine)

            def client(i):
                # First dispatch is slow (profiling/generation), so
                # later arrivals pile up and coalesce behind it.
                results[i] = server.call("affine", _rows(i))

            assert not _run_clients(8, client)

        for i in range(8):
            expect = np.full((2, 3), i * 2.0 + 1.0, np.float32)
            assert np.array_equal(results[i].numpy(), expect), i

        snap = SERVING.snapshot()
        assert snap["requests"] == 8
        assert snap["rejected"] == 0
        assert snap["batches"] <= 8
        assert snap["peak_clients"] >= 2

    def test_batched_dispatch_splits_rows_exactly(self):
        calls = []

        def kernel(x):
            calls.append(x.shape[0])
            return R.constant(x.numpy() + 10.0)

        with Server(ServingConfig(max_batch_size=4,
                                  batch_linger_s=0.2)) as server:
            endpoint = server.register("k", kernel)
            # Enqueue directly while stalling the dispatcher's linger
            # window is unnecessary: submit from threads and let the
            # 200 ms window coalesce them.
            results = {}

            def client(i):
                if i > 0:
                    time.sleep(0.02)      # arrive inside the window
                results[i] = server.call("k", _rows(i, rows=1 + i % 2))

            assert not _run_clients(4, client)
            assert endpoint is not None

        for i in range(4):
            rows = 1 + i % 2
            expect = np.full((rows, 3), i + 10.0, np.float32)
            assert np.array_equal(results[i].numpy(), expect), \
                (i, results[i].numpy())

    def test_incompatible_shapes_never_share_a_batch(self):
        seen = []

        def kernel(x):
            seen.append(tuple(x.shape))
            return R.constant(x.numpy() * 3.0)

        with Server(ServingConfig(max_batch_size=8,
                                  batch_linger_s=0.1)) as server:
            server.register("k", kernel)
            results = {}

            def client(i):
                cols = 3 if i % 2 == 0 else 5   # two signature families
                results[i] = server.call("k", _rows(i, cols=cols))

            assert not _run_clients(6, client)

        for i in range(6):
            cols = 3 if i % 2 == 0 else 5
            expect = np.full((2, cols), i * 3.0, np.float32)
            assert np.array_equal(results[i].numpy(), expect), i
        # Every kernel invocation saw a homogeneous trailing shape.
        assert all(shape[1] in (3, 5) for shape in seen)

    def test_non_polymorphic_endpoint_falls_back_per_request(self):
        # reduce_sum collapses the batch dimension: the stacked output
        # cannot split back row-for-row, so the server must transparently
        # re-execute request by request.
        def total(x):
            return R.reduce_sum(x)

        with Server(ServingConfig(max_batch_size=8,
                                  batch_linger_s=0.1)) as server:
            server.register("total", total)
            results = {}

            def client(i):
                results[i] = server.call("total", _rows(i))

            assert not _run_clients(5, client)

        for i in range(5):
            assert float(results[i].numpy()) == pytest.approx(i * 6.0), i

    def test_non_batchable_registration_dispatches_singly(self):
        sizes = []

        def kernel(x):
            sizes.append(x.shape[0])
            return R.constant(x.numpy() + 1.0)

        with Server(ServingConfig(max_batch_size=8,
                                  batch_linger_s=0.1)) as server:
            server.register("k", kernel, batchable=False)

            def client(i):
                out = server.call("k", _rows(i))
                assert np.array_equal(out.numpy(),
                                      _rows(i).numpy() + 1.0)

            assert not _run_clients(4, client)
        assert sizes and all(s == 2 for s in sizes)
        assert SERVING.snapshot()["batched_requests"] == 0

    def test_scalar_args_bypass_batching(self):
        def square(x):
            return R.constant(np.float32(float(x.numpy()) ** 2))

        with Server(ServingConfig(max_batch_size=8)) as server:
            server.register("sq", square)
            assert float(server.call(
                "sq", R.constant(np.float32(3.0))).numpy()) == 9.0


class TestAdmissionAndLifecycle:
    def test_queue_bound_rejects_with_counter(self):
        release = threading.Event()
        started = threading.Event()

        def slow(x):
            started.set()
            release.wait(10.0)
            return x

        server = Server(ServingConfig(max_batch_size=1,
                                      max_queue_depth=2))
        server.register("slow", slow, batchable=False)
        try:
            results = []
            workers = [threading.Thread(
                target=lambda: results.append(
                    server.call("slow", _rows(1)))) for _ in range(3)]
            workers[0].start()
            assert started.wait(5.0)   # dispatcher busy on request 0
            workers[1].start()
            workers[2].start()
            deadline = time.time() + 5.0
            while SERVING.snapshot()["requests"] < 3 \
                    and time.time() < deadline:
                time.sleep(0.005)
            # Queue holds 2; a fourth client is refused at admission.
            with pytest.raises(ServerOverloaded):
                server.call("slow", _rows(9))
            assert SERVING.snapshot()["rejected"] == 1
        finally:
            release.set()
            for w in workers:
                w.join(10.0)
            server.close()
        assert len(results) == 3

    def test_endpoint_exception_propagates_to_caller(self):
        def boom(x):
            raise ValueError("bad batch")

        with Server(ServingConfig(max_batch_size=1)) as server:
            server.register("boom", boom, batchable=False)
            with pytest.raises(ValueError, match="bad batch"):
                server.call("boom", _rows(0))

    def test_unknown_endpoint_and_duplicate_registration(self):
        with Server() as server:
            server.register("a", lambda x: x)
            with pytest.raises(KeyError):
                server.call("nope", _rows(0))
            with pytest.raises(ValueError):
                server.register("a", lambda x: x)
            assert server.endpoints() == ["a"]

    def test_closed_server_rejects_calls(self):
        server = Server()
        server.register("id", lambda x: x, batchable=False)
        assert np.array_equal(server.call("id", _rows(2)).numpy(),
                              _rows(2).numpy())
        server.close()
        with pytest.raises(ServerClosed):
            server.call("id", _rows(2))
        with pytest.raises(ServerClosed):
            server.register("late", lambda x: x)
        server.close()   # idempotent

    def test_recompiles_in_flight_sampled_from_endpoints(self):
        class _Fn:
            recompiles_in_flight = 2

            def __call__(self, x):
                return x

        with Server() as server:
            server.register("f", _Fn(), batchable=False)
            server.call("f", _rows(0))
            assert server.recompiles_in_flight() == 2
            assert SERVING.snapshot()["recompiles_in_flight"] == 2


class TestServingObservability:
    def _drive(self):
        @janus.function(config=strict(profile_runs=1))
        def affine(x):
            return x * 3.0

        with Server(ServingConfig(max_batch_size=4,
                                  batch_linger_s=0.02)) as server:
            server.register("affine", affine)

            def client(i):
                out = server.call("affine", _rows(i))
                assert np.array_equal(out.numpy(),
                                      _rows(i).numpy() * 3.0)

            assert not _run_clients(6, client)

    def test_report_has_serving_section(self):
        self._drive()
        report = render_report()
        assert "-- serving --" in report
        assert "requests: 6 accepted" in report
        assert "queue depth:" in report
        assert "batch size:" in report

    def test_prometheus_exports_serving_gauges(self):
        self._drive()
        text = prometheus_text()
        assert "janus_serving_requests_total 6" in text
        assert "janus_serving_rejected_total 0" in text
        assert "janus_serving_queue_depth_count" in text
        assert "janus_serving_batch_size_count" in text
        assert "janus_serving_queue_wait_seconds_count" in text

    def test_idle_serving_section_omitted(self):
        assert "-- serving --" not in render_report()
        assert "janus_serving_requests_total" not in prometheus_text()

"""AST instrumentation and the runtime profiler (paper figure 2 (A))."""

import numpy as np
import pytest

import repro as R
from repro.janus import specialization as spec
from repro.janus.instrument import (instrument_function, function_key,
                                    get_function_ast)
from repro.janus.profiler import Profiler
from repro.errors import NotConvertible


def profiled(func, calls):
    prof = Profiler()
    results = [prof.profile_call(func, list(args)) for args in calls]
    return prof, results


class TestInstrumentationFidelity:
    """The instrumented clone must behave exactly like the original."""

    def test_return_value_identical(self):
        def f(x, y):
            return x * 2 + y

        prof, results = profiled(f, [(3, 4)])
        assert results[0] == 10

    def test_defaults_preserved(self):
        def f(x, y=5):
            return x + y

        prof = Profiler()
        clone = prof._instrument(f)
        assert clone(1) == 6

    def test_closure_shared_with_original(self):
        box = [10]

        def make():
            base = box[0]

            def f(x):
                return x + base
            return f

        f = make()
        prof = Profiler()
        clone = prof._instrument(f)
        assert clone(1) == 11

    def test_control_flow_preserved(self):
        def f(n):
            total = 0
            for i in range(n):
                if i % 2 == 0:
                    total += i
            return total

        prof, results = profiled(f, [(6,)])
        assert results[0] == 0 + 2 + 4

    def test_methods_profiled(self):
        class Model:
            def __init__(self):
                self.w = 3

            def __call__(self, x):
                return x * self.w

        m = Model()

        def step(x):
            return m(x)

        prof, results = profiled(step, [(2,)])
        assert results[0] == 6


class TestRecordedFacts:
    def test_branch_direction_stable(self):
        def f(x):
            if x > 0:
                return 1
            return -1

        prof, _ = profiled(f, [(1,), (2,), (3,)])
        sites = [s for s, e in prof.sites.items() if e.kind == "branch"]
        assert len(sites) == 1
        assert prof.branch_direction(sites[0]) is True

    def test_branch_direction_unstable_is_none(self):
        def f(x):
            if x > 0:
                return 1
            return -1

        prof, _ = profiled(f, [(1,), (-1,)])
        site = next(s for s, e in prof.sites.items()
                    if e.kind == "branch")
        assert prof.branch_direction(site) is None

    def test_trip_count_stable(self):
        def f(items):
            total = 0
            for x in items:
                total += x
            return total

        prof, _ = profiled(f, [([1, 2, 3],), ([4, 5, 6],)])
        site = next(s for s, e in prof.sites.items() if e.kind == "loop")
        assert prof.trip_count(site) == 3

    def test_trip_count_unstable_is_none(self):
        def f(items):
            total = 0
            for x in items:
                total += x
            return total

        prof, _ = profiled(f, [([1],), ([1, 2],)])
        site = next(s for s, e in prof.sites.items() if e.kind == "loop")
        assert prof.trip_count(site) is None

    def test_while_trip_count(self):
        def f(n):
            while n > 0:
                n -= 1
            return n

        prof, _ = profiled(f, [(4,), (4,)])
        site = next(s for s, e in prof.sites.items() if e.kind == "loop")
        assert prof.trip_count(site) == 4

    def test_callee_identity(self):
        def helper(x):
            return x + 1

        def f(x):
            return helper(x)

        prof, _ = profiled(f, [(1,), (2,)])
        site = next(s for s, e in prof.sites.items() if e.kind == "call")
        assert prof.callee(site) is helper

    def test_attr_spec_merges_across_calls(self):
        class Holder:
            pass

        h = Holder()

        def f():
            return h.state

        h.state = R.constant(np.zeros((4, 8), np.float32))
        prof = Profiler()
        prof.profile_call(f, [])
        h.state = R.constant(np.zeros((3, 8), np.float32))
        prof.profile_call(f, [])
        site = next(s for s, e in prof.sites.items() if e.kind == "attr"
                    and prof.sites[s].value_spec is not None
                    and prof.sites[s].value_spec.is_tensor_like)
        assert prof.attr_spec(site).shape == R.Shape((None, 8))

    def test_per_owner_attr_specs(self):
        class Layer:
            def __init__(self, s):
                self.strides = s

            def go(self):
                return self.strides

        a, b = Layer(1), Layer(2)

        def f():
            return a.go() + b.go()

        prof, _ = profiled(f, [(), ()])
        site = next(s for s, e in prof.sites.items()
                    if e.kind == "attr" and e.value_spec is not None
                    and e.value_spec.is_tensor_like)
        # merged spec is unstable, per-owner specs stay constant
        assert prof.attr_spec(site).kind in (spec.TENSOR,
                                             spec.CONST_TENSOR)
        assert prof.attr_spec(site, owner=a).kind == spec.CONST_TENSOR
        assert prof.attr_spec(site, owner=b).kind == spec.CONST_TENSOR

    def test_return_spec(self):
        def f(x):
            return x * 2.0

        prof, _ = profiled(f, [(R.constant(np.zeros(3, np.float32)),)])
        rs = prof.return_spec(f)
        assert rs is not None and rs.is_tensor_like

    def test_arg_specs_merge(self):
        def f(x):
            return x

        prof = Profiler()
        prof.profile_call(f, [np.zeros((4, 2), np.float32)])
        prof.profile_call(f, [np.zeros((3, 2), np.float32)])
        assert prof.arg_specs[0].shape == R.Shape((None, 2))


class TestRelaxationHooks:
    def test_force_dynamic(self):
        def f(x):
            if x > 0:
                return 1
            return 0

        prof, _ = profiled(f, [(1,), (1,)])
        site = next(s for s, e in prof.sites.items()
                    if e.kind == "branch")
        assert prof.branch_direction(site) is True
        prof.force_dynamic(site)
        assert prof.branch_direction(site) is None


class TestFunctionKey:
    def test_stable_across_bindings(self):
        class C:
            def m(self):
                return 1

        a, b = C(), C()
        assert function_key(a.m) == function_key(b.m)
        assert function_key(a.m) == function_key(C.m)


class TestGetFunctionAst:
    def test_builtin_rejected(self):
        with pytest.raises(NotConvertible):
            get_function_ast(len)

    def test_decorators_stripped(self):
        import functools

        @functools.lru_cache(None)
        def f():
            return 1

        fdef = get_function_ast(f.__wrapped__)
        assert fdef.decorator_list == []

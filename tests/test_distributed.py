"""Ring all-reduce, cost model, and replica synchronization."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro as R
from repro import nn
from repro.distributed import (ring_allreduce, AllReduceCostModel,
                               DataParallelSimulator, StepTiming,
                               ReplicaGroup)


class TestRingAllReduce:
    def test_average_of_workers(self):
        buffers = [np.full(10, float(w), np.float32) for w in range(4)]
        reduced = ring_allreduce(buffers)
        for r in reduced:
            np.testing.assert_allclose(r, np.full(10, 1.5), rtol=1e-6)

    def test_sum_mode(self):
        buffers = [np.ones(5, np.float32) for _ in range(3)]
        reduced = ring_allreduce(buffers, average=False)
        np.testing.assert_allclose(reduced[0], np.full(5, 3.0))

    def test_single_worker_identity(self):
        buf = np.arange(4, dtype=np.float32)
        out, = ring_allreduce([buf])
        np.testing.assert_array_equal(out, buf)

    def test_preserves_shape_and_dtype(self):
        buffers = [np.zeros((3, 4), np.float32) for _ in range(3)]
        out = ring_allreduce(buffers)
        assert out[0].shape == (3, 4) and out[0].dtype == np.float32

    @given(st.integers(2, 6), st.integers(1, 40))
    @settings(max_examples=20, deadline=None)
    def test_matches_mean_for_any_topology(self, workers, size):
        rng = np.random.default_rng(workers * 100 + size)
        buffers = [rng.normal(size=size).astype(np.float32)
                   for _ in range(workers)]
        expected = np.mean(buffers, axis=0)
        reduced = ring_allreduce(buffers)
        for r in reduced:
            np.testing.assert_allclose(r, expected, atol=1e-5)

    def test_uneven_chunking(self):
        # size not divisible by worker count exercises chunk bounds
        buffers = [np.arange(7, dtype=np.float32) + w for w in range(3)]
        reduced = ring_allreduce(buffers)
        np.testing.assert_allclose(reduced[0],
                                   np.arange(7, dtype=np.float32) + 1.0)


class TestCostModel:
    def test_zero_for_single_worker(self):
        assert AllReduceCostModel().allreduce_seconds(10 ** 6, 1) == 0.0

    def test_monotone_in_bytes(self):
        m = AllReduceCostModel()
        assert m.allreduce_seconds(10 ** 7, 8) > \
            m.allreduce_seconds(10 ** 6, 8)

    def test_intra_machine_faster(self):
        m = AllReduceCostModel(gpus_per_machine=6)
        assert m.allreduce_seconds(10 ** 7, 4) < \
            m.allreduce_seconds(10 ** 7, 12)

    def test_volume_term_saturates(self):
        """Per-worker traffic approaches 2x bytes as W grows (ring)."""
        m = AllReduceCostModel(inter_latency_s=0.0, intra_latency_s=0.0)
        t12 = m.allreduce_seconds(10 ** 8, 12)
        t36 = m.allreduce_seconds(10 ** 8, 36)
        assert t36 / t12 < 1.1


class TestSimulator:
    def test_overlap_beats_no_overlap(self):
        timing = StepTiming(total_seconds=0.1, grad_bytes=4 * 10 ** 8,
                            examples_per_step=64)
        sim = DataParallelSimulator()
        overlap = sim.throughput(timing, 12, overlap=True)
        blocking = sim.throughput(timing, 12, overlap=False)
        assert overlap > blocking

    def test_scale_factor_bounds(self):
        timing = StepTiming(0.1, 4 * 10 ** 6, 64)
        sim = DataParallelSimulator()
        for workers in (1, 2, 6, 12, 36):
            for overlap in (True, False):
                sf = sim.scale_factor(timing, workers, overlap)
                assert 0.0 < sf <= 1.0 + 1e-9

    def test_figure8_shape(self):
        """Graph modes keep a high scale factor; imperative decays."""
        # ResNet50-ish: 100 MB of gradients, modest step time.
        timing = StepTiming(0.25, 10 ** 8, 64)
        sim = DataParallelSimulator()
        graph_sf = sim.scale_factor(timing, 36, overlap=True)
        imp_sf = sim.scale_factor(timing, 36, overlap=False)
        assert graph_sf > imp_sf
        assert graph_sf > 0.5


class TestReplicaSync:
    def test_replicas_stay_identical(self):
        workers = 3
        group = ReplicaGroup(workers)
        rng = np.random.RandomState(0)
        X = rng.randn(8, 3).astype(np.float32)

        replicas, steps, opts = [], [], []
        for w in range(workers):
            nn.init.seed(123)           # identical initialization
            model = nn.Dense(3, 2)
            opt = group.optimizer_for(w, nn.SGD(0.1))
            replicas.append(model)
            opts.append(opt)

            def make_loss(m):
                def loss(shard):
                    return R.reduce_mean(R.square(m(shard)))
                return loss
            steps.append(make_loss(model))

        shards = np.split(X, workers ** 0 * 1)  # all see the full batch?
        shards = [X[w::workers] for w in range(workers)]
        for it in range(3):
            for w in range(workers):
                with R.GradientTape() as tape:
                    loss = steps[w](R.constant(shards[w]))
                vs = replicas[w].trainable_variables
                gs = tape.gradient(loss, vs)
                opts[w].apply_gradients(list(zip(gs, vs)))
            group.flush(opts)
            # all replicas hold identical weights after the exchange
            w0 = replicas[0].kernel.numpy()
            for rep in replicas[1:]:
                np.testing.assert_allclose(rep.kernel.numpy(), w0,
                                           atol=1e-5)

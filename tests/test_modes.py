"""The four execution modes produce identical training trajectories."""

import numpy as np
import pytest

import repro as R
from repro import janus, nn, data, models
from repro.modes import make_step, MODES


def trajectory(mode, batches, n=8):
    nn.init.seed(11)
    model = nn.Sequential([nn.Dense(4, 8, activation=R.tanh),
                           nn.Dense(8, 2)])
    opt = nn.SGD(0.05)

    def loss_fn(x, y):
        return nn.losses.softmax_cross_entropy(model(x), y)

    step = make_step(loss_fn, opt, mode,
                     config=janus.JanusConfig(fail_on_not_convertible=True)
                     if mode == "janus" else None)
    losses = []
    for i in range(n):
        out = step(*batches[i % len(batches)])
        losses.append(float(np.asarray(
            out.numpy() if hasattr(out, "numpy") else out)))
    return losses


@pytest.fixture(scope="module")
def batches():
    rng = np.random.RandomState(3)
    X = rng.randn(16, 4).astype(np.float32)
    Y = (X[:, 0] > 0).astype(np.int64)
    return [(X, Y)]


class TestModeParity:
    def test_janus_matches_imperative(self, batches):
        assert trajectory("janus", batches) == pytest.approx(
            trajectory("imperative", batches), rel=1e-4)

    def test_symbolic_matches_imperative(self, batches):
        assert trajectory("symbolic", batches) == pytest.approx(
            trajectory("imperative", batches), rel=1e-4)

    def test_tracing_matches_on_static_program(self, batches):
        assert trajectory("tracing", batches) == pytest.approx(
            trajectory("imperative", batches), rel=1e-4)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            make_step(lambda x: x, None, "mystery")

    def test_modes_constant(self):
        assert MODES == ("imperative", "janus", "symbolic", "tracing")


class TestSymbolicMode:
    def test_one_build_per_shape_signature(self, batches):
        nn.init.seed(0)
        model = nn.Dense(4, 2)

        def loss_fn(x, y):
            return nn.losses.softmax_cross_entropy(model(x), y)

        step = make_step(loss_fn, nn.SGD(0.01), "symbolic")
        X, Y = batches[0]
        for _ in range(4):
            step(X, Y)
        assert step.builds == 1
        # A new batch size triggers a rebuild (TF-1 style bucketing cost).
        step(X[:8], Y[:8])
        assert step.builds == 2

    def test_symbolic_unrolls_python_loops(self):
        nn.init.seed(0)
        cell = nn.GRUCell(4, 8)

        def loss_fn(seq):
            state = cell.zero_state(2)
            for t in range(len(seq)):
                state = cell(state, seq[t])
            return R.reduce_mean(R.square(state))

        step = make_step(loss_fn, nn.SGD(0.01), "symbolic")
        seq = np.random.randn(5, 2, 4).astype(np.float32)
        out1 = float(np.asarray(step(seq).numpy()))
        # imperative reference on the same weights
        ref = float(loss_fn(R.constant(seq)).numpy())
        # (weights changed by one SGD step between the calls, so compare
        # the *next* symbolic step against a fresh imperative pass)
        out2 = float(np.asarray(step(seq).numpy()))
        assert out2 == pytest.approx(ref, rel=1e-4)

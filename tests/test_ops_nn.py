"""Convolution, pooling, and softmax kernels against naive references."""

import numpy as np
import pytest

from repro.ops import get_op


def run(name, *arrays, **attrs):
    op = get_op(name)
    return op.kernel(attrs, *[np.asarray(a) for a in arrays])


def naive_conv2d(x, filters, strides, padding):
    """Straightforward quadruple-loop NHWC/HWIO convolution."""
    sh, sw = strides
    kh, kw, cin, cout = filters.shape
    n, h, w, _ = x.shape
    if padding == "SAME":
        oh, ow = -(-h // sh), -(-w // sw)
        pad_h = max((oh - 1) * sh + kh - h, 0)
        pad_w = max((ow - 1) * sw + kw - w, 0)
        x = np.pad(x, ((0, 0), (pad_h // 2, pad_h - pad_h // 2),
                       (pad_w // 2, pad_w - pad_w // 2), (0, 0)))
    else:
        oh, ow = (h - kh) // sh + 1, (w - kw) // sw + 1
    out = np.zeros((n, oh, ow, cout), np.float64)
    for b in range(n):
        for i in range(oh):
            for j in range(ow):
                patch = x[b, i * sh:i * sh + kh, j * sw:j * sw + kw, :]
                for o in range(cout):
                    out[b, i, j, o] = np.sum(patch * filters[..., o])
    return out.astype(np.float32)


class TestConv2D:
    @pytest.mark.parametrize("strides,padding", [
        ((1, 1), "VALID"), ((1, 1), "SAME"), ((2, 2), "SAME"),
        ((2, 1), "VALID"),
    ])
    def test_matches_naive(self, strides, padding):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 6, 7, 3)).astype(np.float32)
        f = rng.normal(size=(3, 3, 3, 4)).astype(np.float32)
        got = run("conv2d", x, f, strides=strides, padding=padding)
        want = naive_conv2d(x, f, strides, padding)
        np.testing.assert_allclose(got, want, atol=1e-4)

    def test_channel_mismatch_raises(self):
        from repro.errors import ShapeError
        with pytest.raises(ShapeError):
            run("conv2d", np.zeros((1, 4, 4, 2), np.float32),
                np.zeros((3, 3, 3, 4), np.float32))

    def test_input_grad_matches_numeric(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(1, 5, 5, 2)).astype(np.float32)
        f = rng.normal(size=(3, 3, 2, 2)).astype(np.float32)
        attrs = dict(strides=(1, 1), padding="SAME")
        y = run("conv2d", x, f, **attrs)
        gy = np.ones_like(y)
        gx = run("conv2d_input_grad", gy, f, x, **attrs)
        eps = 1e-2
        for idx in [(0, 0, 0, 0), (0, 2, 3, 1), (0, 4, 4, 0)]:
            xp, xm = x.copy(), x.copy()
            xp[idx] += eps
            xm[idx] -= eps
            num = (run("conv2d", xp, f, **attrs).sum()
                   - run("conv2d", xm, f, **attrs).sum()) / (2 * eps)
            assert gx[idx] == pytest.approx(num, abs=2e-2)

    def test_filter_grad_matches_numeric(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(1, 5, 5, 2)).astype(np.float32)
        f = rng.normal(size=(3, 3, 2, 2)).astype(np.float32)
        attrs = dict(strides=(2, 2), padding="SAME")
        y = run("conv2d", x, f, **attrs)
        gf = run("conv2d_filter_grad", np.ones_like(y), x, f, **attrs)
        eps = 1e-2
        for idx in [(0, 0, 0, 0), (1, 2, 1, 1)]:
            fp, fm = f.copy(), f.copy()
            fp[idx] += eps
            fm[idx] -= eps
            num = (run("conv2d", x, fp, **attrs).sum()
                   - run("conv2d", x, fm, **attrs).sum()) / (2 * eps)
            assert gf[idx] == pytest.approx(num, abs=2e-2)

    def test_transpose_inverts_spatial_reduction(self):
        x = np.ones((1, 3, 3, 2), np.float32)
        f = np.ones((4, 4, 1, 2), np.float32)
        out = run("conv2d_transpose", x, f, strides=(2, 2),
                  padding="SAME", output_shape=(6, 6, 1))
        assert out.shape == (1, 6, 6, 1)


class TestPooling:
    def test_max_pool(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 4, 4, 1)
        out = run("max_pool", x, ksize=(2, 2), strides=(2, 2),
                  padding="VALID")
        np.testing.assert_array_equal(out[0, :, :, 0], [[5, 7], [13, 15]])

    def test_max_pool_grad_routes_to_argmax(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 4, 4, 1)
        attrs = dict(ksize=(2, 2), strides=(2, 2), padding="VALID")
        y = run("max_pool", x, **attrs)
        g = run("max_pool_grad", np.ones_like(y), x, y, **attrs)
        # Exactly the max positions receive gradient.
        assert g.sum() == 4
        assert g[0, 1, 1, 0] == 1 and g[0, 0, 0, 0] == 0

    def test_max_pool_grad_ties_route_once(self):
        x = np.zeros((1, 2, 2, 1), np.float32)
        attrs = dict(ksize=(2, 2), strides=(2, 2), padding="VALID")
        y = run("max_pool", x, **attrs)
        g = run("max_pool_grad", np.ones_like(y), x, y, **attrs)
        assert g.sum() == pytest.approx(1.0)

    def test_avg_pool_and_grad(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 4, 4, 1)
        attrs = dict(ksize=(2, 2), strides=(2, 2), padding="VALID")
        out = run("avg_pool", x, **attrs)
        assert out[0, 0, 0, 0] == pytest.approx((0 + 1 + 4 + 5) / 4)
        g = run("avg_pool_grad", np.ones((1, 2, 2, 1), np.float32), x,
                **attrs)
        np.testing.assert_allclose(g, np.full_like(x, 0.25))


class TestSoftmaxFamily:
    def test_softmax_normalizes(self):
        out = run("softmax", np.random.randn(4, 7).astype(np.float32),
                  axis=-1)
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(4), atol=1e-6)

    def test_softmax_stable_for_large_logits(self):
        out = run("softmax", np.array([[1000.0, 0.0]], np.float32),
                  axis=-1)
        assert not np.isnan(out).any()

    def test_log_softmax_consistent(self):
        x = np.random.randn(3, 5).astype(np.float32)
        np.testing.assert_allclose(np.exp(run("log_softmax", x, axis=-1)),
                                   run("softmax", x, axis=-1), atol=1e-5)

    def test_cross_entropy_perfect_prediction(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]], np.float32)
        labels = np.array([0, 1])
        out = run("softmax_cross_entropy", logits, labels)
        np.testing.assert_allclose(out, [0.0, 0.0], atol=1e-5)

    def test_cross_entropy_uniform(self):
        logits = np.zeros((1, 4), np.float32)
        out = run("softmax_cross_entropy", logits, np.array([2]))
        assert out[0] == pytest.approx(np.log(4), abs=1e-5)

    def test_cross_entropy_grad_is_probs_minus_onehot(self):
        logits = np.random.randn(2, 3).astype(np.float32)
        labels = np.array([1, 2])
        grad = run("softmax_cross_entropy_grad", np.ones(2, np.float32),
                   logits, labels)
        probs = run("softmax", logits, axis=-1)
        expected = probs.copy()
        expected[0, 1] -= 1
        expected[1, 2] -= 1
        np.testing.assert_allclose(grad, expected, atol=1e-5)

    def test_sigmoid_cross_entropy_stable(self):
        logits = np.array([1000.0, -1000.0], np.float32)
        targets = np.array([1.0, 0.0], np.float32)
        out = run("sigmoid_cross_entropy", logits, targets)
        np.testing.assert_allclose(out, [0.0, 0.0], atol=1e-5)
        assert not np.isinf(out).any()

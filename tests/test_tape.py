"""GradientTape: recording, watching, source resolution."""

import numpy as np
import pytest

import repro as R
from repro.ops import api


class TestBasics:
    def test_variable_watched_automatically(self):
        v = R.Variable(np.float32(2.0))
        with R.GradientTape() as tape:
            y = v.value() * 3.0
        assert float(tape.gradient(y, v).numpy()) == pytest.approx(3.0)

    def test_tensor_needs_explicit_watch(self):
        x = R.constant(np.float32(2.0))
        with R.GradientTape() as tape:
            tape.watch(x)
            y = x * x
        assert float(tape.gradient(y, x).numpy()) == pytest.approx(4.0)

    def test_unrelated_source_gives_none(self):
        v = R.Variable(np.float32(1.0))
        w = R.Variable(np.float32(1.0))
        with R.GradientTape() as tape:
            y = v.value() * 2.0
        assert tape.gradient(y, w) is None

    def test_non_trainable_variable_not_watched(self):
        v = R.Variable(np.float32(1.0), trainable=False)
        with R.GradientTape() as tape:
            y = v.value() * 2.0
        assert tape.gradient(y, v) is None

    def test_multiple_sources(self):
        a = R.Variable(np.float32(2.0))
        b = R.Variable(np.float32(5.0))
        with R.GradientTape() as tape:
            y = a.value() * b.value()
        ga, gb = tape.gradient(y, [a, b])
        assert float(ga.numpy()) == pytest.approx(5.0)
        assert float(gb.numpy()) == pytest.approx(2.0)

    def test_no_recording_outside_context(self):
        v = R.Variable(np.float32(2.0))
        tape = R.GradientTape()
        with tape:
            y1 = v.value() * 2.0
        _ = v.value() * 100.0  # after exit: must not be recorded
        assert float(tape.gradient(y1, v).numpy()) == pytest.approx(2.0)


class TestAccumulation:
    def test_repeated_reads_accumulate(self):
        v = R.Variable(np.float32(3.0))
        with R.GradientTape() as tape:
            y = v.value() * v.value()   # two separate reads
        assert float(tape.gradient(y, v).numpy()) == pytest.approx(6.0)

    def test_chain_rule_through_python_loop(self):
        v = R.Variable(np.float32(1.5))
        with R.GradientTape() as tape:
            x = v.value()
            for _ in range(3):
                x = x * 2.0
        assert float(tape.gradient(x, v).numpy()) == pytest.approx(8.0)

    def test_branching_dataflow(self):
        v = R.Variable(np.float32(2.0))
        with R.GradientTape() as tape:
            x = v.value()
            y = x * x + api.exp(x)
        expected = 2 * 2.0 + np.exp(2.0)
        assert float(tape.gradient(y, v).numpy()) == \
            pytest.approx(expected, rel=1e-5)


class TestNesting:
    def test_two_active_tapes_record_independently(self):
        v = R.Variable(np.float32(2.0))
        with R.GradientTape() as outer:
            with R.GradientTape() as inner:
                y = v.value() * 3.0
            gi = inner.gradient(y, v)
        go = outer.gradient(y, v)
        assert float(gi.numpy()) == pytest.approx(3.0)
        assert float(go.numpy()) == pytest.approx(3.0)

    def test_gradient_computation_not_recorded(self):
        """First-order only: backward ops must not pollute the tape."""
        v = R.Variable(np.float32(2.0))
        with R.GradientTape() as tape:
            y = v.value() * v.value()
        n_entries = len(tape._entries)
        tape.gradient(y, v)
        assert len(tape._entries) == n_entries

"""Compile-once artifact behaviours: guard closures, shared pass
analyses, the bounded LRU graph cache, and the callable registry."""

import gc

import numpy as np
import pytest

import repro as R
from repro import janus
from repro.graph import AnalysisContext, GraphBuilder, PassManager
from repro.janus import CompiledGraph
from repro.janus.config import JanusConfig
from repro.janus.specialization import CALLABLE_REGISTRY, observe
from repro.observability import COUNTERS
from repro.ops import api


def _cfg(**overrides):
    return JanusConfig(fail_on_not_convertible=True,
                       parallel_execution=False, **overrides)


class TestGuardClosureSpecialization:
    def test_validated_value_skips_reinternalization(self, monkeypatch):
        """The identity memo: a heap value validated on one run is not
        re-internalized (or re-checked) on later runs while its identity
        is unchanged."""
        from repro.graph import executor as ex
        holder = type("H", (), {})()
        holder.base = R.constant(np.ones((2, 2), np.float32))
        holder.coef = 7

        calls = {"n": 0}
        real = ex._internalize

        def counting(value):
            if type(value) is int:      # count only the coef read
                calls["n"] += 1
            return real(value)
        # Patch before the graph is compiled so the py_get closure binds
        # the counting wrapper.
        monkeypatch.setattr(ex, "_internalize", counting)

        @janus.function(config=_cfg())
        def f():
            return R.reduce_sum(holder.base * holder.coef)

        for _ in range(3):
            f()                       # imperative profiling
        f()                           # generate + compile + first graph run
        assert f.stats["graph_runs"] == 1
        after_first = calls["n"]
        assert after_first >= 1       # the read was internalized once
        f()
        f()
        assert f.stats["graph_runs"] == 3
        # Identity-stable int: later runs reuse the validated raw value.
        assert calls["n"] == after_first
        assert float(f().numpy()) == pytest.approx(28.0)

    def test_memo_does_not_bypass_guard_on_change(self):
        """Changing the heap value still trips the assumption guard —
        the memo only short-circuits identity-equal revalidation."""
        holder = type("H", (), {})()
        holder.base = R.constant(np.ones((2, 2), np.float32))
        holder.coef = 7

        @janus.function(config=_cfg())
        def f():
            return R.reduce_sum(holder.base * holder.coef)

        for _ in range(4):
            f()
        assert f.stats["graph_runs"] >= 1
        holder.coef = 1000            # new identity, new value
        out = f()                     # guard fires -> imperative fallback
        assert f.stats["fallbacks"] == 1
        assert float(out.numpy()) == pytest.approx(4000.0)

    def test_fallback_reports_lifetime_assumption_failures(self):
        """Regression (trace-demo): the failure count survives the
        invalidation of the failing entry."""
        holder = type("H", (), {})()
        holder.state = R.constant(np.zeros((4, 2), np.float32))

        @janus.function(config=_cfg())
        def f():
            return R.reduce_sum(holder.state)

        for _ in range(5):
            f()
        holder.state = R.constant(np.zeros((2, 2), np.float32))
        f()
        stats = f.cache_stats()
        assert stats["fallbacks"] == 1
        assert stats["assumption_failures"] == 1


class TestSharedPassAnalyses:
    def _graph(self):
        b = GraphBuilder()
        with b:
            x = b.placeholder("x", shape=(), dtype=R.float32)
            b.mark_outputs([api.add(api.mul(x, 2.0), 1.0)])
        return b.graph

    def test_order_reused_until_mutation(self):
        graph = self._graph()
        ctx = AnalysisContext(graph)
        first = ctx.topological_order()
        assert ctx.topological_order() is first
        assert (ctx.computes, ctx.reuses) == (1, 1)

    def test_invalidated_on_graph_mutation(self):
        graph = self._graph()
        ctx = AnalysisContext(graph)
        first = ctx.topological_order()
        node = graph.new_node("constant")    # bumps graph.version
        from repro.tensor import TensorValue
        node.constant_value = TensorValue.of(np.float32(0.0))
        node.add_output(node.constant_value.shape,
                        node.constant_value.dtype)
        second = ctx.topological_order()
        assert second is not first
        assert ctx.computes == 2

    def test_version_guard_catches_unreported_mutation(self):
        """Even without an explicit invalidate(), a structural change
        (version bump) can never serve a stale order."""
        graph = self._graph()
        ctx = AnalysisContext(graph)
        ctx.topological_order()
        graph.remove_nodes([n for n in graph.nodes
                            if n.op_name == "add"][:0])  # no-op: no bump
        assert ctx.computes == 1
        before_version = graph.version
        graph.version += 1   # simulate a helper mutating behind our back
        ctx.topological_order()
        assert ctx.computes == 2
        graph.version = before_version + 1

    def test_steady_state_run_is_skipped_by_opt_stamp(self):
        """A repeat PassManager run over an already-optimized, unchanged
        graph short-circuits on the (version, pipeline) stamp — no
        rounds, no topological orders, and the executor cache survives."""
        graph = self._graph()
        PassManager().run(graph)     # reach the fixed point + stamp
        graph._executor_cache["nested"] = object()
        before = COUNTERS.snapshot()["counters"]
        PassManager().run(graph)     # steady state: stamped, skipped
        after = COUNTERS.snapshot()["counters"]
        computed = after.get("passes.topo_computed", 0) \
            - before.get("passes.topo_computed", 0)
        skipped = after.get("passes.graphs_skipped", 0) \
            - before.get("passes.graphs_skipped", 0)
        assert computed == 0
        assert skipped == 1
        assert "nested" in graph._executor_cache   # warm executors kept

    def test_structural_change_invalidates_opt_stamp(self):
        """Any node addition bumps graph.version, so a stamped graph
        that was mutated re-optimizes (and shares one topo per round)."""
        graph = self._graph()
        PassManager().run(graph)
        node = graph.new_node("const", name="late")
        import numpy as np
        from repro.tensor import TensorValue
        node.constant_value = TensorValue.of(np.float32(3.0))
        node.add_output(node.constant_value.shape,
                        node.constant_value.dtype)
        before = COUNTERS.snapshot()["counters"]
        PassManager().run(graph)
        after = COUNTERS.snapshot()["counters"]
        computed = after.get("passes.topo_computed", 0) \
            - before.get("passes.topo_computed", 0)
        reused = after.get("passes.topo_reused", 0) \
            - before.get("passes.topo_reused", 0)
        assert computed >= 1
        assert reused >= 2           # cse + folding + simplify share it


class TestBoundedGraphCache:
    def test_lru_eviction_under_novel_structures(self):
        """TreeNN-style workload: every input topology (here: list
        length) is a novel signature, so an unbounded cache would grow
        one entry per shape ever seen."""

        @janus.function(config=_cfg(graph_cache_entries=2,
                                    profile_runs=1))
        def f(xs):
            total = 0.0
            for x in xs:
                total = total + R.reduce_sum(x)
            return total

        def batch(length):
            return [R.constant(np.full((2,), 1.0, np.float32))
                    for _ in range(length)]

        for length in (1, 2, 3, 4, 5):
            for _ in range(3):
                out = f(batch(length))
                assert float(out.numpy()) == pytest.approx(2.0 * length)
        stats = f.cache_stats()
        assert stats["entries"] <= 2
        assert stats["evictions"] >= 3
        assert f.stats["graphs_generated"] >= 5
        # Lifetime totals accumulate across evicted entries.
        assert stats["hits"] >= 5

    def test_lru_keeps_recently_used(self):
        @janus.function(config=_cfg(graph_cache_entries=2,
                                    profile_runs=1))
        def f(xs):
            total = 0.0
            for x in xs:
                total = total + R.reduce_sum(x)
            return total

        def batch(length):
            return [R.constant(np.ones((2,), np.float32))
                    for _ in range(length)]

        f(batch(1))
        f(batch(1))   # generate + cache len-1
        f(batch(2))   # cache len-2
        f(batch(1))   # refresh len-1: len-2 becomes LRU
        generated = f.stats["graphs_generated"]
        f(batch(3))   # evicts len-2
        f(batch(1))   # still cached: no regeneration
        assert f.stats["graphs_generated"] == generated + 1

    def test_compiled_artifact_is_exposed(self):
        @janus.function(config=_cfg())
        def f(x):
            return x * 2.0

        for _ in range(4):
            f(R.constant(np.ones((2,), np.float32)))
        ((_sig, entry),) = f.cache.entries()
        assert isinstance(entry.compiled, CompiledGraph)
        assert entry.compiled.node_count == len(entry.generated.graph.nodes)
        assert entry.compiled.executor is entry.executor
        assert entry.compiled.compile_seconds >= 0.0


class TestCallableRegistry:
    def test_same_callable_same_token(self):
        def fn():
            return 1
        assert observe(fn).signature() == observe(fn).signature()

    def test_distinct_callables_distinct_tokens(self):
        def a():
            return 1

        def b():
            return 2
        assert observe(a).signature() != observe(b).signature()

    def test_gc_reallocated_callable_cannot_alias(self):
        """Regression: a dead function's reused address must not match
        the stale cache-key token minted for the old function."""
        def make():
            def fn():
                return None
            return fn

        f1 = make()
        sig1 = observe(f1).signature()
        addr = id(f1)
        del f1
        gc.collect()
        reused = None
        others = []
        for _ in range(1000):
            candidate = make()
            if id(candidate) == addr:
                reused = candidate
                break
            others.append(candidate)
        if reused is None:
            pytest.skip("allocator never reused the address")
        sig2 = observe(reused).signature()
        assert sig2 != sig1

    def test_dead_entries_are_reaped(self):
        def make():
            def fn():
                return None
            return fn
        f1 = make()
        CALLABLE_REGISTRY.token_for(f1)
        before = len(CALLABLE_REGISTRY)
        del f1
        gc.collect()
        assert len(CALLABLE_REGISTRY) <= before

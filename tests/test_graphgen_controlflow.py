"""Dynamic control flow conversion (paper section 4.2.1).

Covers speculative unrolling with assertion guards, fallback and
relaxation when assumptions break, and dynamic cond/while conversion.
"""

import numpy as np
import pytest

import repro as R
from repro import janus


def strict(**kw):
    return janus.JanusConfig(fail_on_not_convertible=True, **kw)


def warm(jf, *args, n=5):
    out = None
    for _ in range(n):
        out = jf(*args)
    return out


class TestStaticControlFlow:
    def test_constant_branch_folds(self):
        @janus.function(config=strict())
        def f(x):
            mode = "double"
            if mode == "double":
                return x * 2.0
            return x

        assert float(warm(f, R.constant(3.0)).numpy()) == 6.0
        entry = next(iter(f.cache._entries.values()))
        # No cond node and no assert: folded at build time.
        ops = {n.op_name for n in entry.generated.graph.nodes}
        assert "cond" not in ops

    def test_constant_range_loop_unrolls(self):
        @janus.function(config=strict())
        def f(x):
            total = x * 0.0
            for i in range(4):
                total = total + x * float(i)
            return total

        assert float(warm(f, R.constant(1.0)).numpy()) == \
            pytest.approx(0 + 1 + 2 + 3)


class TestSpeculativeUnrolling:
    def test_stable_tensor_branch_unrolled_with_assert(self):
        @janus.function(config=strict())
        def f(x):
            if R.reduce_sum(x) > 0.0:
                return x * 2.0
            return x - 100.0

        xp = R.constant(np.ones(2, np.float32))
        warm(f, xp)
        entry = next(iter(f.cache._entries.values()))
        ops = [n.op_name for n in entry.generated.graph.nodes]
        assert "assert" in ops          # the guard
        assert "cond" not in ops        # unrolled, not dynamic

    def test_assert_fires_and_falls_back(self):
        @janus.function(config=strict())
        def f(x, gate):
            if R.reduce_sum(gate) > 0.0:
                y = x * 2.0
            else:
                y = x - 100.0
            return y

        x = R.constant(np.ones(2, np.float32))
        neg = R.constant(-np.ones(1, np.float32))
        # Varying positive gates: the gate is not a constant, but the
        # branch direction is stable, so the branch unrolls behind an
        # AssertOp (not a precheck).
        for k in range(5):
            f(x, R.constant(np.full(1, 1.0 + k, np.float32)))
        assert f.stats["graph_runs"] > 0
        # Same shapes, flipped predicate: the runtime assert must fire.
        out = f(x, neg)
        np.testing.assert_allclose(out.numpy(), x.numpy() - 100.0)
        assert f.stats["fallbacks"] == 1

    def test_relaxed_graph_is_dynamic_and_correct_both_ways(self):
        @janus.function(config=strict())
        def f(x, gate):
            if R.reduce_sum(gate) > 0.0:
                y = x * 2.0
            else:
                y = x - 100.0
            return y

        x = R.constant(np.ones(2, np.float32))
        pos = R.constant(np.ones(1, np.float32))
        neg = R.constant(-np.ones(1, np.float32))
        warm(f, x, pos)
        f(x, neg)           # fallback + relaxation
        out_neg = f(x, neg)  # regenerated with dynamic cond
        out_pos = f(x, pos)
        np.testing.assert_allclose(out_neg.numpy(), x.numpy() - 100.0)
        np.testing.assert_allclose(out_pos.numpy(), x.numpy() * 2.0)
        entry = next(iter(f.cache._entries.values()))
        ops = {n.op_name for n in entry.generated.graph.nodes}
        assert "cond" in ops
        assert f.stats["graph_runs"] >= 3

    def test_loop_over_tensor_unrolls_with_shape_assumption(self):
        @janus.function(config=strict())
        def f(seq):
            total = R.constant(0.0)
            for row in seq:
                total = total + R.reduce_sum(row)
            return total

        seq = R.constant(np.ones((4, 2), np.float32))
        assert float(warm(f, seq).numpy()) == pytest.approx(8.0)
        assert f.stats["graph_runs"] > 0

    def test_shape_change_regenerates_via_precheck(self):
        @janus.function(config=strict())
        def f(seq):
            total = R.constant(0.0)
            for row in seq:
                total = total + R.reduce_sum(row)
            return total

        warm(f, R.constant(np.ones((4, 2), np.float32)))
        # Different length: precheck miss, imperative run, regeneration.
        out = f(R.constant(np.ones((6, 2), np.float32)))
        assert float(out.numpy()) == pytest.approx(12.0)
        out = f(R.constant(np.ones((6, 2), np.float32)))
        out = f(R.constant(np.ones((6, 2), np.float32)))
        assert float(out.numpy()) == pytest.approx(12.0)


class TestDynamicLoops:
    def test_unstable_trip_count_becomes_while(self):
        cfg = strict()

        @janus.function(config=cfg)
        def f(seq):
            total = R.constant(0.0)
            for row in seq:
                total = total + R.reduce_sum(row)
            return total

        # Alternate lengths during profiling: trip count never stabilizes
        # and the argument spec relaxes to (?, 2).
        lengths = [3, 5, 3, 5, 3, 5, 4]
        outs = []
        for n in lengths:
            outs.append(float(f(R.constant(
                np.ones((n, 2), np.float32))).numpy()))
        assert outs == [pytest.approx(2.0 * n) for n in lengths]
        entry = next(iter(f.cache._entries.values()), None)
        if entry is not None:
            ops = {n.op_name for n in entry.generated.graph.nodes}
            assert "while_loop" in ops

    def test_while_statement_dynamic(self):
        @janus.function(config=strict(
            unroll_stable_control_flow=False))
        def f(x):
            i = R.constant(0.0)
            total = x * 0.0
            while R.reduce_sum(i) < 3.0:
                total = total + x
                i = i + 1.0
            return total

        out = warm(f, R.constant(np.ones(2, np.float32)))
        np.testing.assert_allclose(out.numpy(), [3.0, 3.0])
        assert f.stats["graph_runs"] > 0

    def test_dynamic_range_loop(self):
        @janus.function(config=strict(unroll_stable_control_flow=False))
        def f(x):
            total = x * 0.0
            for i in range(len(x)):
                total = total + x
            return total

        out = warm(f, R.constant(np.ones(3, np.float32)))
        np.testing.assert_allclose(out.numpy(), [3.0, 3.0, 3.0])

    def test_list_accumulation_in_dynamic_loop(self):
        """outputs += [state] across a dynamic loop -> stacked tensor."""
        @janus.function(config=strict(unroll_stable_control_flow=False))
        def f(seq):
            outputs = [seq[0] * 0.0]
            for row in seq:
                outputs = outputs + [row * 2.0]
            return R.reduce_sum(R.concat([outputs[0], outputs[1]], 0))

        seq = R.constant(np.ones((3, 2), np.float32))
        out = warm(f, seq)
        assert f.stats["graph_runs"] > 0 or f.imperative_only is False


class TestGuardPatterns:
    def test_both_branches_return(self):
        @janus.function(config=strict(unroll_stable_control_flow=False))
        def f(x):
            if R.reduce_sum(x) > 0.0:
                return x * 2.0
            else:
                return x * -1.0

        # alternate during profiling so the branch is dynamic
        xp = R.constant(np.ones(2, np.float32))
        xn = R.constant(-np.ones(2, np.float32))
        for _ in range(3):
            f(xp)
            f(xn)
        np.testing.assert_allclose(f(xp).numpy(), [2.0, 2.0])
        np.testing.assert_allclose(f(xn).numpy(), [1.0, 1.0])
        assert f.stats["graph_runs"] >= 2

    def test_guard_return_consumes_rest(self):
        @janus.function(config=strict(unroll_stable_control_flow=False))
        def f(x):
            if R.reduce_sum(x) > 0.0:
                return x * 2.0
            y = x + 1.0
            return y * 3.0

        xp = R.constant(np.ones(2, np.float32))
        xn = R.constant(-np.ones(2, np.float32))
        for _ in range(3):
            f(xp)
            f(xn)
        np.testing.assert_allclose(f(xp).numpy(), [2.0, 2.0])
        np.testing.assert_allclose(f(xn).numpy(), [0.0, 0.0])

    def test_ifexp(self):
        @janus.function(config=strict(unroll_stable_control_flow=False))
        def f(x):
            y = x * 2.0 if R.reduce_sum(x) > 0.0 else x * -1.0
            return y

        xp = R.constant(np.ones(2, np.float32))
        xn = R.constant(-np.ones(2, np.float32))
        for _ in range(3):
            f(xp)
            f(xn)
        np.testing.assert_allclose(f(xn).numpy(), [1.0, 1.0])


class TestUnrollLimits:
    def test_max_unroll_respected(self):
        @janus.function(config=strict(max_unroll=4))
        def f(seq):
            total = R.constant(0.0)
            for row in seq:
                total = total + R.reduce_sum(row)
            return total

        seq = R.constant(np.ones((32, 2), np.float32))
        out = warm(f, seq)
        assert float(out.numpy()) == pytest.approx(64.0)
        entry = next(iter(f.cache._entries.values()))
        ops = {n.op_name for n in entry.generated.graph.nodes}
        assert "while_loop" in ops  # too long to unroll

"""Randomized three-way differential for imperative–symbolic co-execution.

The co-execution planner (docs/coexecution.md) splits a function that
cannot convert whole into symbolic fragments and imperative gaps.  The
claim that must hold bit-for-bit is: the alternating schedule computes
exactly what the un-split function computes — through warmup, dynamic
plan refinement, heap-mutation storms, and gradient tapes recording
across handoff boundaries.

Every seed generates one program from :data:`progen.COEXEC_MIX` — the
full construct pool with unsupported constructs (``.numpy()``
materialization into opaque list mutation, dict mutation through a
sourceless helper, third-party-style sourceless calls, generator
expressions) injected at random positions — and runs three arms:

* **co-executed** — ``coexecution=True``: the plan must engage
  (``coexec_runs`` > 0) with at least one symbolic fragment,
* **whole-function imperative** — ``coexecution=False``: the classic
  all-or-nothing verdict,
* **full-graph** — the same seed's program *without* injection, which
  converts whole: it must run real graphs with the planner never
  engaging (co-execution is a no-op for convertible functions).

After every call, every arm must match the pure imperative oracle
bit-for-bit; when the injected constructs are pure observers (no
``thirdparty`` feedback into the tensor flow), the full-graph arm must
also agree with the injected arms.  Each arm's counters must conserve
exactly: ``calls == graph_runs + imperative_runs + coexec_runs``, and
the parent's ``coexec_fragment_runs`` must equal the sum of its
fragments' ``graph_runs``.  Programs reading a Variable additionally
check gradient parity: a GradientTape recording through the co-executed
schedule must produce the same gradients as one recording the plain
function.
"""

import linecache
import random

import numpy as np
import pytest

import repro as R
from repro import janus
from repro import observability as obs
from repro.observability.health import HEALTH

from progen import (COEXEC_MIX, Mix, apply_mutation, gen_program,
                    mutation_pool, vec)

#: Seeded programs; the issue floor is 40.
SEEDS = 44

#: Same streams as COEXEC_MIX (offset + separate injection rng) minus
#: the injection itself: the convertible "full-graph" sibling.
BASE_MIX = Mix(nprng_offset=COEXEC_MIX.nprng_offset,
               filename_prefix="coexbase")


def _make(seed, tag, mix, coexecution):
    prog, m, used, has_branch, filename = gen_program(seed, tag=tag,
                                                      mix=mix)
    cfg = janus.JanusConfig(profile_runs=2, parallel_execution=False,
                            coexecution=coexecution)
    return janus.function(config=cfg)(prog), m, used, has_branch, filename


def _injected_names(seed, mix):
    """Which INJECTIONS this seed planted (mirrors gen_program's rng)."""
    from progen import INJECTIONS
    irng = random.Random(90_000 + seed)
    picks = sorted(mix.inject)
    irng.shuffle(picks)
    return set(picks[:irng.randint(1, min(2, len(picks)))])


def _run_seed(seed):
    co, m_co, used, has_branch, f_co = _make(seed, "co", COEXEC_MIX, True)
    imp, m_imp, _, _, f_imp = _make(seed, "imp", COEXEC_MIX, False)
    oracle, m_or, _, _, f_or = _make(seed, "or", COEXEC_MIX, True)
    full, m_full, _, _, f_full = _make(seed, "full", BASE_MIX, True)
    files = [f_co, f_imp, f_or, f_full]
    injected = _injected_names(seed, COEXEC_MIX)
    observers_only = "thirdparty" not in injected

    in_rng = np.random.default_rng(95_000 + seed)
    x_pos = R.constant(np.abs(vec(in_rng)) + 0.1)
    x_neg = R.constant(-(x_pos.numpy()))
    # Per-arm mutation state (x-flip is a state mutation); the tensors
    # themselves are shared read-only.
    states = [{"x": x_pos, "x_neg": x_neg} for _ in range(4)]
    st_co, st_imp, st_or, st_full = states
    # Identically-seeded value streams so each arm's model mutates to
    # the same content.
    nprngs = [np.random.default_rng(96_000 + seed) for _ in range(4)]

    def check(ctx):
        expect = oracle.func(st_or["x"])
        out_co = co(st_co["x"])
        out_imp = imp(st_imp["x"])
        out_full = full(st_full["x"])
        assert np.array_equal(out_co.numpy(), expect.numpy()), (seed, ctx)
        assert np.array_equal(out_imp.numpy(), expect.numpy()), (seed, ctx)
        if observers_only:
            assert np.array_equal(out_full.numpy(), expect.numpy()), \
                (seed, ctx)
        else:
            base_expect = full.func(st_full["x"])
            assert np.array_equal(out_full.numpy(), base_expect.numpy()), \
                (seed, ctx)

    try:
        for k in range(5):
            check(("warm", k))

        rng = random.Random(7_500 + seed)
        pool = mutation_pool(used, has_branch)
        rng.shuffle(pool)
        for kind in pool[:rng.randint(1, min(3, len(pool)))]:
            for m, nprng, state in zip((m_co, m_imp, m_or, m_full),
                                       nprngs, states):
                apply_mutation(kind, m, nprng, state)
            for k in range(2):
                check((kind, k))

        # Gradient parity through handoff boundaries: a recording tape
        # must see every op of the co-executed schedule.
        if "var" in used:
            with R.GradientTape() as tape:
                loss = co(st_co["x"])
            g_co = tape.gradient(loss, [m_co.var])[0]
            with R.GradientTape() as tape:
                loss = oracle.func(st_or["x"])
            g_or = tape.gradient(loss, [m_or.var])[0]
            assert g_co is not None and g_or is not None, (seed,)
            assert np.array_equal(g_co.numpy(), g_or.numpy()), (seed,)

        # -- per-arm accounting ------------------------------------------
        for f in (co, imp, full):
            s = f.stats
            assert s["calls"] == s["graph_runs"] + s["imperative_runs"] \
                + s["coexec_runs"], (seed, f.__name__, s)

        # Co-executed arm: the plan engaged with >= 1 symbolic fragment,
        # and fragment accounting is exact.
        assert co.stats["coexec_runs"] >= 1, (seed, co.stats)
        plan = co.coexec_plan
        assert plan is not None, (seed, co.stats)
        frags = plan.fragment_functions()
        assert len(frags) >= 1, (seed,)
        assert co.stats["coexec_fragment_runs"] == \
            sum(fr.stats["graph_runs"] for fr in frags), \
            (seed, co.stats, [fr.stats for fr in frags])
        assert 0.0 < plan.converted_ratio < 1.0, (seed,
                                                  plan.converted_ratio)

        # Whole-imperative arm: the classic verdict, no co-execution.
        assert imp.imperative_only, (seed,)
        assert imp.stats["coexec_runs"] == 0, (seed, imp.stats)

        # Full-graph arm: converts whole; the planner never engages.
        assert full.coexec_plan is None, (seed,)
        assert not full.imperative_only, (seed, full.not_convertible_reason)
        assert full.stats["graph_runs"] > 0, (seed, full.stats)
        assert full.stats["coexec_runs"] == 0, (seed, full.stats)
    finally:
        for filename in files:
            linecache.cache.pop(filename, None)


class TestThreeWayDifferential:
    @pytest.mark.parametrize("seed", range(SEEDS))
    def test_coexec_vs_imperative_vs_full_graph(self, seed):
        _run_seed(seed)


# -- acceptance: partial health state ----------------------------------------

@pytest.fixture
def _metrics_on():
    previous = obs.set_metrics_enabled(True)
    obs.clear()
    yield
    obs.set_metrics_enabled(previous)
    obs.clear()


class TestPartialHealth:
    def test_sandwich_function_reaches_partial(self, _metrics_on):
        """A function with one unconvertible construct between two
        tensor-dense regions reaches health state ``partial`` with at
        least one symbolic fragment executed."""
        log = []
        w = np.array([1.0, 2.0, 3.0, 4.0], np.float32)

        def sandwich(x):
            y = x * 2.0
            y = y + w
            log.append(float(R.reduce_sum(y).numpy()))
            z = y * y
            z = z + y
            return R.reduce_sum(z)

        f = janus.function(
            config=janus.JanusConfig(profile_runs=2,
                                     parallel_execution=False,
                                     coexecution=True))(sandwich)
        x = R.constant(np.array([0.5, 1.5, 2.5, 3.5], np.float32))
        outs = [float(f(x).numpy()) for _ in range(8)]
        expect = float(sandwich(x).numpy())
        assert all(o == expect for o in outs), (outs, expect)

        assert f.coexec_plan is not None
        kinds = [seg.kind for seg in f.coexec_plan.segments]
        assert kinds.count("sym") >= 2 and "gap" in kinds, kinds
        assert f.stats["coexec_fragment_runs"] >= 1, f.stats
        health = HEALTH.get("sandwich")
        assert health is not None
        assert health.state == "partial"
        assert health.coexec_runs >= 1
        assert health.coexec_fragment_runs >= 1
        assert 0.0 < health.converted_ratio < 1.0
        assert "partially converted" in health.diagnosis()

    def test_coexec_off_reaches_imperative_only(self, _metrics_on):
        """Same shape of function with JANUS_COEXEC-style opt-out: the
        classic whole-function verdict and health state."""
        log = []

        def sandwich_off(x):
            y = x * 2.0
            log.append(float(R.reduce_sum(y).numpy()))
            z = y * y
            return R.reduce_sum(z)

        f = janus.function(
            config=janus.JanusConfig(profile_runs=2,
                                     coexecution=False))(sandwich_off)
        x = R.constant(np.ones(4, np.float32))
        for _ in range(6):
            f(x)
        assert f.imperative_only
        assert f.coexec_plan is None
        assert f.stats["coexec_runs"] == 0
        health = HEALTH.get("sandwich_off")
        assert health.state == "imperative-only"


class TestPlanMechanics:
    def test_boundary_mismatch_falls_back_whole_function(self):
        """A segment violating the (done, payload) protocol abandons
        the plan: the call re-runs whole-function imperative and the
        function lands on the classic verdict."""
        log = []

        def prog(x):
            y = x * 2.0
            log.append(float(R.reduce_sum(y).numpy()))
            z = y * y
            return R.reduce_sum(z)

        f = janus.function(
            config=janus.JanusConfig(profile_runs=2,
                                     parallel_execution=False,
                                     coexecution=True))(prog)
        x = R.constant(np.ones(4, np.float32))
        for _ in range(5):
            f(x)
        plan = f.coexec_plan
        assert plan is not None
        # Sabotage the gap segment so it returns a malformed pair.
        gap = next(s for s in plan.segments if s.kind == "gap")
        gap.fn = lambda *a: "not-a-pair"
        out = f(x)
        expect = prog(x)
        assert np.array_equal(out.numpy(), expect.numpy())
        assert f.coexec_plan is None
        assert f.imperative_only
        assert "boundary mismatch" in f.not_convertible_reason
        s = f.stats
        assert s["calls"] == s["graph_runs"] + s["imperative_runs"] \
            + s["coexec_runs"], s

    def test_all_gap_refinement_goes_imperative_only(self):
        """When dynamic refinement discovers every statement is
        unconvertible, the degenerated (all-gap) plan is abandoned and
        the function lands on the classic imperative-only verdict."""
        ns = {}
        exec("def h1(v):\n    return v + 1.0\n", ns)
        exec("def h2(v):\n    return v * 2.0\n", ns)
        h1, h2 = ns["h1"], ns["h2"]

        def prog2(x):
            y = h1(x)          # initial failure -> gap
            return h2(y)       # discovered unconvertible -> refined away

        f = janus.function(
            config=janus.JanusConfig(profile_runs=2,
                                     coexecution=True))(prog2)
        x = R.constant(np.ones(4, np.float32))
        outs = [f(x) for _ in range(6)]
        expect = prog2(x)
        assert all(np.array_equal(o.numpy(), expect.numpy())
                   for o in outs)
        assert f.imperative_only
        assert f.coexec_plan is None
        s = f.stats
        assert s["calls"] == s["graph_runs"] + s["imperative_runs"] \
            + s["coexec_runs"], s

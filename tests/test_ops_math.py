"""Elementwise math ops: kernels, dtype rules, shape inference."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

import repro as R
from repro.ops import api, get_op
from repro.tensor.shape import Shape

floats = hnp.arrays(np.float32, hnp.array_shapes(max_dims=3, max_side=4),
                    elements=st.floats(-10, 10, width=32))


def run(name, *arrays, **attrs):
    op = get_op(name)
    return op.kernel(attrs, *[np.asarray(a) for a in arrays])


class TestArithmeticKernels:
    @given(floats)
    @settings(max_examples=25, deadline=None)
    def test_add_matches_numpy(self, a):
        np.testing.assert_array_equal(run("add", a, a), a + a)

    @given(floats)
    @settings(max_examples=25, deadline=None)
    def test_neg_double_is_identity(self, a):
        np.testing.assert_array_equal(run("neg", run("neg", a)), a)

    def test_div_of_ints_is_float32(self):
        out = run("div", np.array([3], np.int64), np.array([2], np.int64))
        assert out.dtype == np.float32
        assert out[0] == pytest.approx(1.5)

    def test_floordiv(self):
        np.testing.assert_array_equal(
            run("floordiv", np.array([7]), np.array([2])), [3])

    def test_pow(self):
        np.testing.assert_allclose(
            run("pow", np.array([2.0], np.float32),
                np.array([3.0], np.float32)), [8.0])

    def test_where(self):
        out = run("where", np.array([True, False]),
                  np.array([1.0, 1.0]), np.array([2.0, 2.0]))
        np.testing.assert_array_equal(out, [1.0, 2.0])

    def test_clip(self):
        out = run("clip", np.array([-5.0, 0.5, 5.0]), min=0.0, max=1.0)
        np.testing.assert_array_equal(out, [0.0, 0.5, 1.0])


class TestActivations:
    def test_sigmoid_range_and_extremes(self):
        x = np.array([-100.0, 0.0, 100.0], np.float32)
        out = run("sigmoid", x)
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0], atol=1e-6)
        assert not np.isnan(out).any()

    def test_relu(self):
        np.testing.assert_array_equal(
            run("relu", np.array([-1.0, 2.0])), [0.0, 2.0])

    def test_leaky_relu(self):
        out = run("leaky_relu", np.array([-1.0, 2.0], np.float32),
                  alpha=0.1)
        np.testing.assert_allclose(out, [-0.1, 2.0], atol=1e-6)

    @given(floats)
    @settings(max_examples=25, deadline=None)
    def test_tanh_bounded(self, a):
        out = run("tanh", a)
        assert np.all(np.abs(out) <= 1.0)


class TestComparisons:
    def test_bool_dtype(self):
        out = run("less", np.array([1.0]), np.array([2.0]))
        assert out.dtype == np.bool_

    def test_logical_ops(self):
        t, f = np.array([True]), np.array([False])
        assert run("logical_and", t, f)[0] == False  # noqa: E712
        assert run("logical_or", t, f)[0] == True  # noqa: E712
        assert run("logical_not", f)[0] == True  # noqa: E712


class TestShapeInference:
    def _infer(self, name, shapes, dtypes=None, **attrs):
        op = get_op(name)
        dtypes = dtypes or [R.float32] * len(shapes)
        return op.shape_fn(attrs, [Shape.of(s) for s in shapes], dtypes)

    def test_broadcast_shape(self):
        (shape, dtype), = self._infer("add", [(2, 1), (1, 3)])
        assert shape == Shape((2, 3))

    def test_partial_broadcast(self):
        (shape, _), = self._infer("mul", [(None, 3), (3,)])
        assert shape == Shape((None, 3))

    def test_comparison_dtype(self):
        (_, dtype), = self._infer("equal", [(2,), (2,)])
        assert dtype is R.bool_

    def test_cast_dtype(self):
        (_, dtype), = self._infer("cast", [(2,)], dtype="int64")
        assert dtype is R.int64


class TestBroadcastGradKernel:
    def test_scalar_stays_scalar(self):
        out = run("broadcast_grad", np.float32(1.0), np.float32(0.0))
        assert out.shape == ()

    def test_sums_broadcast_axes(self):
        grad = np.ones((4, 3), np.float32)
        ref = np.zeros((3,), np.float32)
        out = run("broadcast_grad", grad, ref)
        np.testing.assert_array_equal(out, [4.0, 4.0, 4.0])

    def test_keepdim_axes(self):
        grad = np.ones((4, 3), np.float32)
        ref = np.zeros((4, 1), np.float32)
        out = run("broadcast_grad", grad, ref)
        np.testing.assert_array_equal(out, [[3.0]] * 4)

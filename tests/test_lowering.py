"""Graph lowering: fusion boundaries, flat programs, guards, bailouts.

The lowering pipeline (docs/lowering.md) has three separately testable
properties:

* **Fusion is boundary-respecting** — a producer is absorbed into a
  fused kernel only when *every* consumer is inside the group and its
  value is not a graph output; non-elementwise ops and control
  involvement stop a chain.  Fused nodes must also survive CSE
  untouched (their kernels are distinct closures even when the op
  chains look identical).
* **Lowered execution is bit-for-bit the node-walking executor** — the
  flat closure loop is an encoding change, not a semantic one, for
  every instruction kind including nested control flow and loop
  gradients.
* **Bailouts are taxonomized, never fatal** — unsupported constructs
  and the parallel schedule raise :class:`LoweringBailout` with a
  counter-suffix reason, and the config/env switches keep the
  node-walking path selectable.
"""

import numpy as np
import pytest

import repro as R
from repro import janus
from repro.graph import GraphBuilder, GraphExecutor, autodiff
from repro.graph.lowering import (LoweredExecutor, LoweringBailout,
                                  fuse_graph, lower_executor)
from repro.graph.passes import (ELEMENTWISE_OPS, CommonSubexpressionElimination,
                                ElementwiseFusion)
from repro.errors import AssumptionFailed
from repro.observability import COUNTERS
from repro.ops import api


def count_ops(graph, name):
    return sum(1 for n in graph.nodes if n.op_name == name)


def counters():
    return dict(COUNTERS.snapshot()["counters"])


def strict(**kw):
    kw.setdefault("profile_runs", 1)
    # Explicit so the suite means the same thing under the CI leg that
    # exports JANUS_LOWERING=0 (make test-nolowering).
    kw.setdefault("lowering", True)
    return janus.JanusConfig(fail_on_not_convertible=True,
                             parallel_execution=False, **kw)


# -- fusion boundaries -------------------------------------------------------

class TestElementwiseFusion:
    def test_chain_collapses_to_one_fused_node(self):
        b = GraphBuilder()
        with b:
            x = b.placeholder("x", shape=(4,), dtype=R.float32)
            y = api.tanh(api.exp(api.mul(api.add(x, 1.0), 2.0)))
            b.mark_outputs([api.reduce_sum(y)])
        feed = np.arange(4, dtype=np.float32)
        before = GraphExecutor(b.graph).run([feed])[0].copy()
        fused = fuse_graph(b.graph)
        assert fused == 4
        assert count_ops(b.graph, "fused") == 1
        for op in ("add", "mul", "exp", "tanh"):
            assert count_ops(b.graph, op) == 0
        after = GraphExecutor(b.graph).run([feed])[0]
        assert np.array_equal(before, after)  # bit-for-bit, not approx

    def test_multi_consumer_intermediate_not_absorbed(self):
        """exp(x) feeds both the chain and reduce_sum: it must survive."""
        b = GraphBuilder()
        with b:
            x = b.placeholder("x", shape=(4,), dtype=R.float32)
            e = api.exp(x)
            chain = api.mul(api.tanh(e), 2.0)
            b.mark_outputs([api.add(api.reduce_sum(chain),
                                    api.reduce_sum(e))])
        fuse_graph(b.graph)
        assert count_ops(b.graph, "exp") == 1
        assert count_ops(b.graph, "fused") == 1  # tanh+mul still fuse

    def test_graph_output_intermediate_not_absorbed(self):
        """A chain member that is itself a graph output keeps its node."""
        b = GraphBuilder()
        with b:
            x = b.placeholder("x", shape=(4,), dtype=R.float32)
            e = api.exp(x)
            b.mark_outputs([api.mul(api.tanh(e), 2.0), e])
        feed = np.arange(4, dtype=np.float32)
        before = [o.copy() for o in GraphExecutor(b.graph).run([feed])]
        fuse_graph(b.graph)
        assert count_ops(b.graph, "exp") == 1
        after = GraphExecutor(b.graph).run([feed])
        for want, got in zip(before, after):
            assert np.array_equal(want, got)

    def test_non_elementwise_op_stops_the_chain(self):
        """elementwise -> reduce_sum -> elementwise: two fusion islands."""
        b = GraphBuilder()
        with b:
            x = b.placeholder("x", shape=(4,), dtype=R.float32)
            pre = api.mul(api.add(x, 1.0), 2.0)
            mid = api.reduce_sum(pre)
            b.mark_outputs([api.exp(api.neg(mid))])
        fuse_graph(b.graph)
        assert count_ops(b.graph, "reduce_sum") == 1
        assert count_ops(b.graph, "fused") == 2

    def test_single_op_group_not_fused(self):
        """MIN_GROUP=2: wrapping one op in a kernel buys nothing."""
        b = GraphBuilder()
        with b:
            x = b.placeholder("x", shape=(4,), dtype=R.float32)
            b.mark_outputs([api.reduce_sum(api.tanh(x))])
        assert fuse_graph(b.graph) == 0
        assert count_ops(b.graph, "tanh") == 1
        assert count_ops(b.graph, "fused") == 0

    def test_fused_nodes_survive_cse(self):
        """Identical-looking fused kernels are distinct closures; the
        unique fused_id attr must keep CSE from merging them."""
        b = GraphBuilder()
        with b:
            x = b.placeholder("x", shape=(4,), dtype=R.float32)
            a = api.tanh(api.add(x, 1.0))
            c = api.tanh(api.add(x, 1.0))
            b.mark_outputs([api.reduce_sum(a), api.reduce_sum(c)])
        fuse_graph(b.graph)
        assert count_ops(b.graph, "fused") == 2
        CommonSubexpressionElimination().run(b.graph)
        assert count_ops(b.graph, "fused") == 2

    def test_fusion_counters_advance(self):
        before = counters()
        b = GraphBuilder()
        with b:
            x = b.placeholder("x", shape=(4,), dtype=R.float32)
            b.mark_outputs([api.reduce_sum(api.exp(api.add(x, 1.0)))])
        fuse_graph(b.graph)
        after = counters()
        assert after.get("lowering.fused_ops", 0) \
            - before.get("lowering.fused_ops", 0) == 2
        assert after.get("lowering.fused_kernels", 0) \
            - before.get("lowering.fused_kernels", 0) == 1

    def test_comparison_ops_are_fusable(self):
        assert "less" in ELEMENTWISE_OPS
        assert "where" in ELEMENTWISE_OPS
        assert "reduce_sum" not in ELEMENTWISE_OPS
        assert "matmul" not in ELEMENTWISE_OPS


# -- the flat program --------------------------------------------------------

class TestLoweredExecutor:
    def _graph(self):
        b = GraphBuilder()
        with b:
            x = b.placeholder("x", shape=(2, 3), dtype=R.float32)
            w = b.convert(np.ones((3, 3), np.float32) * 0.5)
            h = api.tanh(api.add(api.matmul(x, w), 1.0))
            b.mark_outputs([api.reduce_sum(api.mul(h, h))])
        return b.graph

    def test_matches_node_walking_bit_for_bit(self):
        graph = self._graph()
        fuse_graph(graph)
        executor = GraphExecutor(graph)
        lowered = lower_executor(executor)
        feed = np.arange(6, dtype=np.float32).reshape(2, 3)
        want = executor.run([feed])
        got = lowered.run([feed])
        assert len(want) == len(got)
        for w_, g_ in zip(want, got):
            assert np.array_equal(w_, g_)

    def test_instruction_count_shrinks_with_fusion(self):
        graph = self._graph()
        unfused = lower_executor(GraphExecutor(graph))
        fuse_graph(graph)
        fused = lower_executor(GraphExecutor(graph))
        assert fused.instruction_count < unfused.instruction_count

    def test_while_loop_and_gradient_lowered(self):
        """while + while_grad: records stack through the nested bodies."""
        w = R.Variable(np.float32(2.0))
        cb = GraphBuilder()
        with cb:
            i = cb.placeholder("i", shape=(), dtype=R.int64)
            acc = cb.placeholder("acc", shape=(), dtype=R.float32)
            cb.mark_outputs([api.less(i, 3)])
        cond = cb.finalize_function("cond")
        bb = GraphBuilder()
        with bb:
            i = bb.placeholder("i", shape=(), dtype=R.int64)
            acc = bb.placeholder("acc", shape=(), dtype=R.float32)
            bb.mark_outputs([api.add(i, 1),
                             api.mul(acc, bb.read_variable(w))])
        body = bb.finalize_function("body")
        b = GraphBuilder()
        with b:
            outs = b.while_loop(cond, body,
                                [b.convert(np.int64(0)),
                                 b.convert(np.float32(1.0))])
            grads = autodiff.add_training_gradients(b, outs[1])
            b.mark_outputs([outs[1], grads[w]])
        lowered = lower_executor(GraphExecutor(b.graph))
        val, grad = lowered.run([])
        assert val == pytest.approx(8.0)
        assert grad == pytest.approx(12.0)

    def test_repr_names_program(self):
        lowered = lower_executor(GraphExecutor(self._graph()))
        assert "LoweredProgram" in repr(lowered)


# -- guard preamble ----------------------------------------------------------

class TestPreamble:
    def _lowered(self):
        b = GraphBuilder()
        with b:
            x = b.placeholder("x", shape=(2, 3), dtype=R.float32)
            b.mark_outputs([api.reduce_sum(api.tanh(x))])
        return lower_executor(GraphExecutor(b.graph))

    def test_one_guard_per_tensor_placeholder(self):
        assert len(self._lowered().preamble) == 1

    def test_good_feed_passes(self):
        out, = self._lowered().run([np.ones((2, 3), np.float32)])
        assert out == pytest.approx(np.tanh(1.0) * 6)

    def test_dtype_violation_raises_assumption_failed(self):
        with pytest.raises(AssumptionFailed, match="dtype"):
            self._lowered().run([np.ones((2, 3), np.float64)])

    def test_shape_violation_raises_assumption_failed(self):
        with pytest.raises(AssumptionFailed, match="shape"):
            self._lowered().run([np.ones((4, 3), np.float32)])

    def test_preamble_optional_for_trusted_callers(self):
        b = GraphBuilder()
        with b:
            x = b.placeholder("x", shape=(2,), dtype=R.float32)
            b.mark_outputs([api.add(x, 1.0)])
        lowered = lower_executor(GraphExecutor(b.graph), preamble=False)
        assert lowered.preamble == []


# -- bailout taxonomy --------------------------------------------------------

class TestBailouts:
    def test_parallel_schedule_bails_out(self):
        b = GraphBuilder()
        with b:
            x = b.placeholder("x", shape=(2,), dtype=R.float32)
            b.mark_outputs([api.add(x, 1.0)])
        executor = GraphExecutor(b.graph)
        # Single-CPU hosts force self.parallel False in the constructor,
        # so flip it directly to exercise the guard.
        executor.parallel = True
        with pytest.raises(LoweringBailout) as exc:
            lower_executor(executor)
        assert exc.value.reason == "parallel_schedule"

    def test_unknown_instruction_kind_bails_out(self):
        b = GraphBuilder()
        with b:
            x = b.placeholder("x", shape=(2,), dtype=R.float32)
            b.mark_outputs([api.add(x, 1.0)])
        executor = GraphExecutor(b.graph)
        executor._instructions = list(executor._instructions) \
            + [("mystery_op",)]
        with pytest.raises(LoweringBailout) as exc:
            LoweredExecutor(executor)
        assert exc.value.reason == "unsupported_op.mystery_op"

    def test_config_off_counts_disabled(self):
        before = counters()

        @janus.function(config=strict(lowering=False))
        def f(x):
            return R.reduce_sum(x * 2.0 + 1.0)

        x = R.constant(np.ones(4, np.float32))
        for _ in range(4):
            f(x)
        assert f.stats["graph_runs"] > 0
        entries = [e for _, e in f.cache.entries()]
        assert entries and all(e.compiled.lowered is None for e in entries)
        assert all(e.compiled.lowering_bailout == "disabled"
                   for e in entries)
        assert counters().get("lowering.bailout.disabled", 0) \
            > before.get("lowering.bailout.disabled", 0)
        assert f.cache_stats()["lowered_entries"] == 0


# -- config and environment --------------------------------------------------

class TestConfig:
    def test_default_on(self, monkeypatch):
        monkeypatch.delenv("JANUS_LOWERING", raising=False)
        assert janus.JanusConfig().lowering is True

    def test_explicit_flag_wins(self):
        assert janus.JanusConfig(lowering=False).lowering is False
        assert janus.JanusConfig(lowering=True).lowering is True

    def test_env_var_disables_default(self, monkeypatch):
        monkeypatch.setenv("JANUS_LOWERING", "0")
        assert janus.JanusConfig().lowering is False
        # Explicit construction still overrides the environment.
        assert janus.JanusConfig(lowering=True).lowering is True

    def test_env_var_other_values_keep_default(self, monkeypatch):
        monkeypatch.setenv("JANUS_LOWERING", "1")
        assert janus.JanusConfig().lowering is True


# -- end to end through janus.function ---------------------------------------

class TestEndToEnd:
    def test_compiled_entry_is_lowered_and_fused(self):
        before = counters()

        @janus.function(config=strict())
        def f(x):
            return R.reduce_sum(R.tanh(x * 2.0 + 1.0))

        # Vary the values (same spec) so the argument stays a
        # placeholder instead of being burned in as a guarded constant.
        rng = np.random.default_rng(0)
        for _ in range(4):
            x = R.constant(rng.normal(size=(8,)).astype(np.float32))
            out = f(x)
        assert f.stats["graph_runs"] > 0
        expect = f.func(x)
        assert np.array_equal(out.numpy(), expect.numpy())
        entries = [e for _, e in f.cache.entries()]
        assert entries
        compiled = entries[0].compiled
        assert compiled.lowered is not None
        assert compiled.fused_ops >= 2
        assert "lowered" in repr(compiled)
        assert counters().get("lowering.graphs_lowered", 0) \
            > before.get("lowering.graphs_lowered", 0)
        assert f.cache_stats()["lowered_entries"] == len(entries)

    def test_lowering_toggle_is_bit_for_bit(self):
        def model(x):
            h = R.tanh(x * 0.5 + 0.25)
            return R.reduce_sum(h * h - x)

        rng = np.random.default_rng(1)
        f_on = janus.function(model, config=strict(lowering=True))
        f_off = janus.function(model, config=strict(lowering=False))
        for _ in range(4):
            x = R.constant(rng.normal(size=(16,)).astype(np.float32))
            on = f_on(x)
            off = f_off(x)
        assert f_on.stats["graph_runs"] > 0
        assert f_off.stats["graph_runs"] > 0
        assert np.array_equal(on.numpy(), off.numpy())

    def test_nested_control_flow_still_lowers(self):
        @janus.function(config=strict(profile_runs=2))
        def f(x):
            if R.reduce_sum(x) > 0.0:
                y = x * 2.0
            else:
                y = x - 1.0
            return R.reduce_sum(y)

        xp = R.constant(np.ones(4, np.float32))
        for _ in range(5):
            out = f(xp)
        assert f.stats["graph_runs"] > 0
        entries = [e for _, e in f.cache.entries()]
        assert any(e.compiled.lowered is not None for e in entries)
        assert float(out.numpy()) == pytest.approx(8.0)

    def test_health_reports_lowering(self):
        # Health attribution rides the metrics pipeline; enable it.
        import repro.observability as obs
        from repro.observability import HEALTH

        previous = obs.set_metrics_enabled(True)
        try:
            # Two profile runs over varying values keep the argument a
            # placeholder (a single observation would burn it in as a
            # speculated constant and fail prechecks on later values).
            @janus.function(config=strict(profile_runs=2))
            def health_probe(x):
                return R.reduce_sum(x * 2.0 + 1.0)

            rng = np.random.default_rng(2)
            for _ in range(5):
                health_probe(R.constant(rng.normal(size=(4,))
                                        .astype(np.float32)))
            assert health_probe.stats["graph_runs"] > 0
            health = HEALTH.function("health_probe")
            assert health.lowered_graphs >= 1
            assert health.fused_ops >= 2
            assert health.lowering_bailouts == 0
        finally:
            obs.set_metrics_enabled(previous)

"""Impure-function conversion (paper section 4.2.3).

Object attribute reads/writes become PyGetAttr/PySetAttr nodes with
deferred, all-or-nothing writeback; Variables are shared between modes.
"""

import numpy as np
import pytest

import repro as R
from repro import janus


def strict(**kw):
    return janus.JanusConfig(fail_on_not_convertible=True, **kw)


def warm(jf, *args, n=5):
    out = None
    for _ in range(n):
        out = jf(*args)
    return out


class Holder:
    def __init__(self, value):
        self.state = R.constant(np.float32(value))
        self.count = 0


class TestAttributeState:
    def test_figure1_state_passing(self):
        """Read self.state, compute, write self.state back."""
        h = Holder(1.0)

        @janus.function(config=strict())
        def step(x):
            state = h.state
            new_state = state * 2.0 + R.reduce_sum(x)
            h.state = new_state
            return new_state

        x = R.constant(np.zeros(2, np.float32))
        values = [float(step(x).numpy()) for _ in range(6)]
        # state doubles every call: 2, 4, 8, 16, 32, 64
        assert values == [pytest.approx(2.0 ** (i + 1)) for i in range(6)]
        assert step.stats["graph_runs"] >= 3

    def test_graph_writeback_visible_to_imperative(self):
        h = Holder(1.0)

        @janus.function(config=strict())
        def step():
            h.state = h.state + 1.0
            return h.state

        warm(step, n=6)
        # The heap object itself was updated by graph commits.
        assert float(h.state.numpy()) == pytest.approx(7.0)
        assert isinstance(h.state, R.Tensor)

    def test_heap_read_shape_assumption_relaxes(self):
        h = Holder(0.0)
        h.state = R.constant(np.zeros((4, 8), np.float32))

        @janus.function(config=strict())
        def f():
            return R.reduce_sum(h.state)

        warm(f)
        assert f.stats["graph_runs"] > 0
        # Change the state's shape behind JANUS's back.
        h.state = R.constant(np.ones((3, 8), np.float32))
        out = f()   # assert fires, falls back, computes correctly
        assert float(out.numpy()) == pytest.approx(24.0)
        assert f.stats["fallbacks"] == 1
        # Regenerated graph accepts both shapes.
        out = f()
        assert float(out.numpy()) == pytest.approx(24.0)
        h.state = R.constant(np.zeros((4, 8), np.float32))
        assert float(f().numpy()) == pytest.approx(0.0)

    def test_scalar_attr_constant_guard(self):
        h = Holder(0.0)
        h.scale = 3.0

        @janus.function(config=strict())
        def f(x):
            return x * h.scale

        warm(f, R.constant(2.0))
        assert f.stats["graph_runs"] > 0
        h.scale = 5.0   # breaks the burned-in constant
        out = f(R.constant(2.0))
        assert float(out.numpy()) == pytest.approx(10.0)
        assert f.stats["fallbacks"] == 1

    def test_subscript_state(self):
        store = {"w": R.constant(np.float32(2.0))}

        @janus.function(config=strict())
        def f(x):
            y = x * store["w"]
            store["result"] = y
            return y

        out = warm(f, R.constant(3.0))
        assert float(out.numpy()) == 6.0
        assert float(store["result"].numpy()) == 6.0
        assert f.stats["graph_runs"] > 0


class TestVariables:
    def test_variable_assign_deferred_and_committed(self):
        v = R.Variable(np.float32(0.0), name="acc")

        @janus.function(config=strict())
        def f(x):
            v.assign(v.value() + R.reduce_sum(x))
            return v.value()

        x = R.constant(np.ones(2, np.float32))
        values = [float(np.asarray(f(x).numpy())) for _ in range(5)]
        assert values == [pytest.approx(2.0 * (i + 1)) for i in range(5)]
        assert float(v.numpy()) == pytest.approx(10.0)

    def test_assign_add_method(self):
        v = R.Variable(np.float32(10.0))

        @janus.function(config=strict())
        def f():
            v.assign_add(1.0)
            return v.value()

        warm(f, n=4)
        assert float(v.numpy()) == pytest.approx(14.0)

    def test_variables_shared_between_modes(self):
        """Paper section 5: parameters shared by eager and graph mode."""
        v = R.Variable(np.float32(1.0))

        @janus.function(config=strict())
        def f():
            v.assign(v.value() * 2.0)
            return v.value()

        f()  # imperative (profiling)
        assert float(v.numpy()) == 2.0
        warm(f, n=4)  # graph mode continues from the same storage
        assert float(v.numpy()) == pytest.approx(32.0)


class TestAllOrNothing:
    def test_failed_run_leaves_heap_untouched(self):
        h = Holder(1.0)
        h.flag = R.constant(np.ones(1, np.float32))

        @janus.function(config=strict())
        def f():
            h.state = h.state + 100.0     # heap write (deferred)
            if R.reduce_sum(h.flag) > 0.0:
                return h.state * 1.0
            return h.state * -1.0

        for k in range(5):
            h.flag = R.constant(np.full(1, float(k + 1), np.float32))
            f()
        state_before = float(h.state.numpy())
        assert f.stats["graph_runs"] > 0
        # Flip the branch: the assert fires mid-graph AFTER the heap
        # write node executed; the commit must not have happened, and the
        # imperative fallback then applies the write exactly once.
        h.flag = R.constant(-np.ones(1, np.float32))
        out = f()
        assert f.stats["fallbacks"] == 1
        state_after = float(h.state.numpy())
        assert state_after == pytest.approx(state_before + 100.0)
        assert float(out.numpy()) == pytest.approx(-(state_before + 100))


class TestImperativeOnlyFallback:
    def test_generator_function_stays_imperative(self):
        @janus.function
        def f(x):
            def gen():
                yield x
            return R.reduce_sum(R.stack(list(gen())))

        x = R.constant(np.ones(2, np.float32))
        out = warm(f, x)
        assert float(out.numpy()) == 2.0
        assert f.imperative_only
        assert f.stats["graph_runs"] == 0

    def test_numpy_materialization_stays_imperative(self):
        # coexecution off: this tests the whole-function verdict (the
        # co-executed counterpart lives in test_coexec_differential.py).
        @janus.function(config=janus.JanusConfig(coexecution=False))
        def f(x):
            arr = x.numpy()     # escapes the graph world
            return R.constant(float(arr.sum()))

        x = R.constant(np.ones(3, np.float32))
        out = warm(f, x)
        assert float(out.numpy()) == 3.0
        assert f.imperative_only

    def test_not_convertible_reason_recorded(self):
        @janus.function(config=janus.JanusConfig(coexecution=False))
        def f(x):
            import math  # inline import: section 4.3.2
            return x

        warm(f, R.constant(1.0))
        assert f.imperative_only
        assert "import" in f.not_convertible_reason

"""Smoke tests: the shipped examples must run end to end.

Each example is executed in a subprocess (fresh interpreter, no shared
state) with a generous timeout; the longer training examples are only
checked for a healthy start-up plus first results to keep the suite fast.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


def run_example(name, timeout=240):
    path = os.path.join(EXAMPLES, name)
    result = subprocess.run(
        [sys.executable, path], capture_output=True, text=True,
        timeout=timeout,
        env={**os.environ, "PYTHONHASHSEED": "0"})
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "graph" in out
        assert "cache statistics" in out
        assert "janus" in out and "imperative" in out

    def test_rnn_language_model(self):
        out = run_example("rnn_language_model.py")
        assert "perplexity" in out
        assert "graphs generated: 1" in out
        assert "state flowed across batches" in out

    def test_reinforcement_a3c(self):
        out = run_example("reinforcement_a3c.py")
        assert "distinct episode lengths seen" in out
        assert "graphs generated: 1" in out

    def test_gan_mnist(self):
        out = run_example("gan_mnist.py")
        assert "d_loss" in out
        assert "generated sample batch" in out

    def test_inspect_graphs(self, tmp_path):
        out = run_example("inspect_graphs.py")
        assert "node census" in out
        assert "py_set_attr" in out
        assert "DOT rendering written" in out
        # the example writes into the CWD of the subprocess (repo root)
        import os
        dot = os.path.join(EXAMPLES, os.pardir, "janus_graph.dot")
        if os.path.exists(dot):
            os.remove(dot)

    @pytest.mark.slow
    def test_treelstm_sentiment(self):
        out = run_example("treelstm_sentiment.py", timeout=400)
        assert "one generated graph covered every tree shape" in out
        assert "graph builds" in out

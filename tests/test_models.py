"""All 11 evaluation models: JANUS conversion parity with imperative.

For each model of paper Table 2 the same training step runs under JANUS
and under pure imperative execution; the loss trajectories must coincide
and the JANUS path must actually execute generated graphs.
"""

import numpy as np
import pytest

import repro as R
from repro import janus, nn, data, envs, models
from repro.modes import make_step


def strict():
    return janus.JanusConfig(fail_on_not_convertible=True)


def run_pair(make_model_and_loss, batches, n=6, rtol=1e-3):
    jm, j_loss = make_model_and_loss(seed=1)
    j_step = make_step(j_loss, nn.SGD(0.01), "janus", config=strict())
    j_losses = []
    for i in range(n):
        out = j_step(*batches[i % len(batches)])
        j_losses.append(float(np.asarray(
            out.numpy() if hasattr(out, "numpy") else out)))
    assert not j_step.imperative_only, j_step.not_convertible_reason
    assert j_step.stats["graph_runs"] > 0, j_step.cache_stats()

    im, i_loss = make_model_and_loss(seed=1)
    i_step = make_step(i_loss, nn.SGD(0.01), "imperative")
    i_losses = []
    for i in range(n):
        out = i_step(*batches[i % len(batches)])
        i_losses.append(float(np.asarray(
            out.numpy() if hasattr(out, "numpy") else out)))
    np.testing.assert_allclose(j_losses, i_losses, rtol=rtol, atol=1e-4)
    return j_step


@pytest.fixture(scope="module")
def rng():
    return np.random.RandomState(0)


class TestCNNs:
    def test_lenet(self):
        ds = data.mnist_like(n=64, batch_size=32)
        batches = list(ds.batches(shuffle=False))[:2]
        run_pair(lambda seed: _with_loss(models.lenet.LeNet(seed=seed),
                                         models.lenet.make_loss_fn),
                 batches)

    def test_resnet_with_batchnorm_branch(self):
        ds = data.imagenet_like(n=24, batch_size=12, image_size=16)
        batches = list(ds.batches(shuffle=False))[:2]
        step = run_pair(
            lambda seed: _with_loss(models.resnet.resnet_tiny(seed=seed),
                                    models.resnet.make_loss_fn),
            batches)

    def test_inception(self):
        ds = data.imagenet_like(n=24, batch_size=12, image_size=16)
        batches = list(ds.batches(shuffle=False))[:2]
        run_pair(lambda seed: _with_loss(
            models.inception.InceptionNet(seed=seed),
            models.inception.make_loss_fn), batches)

    def test_resnet_eval_mode_uses_moving_stats(self):
        """Flipping train->eval must not silently reuse the train graph."""
        ds = data.imagenet_like(n=12, batch_size=12, image_size=16)
        images, labels = next(iter(ds.batches(shuffle=False)))
        model = models.resnet.resnet_tiny(seed=3)

        @janus.function(config=strict())
        def predict(x):
            return model(x)

        nn.set_training(model, True)
        for _ in range(5):
            train_logits = predict(images)
        nn.set_training(model, False)
        eval_logits = predict(images)
        # eval uses moving statistics -> different result than training
        assert not np.allclose(train_logits.numpy(),
                               eval_logits.numpy())
        # and matches pure imperative evaluation
        ref = model(R.constant(images))
        np.testing.assert_allclose(eval_logits.numpy(), ref.numpy(),
                                   rtol=1e-4, atol=1e-5)


class TestRNNs:
    def test_lstm_ptb(self):
        corpus = data.ptb_like()
        batches = list(corpus.bptt_batches(batch_size=8, seq_len=6))[:3]
        run_pair(lambda seed: _with_loss(
            models.lstm_ptb.LSTMLanguageModel(
                vocab_size=200, embed_dim=16, hidden_dim=16,
                batch_size=8, seed=seed),
            models.lstm_ptb.make_loss_fn), batches)

    def test_lm(self):
        corpus = data.one_billion_like()
        batches = list(corpus.bptt_batches(batch_size=16, seq_len=4))[:2]
        run_pair(lambda seed: _with_loss(
            models.lm1b.BigLanguageModel(
                vocab_size=800, embed_dim=16, hidden_dim=32,
                batch_size=16, seed=seed),
            models.lm1b.make_loss_fn), batches)

    def test_lstm_state_passes_across_batches(self):
        corpus = data.ptb_like()
        batches = list(corpus.bptt_batches(batch_size=4, seq_len=5))[:4]
        model = models.lstm_ptb.LSTMLanguageModel(
            vocab_size=200, embed_dim=8, hidden_dim=8, batch_size=4,
            seed=2)

        @janus.function(config=strict())
        def step(x, y):
            return model(x, y)

        states = []
        for i in range(6):
            step(*batches[i % len(batches)])
            states.append(model.state_h.numpy().copy())
        # Hidden state evolves across calls (graph commits write it back).
        assert not np.allclose(states[0], states[-1])


class TestTreeNNs:
    def test_treernn(self):
        trees = data.sst_like(n_trees=6, seed=3)
        run_pair(lambda seed: _with_loss(
            models.treernn.TreeRNN(seed=seed),
            models.treernn.make_loss_fn),
            [(t,) for t in trees])

    def test_treelstm(self):
        trees = data.sst_like(n_trees=6, seed=3)
        run_pair(lambda seed: _with_loss(
            models.treelstm.TreeLSTM(seed=seed),
            models.treelstm.make_loss_fn),
            [(t,) for t in trees])

    def test_single_graph_covers_all_trees(self):
        trees = data.sst_like(n_trees=12, seed=5)
        model = models.treernn.TreeRNN(seed=1)
        step = make_step(models.treernn.make_loss_fn(model), nn.SGD(0.01),
                         "janus", config=strict())
        for t in trees:
            step(t)
        assert step.cache_stats()["entries"] == 1


class TestDRL:
    def test_a3c(self, rng):
        env = envs.CartPole(seed=0)
        probe = models.a3c.ActorCritic(seed=9)
        episodes = [models.a3c.collect_episode(probe, env, rng)
                    for _ in range(4)]
        run_pair(lambda seed: _with_loss(
            models.a3c.ActorCritic(seed=seed),
            models.a3c.make_loss_fn), episodes)

    def test_ppo(self, rng):
        env = envs.PongLite(seed=0)
        probe = models.ppo.PPOAgent(seed=11)
        rollouts = [models.ppo.collect_rollout(probe, env, rng,
                                               horizon=16)[:5]
                    for _ in range(2)]
        run_pair(lambda seed: _with_loss(
            models.ppo.PPOAgent(seed=seed),
            models.ppo.make_loss_fn), rollouts)

    def test_a3c_heap_telemetry_updates(self, rng):
        env = envs.CartPole(seed=1)
        model = models.a3c.ActorCritic(seed=4)
        step = make_step(models.a3c.make_loss_fn(model), nn.SGD(0.01),
                         "janus", config=strict())
        episodes = [models.a3c.collect_episode(model, env, rng)
                    for _ in range(5)]
        for ep in episodes:
            step(*ep)
        # `steps_trained` mutated through deferred heap writes.
        assert float(np.asarray(
            model.steps_trained.numpy()
            if hasattr(model.steps_trained, "numpy")
            else model.steps_trained)) == len(episodes)


class TestGANs:
    def test_an_discriminator_and_generator(self, rng):
        ds = data.mnist_like(n=32, batch_size=16)
        images = next(iter(ds.batches(shuffle=False)))[0]
        z = models.gan_an.sample_latent(rng, 16, 16)

        def make_d(seed):
            gan = models.gan_an.AdversarialNets(seed=seed)
            return gan, models.gan_an.make_d_loss_fn(gan)

        run_pair(make_d, [(images, z)])

        gan = models.gan_an.AdversarialNets(seed=7)
        g_step = make_step(models.gan_an.make_g_loss_fn(gan), nn.SGD(0.01),
                           "janus", config=strict())
        for _ in range(6):
            g_step(z)
        assert g_step.stats["graph_runs"] > 0

    def test_pix2pix(self):
        ds = data.facades_like(n=4, batch_size=1, image_size=16)
        batches = list(ds.batches(shuffle=False))[:2]

        def make_g(seed):
            model = models.pix2pix.Pix2Pix(image_size=16, seed=seed)
            return model, models.pix2pix.make_g_loss_fn(model)

        run_pair(make_g, batches)


def _with_loss(model, loss_factory):
    return model, loss_factory(model)

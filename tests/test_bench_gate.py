"""Unit tests for the benchmark regression gate's ratio math.

``benchmarks/check_regression.py`` gates CI in two modes: absolute
JANUS throughput and the host-drift-immune ``--relative`` mode, which
gates each model's JANUS/imperative ratio instead.  These tests drive
``main(argv)`` on synthetic result files so the gating arithmetic —
median-of-runs, thresholds, missing-column handling, exit codes — is
pinned down without running any benchmark.
"""

import importlib.util
import json
import os
import sys

import pytest

_GATE_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                          "benchmarks", "check_regression.py")
_spec = importlib.util.spec_from_file_location("check_regression",
                                               _GATE_PATH)
check_regression = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("check_regression", check_regression)
_spec.loader.exec_module(check_regression)


def _write(tmp_path, name, models):
    path = tmp_path / name
    path.write_text(json.dumps(models))
    return str(path)


def _row(janus, imperative=None):
    row = {"janus": janus, "symbolic": janus * 1.1, "unit": "samples/s"}
    if imperative is not None:
        row["imperative"] = imperative
    return row


def _run(tmp_path, baseline, currents, extra=()):
    argv = ["--baseline", _write(tmp_path, "baseline.json", baseline)]
    argv += ["--current"] + [
        _write(tmp_path, "current-%d.json" % i, models)
        for i, models in enumerate(currents)]
    return check_regression.main(argv + list(extra))


class TestRelativeRatioMath:
    def test_ratio_helper(self):
        assert check_regression.relative_ratio(_row(80.0, 40.0)) == 2.0
        assert check_regression.relative_ratio(_row(80.0)) is None
        assert check_regression.relative_ratio(_row(80.0, 0.0)) is None

    def test_host_drift_passes_relative_but_fails_absolute(self, tmp_path):
        """A uniformly 2x slower host halves absolute throughput but
        leaves the JANUS/imperative ratio untouched."""
        baseline = {"LeNet": _row(100.0, 50.0), "LSTM": _row(60.0, 20.0)}
        drifted = {"LeNet": _row(50.0, 25.0), "LSTM": _row(30.0, 10.0)}
        assert _run(tmp_path, baseline, [drifted]) == 1
        assert _run(tmp_path, baseline, [drifted], ["--relative"]) == 0

    def test_runtime_overhead_regression_fails_relative(self, tmp_path):
        """Same host (imperative unchanged), JANUS column 20% down:
        the ratio drops 2.0 -> 1.6 and trips the 10% gate."""
        baseline = {"LeNet": _row(100.0, 50.0)}
        slower = {"LeNet": _row(80.0, 50.0)}
        assert _run(tmp_path, baseline, [slower], ["--relative"]) == 1
        # A custom threshold wider than the drop passes.
        assert _run(tmp_path, baseline, [slower],
                    ["--relative", "--threshold", "0.25"]) == 0

    def test_median_of_runs_absorbs_one_noisy_ratio(self, tmp_path):
        baseline = {"LeNet": _row(100.0, 50.0)}          # ratio 2.0
        runs = [
            {"LeNet": _row(98.0, 49.0)},                 # ratio 2.0
            {"LeNet": _row(40.0, 50.0)},                 # ratio 0.8 (noise)
            {"LeNet": _row(102.0, 50.0)},                # ratio 2.04
        ]
        assert _run(tmp_path, baseline, runs, ["--relative"]) == 0
        # Two bad runs move the median itself: gate fails.
        runs[2] = {"LeNet": _row(40.0, 50.0)}
        assert _run(tmp_path, baseline, runs, ["--relative"]) == 1

    def test_rows_without_imperative_are_skipped_not_fatal(self, tmp_path):
        baseline = {"LeNet": _row(100.0, 50.0), "PPO": _row(70.0)}
        current = {"LeNet": _row(99.0, 50.0), "PPO": _row(10.0)}
        # PPO has no imperative column: it cannot be ratio-gated, and
        # its (huge) absolute drop must not fail the relative gate.
        assert _run(tmp_path, baseline, [current], ["--relative"]) == 0
        assert _run(tmp_path, baseline, [current]) == 1

    def test_no_shared_ratio_models_is_usage_error(self, tmp_path):
        baseline = {"LeNet": _row(100.0)}
        current = {"LeNet": _row(100.0)}
        assert _run(tmp_path, baseline, [current], ["--relative"]) == 2


class TestImperativeDriftHandling:
    def test_eager_speedup_excludes_model_from_ratio_gate(self, tmp_path):
        """A PR that speeds up the eager path halves the ratio; the
        drift detector must recognize the stale baseline instead of
        reporting a phantom JANUS regression (ROADMAP, relative-gate
        baseline)."""
        baseline = {"LeNet": _row(100.0, 50.0)}           # ratio 2.0
        faster_eager = {"LeNet": _row(100.0, 100.0)}      # ratio 1.0
        assert _run(tmp_path, baseline, [faster_eager],
                    ["--relative"]) == 0
        # The same drop with a *stable* imperative column is a real
        # runtime regression and still fails.
        slower = {"LeNet": _row(50.0, 50.0)}
        assert _run(tmp_path, baseline, [slower], ["--relative"]) == 1

    def test_drift_allowance_configurable(self, tmp_path):
        baseline = {"LeNet": _row(100.0, 50.0)}
        drifted = {"LeNet": _row(70.0, 60.0)}   # imp +20%, ratio -30%
        assert _run(tmp_path, baseline, [drifted], ["--relative"]) == 0
        # Widening the allowance past the drift re-engages the gate.
        assert _run(tmp_path, baseline, [drifted],
                    ["--relative", "--imperative-drift", "0.5"]) == 1

    def test_drifted_model_still_gated_absolutely(self, tmp_path):
        baseline = {"LeNet": _row(100.0, 50.0)}
        both_down = {"LeNet": _row(60.0, 100.0)}
        assert _run(tmp_path, baseline, [both_down],
                    ["--relative"]) == 0       # excluded from ratio
        assert _run(tmp_path, baseline, [both_down]) == 1  # absolute


class TestSymbolicParityGate:
    def _parity_row(self, janus, symbolic):
        return {"janus": janus, "symbolic": symbolic, "imperative": 10.0,
                "unit": "samples/s"}

    def _parity(self, tmp_path, currents, extra=()):
        argv = ["--current"] + [
            _write(tmp_path, "parity-%d.json" % i, models)
            for i, models in enumerate(currents)]
        argv += ["--symbolic-parity", "--parity-models",
                 "ResNet", "Inception", "LM", "TreeRNN"]
        return check_regression.main(argv + list(extra))

    def test_three_of_four_passes(self, tmp_path):
        run = {"ResNet": self._parity_row(100.0, 95.0),
               "Inception": self._parity_row(100.0, 101.0),
               "LM": self._parity_row(120.0, 100.0),
               "TreeRNN": self._parity_row(30.0, 100.0)}
        assert self._parity(tmp_path, [run]) == 0

    def test_two_of_four_fails(self, tmp_path):
        run = {"ResNet": self._parity_row(100.0, 95.0),
               "Inception": self._parity_row(80.0, 101.0),
               "LM": self._parity_row(120.0, 100.0),
               "TreeRNN": self._parity_row(30.0, 100.0)}
        assert self._parity(tmp_path, [run]) == 1

    def test_tolerance_defines_parity(self, tmp_path):
        """0.95 tolerance: 3% behind still counts as parity (the two
        modes run identical kernels; the residue is scheduling noise)."""
        run = {"ResNet": self._parity_row(97.0, 100.0),
               "Inception": self._parity_row(97.0, 100.0),
               "LM": self._parity_row(97.0, 100.0),
               "TreeRNN": self._parity_row(30.0, 100.0)}
        assert self._parity(tmp_path, [run]) == 0
        assert self._parity(tmp_path, [run],
                            ["--parity-tolerance", "1.0"]) == 1

    def test_median_across_runs(self, tmp_path):
        good = {m: self._parity_row(100.0, 95.0)
                for m in ("ResNet", "Inception", "LM", "TreeRNN")}
        noisy = {m: self._parity_row(40.0, 95.0)
                 for m in ("ResNet", "Inception", "LM", "TreeRNN")}
        assert self._parity(tmp_path, [good, noisy, good]) == 0
        assert self._parity(tmp_path, [noisy, good, noisy]) == 1

    def test_no_baseline_needed(self, tmp_path):
        run = {m: self._parity_row(100.0, 95.0)
               for m in ("ResNet", "Inception", "LM", "TreeRNN")}
        argv = ["--baseline", str(tmp_path / "absent.json"),
                "--current", _write(tmp_path, "p.json", run),
                "--symbolic-parity"]
        assert check_regression.main(argv) == 0


class TestAbsoluteGateStillWorks:
    def test_pass_and_fail(self, tmp_path):
        baseline = {"LeNet": _row(100.0, 50.0)}
        assert _run(tmp_path, baseline, [{"LeNet": _row(95.0, 50.0)}]) == 0
        assert _run(tmp_path, baseline, [{"LeNet": _row(85.0, 50.0)}]) == 1

    def test_missing_file_is_usage_error(self, tmp_path):
        baseline = {"LeNet": _row(100.0)}
        argv = ["--baseline", _write(tmp_path, "baseline.json", baseline),
                "--current", str(tmp_path / "nope.json")]
        assert check_regression.main(argv) == 2

    def test_median_of_runs(self, tmp_path):
        baseline = {"LeNet": _row(100.0)}
        runs = [{"LeNet": _row(95.0)}, {"LeNet": _row(50.0)},
                {"LeNet": _row(97.0)}]
        assert _run(tmp_path, baseline, runs) == 0

"""Unit tests for the benchmark regression gate's ratio math.

``benchmarks/check_regression.py`` gates CI in two modes: absolute
JANUS throughput and the host-drift-immune ``--relative`` mode, which
gates each model's JANUS/imperative ratio instead.  These tests drive
``main(argv)`` on synthetic result files so the gating arithmetic —
median-of-runs, thresholds, missing-column handling, exit codes — is
pinned down without running any benchmark.
"""

import importlib.util
import json
import os
import sys

import pytest

_GATE_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                          "benchmarks", "check_regression.py")
_spec = importlib.util.spec_from_file_location("check_regression",
                                               _GATE_PATH)
check_regression = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("check_regression", check_regression)
_spec.loader.exec_module(check_regression)


def _write(tmp_path, name, models):
    path = tmp_path / name
    path.write_text(json.dumps(models))
    return str(path)


def _row(janus, imperative=None):
    row = {"janus": janus, "symbolic": janus * 1.1, "unit": "samples/s"}
    if imperative is not None:
        row["imperative"] = imperative
    return row


def _run(tmp_path, baseline, currents, extra=()):
    argv = ["--baseline", _write(tmp_path, "baseline.json", baseline)]
    argv += ["--current"] + [
        _write(tmp_path, "current-%d.json" % i, models)
        for i, models in enumerate(currents)]
    return check_regression.main(argv + list(extra))


class TestRelativeRatioMath:
    def test_ratio_helper(self):
        assert check_regression.relative_ratio(_row(80.0, 40.0)) == 2.0
        assert check_regression.relative_ratio(_row(80.0)) is None
        assert check_regression.relative_ratio(_row(80.0, 0.0)) is None

    def test_host_drift_passes_relative_but_fails_absolute(self, tmp_path):
        """A uniformly 2x slower host halves absolute throughput but
        leaves the JANUS/imperative ratio untouched."""
        baseline = {"LeNet": _row(100.0, 50.0), "LSTM": _row(60.0, 20.0)}
        drifted = {"LeNet": _row(50.0, 25.0), "LSTM": _row(30.0, 10.0)}
        assert _run(tmp_path, baseline, [drifted]) == 1
        assert _run(tmp_path, baseline, [drifted], ["--relative"]) == 0

    def test_runtime_overhead_regression_fails_relative(self, tmp_path):
        """Same host (imperative unchanged), JANUS column 20% down:
        the ratio drops 2.0 -> 1.6 and trips the 10% gate."""
        baseline = {"LeNet": _row(100.0, 50.0)}
        slower = {"LeNet": _row(80.0, 50.0)}
        assert _run(tmp_path, baseline, [slower], ["--relative"]) == 1
        # A custom threshold wider than the drop passes.
        assert _run(tmp_path, baseline, [slower],
                    ["--relative", "--threshold", "0.25"]) == 0

    def test_median_of_runs_absorbs_one_noisy_ratio(self, tmp_path):
        baseline = {"LeNet": _row(100.0, 50.0)}          # ratio 2.0
        runs = [
            {"LeNet": _row(98.0, 49.0)},                 # ratio 2.0
            {"LeNet": _row(40.0, 50.0)},                 # ratio 0.8 (noise)
            {"LeNet": _row(102.0, 50.0)},                # ratio 2.04
        ]
        assert _run(tmp_path, baseline, runs, ["--relative"]) == 0
        # Two bad runs move the median itself: gate fails.
        runs[2] = {"LeNet": _row(40.0, 50.0)}
        assert _run(tmp_path, baseline, runs, ["--relative"]) == 1

    def test_rows_without_imperative_are_skipped_not_fatal(self, tmp_path):
        baseline = {"LeNet": _row(100.0, 50.0), "PPO": _row(70.0)}
        current = {"LeNet": _row(99.0, 50.0), "PPO": _row(10.0)}
        # PPO has no imperative column: it cannot be ratio-gated, and
        # its (huge) absolute drop must not fail the relative gate.
        assert _run(tmp_path, baseline, [current], ["--relative"]) == 0
        assert _run(tmp_path, baseline, [current]) == 1

    def test_no_shared_ratio_models_is_usage_error(self, tmp_path):
        baseline = {"LeNet": _row(100.0)}
        current = {"LeNet": _row(100.0)}
        assert _run(tmp_path, baseline, [current], ["--relative"]) == 2


class TestAbsoluteGateStillWorks:
    def test_pass_and_fail(self, tmp_path):
        baseline = {"LeNet": _row(100.0, 50.0)}
        assert _run(tmp_path, baseline, [{"LeNet": _row(95.0, 50.0)}]) == 0
        assert _run(tmp_path, baseline, [{"LeNet": _row(85.0, 50.0)}]) == 1

    def test_missing_file_is_usage_error(self, tmp_path):
        baseline = {"LeNet": _row(100.0)}
        argv = ["--baseline", _write(tmp_path, "baseline.json", baseline),
                "--current", str(tmp_path / "nope.json")]
        assert check_regression.main(argv) == 2

    def test_median_of_runs(self, tmp_path):
        baseline = {"LeNet": _row(100.0)}
        runs = [{"LeNet": _row(95.0)}, {"LeNet": _row(50.0)},
                {"LeNet": _row(97.0)}]
        assert _run(tmp_path, baseline, runs) == 0

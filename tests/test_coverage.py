"""Imperative-only feature detection (paper section 4.3, appendix A)."""

import ast

import pytest

from repro.errors import NotConvertible
from repro.janus.coverage import (scan, check_convertible,
                                  has_custom_accessors,
                                  IMPERATIVE_ONLY_FEATURES)


def fdef_of(source):
    return ast.parse(source).body[0]


class TestScopedOutFeatures:
    @pytest.mark.parametrize("source,feature", [
        ("def f():\n    yield 1", "yield"),
        ("def f():\n    class C: pass", "inline-class"),
        ("def f():\n    import os", "inline-import"),
        ("def f():\n    from os import path", "inline-import"),
        ("def f(x):\n    nonlocal y\n    y = x", "nonlocal-write"),
        ("def f(x):\n    del x", "delete"),
        ("def f(g, a):\n    return g(*a)", "starred-call"),
        ("def f(g, a):\n    return g(**a)", "starred-call"),
        ("def f():\n    try:\n        pass\n"
         "    except ValueError:\n        pass", "exception-handler"),
    ])
    def test_detected(self, source, feature):
        violations = scan(fdef_of(source))
        assert any(v[0] == feature for v in violations), violations
        with pytest.raises(NotConvertible):
            check_convertible(fdef_of(source))

    def test_every_feature_has_paper_reference(self):
        for feature, ref in IMPERATIVE_ONLY_FEATURES.items():
            assert "4.3" in ref or "Appendix" in ref


class TestConvertibleFeatures:
    @pytest.mark.parametrize("source", [
        "def f(x):\n    return x + 1",
        "def f(x):\n    for i in range(3):\n        x += i\n    return x",
        "def f(x):\n    if x > 0:\n        return x\n    return -x",
        "def f(x):\n    try:\n        y = x\n    finally:\n"
        "        z = 1\n    return y",
        "def f(x):\n    g = lambda v: v * 2\n    return g(x)",
        "def f(x):\n    def inner(v):\n        return v + 1\n"
        "    return inner(x)",
        "def f(c, x):\n    with c:\n        y = x + 1\n    return y",
    ])
    def test_passes(self, source):
        check_convertible(fdef_of(source))


class TestCustomAccessors:
    def test_plain_object_ok(self):
        class Plain:
            pass

        assert not has_custom_accessors(Plain())

    def test_setattr_override_detected(self):
        class Custom:
            def __setattr__(self, k, v):
                object.__setattr__(self, k, v)

        assert has_custom_accessors(Custom())

    def test_getattr_override_detected(self):
        class Lazy:
            def __getattr__(self, k):
                return 0

        assert has_custom_accessors(Lazy())

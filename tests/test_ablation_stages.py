"""Every model must convert and stay correct at every ablation stage.

Figure 7's ablation only makes sense if BASE (no unrolling, no
specialization, no passes, no parallelism) already converts all eleven
workloads — the paper's claim that correct conversion never depends on
the optimizations.  Each stage's losses must match imperative execution.
"""

import sys

import numpy as np
import pytest

import repro as R
from repro import janus, nn, data, envs, models
from repro.modes import make_step

sys.path.insert(0, "benchmarks")

STAGES = ["BASE", "+UNRL", "+SPCN", "+PARL"]


def stage_config(stage):
    return janus.JanusConfig(fail_on_not_convertible=True,
                             **janus.ABLATION_STAGES[stage])


def losses_for(make_model_and_loss, batches, mode, config=None, n=5):
    model, loss_fn = make_model_and_loss()
    step = make_step(loss_fn, nn.SGD(0.01), mode, config=config)
    out = []
    for i in range(n):
        result = step(*batches[i % len(batches)])
        out.append(float(np.asarray(
            result.numpy() if hasattr(result, "numpy") else result)))
    if mode == "janus":
        assert not step.imperative_only, step.not_convertible_reason
        assert step.stats["graph_runs"] > 0
    return out


def _assert_all_stages(make_model_and_loss, batches):
    reference = losses_for(make_model_and_loss, batches, "imperative")
    for stage in STAGES:
        got = losses_for(make_model_and_loss, batches, "janus",
                         config=stage_config(stage))
        np.testing.assert_allclose(got, reference, rtol=1e-3, atol=1e-4,
                                   err_msg=stage)


class TestAllStagesConvertAllModels:
    def test_lenet(self):
        ds = data.mnist_like(n=32, batch_size=16)
        batches = list(ds.batches(shuffle=False))[:2]
        _assert_all_stages(
            lambda: _build(models.lenet.LeNet,
                           models.lenet.make_loss_fn), batches)

    def test_resnet(self):
        ds = data.imagenet_like(n=16, batch_size=8, image_size=16)
        batches = list(ds.batches(shuffle=False))[:2]
        _assert_all_stages(
            lambda: _build(models.resnet.resnet_tiny,
                           models.resnet.make_loss_fn), batches)

    def test_inception(self):
        ds = data.imagenet_like(n=16, batch_size=8, image_size=16)
        batches = list(ds.batches(shuffle=False))[:2]
        _assert_all_stages(
            lambda: _build(models.inception.InceptionNet,
                           models.inception.make_loss_fn), batches)

    def test_lstm(self):
        corpus = data.ptb_like()
        batches = list(corpus.bptt_batches(batch_size=4, seq_len=5))[:2]
        _assert_all_stages(
            lambda: _build(
                lambda seed: models.lstm_ptb.LSTMLanguageModel(
                    vocab_size=200, embed_dim=8, hidden_dim=8,
                    batch_size=4, seed=seed),
                models.lstm_ptb.make_loss_fn), batches)

    def test_treernn(self):
        trees = data.sst_like(n_trees=5, seed=3)
        _assert_all_stages(
            lambda: _build(models.treernn.TreeRNN,
                           models.treernn.make_loss_fn),
            [(t,) for t in trees])

    def test_treelstm(self):
        trees = data.sst_like(n_trees=5, seed=3)
        _assert_all_stages(
            lambda: _build(models.treelstm.TreeLSTM,
                           models.treelstm.make_loss_fn),
            [(t,) for t in trees])

    def test_a3c(self):
        env = envs.CartPole(seed=0)
        probe = models.a3c.ActorCritic(seed=9)
        rng = np.random.RandomState(0)
        episodes = [models.a3c.collect_episode(probe, env, rng)
                    for _ in range(3)]
        _assert_all_stages(
            lambda: _build(models.a3c.ActorCritic,
                           models.a3c.make_loss_fn), episodes)

    def test_ppo(self):
        env = envs.PongLite(seed=0)
        probe = models.ppo.PPOAgent(seed=11)
        rng = np.random.RandomState(0)
        rollouts = [models.ppo.collect_rollout(probe, env, rng,
                                               horizon=16)[:5]
                    for _ in range(2)]
        _assert_all_stages(
            lambda: _build(models.ppo.PPOAgent,
                           models.ppo.make_loss_fn), rollouts)

    def test_an(self):
        ds = data.mnist_like(n=16, batch_size=16)
        images = next(iter(ds.batches(shuffle=False)))[0]
        rng = np.random.RandomState(0)
        z = models.gan_an.sample_latent(rng, 16, 16)

        def build():
            gan = models.gan_an.AdversarialNets(seed=1)
            return gan, models.gan_an.make_d_loss_fn(gan)

        _assert_all_stages(build, [(images, z)])

    def test_pix2pix(self):
        ds = data.facades_like(n=2, batch_size=1, image_size=16)
        batches = list(ds.batches(shuffle=False))[:2]

        def build():
            model = models.pix2pix.Pix2Pix(image_size=16, seed=1)
            return model, models.pix2pix.make_g_loss_fn(model)

        _assert_all_stages(build, batches)


class TestTrainingWithOtherOptimizers:
    @pytest.mark.parametrize("make_opt", [lambda: nn.Momentum(0.01, 0.9),
                                          lambda: nn.Adam(0.01),
                                          lambda: nn.RMSProp(0.01)])
    def test_optimizer_parity_through_janus(self, make_opt):
        """Optimizer slot state (momentum, Adam moments, step counters)
        must update identically in graph and imperative mode."""
        rng = np.random.RandomState(5)
        X = rng.randn(16, 4).astype(np.float32)
        Y = (X[:, 1] > 0).astype(np.int64)

        def trajectory(mode):
            nn.init.seed(21)
            model = nn.Sequential([nn.Dense(4, 8, activation=R.tanh),
                                   nn.Dense(8, 2)])

            def loss_fn(x, y):
                return nn.losses.softmax_cross_entropy(model(x), y)

            step = make_step(
                loss_fn, make_opt(), mode,
                config=janus.JanusConfig(fail_on_not_convertible=True)
                if mode == "janus" else None)
            return [float(np.asarray(step(X, Y).numpy()))
                    for _ in range(8)]

        np.testing.assert_allclose(trajectory("janus"),
                                   trajectory("imperative"),
                                   rtol=1e-4, atol=1e-5)


def _build(model_factory, loss_factory, seed=1):
    model = model_factory(seed=seed)
    return model, loss_factory(model)

"""Extended conversion coverage: with-statements, break/continue,
and the naive-vs-deferred state-update ablation flag."""

import numpy as np
import pytest

import repro as R
from repro import janus


def strict(**kw):
    return janus.JanusConfig(fail_on_not_convertible=True, **kw)


def warm(jf, *args, n=5):
    out = None
    for _ in range(n):
        out = jf(*args)
    return out


class Scaler:
    """A context manager with convertible enter/exit logic."""

    def __init__(self):
        self.active = 0.0
        self.exits = 0.0

    def __enter__(self):
        self.active = self.active + 1.0
        return self

    def __exit__(self, exc_type, exc, tb):
        self.exits = self.exits + 1.0
        return False


class TestWithStatement:
    def test_with_converts_to_enter_exit_calls(self):
        ctx = Scaler()

        @janus.function(config=strict())
        def f(x):
            with ctx:
                y = x * 2.0
            return y

        out = warm(f, R.constant(3.0), n=6)
        assert float(out.numpy()) == 6.0
        assert f.stats["graph_runs"] > 0
        # enter/exit side effects happened once per call (6 calls).
        assert float(np.asarray(
            ctx.active.numpy() if hasattr(ctx.active, "numpy")
            else ctx.active)) == 6.0
        assert float(np.asarray(
            ctx.exits.numpy() if hasattr(ctx.exits, "numpy")
            else ctx.exits)) == 6.0

    def test_with_as_binding(self):
        class Provider:
            def __enter__(self):
                return 10.0

            def __exit__(self, *args):
                return False

        provider = Provider()

        @janus.function(config=strict())
        def f(x):
            with provider as scale:
                return x * scale

        assert float(warm(f, R.constant(2.0)).numpy()) == 20.0


class TestBreakContinue:
    def test_break_in_constant_loop(self):
        @janus.function(config=strict())
        def f(x):
            total = x * 0.0
            for i in range(10):
                if i >= 3:
                    break
                total = total + x
            return total

        out = warm(f, R.constant(np.ones(2, np.float32)))
        np.testing.assert_allclose(out.numpy(), [3.0, 3.0])
        assert f.stats["graph_runs"] > 0

    def test_continue_in_constant_loop(self):
        @janus.function(config=strict())
        def f(x):
            total = x * 0.0
            for i in range(6):
                if i % 2 == 0:
                    continue
                total = total + x
            return total

        out = warm(f, R.constant(np.ones(2, np.float32)))
        np.testing.assert_allclose(out.numpy(), [3.0, 3.0])

    def test_break_with_stable_tensor_guard(self):
        """A tensor-predicated break unrolls behind an AssertOp."""
        @janus.function(config=strict())
        def f(x):
            total = x * 0.0
            for i in range(4):
                if R.reduce_sum(total) > 100.0:
                    break
                total = total + x
            return total

        out = warm(f, R.constant(np.ones(2, np.float32)))
        np.testing.assert_allclose(out.numpy(), [4.0, 4.0])
        entry = next(iter(f.cache._entries.values()))
        ops = [n.op_name for n in entry.generated.graph.nodes]
        assert "assert" in ops   # the speculative never-break guards

    def test_break_guard_failure_falls_back(self):
        @janus.function(config=strict())
        def f(x):
            total = x * 0.0
            for i in range(4):
                if R.reduce_sum(total) > 5.0:
                    break
                total = total + x
            return total

        # Varying small inputs: argument stays a (non-constant) tensor,
        # so the break guard is a *runtime* assertion, not a precheck.
        for k in range(5):
            f(R.constant(np.full(2, 0.1 + 0.01 * k, np.float32)))
        assert f.stats["graph_runs"] > 0
        big = R.constant(np.full(2, 3.0, np.float32))
        out = f(big)               # breaks after the first iteration
        np.testing.assert_allclose(out.numpy(), [3.0, 3.0])
        assert f.stats["fallbacks"] == 1

    def test_break_in_dynamic_loop_converts_speculatively(self):
        """A never-taken break inside a dynamic loop converts: the
        stable branch guard asserts the break path is cold, so the loop
        body itself stays break-free in the graph."""
        @janus.function
        def f(seq):
            total = R.constant(0.0)
            for row in seq:
                if R.reduce_sum(row) > 1e9:
                    break
                total = total + R.reduce_sum(row)
            return total

        for n in (3, 5, 3, 5, 4, 6):
            out = f(R.constant(np.ones((n, 2), np.float32)))
            assert float(out.numpy()) == pytest.approx(2.0 * n)
        assert not f.imperative_only
        assert f.stats["graph_runs"] > 0

    def test_unstable_break_in_dynamic_loop_is_imperative_only(self):
        """When the break direction is genuinely unstable inside a
        dynamic loop, there is no graph representation: the function
        stays imperative (and correct).  Co-execution is pinned off —
        with it on, the loop becomes an imperative gap instead (see
        test_coexec_differential.py)."""
        @janus.function(config=janus.JanusConfig(coexecution=False))
        def f(seq, limit):
            total = R.constant(0.0)
            for row in seq:
                if R.reduce_sum(total) > R.reduce_sum(limit):
                    break
                total = total + R.reduce_sum(row)
            return total

        rng = np.random.default_rng(0)
        for i, n in enumerate((3, 6, 4, 7, 5, 8)):
            seq = np.ones((n, 2), np.float32)
            limit = np.full(1, float(i % 3 + 1), np.float32)
            out = f(R.constant(seq), R.constant(limit))
            # imperative ground truth
            total = 0.0
            for row in seq:
                if total > limit[0]:
                    break
                total += row.sum()
            assert float(out.numpy()) == pytest.approx(total)
        assert f.imperative_only


class TestDeferredStateAblation:
    """Section 4.2.3: deferred local-copy writeback vs naive mutation."""

    def test_naive_mode_converts_and_runs(self):
        holder = type("H", (), {})()
        holder.state = R.constant(np.float32(0.0))

        @janus.function(config=strict(deferred_state_update=False))
        def f(x):
            holder.state = holder.state + R.reduce_sum(x)
            return holder.state

        x = R.constant(np.ones(2, np.float32))
        values = [float(np.asarray(f(x).numpy())) for _ in range(6)]
        assert values == [pytest.approx(2.0 * (i + 1)) for i in range(6)]

    def test_naive_mode_breaks_all_or_nothing(self):
        """The hazard the paper's deferred design removes: a failed
        assumption leaves partially-mutated state behind."""
        holder = type("H", (), {})()
        holder.state = R.constant(np.float32(0.0))
        holder.gate = R.constant(np.ones(1, np.float32))

        def program():
            holder.state = holder.state + 1.0     # heap write
            if R.reduce_sum(holder.gate) > 0.0:   # guarded branch
                return holder.state * 1.0
            return holder.state * -1.0

        naive = janus.function(program, config=strict(
            deferred_state_update=False))
        for k in range(5):
            holder.gate = R.constant(np.full(1, 1.0 + k, np.float32))
            naive()
        state_before = float(holder.state.numpy())
        holder.gate = R.constant(-np.ones(1, np.float32))
        naive()   # assert fires AFTER the naive write already landed
        assert naive.stats["fallbacks"] == 1
        state_after = float(holder.state.numpy())
        # naive mutation + imperative fallback re-applied the increment:
        # the write happened twice for one logical call.
        assert state_after == pytest.approx(state_before + 2.0)

    def test_deferred_mode_keeps_all_or_nothing(self):
        holder = type("H", (), {})()
        holder.state = R.constant(np.float32(0.0))
        holder.gate = R.constant(np.ones(1, np.float32))

        def program():
            holder.state = holder.state + 1.0
            if R.reduce_sum(holder.gate) > 0.0:
                return holder.state * 1.0
            return holder.state * -1.0

        deferred = janus.function(program, config=strict())
        for k in range(5):
            holder.gate = R.constant(np.full(1, 1.0 + k, np.float32))
            deferred()
        state_before = float(holder.state.numpy())
        holder.gate = R.constant(-np.ones(1, np.float32))
        deferred()
        state_after = float(holder.state.numpy())
        assert state_after == pytest.approx(state_before + 1.0)

"""Lint the Prometheus text exposition against the format rules.

A scrape target that emits one malformed line poisons the whole scrape,
so rather than spot-checking a few substrings this suite *parses* the
full output of :func:`repro.observability.cli.prometheus_text` — over a
deliberately fully-populated state (windowed metrics, per-function
health with failure sites, serving traffic with rejects, disk-cache
activity, counters with dotted names) — and enforces:

* metric names match ``[a-zA-Z_:][a-zA-Z0-9_:]*``,
* label names match ``[a-zA-Z_][a-zA-Z0-9_]*`` and label values escape
  backslash, double-quote, and newline,
* every family emits ``# HELP`` and ``# TYPE`` exactly once, before any
  of its samples, and the TYPE is a known one,
* sample values parse as floats (``+Inf`` allowed),
* histogram families end each ``le`` series with ``+Inf`` and their
  cumulative bucket counts are monotonically non-decreasing per label
  set.
"""

import math
import re

import pytest

from repro import observability as obs
from repro.observability import COUNTERS
from repro.observability.cli import prometheus_text
from repro.observability.diskcache import DiskCacheStats
from repro.observability.health import HealthRegistry
from repro.observability.metrics import MetricsRegistry
from repro.observability.reqtrace import (FlightRecorder,
                                          RequestContext)
from repro.observability.serving import ServingStats

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# One label: name="value" with \\, \", \n escapes inside the value.
_LABEL_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\\n]|\\\\|\\"|\\n)*)"')
_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)$")

_KNOWN_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def _parse_labels(label_blob):
    """{name: value} for a ``{a="b",c="d"}`` blob; asserts full coverage."""
    if not label_blob:
        return {}
    inner = label_blob[1:-1].rstrip(",")
    labels = {}
    consumed = 0
    for match in _LABEL_RE.finditer(inner):
        # Account for the separator comma between labels.
        assert match.start() in (consumed, consumed + 1), \
            "unparseable label segment in %r" % inner
        labels[match.group(1)] = match.group(2)
        consumed = match.end()
    assert consumed == len(inner), \
        "trailing junk in label blob %r" % inner
    return labels


def _family_of(name):
    """Family name a sample belongs to (strips histogram suffixes)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[:-len(suffix)]
    return name


def _populated_state():
    """Every registry section exercised, including awkward label values."""
    metrics = MetricsRegistry(enabled=True)
    for value in (0.001, 0.002, 0.5):
        metrics.observe("graph.run", value)
        metrics.observe_windowed("dispatch.latency", value)
    metrics.observe("graph.generate", 0.12)

    health = HealthRegistry()
    fn = health.function("model.predict")
    fn.record_call()
    fn.record_profile_run()
    fn.record_call()
    fn.record_graph_run()
    fn.record_failure('guard "shape" at line 3\nwith\\newline',
                      kind="assumption")
    fn.record_fallback('guard "shape" at line 3\nwith\\newline', 0.004,
                       kind="assumption")
    fn.record_generation(0.2, regeneration=True)

    counters = COUNTERS.__class__()
    counters.inc("cache.hits", 3)
    counters.inc("diskcache.misses.absent", 2)

    serving = ServingStats()
    for _ in range(4):
        serving.record_enqueue(1)
    serving.record_batch(3, (0.002, 0.003, 0.001))
    serving.record_request(0.010, "ok")
    serving.record_request(0.050, "error")
    serving.record_reject(0.0002)

    diskcache = DiskCacheStats()
    diskcache.record_hit(0.003)
    diskcache.record_miss("absent")
    diskcache.record_miss("corrupt")
    diskcache.record_store(4096)
    diskcache.record_store_skip()
    diskcache.record_evictions(2)

    recorder = FlightRecorder(keep_slowest=2)
    for outcome in ("ok", "error", "rejected"):
        ctx = RequestContext("serve.predict")
        ctx.outcome = outcome
        ctx.duration = 0.01
        recorder.record(ctx)

    return dict(metrics=metrics, health=health, counters=counters,
                serving=serving, diskcache=diskcache, requests=recorder)


@pytest.fixture()
def exposition():
    return prometheus_text(**_populated_state())


class TestExpositionLint:
    def test_nonempty_and_every_line_parses(self, exposition):
        samples = 0
        for line in exposition.splitlines():
            if not line:
                continue
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                continue
            assert not line.startswith("#"), \
                "unknown comment form: %r" % line
            match = _SAMPLE_RE.match(line)
            assert match, "unparseable sample line: %r" % line
            samples += 1
        assert samples > 40, "fully populated state should be rich"

    def test_metric_and_label_names_are_legal(self, exposition):
        for line in exposition.splitlines():
            match = _SAMPLE_RE.match(line)
            if not match:
                continue
            name, label_blob, _ = match.groups()
            assert _NAME_RE.match(name), name
            for label_name, value in _parse_labels(label_blob).items():
                assert _LABEL_NAME_RE.match(label_name), label_name
                assert "\n" not in value and '"' not in value.replace(
                    '\\"', "")

    def test_sample_values_are_floats(self, exposition):
        for line in exposition.splitlines():
            match = _SAMPLE_RE.match(line)
            if not match:
                continue
            value = match.group(3)
            if value in ("+Inf", "-Inf", "NaN"):
                continue
            float(value)   # raises on malformed values

    def test_help_and_type_exactly_once_before_samples(self, exposition):
        seen_help, seen_type, seen_sample = set(), set(), set()
        for line in exposition.splitlines():
            if line.startswith("# HELP "):
                family = line.split()[2]
                assert family not in seen_help, \
                    "duplicate HELP for %s" % family
                assert family not in seen_sample, \
                    "HELP for %s after its samples" % family
                seen_help.add(family)
            elif line.startswith("# TYPE "):
                parts = line.split()
                family, mtype = parts[2], parts[3]
                assert family not in seen_type, \
                    "duplicate TYPE for %s" % family
                assert family not in seen_sample, \
                    "TYPE for %s after its samples" % family
                assert mtype in _KNOWN_TYPES, mtype
                seen_type.add(family)
            else:
                match = _SAMPLE_RE.match(line)
                if match:
                    seen_sample.add(_family_of(match.group(1)))
        for family in seen_sample:
            assert family in seen_help, "no HELP for %s" % family
            assert family in seen_type, "no TYPE for %s" % family

    def test_histogram_buckets_monotonic_and_end_in_inf(self, exposition):
        series = {}
        histogram_families = set()
        for line in exposition.splitlines():
            if line.startswith("# TYPE "):
                parts = line.split()
                if parts[3] == "histogram":
                    histogram_families.add(parts[2])
                continue
            match = _SAMPLE_RE.match(line)
            if not match:
                continue
            name, label_blob, value = match.groups()
            if not name.endswith("_bucket"):
                continue
            family = _family_of(name)
            assert family in histogram_families, \
                "_bucket sample outside a histogram family: %s" % name
            labels = _parse_labels(label_blob)
            assert "le" in labels, line
            le = labels.pop("le")
            bound = math.inf if le == "+Inf" else float(le)
            key = (family, tuple(sorted(labels.items())))
            series.setdefault(key, []).append((bound, float(value)))
        assert series, "populated state must emit histogram buckets"
        for key, buckets in series.items():
            # Buckets must already be emitted in ascending-bound order.
            bounds = [b for b, _ in buckets]
            assert bounds == sorted(bounds), key
            assert bounds[-1] == math.inf, \
                "%r does not end in +Inf" % (key,)
            counts = [c for _, c in buckets]
            assert all(b >= a for a, b in zip(counts, counts[1:])), \
                "non-monotonic cumulative buckets for %r" % (key,)

    def test_histogram_count_matches_inf_bucket(self, exposition):
        inf_buckets, counts = {}, {}
        for line in exposition.splitlines():
            match = _SAMPLE_RE.match(line)
            if not match:
                continue
            name, label_blob, value = match.groups()
            labels = _parse_labels(label_blob)
            if name.endswith("_bucket") and labels.get("le") == "+Inf":
                labels.pop("le")
                key = (_family_of(name), tuple(sorted(labels.items())))
                inf_buckets[key] = float(value)
            elif name.endswith("_count"):
                key = (_family_of(name), tuple(sorted(labels.items())))
                counts[key] = float(value)
        for key, total in inf_buckets.items():
            assert key in counts, "no _count for %r" % (key,)
            assert counts[key] == total, key

    def test_awkward_label_values_are_escaped(self, exposition):
        # The failure site contains a backslash, quotes, and a newline;
        # the raw forms must never appear unescaped in the exposition.
        assert "\nwith" not in exposition.replace("\\n", "")
        site_lines = [l for l in exposition.splitlines()
                      if "janus_site_failures_total" in l
                      and not l.startswith("#")]
        assert site_lines, "failure sites must be exported"
        for line in site_lines:
            match = _SAMPLE_RE.match(line)
            assert match, line
            _parse_labels(match.group(2))   # asserts full label coverage

    def test_live_registries_also_lint(self):
        # The default (live-registry) exposition obeys the same rules,
        # even when mostly empty.
        text = prometheus_text()
        for line in text.splitlines():
            if not line or line.startswith("# HELP ") or \
                    line.startswith("# TYPE "):
                continue
            assert _SAMPLE_RE.match(line), line

    def teardown_method(self, method):
        obs.clear()

"""Assorted integration coverage: print conversion, symbolic-mode object
signatures, profiler break hygiene, figure-4 shape relaxation chain."""

import numpy as np
import pytest

import repro as R
from repro import janus, nn
from repro.janus.profiler import Profiler
from repro.modes import make_step


def strict(**kw):
    return janus.JanusConfig(fail_on_not_convertible=True, **kw)


class TestPrintConversion:
    def test_print_becomes_graph_op(self, capfd):
        @janus.function(config=strict())
        def f(x):
            print("total:", R.reduce_sum(x))
            return x * 2.0

        x = R.constant(np.ones(2, np.float32))
        for _ in range(5):
            f(x)
        assert f.stats["graph_runs"] > 0
        entry = next(iter(f.cache._entries.values()))
        ops = {n.op_name for n in entry.generated.graph.nodes}
        assert "print" in ops
        out, _err = capfd.readouterr()
        # printed on every call (imperative and graph runs alike)
        assert out.count("total:") == 5


class TestSymbolicObjectSignatures:
    def test_graph_built_per_object_identity(self):
        class Item:
            def __init__(self, scale):
                self.scale = scale

        def loss_fn(item, x):
            return R.reduce_sum(x) * item.scale

        step = make_step(loss_fn, None, "symbolic")
        a, b = Item(2.0), Item(5.0)
        x = np.ones(3, np.float32)
        assert float(np.asarray(step(a, x).numpy())) == 6.0
        assert float(np.asarray(step(b, x).numpy())) == 15.0
        assert step.builds == 2      # one graph per burned-in object
        assert float(np.asarray(step(a, x).numpy())) == 6.0
        assert step.builds == 2      # cached


class TestProfilerHygiene:
    def test_while_counter_reset_after_break(self):
        """A break leaves a while counter mid-flight; the next profiled
        call must not inherit it (trip counts stay per-execution)."""
        def f(n, cut):
            i = 0
            while i < n:
                if cut and i == 2:
                    break
                i += 1
            return i

        prof = Profiler()
        prof.profile_call(f, [5, True])    # breaks at 2
        prof.profile_call(f, [3, False])   # runs to completion
        site = next(s for s, e in prof.sites.items()
                    if e.kind == "loop")
        # the completed run recorded exactly its own trip count
        assert 3 in prof.sites[site].trip_counts
        assert 5 not in prof.sites[site].trip_counts
        assert max(prof.sites[site].trip_counts) <= 3


class TestFigure4RelaxationChain:
    def test_shape_family_never_regenerates_twice(self):
        """The figure-4 walkthrough via the public API: (4, 8) then
        (3, 8) relaxes to (?, 8); later (2, 8) and (6, 8) reuse it."""
        @janus.function(config=strict(profile_runs=2))
        def f(x):
            return R.reduce_sum(R.tanh(x))

        def call(batch):
            return f(R.constant(np.zeros((batch, 8), np.float32)))

        call(4)
        call(4)          # profiling done: spec is const (4, 8) zeros
        call(4)          # graph #1
        g1 = f.stats["graphs_generated"]
        assert g1 == 1
        call(3)          # precheck miss -> relax -> imperative
        call(3)          # graph #2 with (?, 8)
        g2 = f.stats["graphs_generated"]
        assert g2 == 2
        for batch in (2, 6, 100):
            out = call(batch)
            assert float(out.numpy()) == 0.0
        # the (?, 8) graph absorbed every further batch size
        assert f.stats["graphs_generated"] == 2
        assert f.cache_stats()["entries"] == 1


class TestEnumerateZip:
    def test_enumerate_conversion(self):
        @janus.function(config=strict())
        def f(x):
            total = x * 0.0
            for i, row in enumerate(x):
                total = total + row * float(i)
            return R.reduce_sum(total)

        x = R.constant(np.ones((3, 2), np.float32))
        out = None
        for _ in range(5):
            out = f(x)
        # total has shape (3, 2): broadcasting adds each weighted row
        # to every row of the accumulator -> 3 * (0+1+2) * 2 elements.
        assert float(out.numpy()) == pytest.approx(3 * (0 + 1 + 2) * 2)
        assert f.stats["graph_runs"] > 0

    def test_zip_conversion(self):
        @janus.function(config=strict())
        def f(a, b):
            total = R.constant(0.0)
            for x, y in zip(a, b):
                total = total + R.reduce_sum(x * y)
            return total

        a = R.constant(np.full((3, 2), 2.0, np.float32))
        b = R.constant(np.full((3, 2), 5.0, np.float32))
        out = None
        for _ in range(5):
            out = f(a, b)
        assert float(out.numpy()) == pytest.approx(3 * 2 * 10.0)


class TestVarargsInlining:
    def test_star_args_callee(self):
        def combine(*parts):
            total = parts[0]
            for p in parts[1:]:
                total = total + p
            return total

        @janus.function(config=strict())
        def f(x):
            return R.reduce_sum(combine(x, x * 2.0, x * 3.0))

        x = R.constant(np.ones(2, np.float32))
        out = None
        for _ in range(5):
            out = f(x)
        assert float(out.numpy()) == pytest.approx(12.0)
        assert f.stats["graph_runs"] > 0

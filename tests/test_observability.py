"""The runtime observability layer: tracer, counters, exporters, hooks."""

import json
import time

import numpy as np
import pytest

import repro as R
from repro import janus, observability as obs
from repro.observability.counters import CounterRegistry
from repro.observability.tracer import Tracer


@pytest.fixture(autouse=True)
def _tracing_off_after():
    """Every test leaves the global tracer disabled and empty."""
    yield
    obs.set_trace_level(0)
    obs.clear()


def strict(**kw):
    return janus.JanusConfig(fail_on_not_convertible=True, **kw)


class TestTracer:
    def test_disabled_records_nothing(self):
        tracer = Tracer(level=0)
        tracer.instant("op", "x")
        with tracer.span("graphgen", "f"):
            pass
        tracer.complete("pass", "dce", 0.0, 1.0)
        assert len(tracer) == 0

    def test_disabled_overhead_bound(self):
        """A gated emit on a disabled tracer is an attribute check:
        ~100ns/call.  Bound it loosely so slow CI never flakes."""
        tracer = Tracer(level=0)
        n = 200_000
        start = time.perf_counter()
        for _ in range(n):
            tracer.instant("op", "x")
        elapsed = time.perf_counter() - start
        assert elapsed < 2.0, "disabled emit too slow: %.0f ns/call" % (
            elapsed / n * 1e9)

    def test_level_gating(self):
        tracer = Tracer(level=1)
        tracer.instant("op", "lifecycle", level=1)
        tracer.instant("op", "detailed", level=2)
        assert [e.name for e in tracer.events] == ["lifecycle"]

    def test_event_ordering(self):
        tracer = Tracer(level=2)
        for i in range(50):
            tracer.instant("op", "e%d" % i, index=i)
        events = tracer.events
        assert [e.args["index"] for e in events] == list(range(50))
        stamps = [e.ts for e in events]
        assert stamps == sorted(stamps)

    def test_ring_buffer_bounded(self):
        tracer = Tracer(level=1, capacity=16)
        for i in range(100):
            tracer.instant("op", "e", index=i)
        events = tracer.events
        assert len(events) == 16
        # The most recent window survives.
        assert [e.args["index"] for e in events] == list(range(84, 100))

    def test_ring_buffer_exact_capacity_boundary(self):
        """Exactly ``capacity`` events all survive; one more drops only
        the oldest."""
        tracer = Tracer(level=1, capacity=8)
        for i in range(8):
            tracer.instant("op", "e", index=i)
        assert [e.args["index"] for e in tracer.events] == list(range(8))
        tracer.instant("op", "e", index=8)
        assert [e.args["index"] for e in tracer.events] == list(range(1, 9))
        assert len(tracer) == 8

    def test_drain_empties_but_events_snapshot_does_not(self):
        tracer = Tracer(level=1)
        for i in range(3):
            tracer.instant("op", "e", index=i)
        # `events` is a non-destructive snapshot: repeated reads agree.
        first = [e.args["index"] for e in tracer.events]
        assert first == [e.args["index"] for e in tracer.events] == [0, 1, 2]
        # `drain` returns the same events, oldest first, and clears.
        drained = tracer.drain()
        assert [e.args["index"] for e in drained] == [0, 1, 2]
        assert tracer.events == [] and len(tracer) == 0
        assert tracer.drain() == []
        # New events start a fresh buffer, not a continuation.
        tracer.instant("op", "e", index=99)
        assert [e.args["index"] for e in tracer.events] == [99]

    def test_set_level_zero_during_open_span_still_records(self):
        """Spans gate at *entry*: one opened while tracing was on must
        record its complete event even if tracing is disabled before it
        exits (otherwise a run's final graphgen span would vanish)."""
        tracer = Tracer(level=1)
        with tracer.span("graphgen", "f"):
            tracer.set_level(0)
        (event,) = tracer.events
        assert (event.category, event.name, event.ph) == \
            ("graphgen", "f", "X")

    def test_raising_level_during_null_span_records_nothing(self):
        """The converse race: a span opened while disabled is the shared
        null span, so enabling tracing mid-span records nothing."""
        tracer = Tracer(level=0)
        with tracer.span("graphgen", "f"):
            tracer.set_level(2)
            tracer.instant("op", "inside")
        assert [e.name for e in tracer.events] == ["inside"]

    def test_span_times_block(self):
        tracer = Tracer(level=1)
        with tracer.span("pass", "timed"):
            time.sleep(0.01)
        (event,) = tracer.events
        assert event.ph == "X"
        assert event.dur >= 0.005

    def test_span_records_error(self):
        tracer = Tracer(level=1)
        with pytest.raises(ValueError):
            with tracer.span("graphgen", "f"):
                raise ValueError("boom")
        (event,) = tracer.events
        assert event.args["error"] == "ValueError"

    def test_override_level(self):
        obs.set_trace_level(0)
        with obs.override_level(1):
            assert obs.trace_level() == 1
        assert obs.trace_level() == 0


class TestCounters:
    def test_inc_and_get(self):
        reg = CounterRegistry()
        reg.inc("a")
        reg.inc("a", 4)
        assert reg.get("a") == 5
        assert reg.get("missing") == 0

    def test_scoped_timer(self):
        reg = CounterRegistry()
        with reg.timer("work"):
            time.sleep(0.005)
        count, total = reg.timer_stats("work")
        assert count == 1
        assert total >= 0.002

    def test_merge_accumulates(self):
        a = CounterRegistry()
        b = CounterRegistry()
        a.inc("shared", 2)
        a.inc("only_a")
        b.inc("shared", 3)
        b.inc("only_b", 7)
        a.add_time("t", 1.0)
        b.add_time("t", 0.5)
        b.add_time("u", 0.25)
        merged = a.merge(b)
        assert merged is a
        assert a.get("shared") == 5
        assert a.get("only_a") == 1
        assert a.get("only_b") == 7
        assert a.timer_stats("t") == (2, 1.5)
        assert a.timer_stats("u") == (1, 0.25)

    def test_snapshot_is_plain_data(self):
        reg = CounterRegistry()
        reg.inc("n", 3)
        reg.add_time("t", 0.125)
        snap = reg.snapshot()
        assert snap["counters"] == {"n": 3}
        assert snap["timers"] == {"t": (1, 0.125)}
        # round-trips through json
        json.loads(json.dumps(snap))


class TestChromeTraceExport:
    def test_schema_validity(self, tmp_path):
        tracer = Tracer(level=2)
        tracer.instant("cache_hit", "f", hits=3)
        tracer.complete("op", "matmul", 1.0, 0.002, node="matmul_0")
        path = tmp_path / "trace.json"
        obs.write_chrome_trace(str(path), tracer=tracer)
        payload = json.load(open(path))
        events = payload["traceEvents"]
        assert isinstance(events, list) and len(events) >= 3
        for event in events:
            assert {"name", "ph", "ts", "pid", "tid"} <= set(event)
            assert event["ph"] in ("M", "i", "X")
            if event["ph"] == "X":
                assert "dur" in event and event["dur"] >= 0
            if event["ph"] == "i":
                assert event["s"] == "t"
        complete = [e for e in events if e["ph"] == "X"]
        assert complete[0]["dur"] == pytest.approx(2000.0)  # µs

    def test_non_jsonable_args_stringified(self, tmp_path):
        tracer = Tracer(level=1)
        tracer.instant("graphgen", "f", signature=("T", "float32", 2))
        path = tmp_path / "t.json"
        obs.write_chrome_trace(str(path), tracer=tracer)
        payload = json.load(open(path))
        args = [e for e in payload["traceEvents"]
                if e.get("cat") == "graphgen"][0]["args"]
        assert isinstance(args["signature"], str)

    def test_text_summary_mentions_categories(self):
        tracer = Tracer(level=1)
        tracer.instant("fallback", "f", reason="assumption_failed")
        tracer.complete("pass", "dce", 0.0, 0.001)
        summary = obs.text_summary(tracer=tracer,
                                   counters=CounterRegistry())
        assert "fallback" in summary
        assert "pass" in summary

    def test_text_summary_always_reports_write_barrier_block(self):
        """The memo/write-barrier counters print even at zero: a zero
        memo_hit row on a tensor-attr workload is itself the signal."""
        summary = obs.text_summary(tracer=Tracer(level=1),
                                   counters=CounterRegistry())
        assert "-- heap-read memo / write barrier --" in summary
        for name in ("executor.memo_hit", "executor.memo_stale",
                     "tensor.cow_copies"):
            assert name in summary

    def test_write_barrier_counters_not_duplicated_in_generic_block(self):
        counters = CounterRegistry()
        counters.inc("executor.memo_hit", 7)
        counters.inc("executor.memo_stale", 2)
        counters.inc("tensor.cow_copies", 1)
        counters.inc("eager.dispatches", 3)
        summary = obs.text_summary(tracer=Tracer(level=1),
                                   counters=counters)
        assert summary.count("executor.memo_hit") == 1
        assert summary.count("tensor.cow_copies") == 1
        barrier_block = summary.split(
            "-- heap-read memo / write barrier --")[1]
        generic_block = barrier_block.split("-- counters --")[1]
        assert "executor.memo_hit" not in generic_block
        assert "eager.dispatches" in generic_block


class Holder:
    def __init__(self):
        self.scale = 3.0


class TestJanusLifecycleEvents:
    def test_graphgen_cache_and_op_events(self):
        obs.clear()
        obs.set_trace_level(1)

        @janus.function(config=strict())
        def f(x):
            return x * 2.0 + 1.0

        for _ in range(6):
            out = f(R.constant(np.float32(2.0)))
        assert float(out.numpy()) == pytest.approx(5.0)
        counts = obs.TRACER.category_counts()
        assert counts.get("graphgen", 0) >= 2    # span + generated instant
        assert counts.get("cache_store", 0) == 1
        assert counts.get("cache_hit", 0) >= 2
        assert counts.get("op", 0) >= 1          # per-run spans at level 1

    def test_memo_hit_counter_flows_from_traced_runs_to_summary(self):
        obs.clear()
        obs.set_trace_level(1)
        holder = Holder()
        holder.weights = R.constant(np.arange(4, dtype=np.float32))

        @janus.function(config=strict(parallel_execution=False))
        def f(x):
            return R.reduce_sum(x * holder.weights)

        before = obs.COUNTERS.get("executor.memo_hit")
        for _ in range(8):
            f(R.constant(np.ones(4, np.float32)))
        assert f.stats["graph_runs"] > 1
        hits = obs.COUNTERS.get("executor.memo_hit") - before
        assert hits > 0                          # steady-state heap reads
        summary = obs.text_summary()
        assert "executor.memo_hit" in summary

    def test_forced_fallback_names_failing_guard(self):
        obs.clear()
        obs.set_trace_level(1)
        h = Holder()

        @janus.function(config=strict())
        def f(x):
            return x * h.scale

        for _ in range(5):
            f(R.constant(np.float32(2.0)))
        assert f.stats["graph_runs"] > 0
        h.scale = 5.0   # break the burned-in constant
        out = f(R.constant(np.float32(2.0)))
        assert float(out.numpy()) == pytest.approx(10.0)
        assert f.stats["fallbacks"] == 1

        events = obs.TRACER.events
        failures = [e for e in events if e.category == "assumption_fail"]
        fallbacks = [e for e in events if e.category == "fallback"]
        assert len(failures) == 1 and len(fallbacks) == 1
        assert "profiled constant" in failures[0].args["guard"]
        assert "attr" in failures[0].args["site"]
        assert fallbacks[0].args["reason"] == "assumption_failed"
        assert f.last_assumption_failure is not None
        # The fallback must come after the failed assumption.
        assert failures[0].ts <= fallbacks[0].ts
        # The relaxation that follows is recorded too.
        assert any(e.category == "relax" for e in events)

    def test_level2_per_op_timing(self):
        obs.clear()
        obs.set_trace_level(2)

        @janus.function(config=strict(parallel_execution=False))
        def f(x):
            return x * 2.0 + 1.0

        for _ in range(5):
            f(R.constant(np.float32(2.0)))
        per_op = [e for e in obs.TRACER.events
                  if e.category == "op" and e.args
                  and "node" in (e.args or {})]
        assert per_op, "expected per-node op events at level 2"
        assert all(e.ph == "X" for e in per_op)

    def test_config_trace_level_override(self):
        obs.clear()
        obs.set_trace_level(0)

        @janus.function(config=strict(trace_level=1))
        def f(x):
            return x + 1.0

        for _ in range(5):
            f(R.constant(np.float32(1.0)))
        counts = obs.TRACER.category_counts()
        assert counts.get("graphgen", 0) >= 1
        assert obs.trace_level() == 0   # global level untouched after calls

    def test_eager_dispatch_counters(self):
        obs.clear()
        obs.set_trace_level(1)
        R.add(R.constant(1.0), R.constant(2.0))
        assert obs.get_counters().get("eager.dispatch") >= 1
        assert obs.get_counters().get("eager.dispatch.add") >= 1

    def test_tracing_off_emits_nothing(self):
        obs.clear()
        obs.set_trace_level(0)

        @janus.function(config=strict())
        def f(x):
            return x + 1.0

        for _ in range(5):
            f(R.constant(np.float32(1.0)))
        assert len(obs.TRACER) == 0
        assert obs.get_counters().get("eager.dispatch") == 0


class TestDemo:
    def test_demo_roundtrips_through_json(self, tmp_path):
        from repro.observability import demo
        out = tmp_path / "trace.json"
        path = demo.run(steps=8, out=str(out), level=2)
        payload = json.load(open(path))
        events = payload["traceEvents"]
        cats = {e.get("cat") for e in events}
        assert {"graphgen", "op", "assumption_fail", "fallback"} <= cats
        assert any(c and c.startswith("cache") for c in cats)

# Convenience targets for the JANUS reproduction.
#
#   make test        - the tier-1 test suite
#   make trace-demo  - run a traced training loop, write trace.json,
#                      print the text summary (docs/observability.md)
#   make bench       - regenerate the paper-evaluation tables/figures
#   make bench-check - rerun Table 3 and fail on >10% JANUS throughput
#                      regression vs benchmarks/results/baseline_table3.json
#                      (on noisy hosts, run the bench several times and
#                      pass the labelled snapshots to check_regression.py
#                      --current a.json b.json c.json to gate on medians)

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test trace-demo bench bench-check

test:
	$(PYTHON) -m pytest -x -q

trace-demo:
	JANUS_TRACE=2 $(PYTHON) -m repro.observability.demo --out trace.json

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-check:
	$(PYTHON) -m pytest benchmarks/bench_table3_throughput.py \
		--benchmark-only -q
	$(PYTHON) benchmarks/check_regression.py

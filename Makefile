# Convenience targets for the JANUS reproduction.
#
#   make test        - the tier-1 test suite
#   make trace-demo  - run a traced training loop, write trace.json,
#                      print the text summary (docs/observability.md)
#   make stats-demo  - run the demo with metrics/health on, save a
#                      janus-stats bundle, and smoke-check the report
#   make stats-serve - live-endpoint smoke: start the httpstat server
#                      on an ephemeral port, drive a small serving
#                      workload, scrape /metrics + /health + /requests
#                      over HTTP, assert all three are populated
#   make test-concurrency - the threaded dispatch + serving suites
#                      (hash seed pinned so generated programs and any
#                      dict-order-sensitive interleavings reproduce)
#   make test-coexec - the three-way co-execution differential suite
#                      (co-executed vs whole-function imperative vs
#                      full-graph; docs/coexecution.md)
#   make bench       - regenerate the paper-evaluation tables/figures
#   make bench-check - run Table 3 three times and fail on >10% median
#                      regression vs benchmarks/results/baseline_table3.json
#                      (absolute JANUS throughput, then the host-drift-
#                      immune JANUS/imperative ratio, then the
#                      JANUS-vs-symbolic parity gate on the lagging
#                      models), then gate level-0 observability overhead
#                      (<2% of the quickstart step) and the lowering
#                      dispatch micro-benchmark (flat+fused >= node-walk)
#                      and the serving-throughput gate (4 clients >=
#                      1.5x one client on multi-core hosts; skipped
#                      with a logged reason on 1-core hosts) and the
#                      warm-start gate (disk-cache warm start >= 5x
#                      faster to first graph hit than a cold compile)
#   make test-persistence - the persistent compile-cache suite (warm
#                      start bit-for-bit, corruption tolerance,
#                      multi-process sharing), run once with the cache
#                      enabled per-test and once with JANUS_CACHE_DIR
#                      explicitly unset to prove the default path is
#                      unchanged
#   make ci          - tier-1 tests (lowering on, then JANUS_LOWERING=0,
#                      then JANUS_COEXEC=0) + the concurrency suites
#                      + the persistence suite + the gated benchmark
#                      (what CI runs)

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

#: Number of Table-3 reruns the gate medians over.  Host noise on shared
#: machines swings single runs by +/-15-20%, so one run trips the 10%
#: threshold spuriously; three runs gate each model on its median.
GATE_RUNS ?= 3
GATE_LABELS := $(shell seq 1 $(GATE_RUNS))
GATE_FILES := $(foreach n,$(GATE_LABELS),\
	benchmarks/results/table3_throughput-gate-run$(n).json)

.PHONY: test test-nolowering test-nocoexec test-differential \
	test-concurrency test-coexec test-persistence trace-demo \
	stats-demo stats-serve bench bench-check ci

#: Where the stats-demo smoke step writes its artifacts (kept out of the
#: repo tree so gate runs never leave untracked files behind).
STATS_DEMO_DIR ?= /tmp/janus-stats-demo

test:
	$(PYTHON) -m pytest -x -q

# The same tier-1 suite with graph lowering disabled: the node-walking
# executor is the always-correct fallback for every lowering bailout, so
# it must stay green on its own (docs/lowering.md).
test-nolowering:
	JANUS_LOWERING=0 $(PYTHON) -m pytest -x -q

# The same tier-1 suite with co-execution disabled: every function that
# would run under a partial plan must fall back to the classic
# whole-function imperative verdict and stay green (docs/coexecution.md).
test-nocoexec:
	JANUS_COEXEC=0 $(PYTHON) -m pytest -x -q

# The randomized write-barrier differential suite (>= 200 generated
# programs across the barrier x regeneration matrix).  Part of the
# tier-1 run too; this target re-runs it standalone with verbose
# failure context, as CI does.
test-differential:
	$(PYTHON) -m pytest tests/test_write_barrier_differential.py -q

# The concurrency-safe dispatch + multi-tenant serving suites: threaded
# differential runs against the imperative oracle, cold-start stampede
# and assumption-failure storm single-flight guarantees, admission and
# batching behaviour.  PYTHONHASHSEED is pinned so the generated
# programs and any hash-order-dependent interleavings reproduce
# run-to-run (docs/serving.md).
test-concurrency:
	PYTHONHASHSEED=0 $(PYTHON) -m pytest tests/test_concurrency.py \
		tests/test_serving.py -q

# The randomized three-way co-execution differential suite: >= 40
# seeded programs with unsupported constructs injected, each run
# co-executed, whole-function imperative, and full-graph against the
# imperative oracle (docs/coexecution.md).  Hash seed pinned for
# reproducible program generation, as in test-concurrency.
test-coexec:
	PYTHONHASHSEED=0 $(PYTHON) -m pytest \
		tests/test_coexec_differential.py -q

# The persistent compile-cache suite.  Run twice: the suite itself
# (each test opts into a private cache dir), then the default-path
# smoke with JANUS_CACHE_DIR forced unset — persistence must be
# invisible unless configured (docs/compilation.md).
test-persistence:
	$(PYTHON) -m pytest tests/test_persistence.py -q
	env -u JANUS_CACHE_DIR $(PYTHON) -m pytest \
		tests/test_persistence.py -q \
		-k "default_config_never_touches_disk"

trace-demo:
	JANUS_TRACE=2 $(PYTHON) -m repro.observability.demo --out trace.json

# Speculation-health smoke: the demo must produce a health table and
# non-zero histogram counts in its summary, and the saved stats bundle
# must satisfy `janus-stats --check` (wired into CI).
stats-demo:
	mkdir -p $(STATS_DEMO_DIR)
	JANUS_TRACE=2 JANUS_METRICS=1 $(PYTHON) -m repro.observability.demo \
		--out $(STATS_DEMO_DIR)/trace.json \
		--stats-out $(STATS_DEMO_DIR)/stats.json \
		> $(STATS_DEMO_DIR)/summary.txt
	cat $(STATS_DEMO_DIR)/summary.txt
	grep -q -- "-- speculation health --" $(STATS_DEMO_DIR)/summary.txt
	grep -q -- "-- latency histograms --" $(STATS_DEMO_DIR)/summary.txt
	$(PYTHON) -m repro.observability.stats \
		--input $(STATS_DEMO_DIR)/stats.json --check > /dev/null

# Live scrape-endpoint smoke: ephemeral port, in-process demo serving
# workload, real HTTP scrapes of /metrics, /health, and /requests.
# Exits non-zero if any endpoint serves an empty or malformed payload.
stats-serve:
	$(PYTHON) -m repro.observability.httpstat --port 0 --smoke

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-check:
	for n in $(GATE_LABELS); do \
		BENCH_LABEL=gate-run$$n $(PYTHON) -m pytest \
			benchmarks/bench_table3_throughput.py \
			--benchmark-only -q || exit $$?; \
	done
	$(PYTHON) benchmarks/check_regression.py --current $(GATE_FILES)
	$(PYTHON) benchmarks/check_regression.py --relative \
		--current $(GATE_FILES)
	$(PYTHON) benchmarks/check_regression.py --symbolic-parity \
		--current $(GATE_FILES)
	$(PYTHON) benchmarks/bench_observability_overhead.py --check
	$(PYTHON) benchmarks/bench_lowering.py --check
	$(PYTHON) benchmarks/bench_serving.py --check
	$(PYTHON) benchmarks/bench_warm_start.py --check

ci: test test-nolowering test-nocoexec test-concurrency \
	test-persistence stats-serve bench-check

# Convenience targets for the JANUS reproduction.
#
#   make test        - the tier-1 test suite
#   make trace-demo  - run a traced training loop, write trace.json,
#                      print the text summary (docs/observability.md)
#   make bench       - regenerate the paper-evaluation tables/figures

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test trace-demo bench

test:
	$(PYTHON) -m pytest -x -q

trace-demo:
	JANUS_TRACE=2 $(PYTHON) -m repro.observability.demo --out trace.json

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

"""The 11 evaluation models of paper Table 2, scaled for CPU.

| Category | Model        | Module        | DCF | DT | IF |
|----------|--------------|---------------|-----|----|----|
| CNN      | LeNet        | ``lenet``     |  -  | x  | -  |
| CNN      | ResNet       | ``resnet``    |  x  | x  | -  |
| CNN      | Inception    | ``inception`` |  x  | x  | -  |
| RNN      | LSTM (PTB)   | ``lstm_ptb``  |  x  | x  | x  |
| RNN      | LM (1B)      | ``lm1b``      |  x  | x  | x  |
| TreeNN   | TreeRNN      | ``treernn``   |  x  | x  | x  |
| TreeNN   | TreeLSTM     | ``treelstm``  |  x  | x  | x  |
| DRL      | A3C          | ``a3c``       |  x  | x  | x  |
| DRL      | PPO          | ``ppo``       |  -  | x  | x  |
| GAN      | AN           | ``gan_an``    |  -  | x  | x  |
| GAN      | pix2pix      | ``pix2pix``   |  -  | x  | x  |
"""

from . import (lenet, resnet, inception, lstm_ptb, lm1b, treernn,
               treelstm, a3c, ppo, gan_an, pix2pix)

__all__ = ["lenet", "resnet", "inception", "lstm_ptb", "lm1b", "treernn",
           "treelstm", "a3c", "ppo", "gan_an", "pix2pix"]

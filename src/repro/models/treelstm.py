"""Binary TreeLSTM sentiment model (Table 2, TreeNN row 2).

The child-sum/binary TreeLSTM of Tai et al.: leaves embed their word and
run an input-only LSTM gate set; internal nodes combine the two child
(h, c) pairs with per-child forget gates.  Like TreeRNN, it needs
recursion, conditional base cases, dynamic return types, and heap access
— and it is the model the paper reports the biggest single-machine gain
for after TreeRNN (18.4x, Table 3), plus a hard failure for trace-based
conversion (figure 6c).
"""

from .. import nn
from ..ops import api


class TreeLSTM(nn.Module):
    def __init__(self, vocab_size=60, hidden_dim=32, num_classes=2,
                 seed=None):
        super().__init__("TreeLSTM")
        if seed is not None:
            nn.init.seed(seed)
        h = hidden_dim
        self.embedding = nn.Embedding(vocab_size, h)
        # Leaf transform: input -> i, o, u gates (no children).
        self.leaf_gates = nn.Dense(h, 3 * h)
        # Internal transform: [h_l, h_r] -> i, o, u, f_l, f_r gates.
        self.node_gates = nn.Dense(2 * h, 5 * h)
        self.classify = nn.Dense(h, num_classes)
        self.hidden_dim = h

    def encode(self, node):
        """Return the (h, c) pair of a subtree, each (1, hidden)."""
        if node.is_leaf:
            word = api.cast(api.constant(node.word), "int64")
            x = api.expand_dims(self.embedding(word), 0)
            gates = self.leaf_gates(x)
            i, o, u = api.split(gates, 3, axis=1)
            c = api.mul(api.sigmoid(i), api.tanh(u))
            h = api.mul(api.sigmoid(o), api.tanh(c))
            return [h, c]
        left = self.encode(node.left)
        right = self.encode(node.right)
        h_cat = api.concat([left[0], right[0]], axis=1)
        gates = self.node_gates(h_cat)
        i, o, u, f_l, f_r = api.split(gates, 5, axis=1)
        c = api.add(
            api.mul(api.sigmoid(i), api.tanh(u)),
            api.add(api.mul(api.sigmoid(api.add(f_l, 1.0)), left[1]),
                    api.mul(api.sigmoid(api.add(f_r, 1.0)), right[1])))
        h = api.mul(api.sigmoid(o), api.tanh(c))
        return [h, c]

    def call(self, root):
        h_c = self.encode(root)
        return self.classify(h_c[0])


def make_loss_fn(model):
    def loss_fn(root):
        logits = model(root)
        label = api.reshape(api.cast(api.constant(root.label),
                                     "int64"), (1,))
        return nn.losses.softmax_cross_entropy(logits, label)
    return loss_fn

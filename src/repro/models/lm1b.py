"""Large-vocabulary LSTM language model — the LM workload (Table 2).

Same figure-1 structure as the PTB model but with the proportions of the
one-billion-word setup (bigger vocabulary and batch, wider recurrence,
softmax projection dominating compute), so the coarse-grained-op regime
of Table 3 (2.11x over imperative) is represented alongside the
fine-grained LSTM row.
"""

from .. import nn
from ..ops import api


class BigLanguageModel(nn.Module):
    def __init__(self, vocab_size=800, embed_dim=64, hidden_dim=128,
                 batch_size=64, seed=None):
        super().__init__("BigLanguageModel")
        if seed is not None:
            nn.init.seed(seed)
        self.embedding = nn.Embedding(vocab_size, embed_dim)
        self.cell = nn.LSTMCell(embed_dim, hidden_dim)
        self.proj = nn.Dense(hidden_dim, vocab_size)
        self.batch_size = batch_size
        self.state_h = api.zeros((batch_size, hidden_dim))
        self.state_c = api.zeros((batch_size, hidden_dim))

    def reset_state(self):
        dims = self.state_h.shape.as_tuple()
        self.state_h = api.zeros(dims)
        self.state_c = api.zeros(dims)

    def call(self, inputs, targets):
        h = self.state_h
        c = self.state_c
        total = api.constant(0.0)
        for t in range(len(inputs)):
            x = self.embedding(inputs[t])
            h, c = self.cell((h, c), x)
            logits = self.proj(h)
            total = total + nn.losses.softmax_cross_entropy(
                logits, targets[t])
        self.state_h = api.stop_gradient(h)
        self.state_c = api.stop_gradient(c)
        return total / float(len(inputs))


def make_loss_fn(model):
    def loss_fn(inputs, targets):
        return model(inputs, targets)
    return loss_fn

"""ResNet for ImageNet-shaped inputs (paper Table 2, CNN row 2).

Residual blocks with batch normalization.  The batch-norm layers branch
on the module's ``training`` flag — the dynamic control flow that makes
trace-based converters silently wrong when a user evaluates the model
before training (paper section 6.2, figure 6a).  The depth is
configurable; ``resnet50_like`` wires the [3, 4, 6, 3] bottleneck layout
of ResNet50 and ``resnet_tiny`` is the CPU-scaled default used by the
benchmarks (coarse conv kernels either way).
"""

from .. import nn
from ..ops import api


class ResidualBlock(nn.Module):
    """Two 3x3 convolutions with identity (or projected) shortcut."""

    def __init__(self, in_channels, out_channels, strides=1):
        super().__init__("ResidualBlock")
        self.conv1 = nn.Conv2D(in_channels, out_channels, 3,
                               strides=strides, use_bias=False)
        self.bn1 = nn.BatchNorm(out_channels, axes=(0, 1, 2))
        self.conv2 = nn.Conv2D(out_channels, out_channels, 3,
                               use_bias=False)
        self.bn2 = nn.BatchNorm(out_channels, axes=(0, 1, 2))
        if strides != 1 or in_channels != out_channels:
            self.shortcut = nn.Conv2D(in_channels, out_channels, 1,
                                      strides=strides, use_bias=False)
        else:
            self.shortcut = None

    def call(self, x):
        y = api.relu(self.bn1(self.conv1(x)))
        y = self.bn2(self.conv2(y))
        if self.shortcut is not None:
            x = self.shortcut(x)
        return api.relu(api.add(x, y))


class ResNet(nn.Module):
    """A configurable-residual-depth network over NHWC images."""

    def __init__(self, block_channels, blocks_per_stage, num_classes=100,
                 in_channels=3, stem_channels=None, seed=None):
        super().__init__("ResNet")
        if seed is not None:
            nn.init.seed(seed)
        stem_channels = stem_channels or block_channels[0]
        self.stem = nn.Conv2D(in_channels, stem_channels, 3,
                              use_bias=False)
        self.stem_bn = nn.BatchNorm(stem_channels, axes=(0, 1, 2))
        self.stages = []
        channels = stem_channels
        for stage, (width, count) in enumerate(
                zip(block_channels, blocks_per_stage)):
            blocks = []
            for b in range(count):
                strides = 2 if (b == 0 and stage > 0) else 1
                blocks.append(ResidualBlock(channels, width, strides))
                channels = width
            self.stages.append(blocks)
        self.head = nn.Dense(channels, num_classes)
        self.training = True

    def call(self, images):
        x = api.relu(self.stem_bn(self.stem(images)))
        for blocks in self.stages:
            for block in blocks:
                x = block(x)
        x = api.reduce_mean(x, axis=(1, 2))
        return self.head(x)


def resnet_tiny(num_classes=100, seed=None):
    """CPU-scale ResNet (2 stages x 2 blocks) used by the benchmarks."""
    return ResNet([16, 32], [2, 2], num_classes=num_classes, seed=seed)


def resnet50_like(num_classes=100, seed=None):
    """The ResNet50 stage layout [3, 4, 6, 3] at reduced width."""
    return ResNet([16, 32, 64, 128], [3, 4, 6, 3],
                  num_classes=num_classes, seed=seed)


def make_loss_fn(model):
    def loss_fn(images, labels):
        logits = model(images)
        return nn.losses.softmax_cross_entropy(logits, labels)
    return loss_fn

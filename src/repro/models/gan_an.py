"""Adversarial nets (AN) — the original MLP GAN on MNIST-shaped data
(paper Table 2, GAN row 1).

Two training functions share the generator: the discriminator step and
the generator step.  Both log running losses onto the model object —
the global-state mutation the paper lists for GANs (IF in Table 2).
"""

import numpy as np

from .. import nn
from ..ops import api


class Generator(nn.Module):
    def __init__(self, latent_dim=16, image_size=28, hidden=64, seed=None):
        super().__init__("Generator")
        if seed is not None:
            nn.init.seed(seed)
        self.latent_dim = latent_dim
        self.image_size = image_size
        out = image_size * image_size
        self.fc1 = nn.Dense(latent_dim, hidden, activation=api.relu)
        self.fc2 = nn.Dense(hidden, hidden, activation=api.relu)
        self.fc3 = nn.Dense(hidden, out, activation=api.tanh)

    def call(self, z):
        x = self.fc3(self.fc2(self.fc1(z)))
        return api.reshape(x, (-1, self.image_size, self.image_size, 1))


class Discriminator(nn.Module):
    def __init__(self, image_size=28, hidden=64, seed=None):
        super().__init__("Discriminator")
        if seed is not None:
            nn.init.seed(seed)
        self.flatten = nn.Flatten()
        self.fc1 = nn.Dense(image_size * image_size, hidden,
                            activation=api.leaky_relu)
        self.fc2 = nn.Dense(hidden, hidden, activation=api.leaky_relu)
        self.fc3 = nn.Dense(hidden, 1)

    def call(self, images):
        return self.fc3(self.fc2(self.fc1(self.flatten(images))))


class AdversarialNets(nn.Module):
    """The GAN pair plus training-telemetry heap state."""

    def __init__(self, latent_dim=16, image_size=28, hidden=64, seed=None):
        super().__init__("AdversarialNets")
        self.generator = Generator(latent_dim, image_size, hidden,
                                   seed=seed)
        self.discriminator = Discriminator(image_size, hidden)
        self.latent_dim = latent_dim
        self.d_loss_avg = api.constant(0.0)
        self.g_loss_avg = api.constant(0.0)

    def discriminator_loss(self, real_images, z):
        fake = api.stop_gradient(self.generator(z))
        real_logits = self.discriminator(real_images)
        fake_logits = self.discriminator(fake)
        loss = api.add(
            nn.losses.sigmoid_cross_entropy(real_logits,
                                            api.ones_like(real_logits)),
            nn.losses.sigmoid_cross_entropy(fake_logits,
                                            api.zeros_like(fake_logits)))
        if api.executing_eagerly():
            self.d_loss_avg = api.mul(self.d_loss_avg, 0.9) + \
                api.mul(api.stop_gradient(loss), 0.1)
        return loss

    def generator_loss(self, z):
        fake = self.generator(z)
        fake_logits = self.discriminator(fake)
        loss = nn.losses.sigmoid_cross_entropy(
            fake_logits, api.ones_like(fake_logits))
        if api.executing_eagerly():
            self.g_loss_avg = api.mul(self.g_loss_avg, 0.9) + \
                api.mul(api.stop_gradient(loss), 0.1)
        return loss


def make_d_loss_fn(gan):
    def d_loss(real_images, z):
        return gan.discriminator_loss(real_images, z)
    return d_loss


def make_g_loss_fn(gan):
    def g_loss(z):
        return gan.generator_loss(z)
    return g_loss


def sample_latent(rng, batch_size, latent_dim):
    return rng.normal(0, 1, size=(batch_size, latent_dim)).astype(
        np.float32)

"""LeNet-5 on MNIST-shaped inputs (paper Table 2, CNN row 1).

Fine-grained ops: per the paper, the biggest single-machine JANUS gains
among CNNs come from models like this whose kernels are small enough that
interpreter overhead dominates (3.25x in Table 3).
"""

from .. import nn
from ..ops import api


class LeNet(nn.Module):
    def __init__(self, num_classes=10, seed=None):
        super().__init__("LeNet")
        if seed is not None:
            nn.init.seed(seed)
        self.conv1 = nn.Conv2D(1, 6, kernel_size=5, padding="SAME",
                               activation=api.relu)
        self.pool1 = nn.MaxPool(2, 2)
        self.conv2 = nn.Conv2D(6, 16, kernel_size=5, padding="VALID",
                               activation=api.relu)
        self.pool2 = nn.MaxPool(2, 2)
        self.flatten = nn.Flatten()
        self.fc1 = nn.Dense(16 * 5 * 5, 120, activation=api.relu)
        self.fc2 = nn.Dense(120, 84, activation=api.relu)
        self.fc3 = nn.Dense(84, num_classes)

    def call(self, images):
        x = self.conv1(images)
        x = self.pool1(x)
        x = self.conv2(x)
        x = self.pool2(x)
        x = self.flatten(x)
        x = self.fc1(x)
        x = self.fc2(x)
        return self.fc3(x)


def make_loss_fn(model):
    """Imperative training loss over an (images, labels) batch."""
    def loss_fn(images, labels):
        logits = model(images)
        return nn.losses.softmax_cross_entropy(logits, labels)
    return loss_fn

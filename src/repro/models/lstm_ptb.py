"""Word-level LSTM language model on PTB-shaped data (Table 2, RNN row 1).

The training step loops over time steps with a native Python ``for`` and
passes the final hidden state to the next batch through object attributes
(``self.state``) — exactly the figure-1 pattern combining dynamic control
flow with impure functions.  A trace-based converter freezes the traced
state, breaking truncated BPTT state passing (the LM failure of figure
6b); JANUS converts the state accesses into PyGetAttr/PySetAttr with
deferred writeback.
"""

import numpy as np

from .. import nn
from ..ops import api


class LSTMLanguageModel(nn.Module):
    def __init__(self, vocab_size=200, embed_dim=32, hidden_dim=64,
                 batch_size=20, seed=None):
        super().__init__("LSTMLanguageModel")
        if seed is not None:
            nn.init.seed(seed)
        self.embedding = nn.Embedding(vocab_size, embed_dim)
        self.cell = nn.LSTMCell(embed_dim, hidden_dim)
        self.proj = nn.Dense(hidden_dim, vocab_size)
        self.batch_size = batch_size
        self.state_h = api.zeros((batch_size, hidden_dim))
        self.state_c = api.zeros((batch_size, hidden_dim))

    def reset_state(self):
        dims = self.state_h.shape.as_tuple()
        self.state_h = api.zeros(dims)
        self.state_c = api.zeros(dims)

    def call(self, inputs, targets):
        """Mean cross entropy over a (seq_len, batch) token batch."""
        h = self.state_h
        c = self.state_c
        total = api.constant(0.0)
        steps = 0
        for t in range(len(inputs)):
            x = self.embedding(inputs[t])
            h, c = self.cell((h, c), x)
            logits = self.proj(h)
            total = total + nn.losses.softmax_cross_entropy(
                logits, targets[t])
            steps = steps + 1
        # Truncated BPTT: the next batch continues from this state.
        self.state_h = api.stop_gradient(h)
        self.state_c = api.stop_gradient(c)
        return total / float(len(inputs))


def make_loss_fn(model):
    def loss_fn(inputs, targets):
        return model(inputs, targets)
    return loss_fn


def perplexity(mean_loss):
    return float(np.exp(min(mean_loss, 30.0)))

"""TreeRNN sentiment model (Table 2, TreeNN row 1).

A recursive function walks the binary parse tree: leaves embed their
word, internal nodes compose the children's vectors through a shared
cell.  This exercises all three dynamic features at once — recursion +
base-case branching (DCF), the recursion's undecided return type (DT),
and Python-object attribute access on tree nodes (IF).  JANUS converts
the recursion into InvokeOp-based graphs (paper section 4.2.1, ref [20]);
tracing-based converters cannot convert it at all (figure 6c discussion).
"""

from .. import nn
from ..ops import api


class TreeRNN(nn.Module):
    def __init__(self, vocab_size=60, hidden_dim=32, num_classes=2,
                 seed=None):
        super().__init__("TreeRNN")
        if seed is not None:
            nn.init.seed(seed)
        self.embedding = nn.Embedding(vocab_size, hidden_dim)
        self.compose = nn.Dense(2 * hidden_dim, hidden_dim,
                                activation=api.tanh)
        self.classify = nn.Dense(hidden_dim, num_classes)
        self.hidden_dim = hidden_dim

    def encode(self, node):
        """Recursively encode a subtree into a (1, hidden) vector."""
        if node.is_leaf:
            word = api.cast(api.constant(node.word), "int64")
            return api.expand_dims(self.embedding(word), 0)
        left = self.encode(node.left)
        right = self.encode(node.right)
        return self.compose(api.concat([left, right], axis=1))

    def call(self, root):
        return self.classify(self.encode(root))


def make_loss_fn(model):
    def loss_fn(root):
        logits = model(root)
        label = api.reshape(api.cast(api.constant(root.label),
                                     "int64"), (1,))
        return nn.losses.softmax_cross_entropy(logits, label)
    return loss_fn


def tree_accuracy(model, trees):
    """Root-label accuracy over a tree list (evaluation metric)."""
    import numpy as np
    hits = 0
    for tree in trees:
        logits = model(tree)
        pred = int(np.argmax(logits.numpy()))
        hits += int(pred == tree.label)
    return hits / max(1, len(trees))

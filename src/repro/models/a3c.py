"""A3C actor-critic on CartPole (Table 2, DRL row 1).

The advantage actor-critic loss loops over an episode of *arbitrary
length* with a Python ``for`` (DCF) and logs running statistics onto the
agent object (IF — "global state mutation statements ... to monitor the
progress of the training", paper section 6.1).  Episode collection
itself runs outside the training function, through the environment
(paper footnote 7).
"""

import numpy as np

from .. import nn
from ..envs import CartPole
from ..ops import api


class ActorCritic(nn.Module):
    def __init__(self, obs_size=4, num_actions=2, hidden=32, seed=None):
        super().__init__("ActorCritic")
        if seed is not None:
            nn.init.seed(seed)
        self.body = nn.Dense(obs_size, hidden, activation=api.tanh)
        self.policy_head = nn.Dense(hidden, num_actions)
        self.value_head = nn.Dense(hidden, 1)
        self.steps_trained = 0.0
        self.running_loss = api.constant(0.0)

    def call(self, states, actions, returns):
        """A3C loss over one episode (stacked state/action/return arrays).

        Loops step-by-step in Python, as the imperative A3C of the paper
        does, rather than batching — this is what JANUS converts into a
        dynamic loop (episode lengths vary batch to batch).
        """
        total = api.constant(0.0)
        n = len(actions)
        for t in range(len(actions)):
            hidden = self.body(api.reshape(states[t], (1, -1)))
            logits = self.policy_head(hidden)
            value = api.reshape(self.value_head(hidden), ())
            advantage = returns[t] - value
            logp = api.log_softmax(logits)
            action_logp = api.reshape(
                api.gather(api.reshape(logp, (-1,)),
                           api.cast(actions[t], "int64")), ())
            policy_loss = api.neg(api.mul(
                action_logp, api.stop_gradient(advantage)))
            value_loss = api.mul(api.square(advantage), 0.5)
            entropy = api.neg(api.reduce_sum(
                api.mul(api.softmax(logits), logp)))
            total = total + policy_loss + value_loss - 0.01 * entropy
        loss = total / api.cast(n, "float32")
        if api.executing_eagerly():
            # Global-state mutation: progress bookkeeping on the heap.
            self.running_loss = api.mul(self.running_loss, 0.9) + \
                api.mul(api.stop_gradient(loss), 0.1)
            self.steps_trained = self.steps_trained + 1.0
        return loss


def collect_episode(model, env, rng, greedy=False):
    """Roll out one episode; returns stacked (states, actions, returns)."""
    states, actions, rewards = [], [], []
    obs = env.reset()
    done = False
    while not done:
        hidden = model.body(api.reshape(api.constant(obs), (1, -1)))
        logits = model.policy_head(hidden).numpy().reshape(-1)
        probs = np.exp(logits - logits.max())
        probs /= probs.sum()
        if greedy:
            action = int(np.argmax(probs))
        else:
            action = int(rng.choice(len(probs), p=probs))
        states.append(obs)
        actions.append(action)
        obs, reward, done, _ = env.step(action)
        rewards.append(reward)
    returns = np.zeros(len(rewards), np.float32)
    acc = 0.0
    for t in reversed(range(len(rewards))):
        acc = rewards[t] + 0.99 * acc
        returns[t] = acc
    return (np.asarray(states, np.float32),
            np.asarray(actions, np.int64), returns)


def make_loss_fn(model):
    def loss_fn(states, actions, returns):
        return model(states, actions, returns)
    return loss_fn

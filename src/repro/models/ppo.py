"""PPO with a clipped surrogate objective on Pong-lite (Table 2, DRL 2).

PPO trains on batched trajectories with coarse-grained ops (the paper
reports a 2.18x gain — smaller than A3C's because each op is larger).
The loss is batched rather than per-step, but still mutates agent-side
bookkeeping state (IF per Table 2: DCF is absent for PPO, matching the
table's feature row).
"""

import numpy as np

from .. import nn
from ..ops import api


class PPOAgent(nn.Module):
    def __init__(self, obs_shape=(16, 16, 1), num_actions=3, hidden=64,
                 clip=0.2, seed=None):
        super().__init__("PPOAgent")
        if seed is not None:
            nn.init.seed(seed)
        flat = int(np.prod(obs_shape))
        self.obs_shape = obs_shape
        self.obs_size = flat
        self.body = nn.Dense(flat, hidden, activation=api.tanh)
        self.policy_head = nn.Dense(hidden, num_actions)
        self.value_head = nn.Dense(hidden, 1)
        self.clip = clip
        self.updates_done = 0.0
        self.mean_ratio = api.constant(1.0)

    def policy_logits(self, states):
        flat = api.reshape(states, (-1, self.obs_size))
        hidden = self.body(flat)
        return self.policy_head(hidden), \
            api.reshape(self.value_head(hidden), (-1,))

    def call(self, states, actions, old_logp, returns, advantages):
        logits, values = self.policy_logits(states)
        logp_all = api.log_softmax(logits)
        onehot = api.one_hot(actions, logits.shape[1])
        logp = api.reduce_sum(api.mul(logp_all, onehot), axis=1)
        ratio = api.exp(api.sub(logp, old_logp))
        clipped = api.clip(ratio, 1.0 - self.clip, 1.0 + self.clip)
        surrogate = api.minimum(api.mul(ratio, advantages),
                                api.mul(clipped, advantages))
        policy_loss = api.neg(api.reduce_mean(surrogate))
        value_loss = api.reduce_mean(api.square(api.sub(values, returns)))
        entropy = api.neg(api.reduce_mean(api.reduce_sum(
            api.mul(api.softmax(logits), logp_all), axis=1)))
        loss = policy_loss + 0.5 * value_loss - 0.01 * entropy
        if api.executing_eagerly():
            # Heap-side training telemetry (global state mutation).
            self.mean_ratio = api.stop_gradient(api.reduce_mean(ratio))
            self.updates_done = self.updates_done + 1.0
        return loss


def collect_rollout(agent, env, rng, horizon=128, gamma=0.99, lam=0.95):
    """Collect a fixed-horizon rollout with GAE advantages."""
    states, actions, logps, rewards, values, dones = [], [], [], [], [], []
    obs = env.reset()
    for _ in range(horizon):
        logits, value = agent.policy_logits(
            api.expand_dims(api.constant(obs), 0))
        probs = api.softmax(logits).numpy().reshape(-1)
        action = int(rng.choice(len(probs), p=probs))
        logp = float(np.log(probs[action] + 1e-8))
        states.append(obs)
        actions.append(action)
        logps.append(logp)
        values.append(float(value.numpy()[0]))
        obs, reward, done, _ = env.step(action)
        rewards.append(reward)
        dones.append(done)
        if done:
            obs = env.reset()
    advantages = np.zeros(horizon, np.float32)
    last_adv = 0.0
    next_value = 0.0
    for t in reversed(range(horizon)):
        mask = 0.0 if dones[t] else 1.0
        delta = rewards[t] + gamma * next_value * mask - values[t]
        last_adv = delta + gamma * lam * mask * last_adv
        advantages[t] = last_adv
        next_value = values[t]
    returns = advantages + np.asarray(values, np.float32)
    adv = (advantages - advantages.mean()) / (advantages.std() + 1e-8)
    return (np.asarray(states, np.float32),
            np.asarray(actions, np.int64),
            np.asarray(logps, np.float32),
            returns.astype(np.float32),
            adv.astype(np.float32),
            float(np.sum(rewards)))


def make_loss_fn(agent):
    def loss_fn(states, actions, old_logp, returns, advantages):
        return agent(states, actions, old_logp, returns, advantages)
    return loss_fn

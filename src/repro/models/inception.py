"""Inception-style CNN (paper Table 2, CNN row 3).

Parallel mixed branches (1x1 / 3x3 / 5x5 / pooled) concatenated along
channels, with batch normalization supplying the train/eval dynamic
branch.  The branch structure gives the +PARL stage of figure 7 real
inter-op parallelism to exploit in a CNN.
"""

from .. import nn
from ..ops import api


class InceptionBlock(nn.Module):
    """A mixed block: four parallel paths concatenated on channels."""

    def __init__(self, in_channels, c1, c3_reduce, c3, c5_reduce, c5,
                 pool_proj):
        super().__init__("InceptionBlock")
        self.b1 = nn.Conv2D(in_channels, c1, 1, activation=api.relu)
        self.b3_reduce = nn.Conv2D(in_channels, c3_reduce, 1,
                                   activation=api.relu)
        self.b3 = nn.Conv2D(c3_reduce, c3, 3, activation=api.relu)
        self.b5_reduce = nn.Conv2D(in_channels, c5_reduce, 1,
                                   activation=api.relu)
        self.b5 = nn.Conv2D(c5_reduce, c5, 5, activation=api.relu)
        self.pool = nn.MaxPool(3, 1, "SAME")
        self.pool_proj = nn.Conv2D(in_channels, pool_proj, 1,
                                   activation=api.relu)
        self.out_channels = c1 + c3 + c5 + pool_proj

    def call(self, x):
        p1 = self.b1(x)
        p3 = self.b3(self.b3_reduce(x))
        p5 = self.b5(self.b5_reduce(x))
        pp = self.pool_proj(self.pool(x))
        return api.concat([p1, p3, p5, pp], axis=3)


class InceptionNet(nn.Module):
    """A small Inception-v3-flavoured classifier."""

    def __init__(self, num_classes=100, in_channels=3, num_blocks=2,
                 seed=None):
        super().__init__("InceptionNet")
        if seed is not None:
            nn.init.seed(seed)
        self.stem = nn.Conv2D(in_channels, 16, 3, strides=2,
                              use_bias=False)
        self.stem_bn = nn.BatchNorm(16, axes=(0, 1, 2))
        self.blocks = []
        channels = 16
        for _ in range(num_blocks):
            block = InceptionBlock(channels, 8, 8, 16, 4, 8, 8)
            self.blocks.append(block)
            channels = block.out_channels
        self.head = nn.Dense(channels, num_classes)
        self.training = True

    def call(self, images):
        x = api.relu(self.stem_bn(self.stem(images)))
        for block in self.blocks:
            x = block(x)
        x = api.reduce_mean(x, axis=(1, 2))
        return self.head(x)


def make_loss_fn(model):
    def loss_fn(images, labels):
        logits = model(images)
        return nn.losses.softmax_cross_entropy(logits, labels)
    return loss_fn

"""pix2pix conditional image translation (paper Table 2, GAN row 2).

A U-Net-flavoured encoder/decoder generator (conv + transposed conv with
a skip connection) and a PatchGAN-style convolutional discriminator,
trained with the conditional adversarial loss plus L1 reconstruction —
the structure of Isola et al. scaled to CPU-size facades stand-ins.
Batch size 1, coarse conv kernels: the paper's 2.15x regime.
"""

import numpy as np

from .. import nn
from ..ops import api


class Pix2PixGenerator(nn.Module):
    def __init__(self, image_size=32, in_channels=1, out_channels=3,
                 base=8, seed=None):
        super().__init__("Pix2PixGenerator")
        if seed is not None:
            nn.init.seed(seed)
        half = image_size // 2
        quarter = image_size // 4
        self.enc1 = nn.Conv2D(in_channels, base, 4, strides=2,
                              activation=api.leaky_relu)
        self.enc2 = nn.Conv2D(base, base * 2, 4, strides=2,
                              activation=api.leaky_relu)
        self.dec1 = nn.Conv2DTranspose(base * 2, base, (half, half), 4,
                                       strides=2, activation=api.relu)
        # Skip connection concatenates enc1's features before decoding.
        self.dec2 = nn.Conv2DTranspose(base * 2, out_channels,
                                       (image_size, image_size), 4,
                                       strides=2, activation=api.tanh)

    def call(self, x):
        e1 = self.enc1(x)
        e2 = self.enc2(e1)
        d1 = self.dec1(e2)
        d1 = api.concat([d1, e1], axis=3)
        return self.dec2(d1)


class PatchDiscriminator(nn.Module):
    """Patch-level real/fake logits over (input, target) pairs."""

    def __init__(self, in_channels=4, base=8, seed=None):
        super().__init__("PatchDiscriminator")
        if seed is not None:
            nn.init.seed(seed)
        self.conv1 = nn.Conv2D(in_channels, base, 4, strides=2,
                               activation=api.leaky_relu)
        self.conv2 = nn.Conv2D(base, base * 2, 4, strides=2,
                               activation=api.leaky_relu)
        self.head = nn.Conv2D(base * 2, 1, 3)

    def call(self, source, target):
        x = api.concat([source, target], axis=3)
        return self.head(self.conv2(self.conv1(x)))


class Pix2Pix(nn.Module):
    def __init__(self, image_size=32, l1_weight=10.0, seed=None):
        super().__init__("Pix2Pix")
        self.generator = Pix2PixGenerator(image_size, seed=seed)
        self.discriminator = PatchDiscriminator()
        self.l1_weight = l1_weight
        self.d_loss_avg = api.constant(0.0)
        self.g_loss_avg = api.constant(0.0)

    def discriminator_loss(self, source, target):
        fake = api.stop_gradient(self.generator(source))
        real_logits = self.discriminator(source, target)
        fake_logits = self.discriminator(source, fake)
        loss = api.add(
            nn.losses.sigmoid_cross_entropy(real_logits,
                                            api.ones_like(real_logits)),
            nn.losses.sigmoid_cross_entropy(fake_logits,
                                            api.zeros_like(fake_logits)))
        if api.executing_eagerly():
            self.d_loss_avg = api.mul(self.d_loss_avg, 0.9) + \
                api.mul(api.stop_gradient(loss), 0.1)
        return loss

    def generator_loss(self, source, target):
        fake = self.generator(source)
        fake_logits = self.discriminator(source, fake)
        adv = nn.losses.sigmoid_cross_entropy(
            fake_logits, api.ones_like(fake_logits))
        l1 = nn.losses.mean_absolute_error(fake, target)
        loss = api.add(adv, api.mul(l1, self.l1_weight))
        if api.executing_eagerly():
            self.g_loss_avg = api.mul(self.g_loss_avg, 0.9) + \
                api.mul(api.stop_gradient(loss), 0.1)
        return loss


def make_d_loss_fn(model):
    def d_loss(source, target):
        return model.discriminator_loss(source, target)
    return d_loss


def make_g_loss_fn(model):
    def g_loss(source, target):
        return model.generator_loss(source, target)
    return g_loss

"""Mutable model state shared between execution modes.

A :class:`Variable` owns a :class:`~repro.tensor.TensorValue` buffer.  The
eager executor reads it into tensors (recording the read on any active
tape) and assigns it in place; the graph executor reads the *same* buffer
through ``var_read`` nodes and defers assignments to the all-or-nothing
writeback phase.  Sharing one buffer between modes reproduces the paper's
modification of TensorFlow Eager's parameter-storing mechanism (section 5).
"""

import threading

from ..tensor import TensorValue

_uid_lock = threading.Lock()
_uid_counter = [0]


def _next_uid():
    with _uid_lock:
        _uid_counter[0] += 1
        return _uid_counter[0]


class Variable:
    """A named, mutable tensor buffer."""

    def __init__(self, initial_value, name=None, trainable=True, dtype=None):
        self.storage = TensorValue.of(initial_value, dtype=dtype)
        self.uid = _next_uid()
        self.name = name or ("variable_%d" % self.uid)
        self.trainable = trainable
        #: Assignment stamp, bumped by every storage replacement (eager
        #: ``_assign_raw`` and the graph executor's commit writeback).
        #: Complements ``TensorValue.version``: assignments *rebind*
        #: ``storage`` — previously read tensors keep the old buffer —
        #: so the mutation stamp lives on the Variable itself.
        self.version = 0

    @property
    def shape(self):
        return self.storage.shape

    @property
    def dtype(self):
        return self.storage.dtype

    def value(self):
        """Read the current value in the active execution mode.

        Eagerly this returns a tape-recorded tensor; under a
        graph-building or tracing context it produces a ``var_read``
        node, so model parameters stay parameterized in every mode.
        """
        from ..ops.dispatch import current_context
        return current_context().convert(self)

    def numpy(self):
        return self.storage.array

    def assign(self, value):
        """Assign in the active execution mode.

        Eagerly this replaces the stored value immediately; under a
        graph-building context it emits a deferred ``var_assign`` node.
        """
        from ..ops.dispatch import current_context
        current_context().assign_variable(self, value)
        return self

    def _assign_raw(self, value):
        """Immediate storage replacement (the eager context's backend)."""
        self.storage = TensorValue.of(_unwrap(value), dtype=self.dtype)
        self.version += 1
        return self

    def assign_add(self, value):
        from ..ops import api
        return self.assign(api.add(api.read(self), value))

    def assign_sub(self, value):
        from ..ops import api
        return self.assign(api.sub(api.read(self), value))

    def __repr__(self):
        return "Variable(%r, shape=%s, dtype=%s)" % (
            self.name, tuple(self.storage.array.shape),
            self.dtype.name)


def _unwrap(value):
    from .eager import Tensor
    if isinstance(value, Tensor):
        return value.value.array
    if isinstance(value, TensorValue):
        return value.array
    return value


def _to_array(value):
    return TensorValue.of(_unwrap(value)).array

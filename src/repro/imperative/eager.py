"""The imperative (eager) executor.

This is the reproduction's stand-in for TensorFlow Eager: every op runs
immediately on numpy buffers, Python control flow just executes, and an
optional :class:`~repro.imperative.tape.GradientTape` records the op stream
for reverse-mode differentiation.  Its per-op Python dispatch overhead is
exactly the cost JANUS amortizes by converting programs to symbolic graphs.
"""

import numpy as np

import time

from ..errors import DTypeError
from ..observability import COUNTERS, METRICS, TRACER
from ..tensor import TensorValue
from ..ops.dispatch import ExecutionContext, set_default_context
from . import tape as tape_module
from .variable import Variable


class Tensor:
    """An eagerly-computed tensor.

    Immutable through the functional op API; the explicit in-place ops
    (``assign_``/``add_``/``sub_``/``mul_``) are the one sanctioned
    mutation path and route through the tensor write barrier
    (:meth:`repro.tensor.TensorValue.inplace_write`), which bumps the
    version stamp — and copies first when the buffer is sealed by a
    guarded memo — so specialized graphs always observe the change.
    """

    __slots__ = ("value",)

    def __init__(self, value):
        if not isinstance(value, TensorValue):
            value = TensorValue.of(value)
        self.value = value

    # -- introspection -----------------------------------------------------

    @property
    def shape(self):
        return self.value.shape

    @property
    def dtype(self):
        return self.value.dtype

    @property
    def ndim(self):
        return self.value.ndim

    def numpy(self):
        return self.value.array

    def item(self):
        return self.value.item()

    def __repr__(self):
        arr = self.value.array
        return "Tensor(%s, shape=%s, dtype=%s)" % (
            np.array2string(arr, threshold=6, precision=4),
            tuple(arr.shape), self.dtype.name)

    # -- python protocol ---------------------------------------------------

    def __bool__(self):
        return bool(self.value.array)

    def __int__(self):
        return int(self.value.array)

    def __float__(self):
        return float(self.value.array)

    def __len__(self):
        if self.value.ndim == 0:
            raise TypeError("len() of a 0-d tensor")
        return self.value.array.shape[0]

    def __iter__(self):
        if self.value.ndim == 0:
            raise TypeError("iteration over a 0-d tensor")
        from ..ops import api
        for i in range(self.value.array.shape[0]):
            yield api.getitem(self, i)

    def __hash__(self):
        return id(self)

    def __getitem__(self, index):
        from ..ops import api
        return api.getitem(self, index)

    # -- sanctioned in-place mutation --------------------------------------

    def _inplace_operand(self, other):
        if isinstance(other, Tensor):
            return other.value.array
        if isinstance(other, TensorValue):
            return other.array
        return np.asarray(other, dtype=self.value.dtype.np_dtype)

    def assign_(self, other):
        """Overwrite this tensor's buffer in place (not tape-recorded)."""
        src = self._inplace_operand(other)
        self.value.inplace_write(lambda dst: np.copyto(dst, src))
        return self

    def add_(self, other):
        src = self._inplace_operand(other)
        self.value.inplace_write(lambda dst: np.add(dst, src, out=dst))
        return self

    def sub_(self, other):
        src = self._inplace_operand(other)
        self.value.inplace_write(
            lambda dst: np.subtract(dst, src, out=dst))
        return self

    def mul_(self, other):
        src = self._inplace_operand(other)
        self.value.inplace_write(
            lambda dst: np.multiply(dst, src, out=dst))
        return self

    # -- operators -----------------------------------------------------------

    def _binop(self, other, fn, reverse=False):
        from ..ops import api
        f = getattr(api, fn)
        return f(other, self) if reverse else f(self, other)

    def __add__(self, o):
        return self._binop(o, "add")

    def __radd__(self, o):
        return self._binop(o, "add", True)

    def __sub__(self, o):
        return self._binop(o, "sub")

    def __rsub__(self, o):
        return self._binop(o, "sub", True)

    def __mul__(self, o):
        return self._binop(o, "mul")

    def __rmul__(self, o):
        return self._binop(o, "mul", True)

    def __truediv__(self, o):
        return self._binop(o, "div")

    def __rtruediv__(self, o):
        return self._binop(o, "div", True)

    def __floordiv__(self, o):
        return self._binop(o, "floordiv")

    def __rfloordiv__(self, o):
        return self._binop(o, "floordiv", True)

    def __mod__(self, o):
        return self._binop(o, "mod")

    def __rmod__(self, o):
        return self._binop(o, "mod", True)

    def __pow__(self, o):
        return self._binop(o, "pow")

    def __rpow__(self, o):
        return self._binop(o, "pow", True)

    def __matmul__(self, o):
        return self._binop(o, "matmul")

    def __rmatmul__(self, o):
        return self._binop(o, "matmul", True)

    def __neg__(self):
        from ..ops import api
        return api.neg(self)

    def __abs__(self):
        from ..ops import api
        return api.abs(self)

    def __eq__(self, o):
        return self._binop(o, "equal")

    def __ne__(self, o):
        return self._binop(o, "not_equal")

    def __lt__(self, o):
        return self._binop(o, "less")

    def __le__(self, o):
        return self._binop(o, "less_equal")

    def __gt__(self, o):
        return self._binop(o, "greater")

    def __ge__(self, o):
        return self._binop(o, "greater_equal")


class EagerContext(ExecutionContext):
    """Executes ops immediately and records them on active tapes."""

    def convert(self, value, dtype=None):
        if isinstance(value, Tensor):
            if dtype is not None and value.dtype is not dtype:
                raise DTypeError("tensor already has dtype %s"
                                 % value.dtype.name)
            return value
        if isinstance(value, Variable):
            return read_variable(value)
        return Tensor(TensorValue.of(value, dtype=dtype))

    def assign_variable(self, variable, value):
        variable._assign_raw(self.convert(value))
        return variable.value()

    def execute(self, op_def, inputs, attrs):
        # One attribute load + truth test per gate when tracing and
        # metrics are off: the eager dispatch path stays as hot as
        # before.
        if TRACER.level:
            COUNTERS.inc("eager.dispatch")
            COUNTERS.inc("eager.dispatch." + op_def.name)
        dispatch_start = time.perf_counter() if METRICS.enabled else 0.0
        arrays = [t.value.array for t in inputs]
        result = op_def.kernel(attrs, *arrays)
        if isinstance(result, tuple):
            outputs = tuple(Tensor(TensorValue.of(np.asarray(r)))
                            for r in result)
            out_list = list(outputs)
        else:
            outputs = Tensor(TensorValue.of(np.asarray(result)))
            out_list = [outputs]
        if op_def.differentiable:
            tape_module.record_operation(op_def, attrs, inputs, out_list)
        if dispatch_start:
            METRICS.observe("eager.dispatch",
                            time.perf_counter() - dispatch_start)
        return outputs


_EAGER_CONTEXT = EagerContext()
set_default_context(_EAGER_CONTEXT)


def eager_context():
    """The process-wide eager context instance."""
    return _EAGER_CONTEXT


def read_variable(variable):
    """Read a Variable into a Tensor, notifying active tapes."""
    tensor = Tensor(variable.storage)
    tape_module.record_variable_read(variable, tensor)
    return tensor


def constant(value, dtype=None):
    """Create an eager tensor from a Python value."""
    return _EAGER_CONTEXT.convert(value, dtype=dtype)

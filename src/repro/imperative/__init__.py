"""Imperative executor: eager tensors, gradient tape, variables."""

from .eager import Tensor, EagerContext, eager_context, constant
from .tape import GradientTape
from .variable import Variable

__all__ = ["Tensor", "EagerContext", "eager_context", "constant",
           "GradientTape", "Variable"]

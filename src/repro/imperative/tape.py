"""Reverse-mode autodiff for the imperative executor.

``GradientTape`` records every differentiable op executed while it is
active and replays the stream in reverse to compute gradients, using the
mode-polymorphic gradient registry — the same definitions that build
symbolic gradient subgraphs in graph mode.
"""

import threading

from ..errors import ReproError
from ..ops import api
from ..ops.registry import GradContext
from .variable import Variable

_state = threading.local()


def _tapes():
    if not hasattr(_state, "stack"):
        _state.stack = []
    return _state.stack


def record_operation(op_def, attrs, inputs, outputs):
    for tape in _tapes():
        if tape._recording:
            tape._record(op_def, attrs, inputs, outputs)


def record_variable_read(variable, tensor):
    for tape in _tapes():
        if tape._recording:
            tape._record_read(variable, tensor)


class _TapeEntry:
    __slots__ = ("op_def", "attrs", "inputs", "outputs")

    def __init__(self, op_def, attrs, inputs, outputs):
        self.op_def = op_def
        self.attrs = attrs
        self.inputs = inputs
        self.outputs = outputs


class GradientTape:
    """Context manager recording ops for reverse-mode differentiation.

    Variables are watched automatically when ``watch_accessed_variables``
    is true (the default, matching TF Eager).
    """

    def __init__(self, watch_accessed_variables=True):
        self._entries = []
        self._var_reads = []     # (variable, tensor) pairs
        self._watched = set()    # ids of explicitly watched tensors
        self._watch_vars = watch_accessed_variables
        self._recording = False

    def __enter__(self):
        _tapes().append(self)
        self._recording = True
        return self

    def __exit__(self, exc_type, exc, tb):
        self._recording = False
        stack = _tapes()
        if self in stack:
            stack.remove(self)
        return False

    def watch(self, tensor):
        """Explicitly track a tensor as a differentiation source."""
        self._watched.add(id(tensor))

    def _record(self, op_def, attrs, inputs, outputs):
        self._entries.append(_TapeEntry(op_def, attrs, inputs, outputs))

    def _record_read(self, variable, tensor):
        if self._watch_vars and variable.trainable:
            self._var_reads.append((variable, tensor))
        elif id(variable) in self._watched:
            self._var_reads.append((variable, tensor))

    def gradient(self, target, sources):
        """Gradients of ``target`` w.r.t. each source (Variable or Tensor).

        Returns a list aligned with ``sources``; entries are None when the
        target does not depend on that source.
        """
        single = not isinstance(sources, (list, tuple))
        source_list = [sources] if single else list(sources)

        was_recording = self._recording
        self._recording = False
        try:
            grads = self._compute_gradients(target, source_list)
        finally:
            self._recording = was_recording
        return grads[0] if single else grads

    def _compute_gradients(self, target, sources):
        # Accumulated gradient per tensor id.
        grad_by_id = {id(target): api.ones_like(target)}
        # Keep produced tensors alive so ids stay unique.
        keepalive = [target]

        for entry in reversed(self._entries):
            out_grads = [grad_by_id.get(id(t)) for t in entry.outputs]
            if all(g is None for g in out_grads):
                continue
            filled = [g if g is not None else api.zeros_like(t)
                      for g, t in zip(out_grads, entry.outputs)]
            ctx = GradContext(entry.op_def.name, entry.attrs,
                              entry.inputs, entry.outputs)
            grad_fn = entry.op_def.grad_fn
            if grad_fn is None:
                continue
            in_grads = grad_fn(ctx, filled)
            if len(in_grads) != len(entry.inputs):
                raise ReproError("gradient of %s returned %d grads for %d "
                                 "inputs" % (entry.op_def.name,
                                             len(in_grads),
                                             len(entry.inputs)))
            for tensor, grad in zip(entry.inputs, in_grads):
                if grad is None:
                    continue
                existing = grad_by_id.get(id(tensor))
                total = grad if existing is None else api.add(existing, grad)
                grad_by_id[id(tensor)] = total
                keepalive.append(tensor)

        var_grads = {}
        for variable, tensor in self._var_reads:
            g = grad_by_id.get(id(tensor))
            if g is None:
                continue
            prior = var_grads.get(id(variable))
            var_grads[id(variable)] = g if prior is None else \
                api.add(prior, g)

        results = []
        for source in sources:
            if isinstance(source, Variable):
                results.append(var_grads.get(id(source)))
            else:
                results.append(grad_by_id.get(id(source)))
        return results

"""Multi-tenant serving for ``@janus.function`` endpoints.

A :class:`Server` exposes registered janus functions to N concurrent
client threads.  Each endpoint owns a bounded request queue and a
dispatcher thread; arriving calls are admission-checked, queued, and
dispatched either singly or as a **dynamically batched** group —
shape-compatible requests (same per-argument dtype and trailing shape)
are stacked along axis 0, executed as one graph run, and the outputs
are split back per request.  The batch window is bounded by
``ServingConfig.max_batch_size`` and the ``batch_linger_s`` wait.

Correctness contract for batching: a batchable endpoint must be
*batch-polymorphic* — ``f(stack([a, b]))`` must equal
``stack([f(a), f(b)])`` row-for-row, which holds for the standard
per-example model functions the paper serves (inference and per-example
losses).  The server additionally verifies the stacked output's leading
dimension; if the endpoint returns anything that does not split back
into per-request rows, the batch is transparently re-executed
request-by-request, so a non-conforming endpoint is slower, never
wrong.  Endpoints registered with ``batchable=False`` (reductions,
scalar outputs, optimizer steps that must see single examples) always
dispatch singly.

The runtime below the server is the concurrency-safe dispatch layer of
:mod:`repro.janus.api`: warm requests execute the shared compiled
artifact in parallel, an assumption-failure storm elects one recompile
ticket, and with ``JanusConfig.recompile_workers > 0`` regeneration
happens on background workers while queued requests are served by the
imperative fallback.  Admission, queue-depth, batch-size, and
queue-wait metrics land in :data:`repro.observability.SERVING` and
surface through ``janus-stats`` (text and Prometheus).
"""

import threading
import time

import numpy as np

from ..imperative.eager import Tensor
from ..observability import SERVING, TRACER, reqtrace

__all__ = ["Server", "ServingConfig", "ServerClosed", "ServerOverloaded"]


class ServerOverloaded(RuntimeError):
    """Raised to the client when the endpoint queue is at its bound."""


class ServerClosed(RuntimeError):
    """Raised to the client when the server is shut down."""


class ServingConfig:
    """Tunables of the serving layer (``JanusConfig.serving`` slot)."""

    def __init__(self, max_batch_size=8, batch_linger_s=0.002,
                 max_queue_depth=64):
        #: Requests coalesced into one dispatch (1 disables batching).
        self.max_batch_size = max(1, int(max_batch_size))
        #: How long a dispatcher holds the first request of a batch
        #: waiting for shape-compatible companions.  0 dispatches
        #: whatever is already queued without waiting.
        self.batch_linger_s = max(0.0, float(batch_linger_s))
        #: Admission bound per endpoint queue; arrivals beyond it are
        #: rejected with :class:`ServerOverloaded` (and counted).
        self.max_queue_depth = max(1, int(max_queue_depth))

    def __repr__(self):
        return ("ServingConfig(max_batch_size=%d, batch_linger_s=%g, "
                "max_queue_depth=%d)" % (self.max_batch_size,
                                         self.batch_linger_s,
                                         self.max_queue_depth))


def _group_key(args):
    """Batch-compatibility key, or None when the call cannot batch.

    Two requests may share a batch iff every argument position agrees on
    (dtype, trailing shape) and every argument is a tensor with a batch
    (leading) dimension.  Returns ``(key, rows)``.
    """
    if not args:
        return None, 0
    key = []
    rows = None
    for arg in args:
        arr = arg.numpy() if isinstance(arg, Tensor) \
            else arg if isinstance(arg, np.ndarray) else None
        if arr is None or arr.ndim == 0:
            return None, 0
        if rows is None:
            rows = arr.shape[0]
        elif arr.shape[0] != rows:
            return None, 0
        key.append((arr.dtype.str, arr.shape[1:]))
    return tuple(key), rows


class _Request:
    """One queued client call."""

    __slots__ = ("args", "key", "rows", "enqueued", "done", "result",
                 "error", "ctx")

    def __init__(self, args, key, rows, ctx=None):
        self.args = args
        self.key = key
        self.rows = rows
        self.enqueued = time.perf_counter()
        self.done = threading.Event()
        self.result = None
        self.error = None
        #: Request-trace context; carried across the queue so the
        #: dispatcher thread can continue the client's causal flow.
        self.ctx = ctx

    def resolve(self, result=None, error=None):
        self.result = result
        self.error = error
        self.done.set()


class _Endpoint:
    """One registered janus function plus its queue and dispatcher."""

    def __init__(self, name, fn, batchable, server):
        self.name = name
        self.fn = fn
        self.batchable = batchable
        self.server = server
        self.queue = []
        self.cond = threading.Condition(threading.Lock())
        self.thread = threading.Thread(
            target=self._dispatch_loop,
            name="janus-serve-%s" % name, daemon=True)
        self.thread.start()

    # -- client side ---------------------------------------------------------

    def submit(self, args):
        config = self.server.config
        key, rows = _group_key(args) if self.batchable \
            and config.max_batch_size > 1 else (None, 0)
        # Continue the caller's request trace if one is active
        # (Server.call opened it); open one here for direct submitters.
        ctx = reqtrace.current()
        owns_ctx = ctx is None
        if owns_ctx:
            ctx = reqtrace.new_request("serve.%s" % self.name)
        request = _Request(args, key, rows, ctx)
        with self.cond:
            if self.server.closed:
                raise ServerClosed("server is shut down")
            if len(self.queue) >= config.max_queue_depth:
                duration = time.perf_counter() - request.enqueued
                SERVING.record_reject(duration)
                if ctx is not None:
                    ctx.flags.add("rejected")
                    reqtrace.record_span(ctx, "serve_queue", "rejected",
                                         request.enqueued, duration,
                                         endpoint=self.name)
                    if owns_ctx:
                        reqtrace.finish(ctx, "rejected",
                                        detail="queue full")
                raise ServerOverloaded(
                    "endpoint %r queue is full (%d requests)"
                    % (self.name, len(self.queue)))
            SERVING.record_enqueue(len(self.queue))
            self.queue.append(request)
            self.cond.notify_all()
        return request

    # -- dispatcher side -----------------------------------------------------

    def _dispatch_loop(self):
        while True:
            batch = self._next_batch()
            if batch is None:
                return
            self._execute(batch)
            SERVING.set_recompiles_in_flight(
                self.server.recompiles_in_flight())

    def _next_batch(self):
        """Block for the next request, then linger for companions."""
        config = self.server.config
        with self.cond:
            while not self.queue:
                if self.server.closed:
                    return None
                self.cond.wait(0.05)
            first = self.queue.pop(0)
            batch = [first]
            if first.key is None or config.max_batch_size <= 1:
                return batch
            deadline = time.perf_counter() + config.batch_linger_s
            while len(batch) < config.max_batch_size:
                self._take_compatible(first.key, batch, config)
                if len(batch) >= config.max_batch_size:
                    break
                remaining = deadline - time.perf_counter()
                if remaining <= 0 or self.server.closed:
                    break
                self.cond.wait(remaining)
            self._take_compatible(first.key, batch, config)
            return batch

    def _take_compatible(self, key, batch, config):
        """Move queued requests with a matching key into *batch*."""
        index = 0
        while index < len(self.queue) \
                and len(batch) < config.max_batch_size:
            if self.queue[index].key == key:
                batch.append(self.queue.pop(index))
            else:
                index += 1

    def _execute(self, batch):
        dispatch = time.perf_counter()
        waits = [dispatch - r.enqueued for r in batch]
        SERVING.record_batch(len(batch), waits)
        # The queue wait becomes a span on each request's trace, timed
        # from the client thread's enqueue to this pickup.
        for request, wait in zip(batch, waits):
            reqtrace.record_span(request.ctx, "serve_queue", self.name,
                                 request.enqueued, wait,
                                 batch=len(batch))
        if TRACER.level:
            TRACER.instant("serve_dispatch", self.name,
                           batch=len(batch),
                           queued=len(self.queue))
        if len(batch) == 1:
            self._run_single(batch[0])
            return
        lead = batch[0]
        start = time.perf_counter()
        try:
            # Re-wrap each stacked buffer in the type of the first
            # request's argument so the batched call produces the same
            # ValueSpec signature family as its constituents.
            stacked = []
            for position, proto in enumerate(lead.args):
                merged = np.concatenate(
                    [_as_array(request.args[position])
                     for request in batch], axis=0)
                stacked.append(Tensor(merged)
                               if isinstance(proto, Tensor) else merged)
            # The lead request's trace carries the shared execution;
            # companions get the same interval recorded post-hoc.
            with reqtrace.using(lead.ctx):
                with reqtrace.span("serve_dispatch", self.name,
                                   batch=len(batch)):
                    result = self.fn(*stacked)
            parts = _split_result(result, [r.rows for r in batch])
        except Exception:
            parts = None
        if parts is None:
            # The endpoint is not batch-polymorphic for this input (or
            # raised): fall back to per-request execution so batching
            # can only cost latency, never correctness.
            for request in batch:
                self._run_single(request)
            return
        duration = time.perf_counter() - start
        for request, part in zip(batch, parts):
            if request is not lead:
                reqtrace.record_span(request.ctx, "serve_dispatch",
                                     self.name, start, duration,
                                     batch=len(batch), shared=True)
            request.resolve(result=part)

    def _run_single(self, request):
        with reqtrace.using(request.ctx):
            try:
                with reqtrace.span("serve_dispatch", self.name,
                                   batch=1):
                    result = self.fn(*request.args)
                request.resolve(result=result)
            except Exception as exc:           # delivered to the caller
                request.resolve(error=exc)


def _as_array(arg):
    return arg.numpy() if isinstance(arg, Tensor) else np.asarray(arg)


def _split_result(result, row_counts):
    """Split a batched endpoint result back into per-request pieces.

    Returns None when the result does not decompose row-for-row (wrong
    leading dimension, scalar output, unknown type) — the caller then
    re-executes the batch singly.
    """
    total = sum(row_counts)
    if isinstance(result, (tuple, list)):
        split_parts = [_split_result(item, row_counts) for item in result]
        if any(part is None for part in split_parts):
            return None
        return [type(result)(items) for items in zip(*split_parts)]
    arr = result.numpy() if isinstance(result, Tensor) \
        else result if isinstance(result, np.ndarray) else None
    if arr is None or arr.ndim == 0 or arr.shape[0] != total:
        return None
    offsets = np.cumsum(row_counts)[:-1]
    pieces = np.split(arr, offsets, axis=0)
    if isinstance(result, Tensor):
        return [Tensor(piece.copy()) for piece in pieces]
    return [piece.copy() for piece in pieces]


class Server:
    """Serve registered ``@janus.function`` endpoints to many clients.

    Usage::

        server = Server(ServingConfig(max_batch_size=8))
        server.register("predict", predict_fn)
        ...                       # N client threads:
        y = server.call("predict", x)
        ...
        server.close()

    ``call`` blocks until the request's batch completes and returns the
    endpoint result (or re-raises the endpoint's exception in the
    calling thread).  The server is also a context manager; leaving the
    ``with`` block closes it.
    """

    def __init__(self, config=None):
        self.config = config if config is not None else ServingConfig()
        self.closed = False
        self._endpoints = {}
        self._lock = threading.Lock()

    # -- registration --------------------------------------------------------

    def register(self, name, fn, batchable=True):
        """Expose *fn* (typically a JanusFunction) as endpoint *name*."""
        with self._lock:
            if self.closed:
                raise ServerClosed("server is shut down")
            if name in self._endpoints:
                raise ValueError("endpoint %r already registered" % name)
            endpoint = _Endpoint(name, fn, batchable, self)
            self._endpoints[name] = endpoint
            return endpoint

    def endpoints(self):
        with self._lock:
            return sorted(self._endpoints)

    # -- client API ----------------------------------------------------------

    def call(self, name, *args):
        """Invoke endpoint *name*; blocks until its dispatch completes."""
        with self._lock:
            endpoint = self._endpoints.get(name)
        if endpoint is None:
            raise KeyError("no endpoint %r (have %s)"
                           % (name, self.endpoints()))
        SERVING.client_started()
        ctx = reqtrace.new_request("serve.%s" % name)
        start = time.perf_counter()
        try:
            with reqtrace.using(ctx):
                request = endpoint.submit(args)
            request.done.wait()
            if request.error is not None:
                raise request.error
            SERVING.record_request(time.perf_counter() - start, "ok")
            reqtrace.finish(ctx, "ok")
            return request.result
        except ServerOverloaded:
            # record_reject already counted this into
            # request_latency["rejected"]; submit flagged the context.
            reqtrace.finish(ctx, "rejected", detail="queue full")
            raise
        except Exception as exc:
            SERVING.record_request(time.perf_counter() - start, "error")
            reqtrace.finish(ctx, "error", detail=type(exc).__name__)
            raise
        finally:
            SERVING.client_finished()

    # -- introspection / lifecycle -------------------------------------------

    def recompiles_in_flight(self):
        """Compile tickets currently owned across all endpoints."""
        with self._lock:
            endpoints = list(self._endpoints.values())
        return sum(getattr(ep.fn, "recompiles_in_flight", 0)
                   for ep in endpoints)

    def close(self, timeout=5.0):
        """Drain queues, stop dispatchers, and reject further calls."""
        with self._lock:
            if self.closed:
                return
            self.closed = True
            endpoints = list(self._endpoints.values())
        for endpoint in endpoints:
            with endpoint.cond:
                endpoint.cond.notify_all()
        for endpoint in endpoints:
            endpoint.thread.join(timeout)
        # Any request that slipped into a queue after its dispatcher
        # exited is failed rather than left hanging.
        for endpoint in endpoints:
            with endpoint.cond:
                leftovers, endpoint.queue = endpoint.queue, []
            for request in leftovers:
                request.resolve(error=ServerClosed("server is shut down"))

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    def __repr__(self):
        return "Server(%d endpoints%s)" % (
            len(self._endpoints), ", closed" if self.closed else "")

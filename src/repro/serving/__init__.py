"""Multi-tenant serving layer for ``@janus.function`` endpoints.

Public surface::

    from repro.serving import Server, ServingConfig

    server = Server(ServingConfig(max_batch_size=8, batch_linger_s=0.002))
    server.register("predict", predict_fn)   # predict_fn: janus.function
    y = server.call("predict", x)            # from any client thread
    server.close()

See :mod:`repro.serving.server` for the dispatch/batching machinery and
``docs/serving.md`` for the guide.
"""

from .server import Server, ServerClosed, ServerOverloaded, ServingConfig

__all__ = ["Server", "ServerClosed", "ServerOverloaded", "ServingConfig"]

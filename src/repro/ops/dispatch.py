"""Context-based op dispatch.

The public API functions in :mod:`repro.ops.api` do not execute anything
themselves; they hand the op name, inputs, and attributes to the *current
execution context*:

* the eager context (installed by :mod:`repro.imperative`) runs the kernel
  immediately and records onto any active gradient tape;
* a graph-building context (pushed by :class:`repro.graph.builder
  .GraphBuilder`) adds a symbolic node instead.

This single dispatch point is what lets gradient definitions, layers, and
models be written once and run in both execution models — the core trick
behind sharing code between the imperative executor and the symbolic graph
generator.
"""

import threading

_state = threading.local()
_default_context = None


class ExecutionContext:
    """Interface implemented by the eager and graph-building contexts."""

    def execute(self, op_def, inputs, attrs):
        """Run (or symbolically record) one primitive op.

        ``inputs`` have already been converted by :meth:`convert`.
        Returns a single handle or a tuple of handles matching
        ``op_def.num_outputs``.
        """
        raise NotImplementedError

    def convert(self, value, dtype=None):
        """Coerce an arbitrary Python value into this context's handle type."""
        raise NotImplementedError

    def __enter__(self):
        push_context(self)
        return self

    def __exit__(self, exc_type, exc, tb):
        pop_context(self)
        return False


def set_default_context(ctx):
    """Install the process-wide fallback context (the eager executor)."""
    global _default_context
    _default_context = ctx


def _stack():
    if not hasattr(_state, "stack"):
        _state.stack = []
    return _state.stack


def push_context(ctx):
    _stack().append(ctx)


def pop_context(ctx):
    stack = _stack()
    if not stack or stack[-1] is not ctx:
        raise RuntimeError("execution context stack corrupted")
    stack.pop()


def current_context():
    stack = _stack()
    if stack:
        return stack[-1]
    if _default_context is None:
        raise RuntimeError("no execution context installed; "
                           "import repro before dispatching ops")
    return _default_context


def dispatch(op_def, inputs, attrs=None):
    """Convert inputs with the current context and execute the op."""
    ctx = current_context()
    converted = [ctx.convert(x) for x in inputs]
    return ctx.execute(op_def, converted, attrs or {})


def convert(value, dtype=None):
    """Coerce a value to the current context's tensor handle."""
    return current_context().convert(value, dtype=dtype)

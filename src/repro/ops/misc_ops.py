"""Miscellaneous stateful ops: runtime assertions and printing.

``assert_that`` is the AssertOp of the paper (section 3.2): it validates a
speculative assumption during graph execution and aborts the run — before
any deferred state update has been applied — when the assumption breaks.
"""

import sys

import numpy as np

from ..errors import AssumptionFailed
from ..tensor import dtype as dtypes
from ..tensor.shape import Shape
from .registry import register_op


def _assert_kernel(attrs, cond):
    if not np.all(cond):
        raise AssumptionFailed(attrs.get("message", "assumption failed"),
                               site=attrs.get("site"),
                               observed=attrs.get("observed"))
    return np.asarray(True)


ASSERT = register_op(
    "assert", kernel=_assert_kernel,
    shape_fn=lambda attrs, in_shapes, in_dtypes:
        [(Shape.scalar(), dtypes.bool_)],
    stateful=True)


def _print_kernel(attrs, *arrays):
    template = attrs.get("template")
    rendered = [np.asarray(a) for a in arrays]
    if template is not None:
        sys.stdout.write(template % tuple(rendered) + "\n")
    else:
        sys.stdout.write(" ".join(str(a) for a in rendered) + "\n")
    return np.asarray(True)


PRINT = register_op(
    "print", kernel=_print_kernel,
    shape_fn=lambda attrs, in_shapes, in_dtypes:
        [(Shape.scalar(), dtypes.bool_)],
    stateful=True)

"""Operation registry.

Every primitive operation in the system — whether executed eagerly, run by
the dataflow graph executor, or differentiated — is described once by an
``OpDef``:

* ``kernel(attrs, *arrays)``: the numpy forward computation,
* ``shape_fn(attrs, input_shapes, input_dtypes)``: static shape/dtype
  inference over possibly-partial shapes (used by the graph generator and
  the specialization machinery),
* ``grad_fn(ctx, grads)``: the gradient, written against the dispatching
  API in :mod:`repro.ops.api` so the very same definition records onto an
  eager tape *and* builds symbolic gradient subgraphs.

Stateful ops (random, assertions, variable and Python-heap access) are
flagged so the graph optimizer never folds or deduplicates them.
"""

from ..errors import GraphError


class OpDef:
    """Immutable description of a primitive operation."""

    __slots__ = ("name", "kernel", "shape_fn", "grad_fn", "num_outputs",
                 "stateful", "commutative")

    def __init__(self, name, kernel, shape_fn, grad_fn=None, num_outputs=1,
                 stateful=False, commutative=False):
        self.name = name
        self.kernel = kernel
        self.shape_fn = shape_fn
        self.grad_fn = grad_fn
        self.num_outputs = num_outputs
        self.stateful = stateful
        self.commutative = commutative

    @property
    def differentiable(self):
        return self.grad_fn is not None

    def __reduce__(self):
        # OpDefs pickle by name and rehydrate from the registry of the
        # loading process; kernels/grad closures never cross processes.
        # Synthesized defs (fused kernels) are exec-generated and must
        # not be persisted — serialization snapshots graphs pre-fusion.
        if _REGISTRY.get(self.name) is not self:
            raise TypeError(
                "cannot pickle non-registered OpDef %r" % self.name)
        return (get_op, (self.name,))

    def __repr__(self):
        return "OpDef(%s)" % self.name


_REGISTRY = {}


def register_op(name, kernel, shape_fn, num_outputs=1, stateful=False,
                commutative=False):
    """Register a new primitive op; returns the OpDef."""
    if name in _REGISTRY:
        raise GraphError("op %r registered twice" % name)
    op_def = OpDef(name, kernel, shape_fn, None, num_outputs, stateful,
                   commutative)
    _REGISTRY[name] = op_def
    return op_def


def register_gradient(name):
    """Decorator attaching a gradient function to a registered op."""
    def deco(fn):
        op_def = _REGISTRY[name]
        object.__setattr__ if False else None
        # OpDef uses __slots__; assign directly.
        op_def.grad_fn = fn
        return fn
    return deco


def get_op(name):
    try:
        return _REGISTRY[name]
    except KeyError:
        raise GraphError("unknown op %r" % name) from None


def has_op(name):
    return name in _REGISTRY


def all_ops():
    return dict(_REGISTRY)


class GradContext:
    """What a gradient function is allowed to see about the forward op.

    ``inputs`` and ``outputs`` are *handles* — eager tensors when invoked
    from the tape, symbolic nodes when invoked by graph autodiff.  Because
    gradient functions only combine these handles through the dispatching
    API, one definition serves both execution modes.
    """

    __slots__ = ("op_name", "attrs", "inputs", "outputs")

    def __init__(self, op_name, attrs, inputs, outputs):
        self.op_name = op_name
        self.attrs = attrs
        self.inputs = inputs
        self.outputs = outputs

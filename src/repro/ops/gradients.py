"""Gradient definitions for every differentiable primitive op.

Each gradient receives a :class:`~repro.ops.registry.GradContext` whose
``inputs``/``outputs`` are execution-mode handles (eager tensors or
symbolic nodes) and combines them exclusively through the dispatching API
in :mod:`repro.ops.api`.  Consequently the same definitions power both the
imperative gradient tape and symbolic graph autodiff — mirroring how the
paper reuses TensorFlow's gradient registry in both execution modes.
"""

from ..errors import ShapeError
from . import api
from .registry import register_gradient


def _bg(grad, ref):
    """Reduce a broadcast gradient back onto ``ref``'s shape."""
    return api.broadcast_grad(grad, ref)


# -- arithmetic -------------------------------------------------------------

@register_gradient("add")
def _add_grad(ctx, grads):
    g = grads[0]
    a, b = ctx.inputs
    return [_bg(g, a), _bg(g, b)]


@register_gradient("sub")
def _sub_grad(ctx, grads):
    g = grads[0]
    a, b = ctx.inputs
    return [_bg(g, a), _bg(api.neg(g), b)]


@register_gradient("mul")
def _mul_grad(ctx, grads):
    g = grads[0]
    a, b = ctx.inputs
    return [_bg(api.mul(g, b), a), _bg(api.mul(g, a), b)]


@register_gradient("div")
def _div_grad(ctx, grads):
    g = grads[0]
    a, b = ctx.inputs
    ga = api.div(g, b)
    gb = api.neg(api.div(api.mul(g, a), api.mul(b, b)))
    return [_bg(ga, a), _bg(gb, b)]


@register_gradient("pow")
def _pow_grad(ctx, grads):
    g = grads[0]
    a, b = ctx.inputs
    out = ctx.outputs[0]
    ga = api.mul(g, api.mul(b, api.pow(a, api.sub(b, 1.0))))
    gb = api.mul(g, api.mul(out, api.log(api.maximum(a, 1e-30))))
    return [_bg(ga, a), _bg(gb, b)]


@register_gradient("maximum")
def _maximum_grad(ctx, grads):
    g = grads[0]
    a, b = ctx.inputs
    take_a = api.greater_equal(a, b)
    zero = api.zeros_like(g)
    return [_bg(api.where(take_a, g, zero), a),
            _bg(api.where(take_a, zero, g), b)]


@register_gradient("minimum")
def _minimum_grad(ctx, grads):
    g = grads[0]
    a, b = ctx.inputs
    take_a = api.less_equal(a, b)
    zero = api.zeros_like(g)
    return [_bg(api.where(take_a, g, zero), a),
            _bg(api.where(take_a, zero, g), b)]


@register_gradient("neg")
def _neg_grad(ctx, grads):
    return [api.neg(grads[0])]


@register_gradient("abs")
def _abs_grad(ctx, grads):
    return [api.mul(grads[0], api.sign(ctx.inputs[0]))]


@register_gradient("exp")
def _exp_grad(ctx, grads):
    return [api.mul(grads[0], ctx.outputs[0])]


@register_gradient("log")
def _log_grad(ctx, grads):
    return [api.div(grads[0], ctx.inputs[0])]


@register_gradient("sqrt")
def _sqrt_grad(ctx, grads):
    return [api.div(api.mul(grads[0], 0.5), ctx.outputs[0])]


@register_gradient("square")
def _square_grad(ctx, grads):
    return [api.mul(grads[0], api.mul(ctx.inputs[0], 2.0))]


@register_gradient("tanh")
def _tanh_grad(ctx, grads):
    y = ctx.outputs[0]
    return [api.mul(grads[0], api.sub(1.0, api.mul(y, y)))]


@register_gradient("sigmoid")
def _sigmoid_grad(ctx, grads):
    y = ctx.outputs[0]
    return [api.mul(grads[0], api.mul(y, api.sub(1.0, y)))]


@register_gradient("relu")
def _relu_grad(ctx, grads):
    g = grads[0]
    positive = api.greater(ctx.inputs[0], 0.0)
    return [api.where(positive, g, api.zeros_like(g))]


@register_gradient("leaky_relu")
def _leaky_relu_grad(ctx, grads):
    g = grads[0]
    alpha = ctx.attrs.get("alpha", 0.2)
    positive = api.greater(ctx.inputs[0], 0.0)
    return [api.where(positive, g, api.mul(g, alpha))]


@register_gradient("clip")
def _clip_grad(ctx, grads):
    g = grads[0]
    x = ctx.inputs[0]
    inside = api.logical_and(api.greater_equal(x, ctx.attrs["min"]),
                             api.less_equal(x, ctx.attrs["max"]))
    return [api.where(inside, g, api.zeros_like(g))]


@register_gradient("where")
def _where_grad(ctx, grads):
    g = grads[0]
    cond, a, b = ctx.inputs
    zero = api.zeros_like(g)
    return [None, _bg(api.where(cond, g, zero), a),
            _bg(api.where(cond, zero, g), b)]


@register_gradient("cast")
def _cast_grad(ctx, grads):
    src = ctx.inputs[0]
    if not src.dtype.is_floating:
        return [None]
    return [api.cast(grads[0], src.dtype)]


@register_gradient("identity")
def _identity_grad(ctx, grads):
    return [grads[0]]


# -- matmul -------------------------------------------------------------------

@register_gradient("matmul")
def _matmul_grad(ctx, grads):
    g = grads[0]
    a, b = ctx.inputs
    ta = ctx.attrs.get("transpose_a", False)
    tb = ctx.attrs.get("transpose_b", False)
    if not ta and not tb:
        ga = api.matmul(g, b, transpose_b=True)
        gb = api.matmul(a, g, transpose_a=True)
    elif ta and not tb:
        ga = api.matmul(b, g, transpose_b=True)
        gb = api.matmul(a, g)
    elif not ta and tb:
        ga = api.matmul(g, b)
        gb = api.matmul(g, a, transpose_a=True)
    else:
        ga = api.matmul(b, g, transpose_a=True, transpose_b=True)
        gb = api.matmul(g, a, transpose_a=True, transpose_b=True)
    return [_bg(ga, a), _bg(gb, b)]


# -- reductions ------------------------------------------------------------------


def _reduction_axes(x, axis):
    rank = x.shape.rank
    if rank is None:
        raise ShapeError("reduction gradient needs a known input rank")
    if axis is None:
        return tuple(range(rank))
    if isinstance(axis, int):
        axis = (axis,)
    return tuple(a % rank for a in axis)


def _restore_dims(g, x, axes, keepdims):
    if keepdims:
        return g
    for a in sorted(axes):
        g = api.expand_dims(g, a)
    return g


@register_gradient("reduce_sum")
def _reduce_sum_grad(ctx, grads):
    x = ctx.inputs[0]
    axes = _reduction_axes(x, ctx.attrs.get("axis"))
    g = _restore_dims(grads[0], x, axes, ctx.attrs.get("keepdims", False))
    return [api.mul(api.ones_like(x), g)]


@register_gradient("reduce_mean")
def _reduce_mean_grad(ctx, grads):
    x = ctx.inputs[0]
    axes = _reduction_axes(x, ctx.attrs.get("axis"))
    g = _restore_dims(grads[0], x, axes, ctx.attrs.get("keepdims", False))
    count = 1
    unknown = []
    for a in axes:
        d = x.shape[a]
        if d is None:
            unknown.append(a)
        else:
            count *= d
    scaled = api.div(g, float(count))
    if unknown:
        dyn = api.cast(api.gather(api.shape_of(x),
                                  api.constant(list(unknown), dtype="int64")),
                       "float32")
        scaled = api.div(scaled, api.reduce_prod(dyn))
    return [api.mul(api.ones_like(x), scaled)]


def _extreme_grad(ctx, grads):
    x = ctx.inputs[0]
    y = ctx.outputs[0]
    axes = _reduction_axes(x, ctx.attrs.get("axis"))
    keepdims = ctx.attrs.get("keepdims", False)
    g = _restore_dims(grads[0], x, axes, keepdims)
    y_full = _restore_dims(y, x, axes, keepdims)
    mask = api.cast(api.equal(x, y_full), g.dtype
                    if hasattr(g, "dtype") else "float32")
    ties = api.reduce_sum(mask, axis=ctx.attrs.get("axis"), keepdims=True)
    return [api.mul(api.div(mask, ties), g)]


register_gradient("reduce_max")(_extreme_grad)
register_gradient("reduce_min")(_extreme_grad)


@register_gradient("reduce_prod")
def _reduce_prod_grad(ctx, grads):
    x = ctx.inputs[0]
    y = ctx.outputs[0]
    axes = _reduction_axes(x, ctx.attrs.get("axis"))
    keepdims = ctx.attrs.get("keepdims", False)
    g = _restore_dims(grads[0], x, axes, keepdims)
    y_full = _restore_dims(y, x, axes, keepdims)
    return [api.mul(g, api.div(y_full, x))]


# -- array manipulation ------------------------------------------------------------


@register_gradient("reshape")
def _reshape_grad(ctx, grads):
    return [api.reshape_like(grads[0], ctx.inputs[0])]


@register_gradient("reshape_like")
def _reshape_like_grad(ctx, grads):
    return [api.reshape_like(grads[0], ctx.inputs[0]), None]


@register_gradient("transpose")
def _transpose_grad(ctx, grads):
    perm = ctx.attrs.get("perm")
    if perm is None:
        return [api.transpose(grads[0])]
    inverse = [0] * len(perm)
    for i, p in enumerate(perm):
        inverse[p] = i
    return [api.transpose(grads[0], inverse)]


@register_gradient("concat")
def _concat_grad(ctx, grads):
    g = grads[0]
    axis = ctx.attrs.get("axis", 0)
    out = []
    offset = 0
    for x in ctx.inputs:
        dim = x.shape[axis]
        if dim is None:
            raise ShapeError("concat gradient needs static concat dims")
        index = [slice(None)] * (axis % len(x.shape.dims)) + \
            [slice(offset, offset + dim)]
        out.append(api.getitem(g, tuple(index)))
        offset += dim
    return out


@register_gradient("split")
def _split_grad(ctx, grads):
    return [api.concat(list(grads), axis=ctx.attrs.get("axis", 0))]


@register_gradient("stack")
def _stack_grad(ctx, grads):
    parts = api.unstack(grads[0], num=len(ctx.inputs),
                        axis=ctx.attrs.get("axis", 0))
    return list(parts)


@register_gradient("unstack")
def _unstack_grad(ctx, grads):
    return [api.stack(list(grads), axis=ctx.attrs.get("axis", 0))]


@register_gradient("getitem")
def _getitem_grad(ctx, grads):
    from . import array_ops
    from .dispatch import dispatch
    return [dispatch(array_ops.GETITEM_GRAD, (grads[0], ctx.inputs[0]),
                     dict(ctx.attrs))]


@register_gradient("gather")
def _gather_grad(ctx, grads):
    from . import array_ops
    from .dispatch import dispatch
    params, indices = ctx.inputs
    return [dispatch(array_ops.GATHER_GRAD, (grads[0], indices, params),
                     dict(ctx.attrs)), None]


@register_gradient("pad")
def _pad_grad(ctx, grads):
    from . import array_ops
    from .dispatch import dispatch
    return [dispatch(array_ops.PAD_GRAD, (grads[0],), dict(ctx.attrs))]


@register_gradient("tile")
def _tile_grad(ctx, grads):
    x = ctx.inputs[0]
    mult = ctx.attrs["multiples"]
    dims = x.shape.dims
    if dims is None or any(d is None for d in dims):
        raise ShapeError("tile gradient needs a static input shape")
    interleaved = []
    for m, d in zip(mult, dims):
        interleaved.extend([m, d])
    g = api.reshape(grads[0], interleaved)
    g = api.reduce_sum(g, axis=tuple(range(0, 2 * len(dims), 2)))
    return [g]


@register_gradient("expand_dims")
def _expand_dims_grad(ctx, grads):
    return [api.reshape_like(grads[0], ctx.inputs[0])]


@register_gradient("squeeze")
def _squeeze_grad(ctx, grads):
    return [api.reshape_like(grads[0], ctx.inputs[0])]


# -- nn ops ------------------------------------------------------------------------


@register_gradient("conv2d")
def _conv2d_grad(ctx, grads):
    from . import nn_ops
    from .dispatch import dispatch
    g = grads[0]
    x, filters = ctx.inputs
    attrs = dict(ctx.attrs)
    gx = dispatch(nn_ops.CONV2D_INPUT_GRAD, (g, filters, x), attrs)
    gf = dispatch(nn_ops.CONV2D_FILTER_GRAD, (g, x, filters), attrs)
    return [gx, gf]


@register_gradient("conv2d_transpose")
def _conv2d_transpose_grad(ctx, grads):
    from . import nn_ops
    from .dispatch import dispatch
    g = grads[0]
    x, filters = ctx.inputs
    attrs = {"strides": ctx.attrs["strides"],
             "padding": ctx.attrs["padding"]}
    gx = api.conv2d(g, filters, strides=ctx.attrs["strides"],
                    padding=ctx.attrs["padding"])
    gf = dispatch(nn_ops.CONV2D_FILTER_GRAD, (x, g, filters), attrs)
    return [gx, gf]


@register_gradient("max_pool")
def _max_pool_grad(ctx, grads):
    from . import nn_ops
    from .dispatch import dispatch
    return [dispatch(nn_ops.MAX_POOL_GRAD,
                     (grads[0], ctx.inputs[0], ctx.outputs[0]),
                     dict(ctx.attrs))]


@register_gradient("avg_pool")
def _avg_pool_grad(ctx, grads):
    from . import nn_ops
    from .dispatch import dispatch
    return [dispatch(nn_ops.AVG_POOL_GRAD, (grads[0], ctx.inputs[0]),
                     dict(ctx.attrs))]


@register_gradient("softmax")
def _softmax_grad(ctx, grads):
    g = grads[0]
    y = ctx.outputs[0]
    axis = ctx.attrs.get("axis", -1)
    inner = api.reduce_sum(api.mul(g, y), axis=axis, keepdims=True)
    return [api.mul(api.sub(g, inner), y)]


@register_gradient("log_softmax")
def _log_softmax_grad(ctx, grads):
    g = grads[0]
    y = ctx.outputs[0]
    axis = ctx.attrs.get("axis", -1)
    total = api.reduce_sum(g, axis=axis, keepdims=True)
    return [api.sub(g, api.mul(api.exp(y), total))]


@register_gradient("softmax_cross_entropy")
def _sce_grad(ctx, grads):
    from . import nn_ops
    from .dispatch import dispatch
    logits, labels = ctx.inputs
    gl = dispatch(nn_ops.SOFTMAX_CROSS_ENTROPY_GRAD,
                  (grads[0], logits, labels), {})
    return [gl, None]


@register_gradient("sigmoid_cross_entropy")
def _bce_grad(ctx, grads):
    from . import nn_ops
    from .dispatch import dispatch
    logits, targets = ctx.inputs
    gl = dispatch(nn_ops.SIGMOID_CROSS_ENTROPY_GRAD,
                  (grads[0], logits, targets), {})
    gt = _bg(api.mul(grads[0], api.neg(logits)), targets)
    return [gl, gt]


# -- extended activations (post-v1 additions) ----------------------------------


@register_gradient("softplus")
def _softplus_grad(ctx, grads):
    return [api.mul(grads[0], api.sigmoid(ctx.inputs[0]))]


@register_gradient("elu")
def _elu_grad(ctx, grads):
    g = grads[0]
    x = ctx.inputs[0]
    y = ctx.outputs[0]
    alpha = ctx.attrs.get("alpha", 1.0)
    positive = api.greater(x, 0.0)
    return [api.where(positive, g, api.mul(g, api.add(y, alpha)))]


@register_gradient("gelu")
def _gelu_grad(ctx, grads):
    g = grads[0]
    x = ctx.inputs[0]
    c = 0.7978845608028654
    inner = api.mul(api.add(x, api.mul(api.pow(x, 3.0), 0.044715)), c)
    t = api.tanh(inner)
    sech2 = api.sub(1.0, api.mul(t, t))
    d_inner = api.mul(api.add(1.0, api.mul(api.square(x),
                                           3.0 * 0.044715)), c)
    dydx = api.add(api.mul(0.5, api.add(1.0, t)),
                   api.mul(api.mul(api.mul(x, 0.5), sech2), d_inner))
    return [api.mul(g, dydx)]


@register_gradient("log1p")
def _log1p_grad(ctx, grads):
    return [api.div(grads[0], api.add(ctx.inputs[0], 1.0))]


@register_gradient("expm1")
def _expm1_grad(ctx, grads):
    return [api.mul(grads[0], api.add(ctx.outputs[0], 1.0))]


@register_gradient("cumsum")
def _cumsum_grad(ctx, grads):
    # reverse-cumsum of the incoming gradient along the same axis.
    from . import math_ops
    from .dispatch import dispatch
    axis = ctx.attrs.get("axis", 0)
    g = grads[0]
    rank = ctx.inputs[0].shape.rank
    index = [slice(None)] * (axis % (rank or 1))
    flipped = api.getitem(g, tuple(index + [slice(None, None, -1)]))
    summed = dispatch(math_ops.CUMSUM, (flipped,), {"axis": axis})
    return [api.getitem(summed,
                        tuple(index + [slice(None, None, -1)]))]

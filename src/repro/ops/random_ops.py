"""Random op kernels.

Random ops are *stateful*: the graph optimizer must never constant-fold or
deduplicate them, and every graph execution draws fresh values.  All draws
come from a module-level :class:`numpy.random.Generator` so experiments can
be made deterministic with :func:`seed`.
"""

import numpy as np

from ..tensor import dtype as dtypes
from ..tensor.shape import Shape
from .registry import register_op

_generator = np.random.default_rng(0)


def seed(value):
    """Reseed the global generator (used by tests and benchmarks)."""
    global _generator
    _generator = np.random.default_rng(value)


def get_generator():
    return _generator


def _static_shape_fn(attrs, in_shapes, in_dtypes):
    return [(Shape(attrs["shape"]),
             dtypes.DType.of(attrs.get("dtype", "float32")))]


def _random_normal_kernel(attrs, *unused):
    dt = dtypes.DType.of(attrs.get("dtype", "float32"))
    out = _generator.normal(attrs.get("mean", 0.0), attrs.get("stddev", 1.0),
                            size=attrs["shape"])
    return out.astype(dt.np_dtype)


RANDOM_NORMAL = register_op("random_normal", kernel=_random_normal_kernel,
                            shape_fn=_static_shape_fn, stateful=True)


def _random_uniform_kernel(attrs, *unused):
    dt = dtypes.DType.of(attrs.get("dtype", "float32"))
    lo = attrs.get("minval", 0.0)
    hi = attrs.get("maxval", 1.0)
    if dt.is_integer:
        return _generator.integers(lo, hi, size=attrs["shape"],
                                   dtype=dt.np_dtype)
    out = _generator.uniform(lo, hi, size=attrs["shape"])
    return out.astype(dt.np_dtype)


RANDOM_UNIFORM = register_op("random_uniform", kernel=_random_uniform_kernel,
                             shape_fn=_static_shape_fn, stateful=True)


def _dropout_kernel(attrs, x):
    rate = attrs.get("rate", 0.5)
    keep = 1.0 - rate
    mask = (_generator.random(x.shape) < keep).astype(x.dtype)
    return x * mask / keep


DROPOUT = register_op(
    "dropout", kernel=_dropout_kernel,
    shape_fn=lambda attrs, in_shapes, in_dtypes:
        [(in_shapes[0], in_dtypes[0])],
    stateful=True)

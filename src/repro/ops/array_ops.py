"""Array manipulation op kernels (reshape, concat, slicing, gather, ...)."""

import numpy as np

from ..errors import ShapeError
from ..tensor import dtype as dtypes
from ..tensor.shape import Shape
from .registry import register_op


def _passthrough_shape_fn(attrs, in_shapes, in_dtypes):
    return [(in_shapes[0], in_dtypes[0])]


IDENTITY = register_op("identity", kernel=lambda attrs, a: a,
                       shape_fn=_passthrough_shape_fn)

STOP_GRADIENT = register_op("stop_gradient", kernel=lambda attrs, a: a,
                            shape_fn=_passthrough_shape_fn)

# -- reshape ------------------------------------------------------------------


def _reshape_kernel(attrs, a):
    return np.reshape(a, attrs["shape"])


def _reshape_shape_fn(attrs, in_shapes, in_dtypes):
    target = list(attrs["shape"])
    in_shape = Shape.of(in_shapes[0])
    if -1 in target and in_shape.is_fully_known:
        known = 1
        for d in target:
            if d != -1:
                known *= d
        total = in_shape.num_elements
        target[target.index(-1)] = total // known if known else 0
    dims = [None if d == -1 else d for d in target]
    return [(Shape(dims), in_dtypes[0])]


RESHAPE = register_op("reshape", kernel=_reshape_kernel,
                      shape_fn=_reshape_shape_fn)

# -- transpose ----------------------------------------------------------------


def _transpose_kernel(attrs, a):
    return np.transpose(a, attrs.get("perm"))


def _transpose_shape_fn(attrs, in_shapes, in_dtypes):
    shape = Shape.of(in_shapes[0])
    if shape.dims is None:
        return [(Shape.unknown(), in_dtypes[0])]
    perm = attrs.get("perm")
    if perm is None:
        perm = tuple(reversed(range(len(shape.dims))))
    return [(Shape([shape.dims[p] for p in perm]), in_dtypes[0])]


TRANSPOSE = register_op("transpose", kernel=_transpose_kernel,
                        shape_fn=_transpose_shape_fn)

# -- concat / split / stack / unstack -----------------------------------------


def _concat_kernel(attrs, *arrays):
    return np.concatenate(arrays, axis=attrs.get("axis", 0))


def _concat_shape_fn(attrs, in_shapes, in_dtypes):
    axis = attrs.get("axis", 0)
    shapes = [Shape.of(s) for s in in_shapes]
    if any(s.dims is None for s in shapes):
        return [(Shape.unknown(), dtypes.result_dtype(*in_dtypes))]
    rank = len(shapes[0].dims)
    axis = axis % rank
    dims = list(shapes[0].dims)
    total = 0
    for s in shapes:
        d = s.dims[axis]
        if d is None or total is None:
            total = None
        else:
            total += d
    dims[axis] = total
    for i in range(rank):
        if i == axis:
            continue
        for s in shapes[1:]:
            if dims[i] is None:
                dims[i] = s.dims[i]
    return [(Shape(dims), dtypes.result_dtype(*in_dtypes))]


CONCAT = register_op("concat", kernel=_concat_kernel,
                     shape_fn=_concat_shape_fn)


def _split_kernel(attrs, a):
    return tuple(np.array_split(a, attrs["num"], axis=attrs.get("axis", 0)))


def _split_shape_fn(attrs, in_shapes, in_dtypes):
    num = attrs["num"]
    axis = attrs.get("axis", 0)
    shape = Shape.of(in_shapes[0])
    if shape.dims is None:
        return [(Shape.unknown(), in_dtypes[0])] * num
    dims = list(shape.dims)
    axis = axis % len(dims)
    if dims[axis] is not None and dims[axis] % num == 0:
        dims[axis] //= num
    else:
        dims[axis] = None
    return [(Shape(dims), in_dtypes[0])] * num


def _split_num_outputs(attrs):
    return attrs["num"]


SPLIT = register_op("split", kernel=_split_kernel, shape_fn=_split_shape_fn,
                    num_outputs=_split_num_outputs)


def _stack_kernel(attrs, *arrays):
    return np.stack(arrays, axis=attrs.get("axis", 0))


def _stack_shape_fn(attrs, in_shapes, in_dtypes):
    axis = attrs.get("axis", 0)
    shape = Shape.of(in_shapes[0])
    if shape.dims is None:
        return [(Shape.unknown(), dtypes.result_dtype(*in_dtypes))]
    dims = list(shape.dims)
    axis = axis % (len(dims) + 1)
    dims.insert(axis, len(in_shapes))
    return [(Shape(dims), dtypes.result_dtype(*in_dtypes))]


STACK = register_op("stack", kernel=_stack_kernel, shape_fn=_stack_shape_fn)


def _unstack_kernel(attrs, a):
    axis = attrs.get("axis", 0)
    return tuple(np.moveaxis(a, axis, 0))


def _unstack_shape_fn(attrs, in_shapes, in_dtypes):
    num = attrs["num"]
    axis = attrs.get("axis", 0)
    shape = Shape.of(in_shapes[0])
    if shape.dims is None:
        return [(Shape.unknown(), in_dtypes[0])] * num
    dims = list(shape.dims)
    axis = axis % len(dims)
    del dims[axis]
    return [(Shape(dims), in_dtypes[0])] * num


UNSTACK = register_op("unstack", kernel=_unstack_kernel,
                      shape_fn=_unstack_shape_fn,
                      num_outputs=lambda attrs: attrs["num"])

# -- subscripting ---------------------------------------------------------------


def decode_index_spec(spec):
    """Turn the hashable index spec used in attrs back into a numpy index."""
    out = []
    for item in spec:
        kind = item[0]
        if kind == "int":
            out.append(item[1])
        elif kind == "slice":
            out.append(slice(item[1], item[2], item[3]))
        elif kind == "ellipsis":
            out.append(Ellipsis)
        elif kind == "newaxis":
            out.append(None)
        else:
            raise ShapeError("bad index spec item %r" % (item,))
    return tuple(out)


def encode_index(index):
    """Encode a Python index expression into a hashable attr spec."""
    if not isinstance(index, tuple):
        index = (index,)
    spec = []
    for item in index:
        if isinstance(item, (int, np.integer)):
            spec.append(("int", int(item)))
        elif isinstance(item, slice):
            def _c(v):
                return None if v is None else int(v)
            spec.append(("slice", _c(item.start), _c(item.stop),
                         _c(item.step)))
        elif item is Ellipsis:
            spec.append(("ellipsis",))
        elif item is None:
            spec.append(("newaxis",))
        else:
            raise TypeError("unsupported static index component %r" % (item,))
    return tuple(spec)


def _getitem_kernel(attrs, a):
    return a[decode_index_spec(attrs["spec"])]


def _getitem_shape_fn(attrs, in_shapes, in_dtypes):
    shape = Shape.of(in_shapes[0])
    if not shape.is_fully_known:
        return [(Shape.unknown(), in_dtypes[0])]
    probe = np.empty(shape.as_tuple(), dtype=np.int8)
    out = probe[decode_index_spec(attrs["spec"])]
    return [(Shape(out.shape), in_dtypes[0])]


GETITEM = register_op("getitem", kernel=_getitem_kernel,
                      shape_fn=_getitem_shape_fn)


def _getitem_grad_kernel(attrs, grad, ref):
    out = np.zeros_like(ref)
    out[decode_index_spec(attrs["spec"])] = grad
    return out


GETITEM_GRAD = register_op(
    "getitem_grad", kernel=_getitem_grad_kernel,
    shape_fn=lambda attrs, in_shapes, in_dtypes:
        [(in_shapes[1], in_dtypes[0])])

# -- gather / scatter -----------------------------------------------------------


def _gather_kernel(attrs, params, indices):
    return np.take(params, indices, axis=attrs.get("axis", 0))


def _gather_shape_fn(attrs, in_shapes, in_dtypes):
    p, i = Shape.of(in_shapes[0]), Shape.of(in_shapes[1])
    if p.dims is None or i.dims is None:
        return [(Shape.unknown(), in_dtypes[0])]
    axis = attrs.get("axis", 0) % len(p.dims)
    dims = list(p.dims[:axis]) + list(i.dims) + list(p.dims[axis + 1:])
    return [(Shape(dims), in_dtypes[0])]


GATHER = register_op("gather", kernel=_gather_kernel,
                     shape_fn=_gather_shape_fn)


def _gather_grad_kernel(attrs, grad, indices, ref):
    axis = attrs.get("axis", 0)
    out = np.zeros_like(ref, dtype=grad.dtype)
    moved = np.moveaxis(out, axis, 0)
    flat_idx = indices.reshape(-1)
    g = np.moveaxis(grad, tuple(range(axis, axis + indices.ndim)),
                    tuple(range(indices.ndim)))
    g = g.reshape((flat_idx.size,) + moved.shape[1:])
    np.add.at(moved, flat_idx, g)
    return out


GATHER_GRAD = register_op(
    "gather_grad", kernel=_gather_grad_kernel,
    shape_fn=lambda attrs, in_shapes, in_dtypes:
        [(in_shapes[2], in_dtypes[0])])

# -- padding / tiling / dim fiddling ---------------------------------------------


def _pad_kernel(attrs, a):
    return np.pad(a, attrs["paddings"], mode=attrs.get("mode", "constant"))


def _pad_shape_fn(attrs, in_shapes, in_dtypes):
    shape = Shape.of(in_shapes[0])
    if shape.dims is None:
        return [(Shape.unknown(), in_dtypes[0])]
    dims = []
    for d, (lo, hi) in zip(shape.dims, attrs["paddings"]):
        dims.append(None if d is None else d + lo + hi)
    return [(Shape(dims), in_dtypes[0])]


PAD = register_op("pad", kernel=_pad_kernel, shape_fn=_pad_shape_fn)


def _pad_grad_kernel(attrs, grad):
    idx = tuple(slice(lo, grad.shape[i] - hi)
                for i, (lo, hi) in enumerate(attrs["paddings"]))
    return grad[idx]


PAD_GRAD = register_op(
    "pad_grad", kernel=_pad_grad_kernel,
    shape_fn=lambda attrs, in_shapes, in_dtypes:
        [(Shape.unknown(), in_dtypes[0])])


def _tile_kernel(attrs, a):
    return np.tile(a, attrs["multiples"])


def _tile_shape_fn(attrs, in_shapes, in_dtypes):
    shape = Shape.of(in_shapes[0])
    mult = attrs["multiples"]
    if shape.dims is None:
        return [(Shape.unknown(), in_dtypes[0])]
    dims = [None if d is None else d * m for d, m in zip(shape.dims, mult)]
    return [(Shape(dims), in_dtypes[0])]


TILE = register_op("tile", kernel=_tile_kernel, shape_fn=_tile_shape_fn)


def _expand_dims_shape_fn(attrs, in_shapes, in_dtypes):
    shape = Shape.of(in_shapes[0])
    if shape.dims is None:
        return [(Shape.unknown(), in_dtypes[0])]
    dims = list(shape.dims)
    axis = attrs["axis"]
    axis = axis % (len(dims) + 1)
    dims.insert(axis, 1)
    return [(Shape(dims), in_dtypes[0])]


EXPAND_DIMS = register_op(
    "expand_dims",
    kernel=lambda attrs, a: np.expand_dims(a, attrs["axis"]),
    shape_fn=_expand_dims_shape_fn)


def _squeeze_kernel(attrs, a):
    axis = attrs.get("axis")
    return np.squeeze(a, axis=axis)


def _squeeze_shape_fn(attrs, in_shapes, in_dtypes):
    shape = Shape.of(in_shapes[0])
    if shape.dims is None:
        return [(Shape.unknown(), in_dtypes[0])]
    axis = attrs.get("axis")
    dims = list(shape.dims)
    if axis is None:
        dims = [d for d in dims if d != 1]
    else:
        axes = axis if isinstance(axis, tuple) else (axis,)
        axes = {a % len(dims) for a in axes}
        dims = [d for i, d in enumerate(dims) if i not in axes]
    return [(Shape(dims), in_dtypes[0])]


SQUEEZE = register_op("squeeze", kernel=_squeeze_kernel,
                      shape_fn=_squeeze_shape_fn)

# -- construction -----------------------------------------------------------------


def _fill_kernel(attrs, *unused):
    dt = dtypes.DType.of(attrs.get("dtype", "float32"))
    return np.full(attrs["shape"], attrs["value"], dtype=dt.np_dtype)


def _fill_shape_fn(attrs, in_shapes, in_dtypes):
    return [(Shape(attrs["shape"]),
             dtypes.DType.of(attrs.get("dtype", "float32")))]


FILL = register_op("fill", kernel=_fill_kernel, shape_fn=_fill_shape_fn)


def _zeros_like_kernel(attrs, a):
    return np.zeros_like(a)


ZEROS_LIKE = register_op("zeros_like", kernel=_zeros_like_kernel,
                         shape_fn=_passthrough_shape_fn)

ONES_LIKE = register_op("ones_like",
                        kernel=lambda attrs, a: np.ones_like(a),
                        shape_fn=_passthrough_shape_fn)


def _range_kernel(attrs, *unused):
    dt = dtypes.DType.of(attrs.get("dtype", "int64"))
    return np.arange(attrs["start"], attrs["stop"], attrs.get("step", 1),
                     dtype=dt.np_dtype)


def _range_shape_fn(attrs, in_shapes, in_dtypes):
    n = max(0, int(np.ceil((attrs["stop"] - attrs["start"])
                           / attrs.get("step", 1))))
    return [(Shape([n]), dtypes.DType.of(attrs.get("dtype", "int64")))]


RANGE = register_op("range", kernel=_range_kernel, shape_fn=_range_shape_fn)


def _one_hot_kernel(attrs, indices):
    depth = attrs["depth"]
    dt = dtypes.DType.of(attrs.get("dtype", "float32"))
    flat = indices.reshape(-1).astype(np.int64)
    out = np.zeros((flat.size, depth), dtype=dt.np_dtype)
    valid = (flat >= 0) & (flat < depth)
    out[np.arange(flat.size)[valid], flat[valid]] = 1
    return out.reshape(indices.shape + (depth,))


def _one_hot_shape_fn(attrs, in_shapes, in_dtypes):
    shape = Shape.of(in_shapes[0])
    if shape.dims is None:
        return [(Shape.unknown(), dtypes.DType.of(attrs.get("dtype",
                                                            "float32")))]
    return [(Shape(list(shape.dims) + [attrs["depth"]]),
             dtypes.DType.of(attrs.get("dtype", "float32")))]


ONE_HOT = register_op("one_hot", kernel=_one_hot_kernel,
                      shape_fn=_one_hot_shape_fn)


def _reshape_like_kernel(attrs, a, ref):
    return np.reshape(a, ref.shape)


RESHAPE_LIKE = register_op(
    "reshape_like", kernel=_reshape_like_kernel,
    shape_fn=lambda attrs, in_shapes, in_dtypes:
        [(in_shapes[1], in_dtypes[0])])


def _shape_of_kernel(attrs, a):
    return np.asarray(a.shape, dtype=np.int64)


def _shape_of_shape_fn(attrs, in_shapes, in_dtypes):
    shape = Shape.of(in_shapes[0])
    rank = None if shape.dims is None else len(shape.dims)
    return [(Shape([rank]), dtypes.int64)]


SHAPE_OF = register_op("shape_of", kernel=_shape_of_kernel,
                       shape_fn=_shape_of_shape_fn)

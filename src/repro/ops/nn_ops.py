"""Neural-network op kernels: convolutions, pooling, softmax, losses.

Layout conventions follow TensorFlow: activations are NHWC and convolution
filters are HWIO.  Convolutions are implemented with stride-tricked im2col
views feeding a single matmul, and their gradients with a small number of
offset matmuls, so even on numpy the cost profile (few coarse kernels) is
similar to a real DL runtime.
"""

import numpy as np

from ..errors import ShapeError
from ..tensor import dtype as dtypes
from ..tensor.shape import Shape
from .registry import register_op


def _pair(value):
    if isinstance(value, int):
        return (value, value)
    return tuple(value)


def _conv_out_dim(size, k, s, padding):
    if size is None:
        return None
    if padding == "SAME":
        return -(-size // s)
    return (size - k) // s + 1


def _same_pad_amounts(size, k, s):
    out = -(-size // s)
    total = max((out - 1) * s + k - size, 0)
    lo = total // 2
    return lo, total - lo


def _pad_input(x, kh, kw, sh, sw, padding):
    if padding == "VALID":
        return x, (0, 0), (0, 0)
    ph = _same_pad_amounts(x.shape[1], kh, sh)
    pw = _same_pad_amounts(x.shape[2], kw, sw)
    if ph == (0, 0) and pw == (0, 0):
        return x, ph, pw
    return np.pad(x, ((0, 0), ph, pw, (0, 0))), ph, pw


def _im2col(x, kh, kw, sh, sw):
    """(N, H, W, C) -> strided view (N, OH, OW, KH, KW, C)."""
    n, h, w, c = x.shape
    oh = (h - kh) // sh + 1
    ow = (w - kw) // sw + 1
    sn, sh_, sw_, sc = x.strides
    return np.lib.stride_tricks.as_strided(
        x, (n, oh, ow, kh, kw, c),
        (sn, sh_ * sh, sw_ * sw, sh_, sw_, sc), writeable=False)


# -- conv2d ---------------------------------------------------------------------


def _conv2d_kernel(attrs, x, filters):
    sh, sw = _pair(attrs.get("strides", 1))
    padding = attrs.get("padding", "SAME")
    kh, kw, cin, cout = filters.shape
    if x.shape[3] != cin:
        raise ShapeError("conv2d channels mismatch: input %d, filter %d"
                         % (x.shape[3], cin))
    xp, _, _ = _pad_input(x, kh, kw, sh, sw, padding)
    cols = _im2col(xp, kh, kw, sh, sw)
    n, oh, ow = cols.shape[:3]
    flat = cols.reshape(n * oh * ow, kh * kw * cin)
    out = flat @ filters.reshape(kh * kw * cin, cout)
    return out.reshape(n, oh, ow, cout)


def _conv2d_shape_fn(attrs, in_shapes, in_dtypes):
    x, f = Shape.of(in_shapes[0]), Shape.of(in_shapes[1])
    out_dtype = dtypes.result_dtype(*in_dtypes)
    if x.dims is None or f.dims is None:
        return [(Shape.unknown(), out_dtype)]
    sh, sw = _pair(attrs.get("strides", 1))
    padding = attrs.get("padding", "SAME")
    n, h, w, _ = x.dims
    kh, kw, _, cout = f.dims
    return [(Shape([n, _conv_out_dim(h, kh, sh, padding),
                    _conv_out_dim(w, kw, sw, padding), cout]), out_dtype)]


CONV2D = register_op("conv2d", kernel=_conv2d_kernel,
                     shape_fn=_conv2d_shape_fn)


def _conv2d_input_grad_kernel(attrs, grad, filters, x_ref):
    sh, sw = _pair(attrs.get("strides", 1))
    padding = attrs.get("padding", "SAME")
    kh, kw, cin, cout = filters.shape
    xp, ph, pw = _pad_input(x_ref, kh, kw, sh, sw, padding)
    dxp = np.zeros_like(xp, dtype=grad.dtype)
    n, oh, ow, _ = grad.shape
    flat_g = grad.reshape(n * oh * ow, cout)
    for i in range(kh):
        for j in range(kw):
            # Gradient flowing to input positions touched by tap (i, j).
            contrib = flat_g @ filters[i, j].T      # (N*OH*OW, CIN)
            contrib = contrib.reshape(n, oh, ow, cin)
            dxp[:, i:i + sh * oh:sh, j:j + sw * ow:sw, :] += contrib
    h, w = x_ref.shape[1], x_ref.shape[2]
    return dxp[:, ph[0]:ph[0] + h, pw[0]:pw[0] + w, :]


CONV2D_INPUT_GRAD = register_op(
    "conv2d_input_grad", kernel=_conv2d_input_grad_kernel,
    shape_fn=lambda attrs, in_shapes, in_dtypes:
        [(in_shapes[2], in_dtypes[0])])


def _conv2d_filter_grad_kernel(attrs, grad, x, f_ref):
    sh, sw = _pair(attrs.get("strides", 1))
    padding = attrs.get("padding", "SAME")
    kh, kw, cin, cout = f_ref.shape
    xp, _, _ = _pad_input(x, kh, kw, sh, sw, padding)
    cols = _im2col(xp, kh, kw, sh, sw)
    n, oh, ow = cols.shape[:3]
    flat_cols = cols.reshape(n * oh * ow, kh * kw * cin)
    flat_g = grad.reshape(n * oh * ow, cout)
    df = flat_cols.T @ flat_g
    return df.reshape(kh, kw, cin, cout)


CONV2D_FILTER_GRAD = register_op(
    "conv2d_filter_grad", kernel=_conv2d_filter_grad_kernel,
    shape_fn=lambda attrs, in_shapes, in_dtypes:
        [(in_shapes[2], in_dtypes[0])])


# -- conv2d_transpose (used by GAN generators / pix2pix decoder) -------------------


def _conv2d_transpose_kernel(attrs, x, filters):
    """Transposed convolution producing ``output_shape`` (N dims HWC).

    Implemented as the input-gradient of a forward convolution, which is
    the textbook definition.  ``filters`` is HWIO where I is the *output*
    channel count of this op (matching tf.nn.conv2d_transpose).
    """
    out_shape = attrs["output_shape"]
    x_ref = np.empty((x.shape[0],) + tuple(out_shape), dtype=x.dtype)
    return _conv2d_input_grad_kernel(attrs, x, filters, x_ref)


def _conv2d_transpose_shape_fn(attrs, in_shapes, in_dtypes):
    x = Shape.of(in_shapes[0])
    n = x.dims[0] if x.dims is not None else None
    h, w, c = attrs["output_shape"]
    return [(Shape([n, h, w, c]), in_dtypes[0])]


CONV2D_TRANSPOSE = register_op("conv2d_transpose",
                               kernel=_conv2d_transpose_kernel,
                               shape_fn=_conv2d_transpose_shape_fn)


# -- pooling -------------------------------------------------------------------


def _pool_prepare(attrs, x):
    kh, kw = _pair(attrs.get("ksize", 2))
    sh, sw = _pair(attrs.get("strides", 2))
    padding = attrs.get("padding", "VALID")
    if padding == "SAME":
        ph = _same_pad_amounts(x.shape[1], kh, sh)
        pw = _same_pad_amounts(x.shape[2], kw, sw)
    else:
        ph = pw = (0, 0)
    return kh, kw, sh, sw, padding, ph, pw


def _max_pool_kernel(attrs, x):
    kh, kw, sh, sw, padding, ph, pw = _pool_prepare(attrs, x)
    if ph != (0, 0) or pw != (0, 0):
        x = np.pad(x, ((0, 0), ph, pw, (0, 0)),
                   constant_values=-np.inf)
    cols = _im2col(x, kh, kw, sh, sw)
    return cols.max(axis=(3, 4))


def _pool_shape_fn(attrs, in_shapes, in_dtypes):
    x = Shape.of(in_shapes[0])
    if x.dims is None:
        return [(Shape.unknown(), in_dtypes[0])]
    kh, kw = _pair(attrs.get("ksize", 2))
    sh, sw = _pair(attrs.get("strides", 2))
    padding = attrs.get("padding", "VALID")
    n, h, w, c = x.dims
    return [(Shape([n, _conv_out_dim(h, kh, sh, padding),
                    _conv_out_dim(w, kw, sw, padding), c]), in_dtypes[0])]


MAX_POOL = register_op("max_pool", kernel=_max_pool_kernel,
                       shape_fn=_pool_shape_fn)


def _max_pool_grad_kernel(attrs, grad, x, y):
    kh, kw, sh, sw, padding, ph, pw = _pool_prepare(attrs, x)
    xp = x
    if ph != (0, 0) or pw != (0, 0):
        xp = np.pad(x, ((0, 0), ph, pw, (0, 0)), constant_values=-np.inf)
    dxp = np.zeros_like(xp, dtype=grad.dtype)
    n, oh, ow, c = grad.shape
    remaining = np.ones_like(grad, dtype=bool)
    for i in range(kh):
        for j in range(kw):
            window = xp[:, i:i + sh * oh:sh, j:j + sw * ow:sw, :]
            hit = (window == y) & remaining
            remaining &= ~hit
            dxp[:, i:i + sh * oh:sh, j:j + sw * ow:sw, :] += \
                np.where(hit, grad, 0)
    h, w = x.shape[1], x.shape[2]
    return dxp[:, ph[0]:ph[0] + h, pw[0]:pw[0] + w, :]


MAX_POOL_GRAD = register_op(
    "max_pool_grad", kernel=_max_pool_grad_kernel,
    shape_fn=lambda attrs, in_shapes, in_dtypes:
        [(in_shapes[1], in_dtypes[0])])


def _avg_pool_kernel(attrs, x):
    kh, kw, sh, sw, padding, ph, pw = _pool_prepare(attrs, x)
    if ph != (0, 0) or pw != (0, 0):
        x = np.pad(x, ((0, 0), ph, pw, (0, 0)))
    cols = _im2col(x, kh, kw, sh, sw)
    out = cols.mean(axis=(3, 4))
    return out.astype(x.dtype)


AVG_POOL = register_op("avg_pool", kernel=_avg_pool_kernel,
                       shape_fn=_pool_shape_fn)


def _avg_pool_grad_kernel(attrs, grad, x):
    kh, kw, sh, sw, padding, ph, pw = _pool_prepare(attrs, x)
    padded_shape = (x.shape[0], x.shape[1] + sum(ph), x.shape[2] + sum(pw),
                    x.shape[3])
    dxp = np.zeros(padded_shape, dtype=grad.dtype)
    n, oh, ow, c = grad.shape
    share = grad / (kh * kw)
    for i in range(kh):
        for j in range(kw):
            dxp[:, i:i + sh * oh:sh, j:j + sw * ow:sw, :] += share
    h, w = x.shape[1], x.shape[2]
    return dxp[:, ph[0]:ph[0] + h, pw[0]:pw[0] + w, :]


AVG_POOL_GRAD = register_op(
    "avg_pool_grad", kernel=_avg_pool_grad_kernel,
    shape_fn=lambda attrs, in_shapes, in_dtypes:
        [(in_shapes[1], in_dtypes[0])])


# -- softmax family --------------------------------------------------------------


def _softmax_np(logits, axis=-1):
    z = logits - logits.max(axis=axis, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=axis, keepdims=True)


def _float_shape_fn(attrs, in_shapes, in_dtypes):
    dt = in_dtypes[0]
    return [(in_shapes[0], dt if dt.is_floating else dtypes.default_float)]


SOFTMAX = register_op(
    "softmax",
    kernel=lambda attrs, a: _softmax_np(a, attrs.get("axis", -1)),
    shape_fn=_float_shape_fn)


def _log_softmax_kernel(attrs, a):
    axis = attrs.get("axis", -1)
    z = a - a.max(axis=axis, keepdims=True)
    return z - np.log(np.exp(z).sum(axis=axis, keepdims=True))


LOG_SOFTMAX = register_op("log_softmax", kernel=_log_softmax_kernel,
                          shape_fn=_float_shape_fn)


def _sce_kernel(attrs, logits, labels):
    """Per-example softmax cross entropy with integer labels."""
    logp = _log_softmax_kernel({}, logits)
    idx = labels.astype(np.int64)
    batch = np.arange(logits.shape[0])
    return -logp[batch, idx]


def _sce_shape_fn(attrs, in_shapes, in_dtypes):
    x = Shape.of(in_shapes[0])
    dt = in_dtypes[0]
    dt = dt if dt.is_floating else dtypes.default_float
    if x.dims is None:
        return [(Shape.unknown(), dt)]
    return [(Shape([x.dims[0]]), dt)]


SOFTMAX_CROSS_ENTROPY = register_op(
    "softmax_cross_entropy", kernel=_sce_kernel, shape_fn=_sce_shape_fn)


def _sce_grad_kernel(attrs, grad, logits, labels):
    p = _softmax_np(logits)
    idx = labels.astype(np.int64)
    batch = np.arange(logits.shape[0])
    p[batch, idx] -= 1.0
    return p * grad[:, None]


SOFTMAX_CROSS_ENTROPY_GRAD = register_op(
    "softmax_cross_entropy_grad", kernel=_sce_grad_kernel,
    shape_fn=lambda attrs, in_shapes, in_dtypes:
        [(in_shapes[1], in_dtypes[0])])


def _bce_logits_kernel(attrs, logits, targets):
    """Numerically stable sigmoid cross entropy with logits."""
    return (np.maximum(logits, 0) - logits * targets
            + np.log1p(np.exp(-np.abs(logits))))


SIGMOID_CROSS_ENTROPY = register_op(
    "sigmoid_cross_entropy", kernel=_bce_logits_kernel,
    shape_fn=_float_shape_fn)


def _bce_grad_kernel(attrs, grad, logits, targets):
    return grad * (_sigmoid_np(logits) - targets)


def _sigmoid_np(a):
    from .math_ops import _sigmoid
    return _sigmoid(a)


SIGMOID_CROSS_ENTROPY_GRAD = register_op(
    "sigmoid_cross_entropy_grad", kernel=_bce_grad_kernel,
    shape_fn=lambda attrs, in_shapes, in_dtypes:
        [(in_shapes[1], in_dtypes[0])])

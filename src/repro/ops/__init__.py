"""Primitive operations: registry, kernels, gradients, and dispatch API."""

from . import (array_ops, math_ops, matrix_ops, misc_ops, nn_ops,  # noqa: F401
               random_ops, reduction_ops)
from . import gradients  # noqa: F401  (side effect: attaches grad fns)
from .registry import (OpDef, GradContext, get_op, has_op, all_ops,
                       register_op, register_gradient)
from .dispatch import (ExecutionContext, current_context, dispatch, convert,
                       set_default_context)

__all__ = [
    "OpDef", "GradContext", "get_op", "has_op", "all_ops",
    "register_op", "register_gradient",
    "ExecutionContext", "current_context", "dispatch", "convert",
    "set_default_context",
]

"""The user-facing, mode-polymorphic op API.

Every function here dispatches through the current execution context
(:mod:`repro.ops.dispatch`): called under the eager executor it computes
immediately; called inside a graph-building context it adds symbolic nodes.
Models, layers, and gradient definitions are all written against this API,
which is also the external-function *whitelist* the JANUS graph generator
recognizes (paper section 4.3.1).
"""

import numpy as np

from ..tensor import dtype as dtypes
from ..tensor.shape import Shape
from . import (array_ops, math_ops, matrix_ops, misc_ops, nn_ops,
               random_ops, reduction_ops)
from .dispatch import convert, dispatch

# ---------------------------------------------------------------------------
# elementwise math
# ---------------------------------------------------------------------------


def add(a, b):
    return dispatch(math_ops.ADD, (a, b))


def sub(a, b):
    return dispatch(math_ops.SUB, (a, b))


def mul(a, b):
    return dispatch(math_ops.MUL, (a, b))


def div(a, b):
    return dispatch(math_ops.DIV, (a, b))


def floordiv(a, b):
    return dispatch(math_ops.FLOORDIV, (a, b))


def mod(a, b):
    return dispatch(math_ops.MOD, (a, b))


def pow(a, b):  # noqa: A001 - mirrors the Python operator it implements
    return dispatch(math_ops.POW, (a, b))


def maximum(a, b):
    return dispatch(math_ops.MAXIMUM, (a, b))


def minimum(a, b):
    return dispatch(math_ops.MINIMUM, (a, b))


def neg(a):
    return dispatch(math_ops.NEG, (a,))


def abs(a):  # noqa: A001
    return dispatch(math_ops.ABS, (a,))


def sign(a):
    return dispatch(math_ops.SIGN, (a,))


def exp(a):
    return dispatch(math_ops.EXP, (a,))


def log(a):
    return dispatch(math_ops.LOG, (a,))


def sqrt(a):
    return dispatch(math_ops.SQRT, (a,))


def square(a):
    return dispatch(math_ops.SQUARE, (a,))


def tanh(a):
    return dispatch(math_ops.TANH, (a,))


def floor(a):
    return dispatch(math_ops.FLOOR, (a,))


def sigmoid(a):
    return dispatch(math_ops.SIGMOID, (a,))


def relu(a):
    return dispatch(math_ops.RELU, (a,))


def leaky_relu(a, alpha=0.2):
    return dispatch(math_ops.LEAKY_RELU, (a,), {"alpha": float(alpha)})


def clip(a, min_value, max_value):
    return dispatch(math_ops.CLIP, (a,),
                    {"min": float(min_value), "max": float(max_value)})


def where(cond, a, b):
    return dispatch(math_ops.WHERE, (cond, a, b))


def cast(a, dtype):
    return dispatch(math_ops.CAST, (a,), {"dtype": dtypes.DType.of(dtype).name})


def broadcast_grad(grad, ref):
    """Reduce a broadcast gradient back to ``ref``'s shape (internal)."""
    return dispatch(math_ops.BROADCAST_GRAD, (grad, ref))

# ---------------------------------------------------------------------------
# comparisons / logical
# ---------------------------------------------------------------------------


def equal(a, b):
    return dispatch(math_ops.EQUAL, (a, b))


def not_equal(a, b):
    return dispatch(math_ops.NOT_EQUAL, (a, b))


def less(a, b):
    return dispatch(math_ops.LESS, (a, b))


def less_equal(a, b):
    return dispatch(math_ops.LESS_EQUAL, (a, b))


def greater(a, b):
    return dispatch(math_ops.GREATER, (a, b))


def greater_equal(a, b):
    return dispatch(math_ops.GREATER_EQUAL, (a, b))


def logical_and(a, b):
    return dispatch(math_ops.LOGICAL_AND, (a, b))


def logical_or(a, b):
    return dispatch(math_ops.LOGICAL_OR, (a, b))


def logical_not(a):
    return dispatch(math_ops.LOGICAL_NOT, (a,))

# ---------------------------------------------------------------------------
# matrix
# ---------------------------------------------------------------------------


def matmul(a, b, transpose_a=False, transpose_b=False):
    return dispatch(matrix_ops.MATMUL, (a, b),
                    {"transpose_a": bool(transpose_a),
                     "transpose_b": bool(transpose_b)})

# ---------------------------------------------------------------------------
# reductions
# ---------------------------------------------------------------------------


def _axis_attr(axis):
    if axis is None or isinstance(axis, int):
        return axis
    return tuple(int(a) for a in axis)


def reduce_sum(a, axis=None, keepdims=False):
    return dispatch(reduction_ops.REDUCE_SUM, (a,),
                    {"axis": _axis_attr(axis), "keepdims": bool(keepdims)})


def reduce_mean(a, axis=None, keepdims=False):
    return dispatch(reduction_ops.REDUCE_MEAN, (a,),
                    {"axis": _axis_attr(axis), "keepdims": bool(keepdims)})


def reduce_max(a, axis=None, keepdims=False):
    return dispatch(reduction_ops.REDUCE_MAX, (a,),
                    {"axis": _axis_attr(axis), "keepdims": bool(keepdims)})


def reduce_min(a, axis=None, keepdims=False):
    return dispatch(reduction_ops.REDUCE_MIN, (a,),
                    {"axis": _axis_attr(axis), "keepdims": bool(keepdims)})


def reduce_prod(a, axis=None, keepdims=False):
    return dispatch(reduction_ops.REDUCE_PROD, (a,),
                    {"axis": _axis_attr(axis), "keepdims": bool(keepdims)})


def argmax(a, axis=0):
    return dispatch(reduction_ops.ARGMAX, (a,), {"axis": int(axis)})


def argmin(a, axis=0):
    return dispatch(reduction_ops.ARGMIN, (a,), {"axis": int(axis)})

# ---------------------------------------------------------------------------
# array manipulation
# ---------------------------------------------------------------------------


def identity(a):
    return dispatch(array_ops.IDENTITY, (a,))


def stop_gradient(a):
    return dispatch(array_ops.STOP_GRADIENT, (a,))


def reshape(a, shape):
    return dispatch(array_ops.RESHAPE, (a,),
                    {"shape": tuple(int(d) for d in shape)})


def reshape_like(a, ref):
    return dispatch(array_ops.RESHAPE_LIKE, (a, ref))


def transpose(a, perm=None):
    attrs = {"perm": None if perm is None else tuple(int(p) for p in perm)}
    return dispatch(array_ops.TRANSPOSE, (a,), attrs)


def concat(values, axis=0):
    return dispatch(array_ops.CONCAT, tuple(values), {"axis": int(axis)})


def split(a, num, axis=0):
    return dispatch(array_ops.SPLIT, (a,), {"num": int(num),
                                            "axis": int(axis)})


def stack(values, axis=0):
    return dispatch(array_ops.STACK, tuple(values), {"axis": int(axis)})


def unstack(a, num=None, axis=0):
    if num is None:
        handle = convert(a)
        dim = handle.shape[axis]
        if dim is None:
            raise ValueError("unstack needs a static dimension or num=")
        num = dim
    return dispatch(array_ops.UNSTACK, (a,), {"num": int(num),
                                              "axis": int(axis)})


def getitem(a, index):
    """Subscript a tensor; tensor-valued indices become gathers."""
    handle = convert(a)
    if _is_tensor_index(index):
        return gather(handle, index, axis=0)
    spec = array_ops.encode_index(index)
    return dispatch(array_ops.GETITEM, (handle,), {"spec": spec})


def _is_tensor_index(index):
    from .dispatch import current_context
    if isinstance(index, (int, slice, tuple, type(None), type(Ellipsis))):
        if isinstance(index, tuple):
            return any(not isinstance(i, (int, slice, type(None),
                                          type(Ellipsis))) for i in index)
        return False
    return True


def gather(params, indices, axis=0):
    return dispatch(array_ops.GATHER, (params, indices),
                    {"axis": int(axis)})


def pad(a, paddings, mode="constant"):
    pads = tuple((int(lo), int(hi)) for lo, hi in paddings)
    return dispatch(array_ops.PAD, (a,), {"paddings": pads, "mode": mode})


def tile(a, multiples):
    return dispatch(array_ops.TILE, (a,),
                    {"multiples": tuple(int(m) for m in multiples)})


def expand_dims(a, axis):
    return dispatch(array_ops.EXPAND_DIMS, (a,), {"axis": int(axis)})


def squeeze(a, axis=None):
    attrs = {"axis": None if axis is None else
             (tuple(axis) if isinstance(axis, (tuple, list)) else int(axis))}
    return dispatch(array_ops.SQUEEZE, (a,), attrs)

# ---------------------------------------------------------------------------
# construction
# ---------------------------------------------------------------------------


def fill(shape, value, dtype="float32"):
    return dispatch(array_ops.FILL, (),
                    {"shape": tuple(int(d) for d in shape),
                     "value": value, "dtype": dtypes.DType.of(dtype).name})


def zeros(shape, dtype="float32"):
    return fill(shape, 0, dtype)


def ones(shape, dtype="float32"):
    return fill(shape, 1, dtype)


def zeros_like(a):
    return dispatch(array_ops.ZEROS_LIKE, (a,))


def ones_like(a):
    return dispatch(array_ops.ONES_LIKE, (a,))


def arange(start, stop=None, step=1, dtype="int64"):
    if stop is None:
        start, stop = 0, start
    return dispatch(array_ops.RANGE, (),
                    {"start": start, "stop": stop, "step": step,
                     "dtype": dtypes.DType.of(dtype).name})


def one_hot(indices, depth, dtype="float32"):
    return dispatch(array_ops.ONE_HOT, (indices,),
                    {"depth": int(depth),
                     "dtype": dtypes.DType.of(dtype).name})


def shape_of(a):
    """Dynamic shape of a tensor as a 1-D int64 tensor."""
    return dispatch(array_ops.SHAPE_OF, (a,))


def constant(value, dtype=None):
    """Materialize a constant in the current execution context."""
    return convert(value, dtype=dtype)

# ---------------------------------------------------------------------------
# neural-network ops
# ---------------------------------------------------------------------------


def conv2d(x, filters, strides=1, padding="SAME"):
    return dispatch(nn_ops.CONV2D, (x, filters),
                    {"strides": _stride_attr(strides), "padding": padding})


def conv2d_transpose(x, filters, output_shape, strides=1, padding="SAME"):
    return dispatch(nn_ops.CONV2D_TRANSPOSE, (x, filters),
                    {"strides": _stride_attr(strides), "padding": padding,
                     "output_shape": tuple(int(d) for d in output_shape)})


def _stride_attr(strides):
    if isinstance(strides, int):
        return (strides, strides)
    return tuple(int(s) for s in strides)


def max_pool(x, ksize=2, strides=2, padding="VALID"):
    return dispatch(nn_ops.MAX_POOL, (x,),
                    {"ksize": _stride_attr(ksize),
                     "strides": _stride_attr(strides), "padding": padding})


def avg_pool(x, ksize=2, strides=2, padding="VALID"):
    return dispatch(nn_ops.AVG_POOL, (x,),
                    {"ksize": _stride_attr(ksize),
                     "strides": _stride_attr(strides), "padding": padding})


def softmax(a, axis=-1):
    return dispatch(nn_ops.SOFTMAX, (a,), {"axis": int(axis)})


def log_softmax(a, axis=-1):
    return dispatch(nn_ops.LOG_SOFTMAX, (a,), {"axis": int(axis)})


def softmax_cross_entropy(logits, labels):
    """Per-example cross entropy; ``labels`` are integer class ids."""
    return dispatch(nn_ops.SOFTMAX_CROSS_ENTROPY, (logits, labels))


def sigmoid_cross_entropy(logits, targets):
    return dispatch(nn_ops.SIGMOID_CROSS_ENTROPY, (logits, targets))

# ---------------------------------------------------------------------------
# random
# ---------------------------------------------------------------------------


def random_normal(shape, mean=0.0, stddev=1.0, dtype="float32"):
    return dispatch(random_ops.RANDOM_NORMAL, (),
                    {"shape": tuple(int(d) for d in shape),
                     "mean": float(mean), "stddev": float(stddev),
                     "dtype": dtypes.DType.of(dtype).name})


def random_uniform(shape, minval=0.0, maxval=1.0, dtype="float32"):
    return dispatch(random_ops.RANDOM_UNIFORM, (),
                    {"shape": tuple(int(d) for d in shape),
                     "minval": minval, "maxval": maxval,
                     "dtype": dtypes.DType.of(dtype).name})


def dropout(x, rate=0.5):
    """Differentiable dropout built from a random mask (composite)."""
    handle = convert(x)
    if not handle.shape.is_fully_known:
        return dispatch(random_ops.DROPOUT, (handle,),
                        {"rate": float(rate)})
    keep = 1.0 - rate
    mask = random_uniform(handle.shape.as_tuple(), 0.0, 1.0,
                          dtype=handle.dtype)
    gate = cast(less(mask, keep), handle.dtype)
    return div(mul(handle, gate), keep)

# ---------------------------------------------------------------------------
# debugging / assertions
# ---------------------------------------------------------------------------


def assert_that(cond, message="assertion failed", site=None):
    """Runtime assertion; aborts graph execution when ``cond`` is False."""
    return dispatch(misc_ops.ASSERT, (cond,),
                    {"message": message, "site": site})


def print_tensor(*values, template=None):
    """Print tensors (graph-representable ``print``).

    String arguments fold into the format template, so the whitelisted
    conversion of ``print("loss:", loss)`` works unchanged.
    """
    if template is None and any(isinstance(v, str) for v in values):
        parts, tensors = [], []
        for v in values:
            if isinstance(v, str):
                parts.append(v.replace("%", "%%"))
            else:
                parts.append("%s")
                tensors.append(v)
        template = " ".join(parts)
        values = tuple(tensors)
    return dispatch(misc_ops.PRINT, tuple(values), {"template": template})


# Mean squared error as a convenience composite (used all over the models).
def mean_squared_error(pred, target):
    return reduce_mean(square(sub(pred, target)))


# ---------------------------------------------------------------------------
# state
# ---------------------------------------------------------------------------


def executing_eagerly():
    """True when ops run immediately (TF's ``tf.executing_eagerly``).

    Imperative programs use this to guard heap-state mutation that has no
    place in a hand-built symbolic graph.  The JANUS graph generator
    treats it as the constant True: the program *is* imperative, and its
    state mutations convert to deferred PySetAttr operations.
    """
    from .dispatch import current_context
    from ..imperative.eager import EagerContext
    return isinstance(current_context(), EagerContext)


def assign(variable, value):
    """Assign to a Variable in the current mode.

    Eagerly this mutates in place; under a graph-building context it emits
    a deferred ``var_assign`` node (all-or-nothing commit semantics).
    """
    from .dispatch import current_context
    return current_context().assign_variable(variable, value)


def read(variable):
    """Read a Variable in the current mode."""
    return convert(variable)


# ---------------------------------------------------------------------------
# extended activations / math (post-v1 additions)
# ---------------------------------------------------------------------------


def softplus(a):
    return dispatch(math_ops.SOFTPLUS, (a,))


def elu(a, alpha=1.0):
    return dispatch(math_ops.ELU, (a,), {"alpha": float(alpha)})


def gelu(a):
    return dispatch(math_ops.GELU, (a,))


def log1p(a):
    return dispatch(math_ops.LOG1P, (a,))


def expm1(a):
    return dispatch(math_ops.EXPM1, (a,))


def cumsum(a, axis=0):
    return dispatch(math_ops.CUMSUM, (a,), {"axis": int(axis)})


def layer_norm(x, gamma, beta, axis=-1, epsilon=1e-5):
    """Layer normalization as a composite over primitive ops."""
    mean = reduce_mean(x, axis=axis, keepdims=True)
    centered = sub(x, mean)
    var = reduce_mean(square(centered), axis=axis, keepdims=True)
    inv = div(1.0, sqrt(add(var, epsilon)))
    return add(mul(mul(centered, inv), gamma), beta)

"""Elementwise math, comparison, and logical op kernels."""

import numpy as np

from ..tensor import dtype as dtypes
from ..tensor.shape import Shape, broadcast_shapes
from .registry import register_op


def _broadcast_shape_fn(result_dtype_fn):
    def shape_fn(attrs, in_shapes, in_dtypes):
        out = in_shapes[0]
        for s in in_shapes[1:]:
            out = broadcast_shapes(out, s)
        return [(out, result_dtype_fn(in_dtypes))]
    return shape_fn


def _promote(in_dtypes):
    return dtypes.result_dtype(*in_dtypes)


def _same(in_dtypes):
    return in_dtypes[0]


def _bool(in_dtypes):
    return dtypes.bool_


def _float_promote(in_dtypes):
    dt = dtypes.result_dtype(*in_dtypes)
    return dt if dt.is_floating else dtypes.default_float


def _unary_shape_fn(result_dtype_fn=_same):
    def shape_fn(attrs, in_shapes, in_dtypes):
        return [(in_shapes[0], result_dtype_fn(in_dtypes))]
    return shape_fn


def _binary(name, fn, dtype_fn=_promote, commutative=False):
    return register_op(
        name,
        kernel=lambda attrs, a, b: fn(a, b),
        shape_fn=_broadcast_shape_fn(dtype_fn),
        commutative=commutative)


def _unary(name, fn, dtype_fn=_same):
    return register_op(
        name,
        kernel=lambda attrs, a: fn(a),
        shape_fn=_unary_shape_fn(dtype_fn))


def _true_div(a, b):
    out = np.true_divide(a, b)
    if out.dtype == np.float64 and \
            a.dtype.kind in "ib" and b.dtype.kind in "ib":
        out = out.astype(np.float32)
    return out


# -- arithmetic -------------------------------------------------------------

ADD = _binary("add", np.add, commutative=True)
SUB = _binary("sub", np.subtract)
MUL = _binary("mul", np.multiply, commutative=True)
DIV = _binary("div", _true_div, dtype_fn=_float_promote)
FLOORDIV = _binary("floordiv", np.floor_divide)
MOD = _binary("mod", np.mod)
POW = _binary("pow", np.power)
MAXIMUM = _binary("maximum", np.maximum, commutative=True)
MINIMUM = _binary("minimum", np.minimum, commutative=True)

NEG = _unary("neg", np.negative)
ABS = _unary("abs", np.abs)
SIGN = _unary("sign", np.sign)
EXP = _unary("exp", np.exp, dtype_fn=_float_promote)
LOG = _unary("log", np.log, dtype_fn=_float_promote)
SQRT = _unary("sqrt", np.sqrt, dtype_fn=_float_promote)
SQUARE = _unary("square", np.square)
TANH = _unary("tanh", np.tanh, dtype_fn=_float_promote)
FLOOR = _unary("floor", np.floor)


try:
    from scipy.special import expit as _expit
except ImportError:  # pragma: no cover - scipy is an install requirement
    _expit = None


def _sigmoid(a):
    if _expit is not None:
        out = _expit(a)
        if out.dtype == np.float64 and np.asarray(a).dtype == np.float32:
            out = out.astype(np.float32)
        return out
    # Numerically stable piecewise fallback.
    out = np.empty_like(a, dtype=np.result_type(a.dtype, np.float32))
    pos = a >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-a[pos]))
    ea = np.exp(a[~pos])
    out[~pos] = ea / (1.0 + ea)
    return out


SIGMOID = register_op(
    "sigmoid",
    kernel=lambda attrs, a: _sigmoid(np.asarray(a)),
    shape_fn=_unary_shape_fn(_float_promote))

RELU = _unary("relu", lambda a: np.maximum(a, 0))


def _leaky_relu_kernel(attrs, a):
    alpha = attrs.get("alpha", 0.2)
    return np.where(a > 0, a, alpha * a).astype(a.dtype)


LEAKY_RELU = register_op("leaky_relu", kernel=_leaky_relu_kernel,
                         shape_fn=_unary_shape_fn())


def _clip_kernel(attrs, a):
    return np.clip(a, attrs["min"], attrs["max"])


CLIP = register_op("clip", kernel=_clip_kernel, shape_fn=_unary_shape_fn())

# -- comparisons (not differentiable) ----------------------------------------

EQUAL = _binary("equal", np.equal, dtype_fn=_bool, commutative=True)
NOT_EQUAL = _binary("not_equal", np.not_equal, dtype_fn=_bool,
                    commutative=True)
LESS = _binary("less", np.less, dtype_fn=_bool)
LESS_EQUAL = _binary("less_equal", np.less_equal, dtype_fn=_bool)
GREATER = _binary("greater", np.greater, dtype_fn=_bool)
GREATER_EQUAL = _binary("greater_equal", np.greater_equal, dtype_fn=_bool)

# -- logical -----------------------------------------------------------------

LOGICAL_AND = _binary("logical_and", np.logical_and, dtype_fn=_bool,
                      commutative=True)
LOGICAL_OR = _binary("logical_or", np.logical_or, dtype_fn=_bool,
                     commutative=True)
LOGICAL_NOT = _unary("logical_not", np.logical_not, dtype_fn=_bool)

# -- select / where ------------------------------------------------------------


def _where_shape_fn(attrs, in_shapes, in_dtypes):
    out = broadcast_shapes(broadcast_shapes(in_shapes[0], in_shapes[1]),
                           in_shapes[2])
    return [(out, dtypes.result_dtype(in_dtypes[1], in_dtypes[2]))]


WHERE = register_op(
    "where",
    kernel=lambda attrs, c, a, b: np.where(c, a, b),
    shape_fn=_where_shape_fn)

# -- cast ---------------------------------------------------------------------


def _cast_kernel(attrs, a):
    return a.astype(dtypes.DType.of(attrs["dtype"]).np_dtype)


def _cast_shape_fn(attrs, in_shapes, in_dtypes):
    return [(in_shapes[0], dtypes.DType.of(attrs["dtype"]))]


CAST = register_op("cast", kernel=_cast_kernel, shape_fn=_cast_shape_fn)

# -- gradient helper: reduce a broadcast gradient back to an input's shape ----


def _broadcast_grad_kernel(attrs, grad, ref):
    target = ref.shape
    g = grad
    while g.ndim > len(target):
        g = g.sum(axis=0)
    for axis, dim in enumerate(target):
        if dim == 1 and g.shape[axis] != 1:
            g = g.sum(axis=axis, keepdims=True)
    if g.shape != target:
        g = np.broadcast_to(g, target)
    # np.ascontiguousarray would promote 0-d arrays to 1-d; avoid that.
    if g.ndim and not g.flags["C_CONTIGUOUS"]:
        g = np.ascontiguousarray(g)
    return np.asarray(g)


def _broadcast_grad_shape_fn(attrs, in_shapes, in_dtypes):
    return [(Shape.of(in_shapes[1]), in_dtypes[0])]


BROADCAST_GRAD = register_op("broadcast_grad", kernel=_broadcast_grad_kernel,
                             shape_fn=_broadcast_grad_shape_fn)


# -- extended activations / math (post-v1 additions) --------------------------


def _softplus_kernel(attrs, a):
    # log(1 + exp(a)), stable for large |a|.
    out = np.logaddexp(0.0, a)
    if out.dtype == np.float64 and np.asarray(a).dtype == np.float32:
        out = out.astype(np.float32)
    return out


SOFTPLUS = register_op("softplus", kernel=_softplus_kernel,
                       shape_fn=_unary_shape_fn(_float_promote))


def _elu_kernel(attrs, a):
    alpha = attrs.get("alpha", 1.0)
    return np.where(a > 0, a, alpha * np.expm1(a)).astype(
        np.result_type(a.dtype, np.float32))


ELU = register_op("elu", kernel=_elu_kernel,
                  shape_fn=_unary_shape_fn(_float_promote))


def _gelu_kernel(attrs, a):
    # tanh approximation of GELU (Hendrycks & Gimpel).
    c = np.float32(0.7978845608028654)  # sqrt(2/pi)
    inner = c * (a + 0.044715 * a ** 3)
    return (0.5 * a * (1.0 + np.tanh(inner))).astype(
        np.result_type(a.dtype, np.float32))


GELU = register_op("gelu", kernel=_gelu_kernel,
                   shape_fn=_unary_shape_fn(_float_promote))

LOG1P = _unary("log1p", np.log1p, dtype_fn=_float_promote)
EXPM1 = _unary("expm1", np.expm1, dtype_fn=_float_promote)


def _cumsum_kernel(attrs, a):
    return np.cumsum(a, axis=attrs.get("axis", 0)).astype(a.dtype)


CUMSUM = register_op("cumsum", kernel=_cumsum_kernel,
                     shape_fn=_unary_shape_fn())

"""Reduction op kernels (sum, mean, max, min, prod, argmax, argmin)."""

import numpy as np

from ..tensor import dtype as dtypes
from ..tensor.shape import Shape
from .registry import register_op


def _normalize_axes(axis, rank):
    if axis is None:
        return None
    if isinstance(axis, int):
        axis = (axis,)
    return tuple(a % rank if rank is not None and a < 0 else a for a in axis)


def _reduced_shape(shape, axis, keepdims):
    shape = Shape.of(shape)
    if shape.dims is None:
        return Shape.unknown()
    rank = len(shape.dims)
    axes = _normalize_axes(axis, rank)
    if axes is None:
        axes = tuple(range(rank))
    dims = []
    for i, d in enumerate(shape.dims):
        if i in axes:
            if keepdims:
                dims.append(1)
        else:
            dims.append(d)
    return Shape(dims)


def _make_reduce(name, np_fn, dtype_fn=None):
    def kernel(attrs, a):
        axis = attrs.get("axis")
        keepdims = attrs.get("keepdims", False)
        if isinstance(axis, list):
            axis = tuple(axis)
        out = np_fn(a, axis=axis, keepdims=keepdims)
        return np.asarray(out, dtype=out.dtype if hasattr(out, "dtype")
                          else a.dtype)

    def shape_fn(attrs, in_shapes, in_dtypes):
        out_shape = _reduced_shape(in_shapes[0], attrs.get("axis"),
                                   attrs.get("keepdims", False))
        out_dtype = in_dtypes[0] if dtype_fn is None else dtype_fn(in_dtypes)
        return [(out_shape, out_dtype)]

    return register_op(name, kernel=kernel, shape_fn=shape_fn)


def _mean_dtype(in_dtypes):
    dt = in_dtypes[0]
    return dt if dt.is_floating else dtypes.default_float


def _np_mean(a, axis=None, keepdims=False):
    out = np.mean(a, axis=axis, keepdims=keepdims)
    if a.dtype.kind in "ib":
        out = out.astype(np.float32)
    else:
        out = out.astype(a.dtype)
    return out


REDUCE_SUM = _make_reduce("reduce_sum", np.sum)
REDUCE_MEAN = _make_reduce("reduce_mean", _np_mean, dtype_fn=_mean_dtype)
REDUCE_MAX = _make_reduce("reduce_max", np.max)
REDUCE_MIN = _make_reduce("reduce_min", np.min)
REDUCE_PROD = _make_reduce("reduce_prod", np.prod)


def _arg_shape_fn(attrs, in_shapes, in_dtypes):
    shape = Shape.of(in_shapes[0])
    if shape.dims is None:
        return [(Shape.unknown(), dtypes.int64)]
    axis = attrs.get("axis", 0)
    rank = len(shape.dims)
    axis = axis % rank if axis < 0 else axis
    dims = [d for i, d in enumerate(shape.dims) if i != axis]
    return [(Shape(dims), dtypes.int64)]


ARGMAX = register_op(
    "argmax",
    kernel=lambda attrs, a: np.argmax(a, axis=attrs.get("axis", 0)),
    shape_fn=_arg_shape_fn)

ARGMIN = register_op(
    "argmin",
    kernel=lambda attrs, a: np.argmin(a, axis=attrs.get("axis", 0)),
    shape_fn=_arg_shape_fn)

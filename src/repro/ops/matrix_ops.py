"""Matrix op kernels (matmul with batching support)."""

from ..tensor import dtype as dtypes
from ..tensor.shape import Shape
from ..errors import ShapeError
from .registry import register_op

import numpy as np


def _matmul_kernel(attrs, a, b):
    if attrs.get("transpose_a"):
        a = np.swapaxes(a, -1, -2)
    if attrs.get("transpose_b"):
        b = np.swapaxes(b, -1, -2)
    return np.matmul(a, b)


def _matmul_shape_fn(attrs, in_shapes, in_dtypes):
    a, b = Shape.of(in_shapes[0]), Shape.of(in_shapes[1])
    out_dtype = dtypes.result_dtype(*in_dtypes)
    if a.dims is None or b.dims is None:
        return [(Shape.unknown(), out_dtype)]
    ad, bd = list(a.dims), list(b.dims)
    if len(ad) < 2 or len(bd) < 2:
        raise ShapeError("matmul needs rank >= 2, got %s @ %s" % (a, b))
    if attrs.get("transpose_a"):
        ad[-1], ad[-2] = ad[-2], ad[-1]
    if attrs.get("transpose_b"):
        bd[-1], bd[-2] = bd[-2], bd[-1]
    inner_a, inner_b = ad[-1], bd[-2]
    if inner_a is not None and inner_b is not None and inner_a != inner_b:
        raise ShapeError("matmul inner dims differ: %s @ %s" % (a, b))
    batch_a, batch_b = ad[:-2], bd[:-2]
    # Broadcast batch dims.
    while len(batch_a) < len(batch_b):
        batch_a.insert(0, 1)
    while len(batch_b) < len(batch_a):
        batch_b.insert(0, 1)
    batch = []
    for da, db in zip(batch_a, batch_b):
        if da == 1:
            batch.append(db)
        elif db == 1 or da == db:
            batch.append(da)
        elif da is None or db is None:
            batch.append(None)
        else:
            raise ShapeError("matmul batch dims differ: %s @ %s" % (a, b))
    return [(Shape(batch + [ad[-2], bd[-1]]), out_dtype)]


MATMUL = register_op("matmul", kernel=_matmul_kernel,
                     shape_fn=_matmul_shape_fn)

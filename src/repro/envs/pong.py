"""A simplified Pong environment (PPO workload substrate).

The real evaluation uses Atari Pong through gym; the DRL code path only
needs an episodic environment with image-like observations, a discrete
action space, and occasionally-sparse rewards.  This paddle-vs-wall Pong
provides all three with cheap, deterministic physics: the agent's paddle
moves up/down/stays to intercept a bouncing ball; a hit scores +1, a
miss scores -1 and ends the rally; an episode is ``rallies`` rallies.
"""

import numpy as np


class PongLite:
    observation_shape = (16, 16, 1)
    num_actions = 3  # stay, up, down

    def __init__(self, seed=0, rallies=5, paddle_height=4):
        self._rng = np.random.default_rng(seed)
        self.rallies = rallies
        self.paddle_height = paddle_height
        self.size = 16
        self._reset_rally()
        self.rallies_played = 0

    def _reset_rally(self):
        self.ball = np.array([self.size // 2, self.size // 2], np.float32)
        angle = self._rng.uniform(-0.7, 0.7)
        self.vel = np.array([1.0, np.tan(angle)], np.float32)
        self.paddle = self.size // 2

    def reset(self):
        self._reset_rally()
        self.rallies_played = 0
        return self._observation()

    def _observation(self):
        frame = np.zeros(self.observation_shape, np.float32)
        by, bx = int(np.clip(self.ball[1], 0, self.size - 1)), \
            int(np.clip(self.ball[0], 0, self.size - 1))
        frame[by, bx, 0] = 1.0
        top = int(np.clip(self.paddle - self.paddle_height // 2, 0,
                          self.size - self.paddle_height))
        frame[top:top + self.paddle_height, self.size - 1, 0] = 0.5
        return frame

    def step(self, action):
        if action == 1:
            self.paddle = max(self.paddle_height // 2, self.paddle - 1)
        elif action == 2:
            self.paddle = min(self.size - self.paddle_height // 2,
                              self.paddle + 1)
        self.ball += self.vel
        # bounce off top/bottom and the left wall
        if self.ball[1] <= 0 or self.ball[1] >= self.size - 1:
            self.vel[1] = -self.vel[1]
            self.ball[1] = np.clip(self.ball[1], 0, self.size - 1)
        if self.ball[0] <= 0:
            self.vel[0] = -self.vel[0]
            self.ball[0] = 0
        reward = 0.0
        done = False
        if self.ball[0] >= self.size - 1:
            hit = abs(self.ball[1] - self.paddle) <= self.paddle_height / 2
            reward = 1.0 if hit else -1.0
            self.rallies_played += 1
            if self.rallies_played >= self.rallies:
                done = True
            else:
                self._reset_rally()
        return self._observation(), reward, done, {}

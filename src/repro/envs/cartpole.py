"""CartPole physics reimplementation (OpenAI Gym classic control).

Standard cart-pole dynamics integrated with explicit Euler at 50 Hz; the
episode terminates when the pole exceeds 12 degrees or the cart leaves
the track.  Interface mirrors gym's (reset/step) since that is all the
DRL workloads consume (paper footnote 7: the framework only handles
training; environment simulation is external).
"""

import math

import numpy as np


class CartPole:
    GRAVITY = 9.8
    CART_MASS = 1.0
    POLE_MASS = 0.1
    POLE_HALF_LENGTH = 0.5
    FORCE_MAG = 10.0
    DT = 0.02
    THETA_LIMIT = 12 * 2 * math.pi / 360
    X_LIMIT = 2.4

    observation_size = 4
    num_actions = 2

    def __init__(self, seed=0, max_steps=200):
        self._rng = np.random.default_rng(seed)
        self.max_steps = max_steps
        self.state = None
        self.steps = 0

    def reset(self):
        self.state = self._rng.uniform(-0.05, 0.05, size=4).astype(
            np.float32)
        self.steps = 0
        return self.state.copy()

    def step(self, action):
        x, x_dot, theta, theta_dot = self.state
        force = self.FORCE_MAG if action == 1 else -self.FORCE_MAG
        total_mass = self.CART_MASS + self.POLE_MASS
        pole_ml = self.POLE_MASS * self.POLE_HALF_LENGTH
        cos_t = math.cos(theta)
        sin_t = math.sin(theta)
        temp = (force + pole_ml * theta_dot ** 2 * sin_t) / total_mass
        theta_acc = (self.GRAVITY * sin_t - cos_t * temp) / (
            self.POLE_HALF_LENGTH *
            (4.0 / 3.0 - self.POLE_MASS * cos_t ** 2 / total_mass))
        x_acc = temp - pole_ml * theta_acc * cos_t / total_mass
        x += self.DT * x_dot
        x_dot += self.DT * x_acc
        theta += self.DT * theta_dot
        theta_dot += self.DT * theta_acc
        self.state = np.array([x, x_dot, theta, theta_dot], np.float32)
        self.steps += 1
        done = (abs(x) > self.X_LIMIT or abs(theta) > self.THETA_LIMIT or
                self.steps >= self.max_steps)
        return self.state.copy(), 1.0, done, {}

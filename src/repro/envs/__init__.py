"""RL environments used by the DRL workloads (A3C, PPO)."""

from .cartpole import CartPole
from .pong import PongLite

__all__ = ["CartPole", "PongLite"]

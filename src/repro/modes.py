"""Execution-mode factories shared by benchmarks, examples, and tests.

One imperative loss function drives four frameworks (the columns of the
paper's evaluation):

* ``imperative`` — TF-Eager analogue: eager ops + gradient tape.
* ``janus``      — speculative graph conversion (this paper).
* ``symbolic``   — TF-1 analogue: the same (mode-polymorphic) code is run
  once under a :class:`GraphBuilder` with placeholder inputs, producing a
  static graph with autodiff and optimizer update ops; Python loops
  unroll at build time, exactly like hand-written TF-1 code.  Graphs are
  cached per input-shape signature, so shape-varying workloads (TreeNNs)
  pay a rebuild per new signature — the pre-processing cost the paper
  mentions for graph-based TreeNN implementations.
* ``tracing``    — the defun-like trace-based converter (unsafe).
"""

import numpy as np

from . import janus as janus_module
from .baselines.tracing import trace_function
from .graph.builder import GraphBuilder
from .graph.executor import GraphExecutor, _externalize
from .graph import autodiff
from .graph.passes import PassManager
from .imperative.eager import Tensor
from .imperative.tape import GradientTape
from .tensor import TensorValue

MODES = ("imperative", "janus", "symbolic", "tracing")


class ImperativeStep:
    """Eager training step: tape, gradients, optimizer."""

    def __init__(self, loss_fn, optimizer=None):
        self.loss_fn = loss_fn
        self.optimizer = optimizer

    def __call__(self, *args):
        from .janus.api import _ensure_tensor
        args = tuple(_ensure_tensor(a) for a in args)
        if self.optimizer is None:
            return self.loss_fn(*args)
        with GradientTape() as tape:
            result = self.loss_fn(*args)
        target = result[0] if isinstance(result, (tuple, list)) else result
        variables = list({id(v): v for v, _ in tape._var_reads}.values())
        grads = tape.gradient(target, variables)
        self.optimizer.apply_gradients(
            [(g, v) for g, v in zip(grads, variables) if g is not None])
        return result


class SymbolicStep:
    """TF-1-style step: build the graph once per input-shape signature."""

    def __init__(self, loss_fn, optimizer=None, parallel=True):
        self.loss_fn = loss_fn
        self.optimizer = optimizer
        self.parallel = parallel
        self._cache = {}
        self.builds = 0

    @staticmethod
    def _signature(args):
        sig = []
        for a in args:
            arr = _to_array(a)
            if arr is None:
                # Non-tensor input (e.g. a parse tree): the TF-1 user
                # builds a graph per structure — key by identity.
                sig.append(("pyobj", id(a)))
            else:
                sig.append((str(arr.dtype), arr.shape))
        return tuple(sig)

    def _build(self, args):
        self.builds += 1
        builder = GraphBuilder(name="symbolic_step")
        with builder:
            placeholders = []
            self._feed_mask = []
            for i, a in enumerate(args):
                arr = _to_array(a)
                if arr is None:
                    placeholders.append(a)   # burned into the graph
                    self._feed_mask.append(False)
                    continue
                placeholders.append(builder.placeholder(
                    "arg_%d" % i, shape=arr.shape,
                    dtype=TensorValue.of(arr).dtype))
                self._feed_mask.append(True)
            result = self.loss_fn(*placeholders)
            flat = list(result) if isinstance(result, (tuple, list)) \
                else [result]
            if self.optimizer is not None:
                var_grads = autodiff.add_training_gradients(builder,
                                                            flat[0])
                pairs = [(g, v) for v, g in var_grads.items()]
                self.optimizer.apply_gradients(pairs)
            builder.mark_outputs(flat)
        PassManager().run(builder.graph)
        return GraphExecutor(builder.graph, parallel=self.parallel), \
            isinstance(result, (tuple, list))

    def __call__(self, *args):
        sig = self._signature(args)
        entry = self._cache.get(sig)
        if entry is None:
            entry = self._build(args)
            self._cache[sig] = entry
        executor, multi = entry
        flat = executor.run([_to_array(a) for a, keep in
                             zip(args, self._feed_mask) if keep])
        outs = [_externalize(v) for v in flat]
        return tuple(outs) if multi else outs[0]


def _to_array(value):
    if isinstance(value, Tensor):
        return value.value.array
    if isinstance(value, np.ndarray):
        return value
    if isinstance(value, (bool, int, float)):
        return TensorValue.of(value).array
    return None


def make_step(loss_fn, optimizer=None, mode="janus", config=None,
              parallel=True):
    """Build a training/eval step callable for one execution mode."""
    if mode == "imperative":
        return ImperativeStep(loss_fn, optimizer)
    if mode == "janus":
        return janus_module.function(loss_fn, optimizer=optimizer,
                                     config=config)
    if mode == "symbolic":
        return SymbolicStep(loss_fn, optimizer, parallel=parallel)
    if mode == "tracing":
        return trace_function(loss_fn, optimizer=optimizer)
    raise ValueError("unknown mode %r (choose from %s)" % (mode, MODES))

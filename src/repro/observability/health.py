"""Per-function speculation-health attribution for JANUS.

The paper's execution model (§4.2–4.4) is a loop: profile the
imperative function, speculatively specialize a graph, guard every
assumption at runtime, fall back to imperative execution when a guard
trips, relax the failed assumption, and regenerate.  Counters tell you
*that* this loop ran; this module tells you *where* and *whether it is
working*: which assumption at which site keeps failing, what each
fallback and recompile cost, and whether a function has converged to
stable graph execution or is thrashing between specializations.

Everything is keyed by ``(function, site, assumption kind)``.  A *site*
is the profiler's site key — a tuple rooted at the function key with
the AST path appended (e.g. ``(fkey, "attr", "h.scale")``) — or a guard
debug name when no profiler site is attached.  The registry is updated
by the runtime (``janus/api.py``, ``janus/profiler.py``,
``janus/cache.py``, ``janus/graphgen.py``) only when ``METRICS`` is
enabled, so its level-0 cost is the same one-attribute-load gate as the
histogram registry.

State model per function (reported by :attr:`SpeculationHealth.state`):

* ``imperative-only`` — conversion failed; JANUS gave up on this
  function permanently.
* ``partial`` — whole-function conversion failed but the function runs
  under a Terra-style co-execution plan (docs/coexecution.md): symbolic
  fragments interleaved with imperative gaps.  ``converted_ratio``
  reports the fraction of body operations running symbolically.
* ``profiling`` — still in the initial profiling runs; no graph yet.
* ``converged`` — the most recent :data:`CONVERGED_RUNS` calls all ran
  the compiled graph without a guard failure.
* ``thrashing`` — at least :data:`THRASH_DISRUPTIONS` of the last
  :data:`RECENT_WINDOW` calls were disrupted (guard failure + fallback,
  or a recompile): the function keeps paying specialization cost
  without settling.
* ``specialized`` — a graph exists and runs, but neither streak above
  applies yet (e.g. warming back up after a relaxation).
"""

import threading
from collections import deque

#: Consecutive undisrupted graph runs required to report "converged".
CONVERGED_RUNS = 5
#: Sliding window of recent calls inspected for thrashing.
RECENT_WINDOW = 32
#: Disrupted calls within the window that flip the state to "thrashing".
THRASH_DISRUPTIONS = 4
#: Max retained relax-chain entries / failure-chain entries per site.
MAX_CHAIN = 32


def site_key(site):
    """Canonical string for an assumption site (tuples stay readable)."""
    if isinstance(site, tuple):
        return "/".join(str(part) for part in site)
    return str(site)


class SiteHealth:
    """One assumption site of one function: failures, relaxations, costs."""

    __slots__ = ("site", "kind", "failures", "relaxations", "relax_chain",
                 "fallback_count", "fallback_total", "recompile_count",
                 "recompile_total", "fragments_reused",
                 "fragments_reconverted", "last_guard")

    def __init__(self, site, kind=None):
        self.site = site
        self.kind = kind                 # assumption kind: attr/branch/...
        self.failures = 0                # guard trips at this site
        self.relaxations = 0             # spec relaxations applied here
        self.relax_chain = []            # [{"action", "detail"}, ...]
        self.fallback_count = 0          # fallbacks attributed here
        self.fallback_total = 0.0        # measured imperative-rerun seconds
        self.recompile_count = 0         # regenerations attributed here
        self.recompile_total = 0.0       # measured graphgen seconds
        self.fragments_reused = 0        # splices accepted at this site
        self.fragments_reconverted = 0   # splices rejected → reconverted
        self.last_guard = None           # human guard description

    @property
    def fragment_reuse_ratio(self):
        """Accepted / attempted fragment splices at this site (None if
        regeneration never touched it)."""
        attempts = self.fragments_reused + self.fragments_reconverted
        if not attempts:
            return None
        return self.fragments_reused / attempts

    def snapshot(self):
        return {
            "site": site_key(self.site),
            "kind": self.kind,
            "failures": self.failures,
            "relaxations": self.relaxations,
            "relax_chain": list(self.relax_chain),
            "fallback_count": self.fallback_count,
            "fallback_total": self.fallback_total,
            "recompile_count": self.recompile_count,
            "recompile_total": self.recompile_total,
            "fragments_reused": self.fragments_reused,
            "fragments_reconverted": self.fragments_reconverted,
            "fragment_reuse_ratio": self.fragment_reuse_ratio,
            "last_guard": self.last_guard,
        }

    @classmethod
    def from_snapshot(cls, snap):
        sh = cls(snap.get("site", "?"), snap.get("kind"))
        sh.failures = int(snap.get("failures", 0))
        sh.relaxations = int(snap.get("relaxations", 0))
        sh.relax_chain = list(snap.get("relax_chain", ()))[:MAX_CHAIN]
        sh.fallback_count = int(snap.get("fallback_count", 0))
        sh.fallback_total = float(snap.get("fallback_total", 0.0))
        sh.recompile_count = int(snap.get("recompile_count", 0))
        sh.recompile_total = float(snap.get("recompile_total", 0.0))
        sh.fragments_reused = int(snap.get("fragments_reused", 0))
        sh.fragments_reconverted = int(snap.get("fragments_reconverted", 0))
        sh.last_guard = snap.get("last_guard")
        return sh


class SpeculationHealth:
    """Live health model for one ``janus.function``.

    Thread-safe: every ``record_*`` mutator and ``snapshot`` run under a
    per-function lock, so concurrent callers (N serving threads sharing
    one function) never lose an increment or serialize a half-updated
    failure chain.  RLock because the recording paths call :meth:`site`
    internally.
    """

    def __init__(self, name):
        self._lock = threading.RLock()
        self.name = name
        self.calls = 0
        self.graph_runs = 0
        self.imperative_runs = 0        # profiling + fallback + non-convert
        self.profile_runs = 0
        self.fallbacks = 0
        self.graphs_generated = 0
        self.recompiles = 0             # regenerations after the first build
        self.cache_evictions = 0
        self.cache_invalidations = 0
        self.lowered_graphs = 0         # generations that produced a
                                        # lowered program
        self.lowering_bailouts = 0      # generations that fell back to
                                        # the node-walking executor
        self.fused_ops = 0              # elementwise ops collapsed, total
        self.last_lowering_bailout = None
        self.imperative_only = False
        self.coexec_runs = 0            # calls served by a co-exec plan
        self.coexec_fragment_runs = 0   # symbolic fragment graph runs
        #: Weighted fraction of body ops inside symbolic fragments
        #: (None until the first co-executed call reports it).
        self.converted_ratio = None
        self.consecutive_graph_runs = 0
        #: Sliding window of recent call outcomes: "graph", "profile",
        #: "fallback", "recompile", "imperative".
        self.recent = deque(maxlen=RECENT_WINDOW)
        #: Ordered record of guard failures: [{"site", "kind", "guard",
        #: "fallback_s", "recompile_s"}, ...] capped at MAX_CHAIN.
        self.failure_chain = []
        self.sites = {}                 # site_key(site) -> SiteHealth
        #: Failure site whose relaxation the *next* regeneration pays
        #: for — lets us attribute recompile cost to the assumption
        #: that caused it.
        self._pending_recompile_site = None

    # -- site table ----------------------------------------------------------

    def site(self, site, kind=None):
        key = site_key(site)
        with self._lock:
            sh = self.sites.get(key)
            if sh is None:
                sh = self.sites[key] = SiteHealth(site, kind)
            if kind is not None and sh.kind is None:
                sh.kind = kind
            return sh

    # -- derived signals -----------------------------------------------------

    @property
    def graph_hit_ratio(self):
        """Graph runs / total calls — the paper's headline health signal."""
        return self.graph_runs / self.calls if self.calls else 0.0

    @property
    def fragment_reuse_ratio(self):
        """Accepted / attempted fragment splices across all sites."""
        reused = sum(s.fragments_reused for s in self.sites.values())
        total = reused + sum(s.fragments_reconverted
                             for s in self.sites.values())
        return reused / total if total else None

    @property
    def state(self):
        if self.imperative_only:
            return "imperative-only"
        if self.coexec_runs:
            return "partial"
        if not self.graphs_generated:
            return "profiling"
        if self.consecutive_graph_runs >= CONVERGED_RUNS:
            return "converged"
        disruptions = sum(1 for outcome in self.recent
                          if outcome in ("fallback", "recompile"))
        if disruptions >= THRASH_DISRUPTIONS:
            return "thrashing"
        return "specialized"

    def diagnosis(self):
        """One-line 'why is this function in this state' explanation."""
        state = self.state
        if state == "imperative-only":
            return ("conversion failed; permanently running the imperative "
                    "path")
        if state == "partial":
            ratio = self.converted_ratio
            pct = "?" if ratio is None else "%.0f%%" % (ratio * 100.0)
            return ("partially converted (%s of ops symbolic): %d "
                    "co-executed calls, %d fragment graph runs"
                    % (pct, self.coexec_runs, self.coexec_fragment_runs))
        if state == "profiling":
            return ("still profiling (%d imperative runs, no graph yet)"
                    % self.profile_runs)
        if state == "converged":
            return ("stable: last %d calls ran the compiled graph without "
                    "a guard failure" % self.consecutive_graph_runs)
        if state == "thrashing":
            worst = self.worst_site()
            where = (" — worst site %s (%s, %d failures)"
                     % (site_key(worst.site), worst.kind or "?",
                        worst.failures)) if worst else ""
            return ("%d of the last %d calls were disrupted by guard "
                    "failures or recompiles%s"
                    % (sum(1 for o in self.recent
                           if o in ("fallback", "recompile")),
                       len(self.recent), where))
        return ("graph exists but not yet converged (%d consecutive "
                "graph runs, need %d)"
                % (self.consecutive_graph_runs, CONVERGED_RUNS))

    def worst_site(self):
        """The site with the most failures (None when none failed)."""
        failing = [s for s in self.sites.values() if s.failures]
        if not failing:
            return None
        return max(failing, key=lambda s: s.failures)

    # -- event recording (driven by the runtime) -----------------------------

    def record_call(self):
        with self._lock:
            self.calls += 1

    def record_graph_run(self):
        with self._lock:
            self.graph_runs += 1
            self.consecutive_graph_runs += 1
            self.recent.append("graph")

    def record_profile_run(self):
        with self._lock:
            self.profile_runs += 1
            self.imperative_runs += 1
            self.consecutive_graph_runs = 0
            self.recent.append("profile")

    def record_imperative_run(self):
        with self._lock:
            self.imperative_runs += 1
            self.consecutive_graph_runs = 0
            self.recent.append("imperative")

    def record_failure(self, site, kind=None, guard=None):
        with self._lock:
            sh = self.site(site, kind)
            sh.failures += 1
            if guard is not None:
                sh.last_guard = guard
            self.consecutive_graph_runs = 0
            if len(self.failure_chain) < MAX_CHAIN:
                self.failure_chain.append({
                    "site": site_key(site), "kind": kind, "guard": guard,
                    "fallback_s": None, "recompile_s": None,
                })
            self._pending_recompile_site = site_key(site)

    def record_fallback(self, site, seconds, kind=None):
        with self._lock:
            sh = self.site(site, kind)
            sh.fallback_count += 1
            sh.fallback_total += seconds
            self.fallbacks += 1
            self.imperative_runs += 1
            self.consecutive_graph_runs = 0
            self.recent.append("fallback")
            for entry in reversed(self.failure_chain):
                if entry["site"] == site_key(site) \
                        and entry["fallback_s"] is None:
                    entry["fallback_s"] = seconds
                    break

    def record_relax(self, site, action, detail=None, kind=None):
        with self._lock:
            sh = self.site(site, kind)
            sh.relaxations += 1
            if len(sh.relax_chain) < MAX_CHAIN:
                sh.relax_chain.append({"action": action, "detail": detail})

    def record_generation(self, seconds, regeneration):
        with self._lock:
            self.graphs_generated += 1
            if regeneration:
                self.recompiles += 1
                self.recent.append("recompile")
                # A recompile disrupts the stable streak: a function that
                # regenerates on every call must never report "converged".
                self.consecutive_graph_runs = 0
                pending = self._pending_recompile_site
                self._pending_recompile_site = None
                if pending is not None and pending in self.sites:
                    sh = self.sites[pending]
                    sh.recompile_count += 1
                    sh.recompile_total += seconds
                    for entry in reversed(self.failure_chain):
                        if entry["site"] == pending \
                                and entry["recompile_s"] is None:
                            entry["recompile_s"] = seconds
                            break

    def record_lowering(self, lowered, fused_ops, reason=None):
        """One compile's lowering outcome (docs/lowering.md).

        ``lowered`` — whether a flat program was produced; ``fused_ops``
        — elementwise ops collapsed into fused kernels this compile;
        ``reason`` — bailout token when lowering fell back.
        """
        with self._lock:
            if lowered:
                self.lowered_graphs += 1
            else:
                self.lowering_bailouts += 1
                self.last_lowering_bailout = reason
            self.fused_ops += int(fused_ops)

    def record_fragment(self, site, reused):
        with self._lock:
            sh = self.site(site)
            if reused:
                sh.fragments_reused += 1
            else:
                sh.fragments_reconverted += 1

    def record_coexec_run(self, fragment_graph_runs, ratio=None):
        """One call served by the co-execution plan.

        ``fragment_graph_runs`` — compiled-graph executions across the
        plan's symbolic fragments during this call; ``ratio`` — the
        plan's current converted-op ratio (refinement shrinks it).
        """
        with self._lock:
            self.coexec_runs += 1
            self.coexec_fragment_runs += int(fragment_graph_runs)
            if ratio is not None:
                self.converted_ratio = float(ratio)
            self.consecutive_graph_runs = 0
            self.recent.append("coexec")

    def record_imperative_only(self):
        with self._lock:
            self.imperative_only = True

    def record_cache_eviction(self):
        with self._lock:
            self.cache_evictions += 1

    def record_cache_invalidation(self):
        with self._lock:
            self.cache_invalidations += 1

    # -- serialization -------------------------------------------------------

    def snapshot(self):
        with self._lock:
            return self._snapshot_locked()

    def _snapshot_locked(self):
        return {
            "name": self.name,
            "state": self.state,
            "diagnosis": self.diagnosis(),
            "calls": self.calls,
            "graph_runs": self.graph_runs,
            "imperative_runs": self.imperative_runs,
            "profile_runs": self.profile_runs,
            "fallbacks": self.fallbacks,
            "graphs_generated": self.graphs_generated,
            "recompiles": self.recompiles,
            "cache_evictions": self.cache_evictions,
            "cache_invalidations": self.cache_invalidations,
            "lowered_graphs": self.lowered_graphs,
            "lowering_bailouts": self.lowering_bailouts,
            "fused_ops": self.fused_ops,
            "last_lowering_bailout": self.last_lowering_bailout,
            "imperative_only": self.imperative_only,
            "coexec_runs": self.coexec_runs,
            "coexec_fragment_runs": self.coexec_fragment_runs,
            "converted_ratio": self.converted_ratio,
            "consecutive_graph_runs": self.consecutive_graph_runs,
            "graph_hit_ratio": self.graph_hit_ratio,
            "fragment_reuse_ratio": self.fragment_reuse_ratio,
            "recent": list(self.recent),
            "failure_chain": list(self.failure_chain),
            "sites": {key: sh.snapshot()
                      for key, sh in sorted(self.sites.items())},
        }

    @classmethod
    def from_snapshot(cls, snap):
        health = cls(snap.get("name", "?"))
        for field in ("calls", "graph_runs", "imperative_runs",
                      "profile_runs", "fallbacks", "graphs_generated",
                      "recompiles", "cache_evictions",
                      "cache_invalidations", "consecutive_graph_runs",
                      "lowered_graphs", "lowering_bailouts", "fused_ops",
                      # Absent from pre-co-execution bundles: default 0.
                      "coexec_runs", "coexec_fragment_runs"):
            setattr(health, field, int(snap.get(field, 0)))
        ratio = snap.get("converted_ratio")
        health.converted_ratio = float(ratio) if ratio is not None else None
        health.last_lowering_bailout = snap.get("last_lowering_bailout")
        health.imperative_only = bool(snap.get("imperative_only", False))
        health.recent.extend(snap.get("recent", ()))
        health.failure_chain = list(snap.get("failure_chain",
                                             ()))[:MAX_CHAIN]
        for key, site_snap in (snap.get("sites") or {}).items():
            health.sites[key] = SiteHealth.from_snapshot(site_snap)
        return health


class HealthRegistry:
    """All per-function health models in the process."""

    def __init__(self):
        self._functions = {}
        self._lock = threading.Lock()

    def function(self, name):
        """The (created-on-demand) health model for a function name."""
        health = self._functions.get(name)
        if health is None:
            with self._lock:
                health = self._functions.setdefault(
                    name, SpeculationHealth(name))
        return health

    def get(self, name):
        return self._functions.get(name)

    def functions(self):
        """Health models, sorted by function name."""
        return [self._functions[name] for name in sorted(self._functions)]

    def snapshot(self):
        return {name: health.snapshot()
                for name, health in sorted(self._functions.items())}

    @classmethod
    def from_snapshot(cls, snap):
        registry = cls()
        for name, health_snap in (snap or {}).items():
            registry._functions[name] = SpeculationHealth.from_snapshot(
                health_snap)
        return registry

    def clear(self):
        with self._lock:
            self._functions.clear()

    def __len__(self):
        return len(self._functions)


#: The process-wide health registry; populated only while METRICS is
#: enabled.
HEALTH = HealthRegistry()


def get_health():
    return HEALTH


def format_health_table(registry):
    """Text table: one row per function with its headline signals.

    Accepts a :class:`HealthRegistry` (live or restored from snapshot);
    returns [] when nothing was recorded.
    """
    functions = registry.functions()
    if not functions:
        return []
    lines = [
        "  %-24s %-13s %6s %8s %9s %6s %6s %8s %8s"
        % ("function", "state", "calls", "hit%", "fallback", "recomp",
           "fail", "frag-re%", "lowered")]
    for health in functions:
        reuse = health.fragment_reuse_ratio
        failures = sum(s.failures for s in health.sites.values())
        generated = health.lowered_graphs + health.lowering_bailouts
        if not generated:
            lowered = "-"
        elif health.lowered_graphs:
            lowered = "%d/%d" % (health.lowered_graphs, generated)
            if health.fused_ops:
                lowered += "*"   # at least one fused kernel emitted
        else:
            lowered = health.last_lowering_bailout or "0/%d" % generated
        lines.append(
            "  %-24s %-13s %6d %7.1f%% %9d %6d %6d %8s %8s"
            % (health.name[:24], health.state, health.calls,
               health.graph_hit_ratio * 100.0, health.fallbacks,
               health.recompiles, failures,
               "-" if reuse is None else "%.0f%%" % (reuse * 100.0),
               lowered[:8]))
    return lines

"""Histogram/percentile metrics for the JANUS runtime.

The :class:`CounterRegistry` answers "how many / how much total"; this
module answers the fleet-health questions the speculate → guard →
fallback → relax loop raises in production: *what is the p99 graph-run
latency, how expensive is a fallback, how long does a recompile take?*

A :class:`Histogram` is a fixed set of log-spaced buckets (factor-2
growth from 1 µs to ~2 minutes) plus exact count/sum/min/max, so
percentile estimates interpolate within one bucket and are always
clamped to the observed range.  Fixed buckets make histograms from
independent runs (worker subprocesses, per-function registries)
**mergeable** the same way :class:`CounterRegistry` is — bucket counts
just add.

Design constraints mirror the tracer's:

1. **Near-zero overhead when disabled.**  Every instrumentation site
   first reads ``METRICS.enabled`` (a plain attribute) and only then
   takes timestamps or builds values; with the default (disabled) the
   cost per site is one attribute load and one truth test.
   :func:`disabled_site_cost` measures exactly that cost, and
   ``benchmarks/bench_observability_overhead.py`` gates it against the
   quickstart model's step time.
2. **Bounded memory.**  A histogram is ~30 integers regardless of how
   many observations it absorbs.
3. **Standard library only** — importable from any subsystem without
   cycles.

The process-wide singleton is :data:`METRICS`; the initial enablement
comes from the ``JANUS_METRICS`` environment variable.  Histogram names
used by the runtime (seconds unless noted):

* ``graph.run`` — top-level compiled-graph executions,
* ``graphgen.initial`` / ``graphgen.recompile`` — speculative graph
  generation + compilation, first build vs post-relaxation rebuilds,
* ``fallback.imperative`` — imperative runs forced by a failed runtime
  assumption (the measured *fallback cost*),
* ``guard.precheck`` — per-call cache precheck validation,
* ``guard.check`` — individual runtime assumption checks (AssertOp
  analogue) inside the graph executor,
* ``eager.dispatch`` — per-op eager dispatch latency,
* ``profile.run`` — instrumented imperative profiling runs.
"""

import os
import threading
import time
from bisect import bisect_right

_perf_counter = time.perf_counter

#: Shared log-spaced bucket upper bounds (seconds): 1 µs doubling up to
#: ~134 s, 28 buckets; values beyond the last bound land in an overflow
#: bucket.  Every histogram uses the same bounds so any two merge.
BUCKET_BOUNDS = tuple(1e-6 * (2.0 ** i) for i in range(28))


class Histogram:
    """Fixed log-bucket histogram with exact count/sum/min/max.

    Thread-safe: ``observe``/``merge``/``snapshot`` serialize on a
    per-histogram lock so concurrent callers (multi-tenant dispatch,
    the serving layer's queue-depth gauges) never lose counts or read a
    torn count/sum pair.
    """

    __slots__ = ("counts", "count", "total", "min", "max", "_lock")

    BOUNDS = BUCKET_BOUNDS

    def __init__(self):
        self.counts = [0] * (len(self.BOUNDS) + 1)   # +1 overflow bucket
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self._lock = threading.Lock()

    # -- recording -----------------------------------------------------------

    def observe(self, value):
        value = float(value)
        # bisect_right: value == bound goes to the next bucket, so bucket
        # i holds (BOUNDS[i-1], BOUNDS[i]].  Negative/zero clamps to 0.
        bucket = bisect_right(self.BOUNDS, value) if value > 0.0 else 0
        with self._lock:
            self.counts[bucket] += 1
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    # -- statistics ----------------------------------------------------------

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def percentile(self, q):
        """Estimate the q-th percentile (q in [0, 100]).

        Walks the cumulative bucket counts and interpolates linearly
        inside the bucket containing the rank; the estimate is clamped
        to the exact observed [min, max] so p0/p100 never stray outside
        real data.  Returns 0.0 on an empty histogram.
        """
        if not self.count:
            return 0.0
        rank = q / 100.0 * self.count
        cumulative = 0
        for i, n in enumerate(self.counts):
            if not n:
                continue
            if cumulative + n >= rank:
                lower = self.BOUNDS[i - 1] if i > 0 else 0.0
                upper = self.BOUNDS[i] if i < len(self.BOUNDS) \
                    else (self.max if self.max is not None else lower)
                fraction = (rank - cumulative) / n
                value = lower + (upper - lower) * min(max(fraction, 0.0),
                                                      1.0)
                break
            cumulative += n
        else:
            value = self.max if self.max is not None else 0.0
        if self.min is not None:
            value = max(value, self.min)
        if self.max is not None:
            value = min(value, self.max)
        return value

    def percentiles(self):
        """``{"p50": ..., "p95": ..., "p99": ...}`` in one pass."""
        return {"p50": self.percentile(50), "p95": self.percentile(95),
                "p99": self.percentile(99)}

    # -- aggregation ---------------------------------------------------------

    def merge(self, other):
        """Accumulate *other* into this histogram (same fixed buckets)."""
        snap = other.snapshot()
        with self._lock:
            for i, n in enumerate(snap["counts"]):
                self.counts[i] += n
            self.count += snap["count"]
            self.total += snap["sum"]
            if snap["min"] is not None and (self.min is None
                                            or snap["min"] < self.min):
                self.min = snap["min"]
            if snap["max"] is not None and (self.max is None
                                            or snap["max"] > self.max):
                self.max = snap["max"]
        return self

    def snapshot(self):
        """Plain-dict copy, JSON-serializable and restorable."""
        with self._lock:
            return {"counts": list(self.counts), "count": self.count,
                    "sum": self.total, "min": self.min, "max": self.max}

    @classmethod
    def from_snapshot(cls, snap):
        hist = cls()
        counts = list(snap.get("counts", ()))
        for i, n in enumerate(counts[:len(hist.counts)]):
            hist.counts[i] = int(n)
        hist.count = int(snap.get("count", sum(hist.counts)))
        hist.total = float(snap.get("sum", 0.0))
        hist.min = snap.get("min")
        hist.max = snap.get("max")
        return hist

    def __repr__(self):
        return "Histogram(count=%d, mean=%.3gs, max=%s)" % (
            self.count, self.mean, self.max)


class WindowedHistogram(Histogram):
    """A histogram that also answers "over the last W seconds".

    The cumulative-since-process-start statistics a plain
    :class:`Histogram` keeps cannot drive control decisions: the
    ROADMAP's adaptive-linger rung needs *recent* queue-wait
    percentiles, and an SLO dashboard needs p99 over the trailing
    minute, not the trailing week.  A ``WindowedHistogram`` keeps both:
    it *is* a cumulative :class:`Histogram` (so every existing
    consumer — merge, snapshot, ``format_histograms`` — keeps working),
    plus a fixed ring of ``slices`` sub-histograms, each covering
    ``window_s / slices`` seconds of wall time.

    Rotation is lazy and O(1): each observation computes its slice
    sequence number ``seq = int(now / slice_span)``; the ring slot
    ``seq % slices`` is reset when its stored sequence is stale.  The
    trailing-window view merges the slots whose sequence is within the
    last ``slices`` periods — expired slots are simply skipped, so an
    idle histogram decays to empty without a background thread.

    Memory is bounded at ``(slices + 1)`` bucket arrays.  The ring has
    its own lock; slice histograms have their own, so the (inherited,
    re-entrancy-unsafe) cumulative lock is never held while a slice is
    updated.
    """

    __slots__ = ("window_s", "slices", "_slice_span", "_ring", "_seqs",
                 "_ring_lock", "_clock")

    def __init__(self, window_s=60.0, slices=6, clock=None):
        super().__init__()
        if slices < 1:
            raise ValueError("WindowedHistogram needs >= 1 slice")
        self.window_s = float(window_s)
        self.slices = int(slices)
        self._slice_span = self.window_s / self.slices
        self._ring = [Histogram() for _ in range(self.slices)]
        self._seqs = [None] * self.slices
        self._ring_lock = threading.Lock()
        #: Injectable for tests; perf_counter in production.
        self._clock = clock if clock is not None else _perf_counter

    # -- recording -----------------------------------------------------------

    def observe(self, value):
        Histogram.observe(self, value)           # cumulative view
        seq = int(self._clock() / self._slice_span)
        slot = seq % self.slices
        with self._ring_lock:
            if self._seqs[slot] != seq:
                self._ring[slot] = Histogram()   # expired: start fresh
                self._seqs[slot] = seq
            hist = self._ring[slot]
        hist.observe(value)

    # -- trailing-window view ------------------------------------------------

    def window(self):
        """A merged :class:`Histogram` of the trailing window."""
        now_seq = int(self._clock() / self._slice_span)
        merged = Histogram()
        with self._ring_lock:
            live = [self._ring[i] for i in range(self.slices)
                    if self._seqs[i] is not None
                    and now_seq - self._seqs[i] < self.slices]
        for hist in live:
            merged.merge(hist)
        return merged

    def window_percentiles(self):
        """p50/p95/p99 over the trailing window plus its count."""
        win = self.window()
        stats = win.percentiles()
        stats["count"] = win.count
        return stats

    # -- serialization -------------------------------------------------------

    def snapshot(self):
        """Cumulative snapshot extended with the live window's merge.

        The window is point-in-time by nature, so it serializes as one
        merged sub-snapshot rather than the raw ring; a restored
        histogram reports the window as of when the snapshot was taken.
        """
        snap = super().snapshot()
        win = self.window()
        snap["window"] = {"window_s": self.window_s,
                          "slices": self.slices,
                          "merged": Histogram.snapshot(win)}
        return snap

    @classmethod
    def from_snapshot(cls, snap):
        win_meta = (snap or {}).get("window") or {}
        hist = cls(window_s=win_meta.get("window_s", 60.0),
                   slices=win_meta.get("slices", 6))
        counts = list(snap.get("counts", ()))
        for i, n in enumerate(counts[:len(hist.counts)]):
            hist.counts[i] = int(n)
        hist.count = int(snap.get("count", sum(hist.counts)))
        hist.total = float(snap.get("sum", 0.0))
        hist.min = snap.get("min")
        hist.max = snap.get("max")
        merged = win_meta.get("merged")
        if merged:
            # Park the restored window in slot 0 at the current seq so
            # window() reproduces the snapshot-time view for one span.
            seq = int(hist._clock() / hist._slice_span)
            hist._ring[0] = Histogram.from_snapshot(merged)
            hist._seqs[0] = seq
        return hist

    def __repr__(self):
        return "WindowedHistogram(count=%d, window=%gs/%d slices)" % (
            self.count, self.window_s, self.slices)


class _ScopedObservation:
    """Context manager observing its elapsed wall time into a histogram."""

    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry, name):
        self._registry = registry
        self._name = name

    def __enter__(self):
        self._start = _perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        self._registry.observe(self._name, _perf_counter() - self._start)
        return False


class _NullObservation:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_OBSERVATION = _NullObservation()


class MetricsRegistry:
    """Named histograms behind one cheap ``enabled`` gate.

    ``observe`` on a disabled registry returns immediately; hot
    instrumentation sites additionally pre-check ``METRICS.enabled``
    before taking timestamps, so a disabled site never calls
    ``perf_counter`` at all.  Enabled observations go through each
    histogram's internal lock, so concurrent callers never lose an
    increment — required now that N serving threads observe into the
    same histograms (the old plain-store fast path lost increments
    exactly the way the executor's retired ``_MEMO_COUNTS`` global did).
    """

    def __init__(self, enabled=False):
        #: Plain attribute read by every instrumentation site.
        self.enabled = bool(enabled)
        self._hists = {}
        self._lock = threading.Lock()

    # -- recording -----------------------------------------------------------

    def observe(self, name, value):
        """Record one observation (no-op while disabled)."""
        if not self.enabled:
            return
        hist = self._hists.get(name)
        if hist is None:
            with self._lock:
                hist = self._hists.setdefault(name, Histogram())
        hist.observe(value)

    def observe_windowed(self, name, value, window_s=60.0, slices=6):
        """Like :meth:`observe` but the histogram is windowed.

        First caller of a name fixes its window geometry; a name
        already registered as a plain histogram stays plain (the
        cumulative view is a superset, so mixed callers never lose
        data).
        """
        if not self.enabled:
            return
        hist = self._hists.get(name)
        if hist is None:
            with self._lock:
                hist = self._hists.setdefault(
                    name, WindowedHistogram(window_s=window_s,
                                            slices=slices))
        hist.observe(value)

    def timer(self, name):
        """Scoped timer observing a block's wall time (null if disabled)."""
        if not self.enabled:
            return _NULL_OBSERVATION
        return _ScopedObservation(self, name)

    # -- inspection ----------------------------------------------------------

    def get(self, name):
        """The named histogram, or None if nothing was observed."""
        return self._hists.get(name)

    def names(self):
        return sorted(self._hists)

    def percentiles(self, name):
        """p50/p95/p99 dict for one histogram ({} when absent)."""
        hist = self._hists.get(name)
        return hist.percentiles() if hist is not None else {}

    # -- aggregation ---------------------------------------------------------

    def merge(self, other):
        """Accumulate *other*'s histograms into this registry."""
        with self._lock:
            for name, hist in other._hists.items():
                mine = self._hists.get(name)
                if mine is None:
                    self._hists[name] = Histogram.from_snapshot(
                        hist.snapshot())
                else:
                    mine.merge(hist)
        return self

    def snapshot(self):
        """``{name: histogram snapshot dict}`` — JSON round-trippable."""
        return {name: hist.snapshot()
                for name, hist in sorted(self._hists.items())}

    @classmethod
    def from_snapshot(cls, snap):
        registry = cls(enabled=False)
        for name, hist_snap in (snap or {}).items():
            if isinstance(hist_snap, dict) and "window" in hist_snap:
                registry._hists[name] = WindowedHistogram.from_snapshot(
                    hist_snap)
            else:
                registry._hists[name] = Histogram.from_snapshot(hist_snap)
        return registry

    # -- control -------------------------------------------------------------

    def set_enabled(self, enabled):
        self.enabled = bool(enabled)

    def clear(self):
        with self._lock:
            self._hists.clear()

    def __len__(self):
        return len(self._hists)

    def __repr__(self):
        return "MetricsRegistry(%s, %d histograms)" % (
            "enabled" if self.enabled else "disabled", len(self._hists))


def format_histograms(registry, unit_scale=1e3, unit="ms"):
    """Text table of every histogram: count / mean / p50 / p95 / p99 / max.

    Used by both ``text_summary`` and the ``janus-stats`` CLI; returns
    [] when nothing was observed.
    """
    lines = []
    for name in registry.names():
        hist = registry.get(name)
        if hist is None or not hist.count:
            continue
        pct = hist.percentiles()
        lines.append(
            "  %-24s %7d obs  mean %9.3f  p50 %9.3f  p95 %9.3f  "
            "p99 %9.3f  max %9.3f %s"
            % (name, hist.count, hist.mean * unit_scale,
               pct["p50"] * unit_scale, pct["p95"] * unit_scale,
               pct["p99"] * unit_scale, (hist.max or 0.0) * unit_scale,
               unit))
    return lines


def _env_enabled():
    raw = os.environ.get("JANUS_METRICS", "").strip().lower()
    return raw not in ("", "0", "false", "off", "no")


#: The process-wide metrics registry.  Hot paths hold module-level
#: references; it is never replaced, only toggled or cleared.
METRICS = MetricsRegistry(enabled=_env_enabled())


def get_metrics():
    return METRICS


def metrics_enabled():
    return METRICS.enabled


def set_metrics_enabled(enabled):
    """Toggle histogram/health collection; returns the previous setting."""
    previous = METRICS.enabled
    METRICS.set_enabled(enabled)
    return previous


def disabled_site_cost(iterations=200_000):
    """Measured per-site cost (seconds) of a *disabled* metrics gate.

    Times the exact operation every level-0 instrumentation site
    performs — one attribute load plus one truth test on the global
    registry — minus the loop overhead of an empty loop of the same
    length.  The observability overhead gate multiplies this by a
    conservative per-step site count and bounds it against the model's
    step time; if a future change makes the disabled path allocate or
    lock, this number jumps and the gate fails.
    """
    registry = MetricsRegistry(enabled=False)
    r = range(iterations)
    start = _perf_counter()
    for _ in r:
        if registry.enabled:
            raise AssertionError("unreachable")
    gated = _perf_counter() - start
    start = _perf_counter()
    for _ in r:
        pass
    empty = _perf_counter() - start
    return max(gated - empty, 0.0) / iterations

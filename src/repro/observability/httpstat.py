"""``python -m repro.observability.httpstat`` — live stats endpoint.

A minimal scrape target for serving workers and the ``warmstart``
fleet: a daemon HTTP server (standard-library ``http.server``, no new
dependencies) exposing the live in-process registries while the
workload runs.

Endpoints:

* ``/metrics``  — Prometheus text exposition
  (:func:`repro.observability.cli.prometheus_text` over the live
  registries; scrape-ready),
* ``/health``   — speculation-health JSON: per-function state /
  diagnosis / hit ratio plus the serving layer's windowed SLO view
  (request-latency and queue-wait percentiles over the trailing
  window, rejection rate),
* ``/requests`` — the flight recorder's post-mortem exemplars (the N
  slowest and all failed/fallback requests, with their captured
  spans),
* ``/``         — a plain-text index.

Embed it in a serving process::

    from repro.observability.httpstat import StatsServer
    stats = StatsServer(port=9095)          # port=0 picks an ephemeral one
    stats.start()
    ... serve traffic ...
    stats.stop()

or run standalone against a demo workload (used by ``make stats-serve``)::

    python -m repro.observability.httpstat --port 0 --smoke

``--smoke`` starts the server on an ephemeral port, drives a small
serving workload in-process so every registry is populated, scrapes
``/metrics`` and ``/health`` over real HTTP, asserts both parse, and
exits 0 — the CI gate that the live endpoint actually serves.
"""

import argparse
import json
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .cli import prometheus_text
from .health import HEALTH
from .metrics import WindowedHistogram
from .reqtrace import RECORDER
from .serving import SERVING

__all__ = ["StatsServer", "health_payload", "main"]


def health_payload():
    """The ``/health`` JSON: speculation + serving health, live."""
    functions = []
    for fn in HEALTH.functions():
        functions.append({
            "name": fn.name,
            "state": fn.state,
            "diagnosis": fn.diagnosis(),
            "calls": fn.calls,
            "graph_runs": fn.graph_runs,
            "graph_hit_ratio": fn.graph_hit_ratio,
            "fallbacks": fn.fallbacks,
            "recompiles": fn.recompiles,
        })
    serving = {
        "requests": SERVING.requests,
        "rejected": SERVING.rejected,
        "rejection_rate": SERVING.rejection_rate,
        "batches": SERVING.batches,
        "active_clients": SERVING.active_clients,
        "recompiles_in_flight": SERVING.recompiles_in_flight,
    }
    for name, hist in (("queue_wait", SERVING.queue_wait),
                       ("request_latency_ok",
                        SERVING.request_latency.get("ok")),
                       ("request_latency_rejected",
                        SERVING.request_latency.get("rejected"))):
        if isinstance(hist, WindowedHistogram):
            serving["%s_window" % name] = hist.window_percentiles()
    return {
        "status": "ok",
        "functions": functions,
        "serving": serving,
        "requests_recorded": RECORDER.completed,
        "requests_failed": RECORDER.failures,
    }


class _StatsHandler(BaseHTTPRequestHandler):
    """Routes the three read-only endpoints; everything else is 404."""

    server_version = "janus-httpstat/1"

    def do_GET(self):
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/metrics":
            body = prometheus_text().encode("utf-8")
            ctype = "text/plain; version=0.0.4; charset=utf-8"
        elif path == "/health":
            body = (json.dumps(health_payload(), indent=1) + "\n") \
                .encode("utf-8")
            ctype = "application/json"
        elif path == "/requests":
            body = (json.dumps(RECORDER.snapshot(), indent=1) + "\n") \
                .encode("utf-8")
            ctype = "application/json"
        elif path == "/":
            body = (b"janus-httpstat: /metrics (prometheus), "
                    b"/health (json), /requests (json)\n")
            ctype = "text/plain; charset=utf-8"
        else:
            self.send_error(404, "no such endpoint (try /metrics, "
                                 "/health, /requests)")
            return
        self.send_response(200)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt, *args):   # quiet by default
        pass


class StatsServer:
    """A daemon-threaded live stats server over the global registries."""

    def __init__(self, host="127.0.0.1", port=0):
        self.host = host
        self._requested_port = port
        self._httpd = None
        self._thread = None

    def start(self):
        if self._httpd is not None:
            return self
        self._httpd = ThreadingHTTPServer(
            (self.host, self._requested_port), _StatsHandler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="janus-httpstat", daemon=True)
        self._thread.start()
        return self

    @property
    def port(self):
        """The bound port (resolves port=0 to the ephemeral choice)."""
        return self._httpd.server_address[1] if self._httpd else None

    @property
    def url(self):
        return "http://%s:%s" % (self.host, self.port)

    def stop(self):
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(5.0)
        self._httpd = None
        self._thread = None

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False


# -- smoke workload + CLI ----------------------------------------------------

def _drive_demo_workload():
    """Populate every registry with a tiny real serving run."""
    import numpy as np

    import repro as R
    from repro import janus
    from repro.observability import set_metrics_enabled
    from repro.serving import Server, ServingConfig

    set_metrics_enabled(True)

    @janus.function(config=janus.JanusConfig(profile_runs=1))
    def predict(x):
        return R.reduce_sum(x * 2.0, axis=1)

    with Server(ServingConfig(max_batch_size=4,
                              batch_linger_s=0.001)) as server:
        server.register("predict", predict)
        rng = np.random.default_rng(0)
        for _ in range(12):
            server.call("predict", R.constant(
                rng.standard_normal((2, 4)).astype(np.float32)))


def _fetch(url, timeout=10.0):
    from urllib.request import urlopen
    with urlopen(url, timeout=timeout) as resp:
        return resp.read().decode("utf-8")


def _smoke(server):
    """Scrape /metrics and /health over HTTP; raise on anything empty."""
    _drive_demo_workload()
    metrics = _fetch(server.url + "/metrics")
    samples = [line for line in metrics.splitlines()
               if line and not line.startswith("#")]
    if not samples:
        raise AssertionError("/metrics served no samples")
    health = json.loads(_fetch(server.url + "/health"))
    if health.get("status") != "ok" or not health.get("functions"):
        raise AssertionError("/health missing function health: %r"
                             % health)
    requests = json.loads(_fetch(server.url + "/requests"))
    if not requests.get("completed"):
        raise AssertionError("/requests recorded no requests")
    print("httpstat smoke ok: %d metric samples, %d functions, "
          "%d requests recorded"
          % (len(samples), len(health["functions"]),
             requests["completed"]))


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.observability.httpstat",
        description="Serve live janus stats over HTTP "
                    "(/metrics, /health, /requests).")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=9095,
                        help="0 picks an ephemeral port")
    parser.add_argument(
        "--smoke", action="store_true",
        help="drive a demo workload, scrape /metrics and /health once, "
             "then exit (CI gate)")
    args = parser.parse_args(argv)

    server = StatsServer(host=args.host, port=args.port)
    server.start()
    print("janus-httpstat listening on %s" % server.url, file=sys.stderr)
    try:
        if args.smoke:
            _smoke(server)
            return 0
        threading.Event().wait()     # serve until interrupted
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


if __name__ == "__main__":
    sys.exit(main())

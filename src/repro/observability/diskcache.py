"""Disk-compile-cache metrics: loads, misses by kind, bytes on disk.

The persistent cross-process compile cache (:mod:`repro.janus.diskcache`)
turns cold-start compilation into a one-time fleet cost — provided warm
workers actually hit.  This registry answers the operational questions
that design raises:

* **loads** — probe attempts, hits, and misses broken down by *why*
  (``absent``, ``corrupt``, ``version``, ``key_mismatch``, ``unpickle``,
  ``rebuild``): a fleet whose misses skew ``version`` is mid-rollout,
  one skewing ``corrupt`` has a storage problem,
* **stores** — artifacts published, bytes written, publishes skipped
  because the artifact pins process-local state (see
  ``diskcache.store_skipped.*`` counters for the reason taxonomy),
* **evictions** — LRU pressure against the size bound,
* **load latency** — the warm-start price actually paid (unpickle +
  re-fuse + re-lower), the number to compare against a cold compile.

Thread-safe like the other registries and snapshot/restore round-trips
through the ``janus-stats`` bundle.  The process-wide singleton is
:data:`DISKCACHE`; populated by the store regardless of
``METRICS.enabled`` — a worker with a cache dir configured wants its
hit ratio even with latency histograms off.
"""

import threading

from .metrics import Histogram

__all__ = ["DISKCACHE", "DiskCacheStats", "format_diskcache_table",
           "get_diskcache"]


class DiskCacheStats:
    """Aggregated disk-compile-cache signals for one process."""

    def __init__(self):
        self._lock = threading.Lock()
        self.loads = 0               # probe attempts
        self.hits = 0
        self.miss_reasons = {}       # reason kind -> count
        self.stores = 0              # artifacts published
        self.store_bytes = 0         # total payload bytes written
        self.store_skips = 0         # unportable artifacts not published
        self.evictions = 0           # entries dropped by the LRU bound
        self.bytes_on_disk = 0       # gauge: sampled at probe/publish
        self.entries_on_disk = 0     # gauge
        self.load_latency = Histogram()   # seconds per successful load

    # -- recording (driven by repro.janus.diskcache) -------------------------

    def record_hit(self, seconds):
        with self._lock:
            self.loads += 1
            self.hits += 1
        self.load_latency.observe(seconds)

    def record_miss(self, reason):
        with self._lock:
            self.loads += 1
            self.miss_reasons[reason] = self.miss_reasons.get(reason, 0) + 1

    def record_store(self, nbytes):
        with self._lock:
            self.stores += 1
            self.store_bytes += int(nbytes)

    def record_store_skip(self):
        with self._lock:
            self.store_skips += 1

    def record_evictions(self, count):
        with self._lock:
            self.evictions += int(count)

    def set_disk_usage(self, nbytes, entries):
        with self._lock:
            self.bytes_on_disk = int(nbytes)
            self.entries_on_disk = int(entries)

    # -- serialization -------------------------------------------------------

    def snapshot(self):
        with self._lock:
            snap = {
                "loads": self.loads,
                "hits": self.hits,
                "miss_reasons": dict(self.miss_reasons),
                "stores": self.stores,
                "store_bytes": self.store_bytes,
                "store_skips": self.store_skips,
                "evictions": self.evictions,
                "bytes_on_disk": self.bytes_on_disk,
                "entries_on_disk": self.entries_on_disk,
            }
        snap["load_latency"] = self.load_latency.snapshot()
        return snap

    @classmethod
    def from_snapshot(cls, snap):
        stats = cls()
        snap = snap or {}
        for field in ("loads", "hits", "stores", "store_bytes",
                      "store_skips", "evictions", "bytes_on_disk",
                      "entries_on_disk"):
            setattr(stats, field, int(snap.get(field, 0)))
        stats.miss_reasons = {str(k): int(v) for k, v in
                              (snap.get("miss_reasons") or {}).items()}
        if snap.get("load_latency"):
            stats.load_latency = Histogram.from_snapshot(
                snap["load_latency"])
        return stats

    def clear(self):
        with self._lock:
            self.loads = 0
            self.hits = 0
            self.miss_reasons = {}
            self.stores = 0
            self.store_bytes = 0
            self.store_skips = 0
            self.evictions = 0
            self.bytes_on_disk = 0
            self.entries_on_disk = 0
        self.load_latency = Histogram()

    def __repr__(self):
        return ("DiskCacheStats(loads=%d, hits=%d, stores=%d)"
                % (self.loads, self.hits, self.stores))


def format_diskcache_table(stats):
    """Text lines for the ``janus-stats`` disk-cache section.

    Returns [] when the process never touched a disk cache (section
    omitted, keeping default-off runs identical to older reports).
    """
    if not (stats.loads or stats.stores or stats.store_skips):
        return []
    misses = sum(stats.miss_reasons.values())
    lines = [
        "  loads: %d (%d hits, %d misses) | stores: %d (%.1f KiB, "
        "%d skipped unportable) | evictions: %d"
        % (stats.loads, stats.hits, misses, stats.stores,
           stats.store_bytes / 1024.0, stats.store_skips,
           stats.evictions)]
    if stats.miss_reasons:
        reasons = ", ".join(
            "%s: %d" % (kind, count) for kind, count in
            sorted(stats.miss_reasons.items(),
                   key=lambda item: (-item[1], item[0])))
        lines.append("  miss reasons: %s" % reasons)
    if stats.bytes_on_disk or stats.entries_on_disk:
        lines.append("  on disk: %d entries, %.1f KiB"
                     % (stats.entries_on_disk,
                        stats.bytes_on_disk / 1024.0))
    latency = stats.load_latency
    if latency.count:
        pct = latency.percentiles()
        lines.append(
            "  load latency: p50 %.2f ms  p95 %.2f ms  max %.2f ms"
            % (pct["p50"] * 1e3, pct["p95"] * 1e3,
               (latency.max or 0.0) * 1e3))
    return lines


#: The process-wide disk-cache stats; populated by
#: :mod:`repro.janus.diskcache`.
DISKCACHE = DiskCacheStats()


def get_diskcache():
    return DISKCACHE

"""Serving-layer metrics: admission, queueing, batching, and SLO signals.

The multi-tenant server (:mod:`repro.serving`) multiplexes N client
threads over shared ``janus.function`` endpoints.  The runtime-side
registries answer "is speculation healthy?"; this module answers the
capacity questions a serving deployment adds on top:

* **admission** — requests accepted vs rejected at the queue bound,
* **queueing** — queue depth seen by each arriving request and the wall
  time it waited before execution,
* **batching** — how many shape-compatible requests each dispatch
  coalesced (the dynamic-batching win is exactly this histogram's mean),
* **tenancy** — active / peak concurrent client threads,
* **recompiles in flight** — compile tickets currently owned, sampled
  from the endpoints' single-flight tables (the §4.3 recovery machinery
  under load),
* **end-to-end latency** — per-outcome (``ok`` / ``error`` /
  ``rejected``) request latency over a trailing window.

Queue-wait, batch-size, and request-latency histograms are
:class:`~repro.observability.metrics.WindowedHistogram`\\ s: cumulative
since start *and* answering "what was p95 over the last minute" — the
observed-percentile signal the ROADMAP's adaptive-linger rung trades
``batch_linger_s`` against.  Queue depth and batch size are unitless
counts in second-valued buckets, which is fine: percentile estimates
clamp to the observed min/max and the fixed buckets keep snapshots
mergeable.  Everything is thread-safe (the whole point of the layer) and
snapshot/restore round-trips through the ``janus-stats`` bundle like the
other registries.

Rejected requests are first-class: ``ServerOverloaded`` leaves no
queue-wait trace (it never enqueued), so admission control shows up
only in ``request_latency{outcome="rejected"}`` and the
:attr:`ServingStats.rejection_rate` — an overload you can alert on even
though the rejected work consumed almost no time.

The process-wide singleton is :data:`SERVING`; like the health registry
it is populated by the serving layer regardless of ``METRICS.enabled``
— a server that is up wants its admission stats even with latency
histograms off.
"""

import threading

from .metrics import Histogram, WindowedHistogram

__all__ = ["SERVING", "ServingStats", "format_serving_table",
           "get_serving"]

#: Request outcomes tracked by the per-outcome latency histograms.
OUTCOMES = ("ok", "error", "rejected")

#: Trailing-window geometry for the serving SLO histograms.
WINDOW_S = 60.0
WINDOW_SLICES = 6


def _windowed():
    return WindowedHistogram(window_s=WINDOW_S, slices=WINDOW_SLICES)


class ServingStats:
    """Aggregated serving-layer signals for one process."""

    def __init__(self):
        self._lock = threading.Lock()
        self.requests = 0            # accepted into the queue
        self.rejected = 0            # refused at the queue bound
        self.batches = 0             # dispatches (1 batch >= 1 request)
        self.batched_requests = 0    # requests that shared their batch
        self.active_clients = 0      # gauge: currently connected
        self.peak_clients = 0
        self.recompiles_in_flight = 0   # gauge: sampled from endpoints
        self.queue_depth = Histogram()       # depth at enqueue (count)
        self.batch_size = _windowed()        # requests per dispatch
        self.queue_wait = _windowed()        # seconds queued
        #: End-to-end submit → result latency, split by outcome.
        self.request_latency = {outcome: _windowed()
                                for outcome in OUTCOMES}

    # -- recording (driven by repro.serving) --------------------------------

    def client_started(self):
        with self._lock:
            self.active_clients += 1
            if self.active_clients > self.peak_clients:
                self.peak_clients = self.active_clients

    def client_finished(self):
        with self._lock:
            self.active_clients -= 1

    def record_enqueue(self, depth):
        """One request accepted; *depth* is the queue depth it saw."""
        with self._lock:
            self.requests += 1
        self.queue_depth.observe(depth)

    def record_reject(self, duration=0.0):
        """One request refused at the queue bound.

        The (near-zero) *duration* still lands in
        ``request_latency["rejected"]`` so rejection *rate* is visible
        in the same windowed family operators alert on.
        """
        with self._lock:
            self.rejected += 1
        self.request_latency["rejected"].observe(duration)

    def record_batch(self, size, waits=()):
        """One dispatch of *size* coalesced requests.

        *waits* are the per-request queue-wait seconds (enqueue →
        dispatch), observed into the ``queue_wait`` histogram.
        """
        with self._lock:
            self.batches += 1
            if size > 1:
                self.batched_requests += size
        self.batch_size.observe(size)
        for wait in waits:
            self.queue_wait.observe(wait)

    def record_request(self, duration, outcome="ok"):
        """One completed request's end-to-end latency."""
        hist = self.request_latency.get(outcome)
        if hist is None:
            hist = self.request_latency["error"]
        hist.observe(duration)

    def set_recompiles_in_flight(self, value):
        with self._lock:
            self.recompiles_in_flight = int(value)

    # -- derived -------------------------------------------------------------

    @property
    def rejection_rate(self):
        """Rejected / offered (0.0 with no traffic)."""
        offered = self.requests + self.rejected
        return self.rejected / offered if offered else 0.0

    # -- serialization -------------------------------------------------------

    def snapshot(self):
        with self._lock:
            snap = {
                "requests": self.requests,
                "rejected": self.rejected,
                "batches": self.batches,
                "batched_requests": self.batched_requests,
                "active_clients": self.active_clients,
                "peak_clients": self.peak_clients,
                "recompiles_in_flight": self.recompiles_in_flight,
            }
        snap["queue_depth"] = self.queue_depth.snapshot()
        snap["batch_size"] = self.batch_size.snapshot()
        snap["queue_wait"] = self.queue_wait.snapshot()
        snap["request_latency"] = {
            outcome: hist.snapshot()
            for outcome, hist in self.request_latency.items()}
        return snap

    @classmethod
    def from_snapshot(cls, snap):
        stats = cls()
        snap = snap or {}
        for field in ("requests", "rejected", "batches",
                      "batched_requests", "active_clients", "peak_clients",
                      "recompiles_in_flight"):
            setattr(stats, field, int(snap.get(field, 0)))
        if snap.get("queue_depth"):
            stats.queue_depth = Histogram.from_snapshot(snap["queue_depth"])
        for field in ("batch_size", "queue_wait"):
            if snap.get(field):
                setattr(stats, field, _hist_from_snapshot(snap[field]))
        # Legacy janus-stats/1 bundles predate request_latency: the
        # per-outcome histograms stay empty.
        for outcome, hist_snap in (snap.get("request_latency")
                                   or {}).items():
            if outcome in stats.request_latency and hist_snap:
                stats.request_latency[outcome] = _hist_from_snapshot(
                    hist_snap)
        return stats

    def clear(self):
        with self._lock:
            self.requests = 0
            self.rejected = 0
            self.batches = 0
            self.batched_requests = 0
            self.active_clients = 0
            self.peak_clients = 0
            self.recompiles_in_flight = 0
        self.queue_depth = Histogram()
        self.batch_size = _windowed()
        self.queue_wait = _windowed()
        self.request_latency = {outcome: _windowed()
                                for outcome in OUTCOMES}

    def __repr__(self):
        return ("ServingStats(requests=%d, batches=%d, active=%d)"
                % (self.requests, self.batches, self.active_clients))


def _hist_from_snapshot(snap):
    """Windowed when the snapshot carries a window; legacy plain else."""
    if isinstance(snap, dict) and "window" in snap:
        return WindowedHistogram.from_snapshot(snap)
    return Histogram.from_snapshot(snap)


def _fmt_window(hist, unit_scale=1e3):
    """``p50/p95 (n)`` triple over the trailing window, or None if idle."""
    if not isinstance(hist, WindowedHistogram):
        return None
    stats = hist.window_percentiles()
    if not stats["count"]:
        return None
    return (stats["p50"] * unit_scale, stats["p95"] * unit_scale,
            stats["count"])


def format_serving_table(stats):
    """Text lines for the ``janus-stats`` serving section.

    Returns [] when the server never saw a request (section omitted).
    """
    if not (stats.requests or stats.rejected or stats.active_clients):
        return []
    lines = [
        "  clients: %d active (peak %d) | requests: %d accepted, "
        "%d rejected (%.1f%% rejection) | recompiles in flight: %d"
        % (stats.active_clients, stats.peak_clients, stats.requests,
           stats.rejected, stats.rejection_rate * 100.0,
           stats.recompiles_in_flight)]
    depth = stats.queue_depth
    if depth.count:
        pct = depth.percentiles()
        lines.append(
            "  queue depth: p50 %.1f  p95 %.1f  max %.0f   queue wait: "
            "p50 %.3f ms  p95 %.3f ms"
            % (pct["p50"], pct["p95"], depth.max or 0.0,
               stats.queue_wait.percentile(50) * 1e3,
               stats.queue_wait.percentile(95) * 1e3))
    size = stats.batch_size
    if size.count:
        pct = size.percentiles()
        lines.append(
            "  batch size: %d dispatches, mean %.2f  p50 %.1f  p95 %.1f  "
            "max %.0f  (%d requests rode a shared batch)"
            % (size.count, size.mean, pct["p50"], pct["p95"],
               size.max or 0.0, stats.batched_requests))
    for outcome in OUTCOMES:
        hist = stats.request_latency.get(outcome)
        if hist is None or not hist.count:
            continue
        pct = hist.percentiles()
        line = ("  request latency[%s]: %d obs  p50 %.3f ms  p95 %.3f ms  "
                "p99 %.3f ms"
                % (outcome, hist.count, pct["p50"] * 1e3,
                   pct["p95"] * 1e3, pct["p99"] * 1e3))
        recent = _fmt_window(hist)
        if recent is not None:
            line += ("   window: p50 %.3f ms  p95 %.3f ms (%d obs)"
                     % recent)
        lines.append(line)
    wait_recent = _fmt_window(stats.queue_wait)
    if wait_recent is not None:
        lines.append(
            "  windowed queue wait: p50 %.3f ms  p95 %.3f ms (%d obs)"
            % wait_recent)
    return lines


#: The process-wide serving stats; populated by :mod:`repro.serving`.
SERVING = ServingStats()


def get_serving():
    return SERVING

"""Serving-layer metrics: admission, queueing, and batching signals.

The multi-tenant server (:mod:`repro.serving`) multiplexes N client
threads over shared ``janus.function`` endpoints.  The runtime-side
registries answer "is speculation healthy?"; this module answers the
capacity questions a serving deployment adds on top:

* **admission** — requests accepted vs rejected at the queue bound,
* **queueing** — queue depth seen by each arriving request and the wall
  time it waited before execution,
* **batching** — how many shape-compatible requests each dispatch
  coalesced (the dynamic-batching win is exactly this histogram's mean),
* **tenancy** — active / peak concurrent client threads,
* **recompiles in flight** — compile tickets currently owned, sampled
  from the endpoints' single-flight tables (the §4.3 recovery machinery
  under load).

Queue-depth and batch-size histograms reuse the log-bucket
:class:`~repro.observability.metrics.Histogram` — the values are
unitless counts rather than seconds, which is fine: percentile estimates
clamp to the observed min/max and the fixed buckets keep snapshots
mergeable.  Everything is thread-safe (the whole point of the layer) and
snapshot/restore round-trips through the ``janus-stats`` bundle like the
other registries.

The process-wide singleton is :data:`SERVING`; like the health registry
it is populated by the serving layer regardless of ``METRICS.enabled``
— a server that is up wants its admission stats even with latency
histograms off.
"""

import threading

from .metrics import Histogram

__all__ = ["SERVING", "ServingStats", "format_serving_table",
           "get_serving"]


class ServingStats:
    """Aggregated serving-layer signals for one process."""

    def __init__(self):
        self._lock = threading.Lock()
        self.requests = 0            # accepted into the queue
        self.rejected = 0            # refused at the queue bound
        self.batches = 0             # dispatches (1 batch >= 1 request)
        self.batched_requests = 0    # requests that shared their batch
        self.active_clients = 0      # gauge: currently connected
        self.peak_clients = 0
        self.recompiles_in_flight = 0   # gauge: sampled from endpoints
        self.queue_depth = Histogram()  # depth seen at enqueue (count)
        self.batch_size = Histogram()   # requests per dispatch (count)
        self.queue_wait = Histogram()   # seconds queued before dispatch

    # -- recording (driven by repro.serving) --------------------------------

    def client_started(self):
        with self._lock:
            self.active_clients += 1
            if self.active_clients > self.peak_clients:
                self.peak_clients = self.active_clients

    def client_finished(self):
        with self._lock:
            self.active_clients -= 1

    def record_enqueue(self, depth):
        """One request accepted; *depth* is the queue depth it saw."""
        with self._lock:
            self.requests += 1
        self.queue_depth.observe(depth)

    def record_reject(self):
        with self._lock:
            self.rejected += 1

    def record_batch(self, size, waits=()):
        """One dispatch of *size* coalesced requests.

        *waits* are the per-request queue-wait seconds (enqueue →
        dispatch), observed into the ``queue_wait`` histogram.
        """
        with self._lock:
            self.batches += 1
            if size > 1:
                self.batched_requests += size
        self.batch_size.observe(size)
        for wait in waits:
            self.queue_wait.observe(wait)

    def set_recompiles_in_flight(self, value):
        with self._lock:
            self.recompiles_in_flight = int(value)

    # -- serialization -------------------------------------------------------

    def snapshot(self):
        with self._lock:
            snap = {
                "requests": self.requests,
                "rejected": self.rejected,
                "batches": self.batches,
                "batched_requests": self.batched_requests,
                "active_clients": self.active_clients,
                "peak_clients": self.peak_clients,
                "recompiles_in_flight": self.recompiles_in_flight,
            }
        snap["queue_depth"] = self.queue_depth.snapshot()
        snap["batch_size"] = self.batch_size.snapshot()
        snap["queue_wait"] = self.queue_wait.snapshot()
        return snap

    @classmethod
    def from_snapshot(cls, snap):
        stats = cls()
        snap = snap or {}
        for field in ("requests", "rejected", "batches",
                      "batched_requests", "active_clients", "peak_clients",
                      "recompiles_in_flight"):
            setattr(stats, field, int(snap.get(field, 0)))
        for field in ("queue_depth", "batch_size", "queue_wait"):
            if snap.get(field):
                setattr(stats, field,
                        Histogram.from_snapshot(snap[field]))
        return stats

    def clear(self):
        with self._lock:
            self.requests = 0
            self.rejected = 0
            self.batches = 0
            self.batched_requests = 0
            self.active_clients = 0
            self.peak_clients = 0
            self.recompiles_in_flight = 0
        self.queue_depth = Histogram()
        self.batch_size = Histogram()
        self.queue_wait = Histogram()

    def __repr__(self):
        return ("ServingStats(requests=%d, batches=%d, active=%d)"
                % (self.requests, self.batches, self.active_clients))


def format_serving_table(stats):
    """Text lines for the ``janus-stats`` serving section.

    Returns [] when the server never saw a request (section omitted).
    """
    if not (stats.requests or stats.rejected or stats.active_clients):
        return []
    lines = [
        "  clients: %d active (peak %d) | requests: %d accepted, "
        "%d rejected | recompiles in flight: %d"
        % (stats.active_clients, stats.peak_clients, stats.requests,
           stats.rejected, stats.recompiles_in_flight)]
    depth = stats.queue_depth
    if depth.count:
        pct = depth.percentiles()
        lines.append(
            "  queue depth: p50 %.1f  p95 %.1f  max %.0f   queue wait: "
            "p50 %.3f ms  p95 %.3f ms"
            % (pct["p50"], pct["p95"], depth.max or 0.0,
               stats.queue_wait.percentile(50) * 1e3,
               stats.queue_wait.percentile(95) * 1e3))
    size = stats.batch_size
    if size.count:
        pct = size.percentiles()
        lines.append(
            "  batch size: %d dispatches, mean %.2f  p50 %.1f  p95 %.1f  "
            "max %.0f  (%d requests rode a shared batch)"
            % (size.count, size.mean, pct["p50"], pct["p95"],
               size.max or 0.0, stats.batched_requests))
    return lines


#: The process-wide serving stats; populated by :mod:`repro.serving`.
SERVING = ServingStats()


def get_serving():
    return SERVING

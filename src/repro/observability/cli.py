"""``janus-stats`` — the speculation-health diagnostics report.

Run as ``python -m repro.observability.stats``.  The report answers the
questions flat counters cannot: per-function graph-hit ratio and
convergence state, per-site assumption-failure counts with their relax
chains, measured fallback/recompile cost, and p50/p95/p99 latency for
graph runs, fallbacks, and recompiles.

Input is either the **live registries** (imported and rendered in-process
— useful from a REPL or when a training script calls
:func:`render_report` directly) or a **saved stats JSON** produced by
:func:`write_stats_json` (the demo writes one; any program can).  The
``--prometheus`` flag instead emits the scrape-friendly subset in the
Prometheus text exposition format.

Typical uses::

    # post-mortem on a saved run
    python -m repro.observability.stats --input stats.json

    # one function's "why is this not converged" detail
    python -m repro.observability.stats --input stats.json --function step

    # scrape-format metrics
    python -m repro.observability.stats --input stats.json --prometheus

    # CI smoke: exit non-zero unless health + histograms are populated
    python -m repro.observability.stats --input stats.json --check
"""

import argparse
import json
import sys

from .counters import COUNTERS, CounterRegistry
from .diskcache import DISKCACHE, DiskCacheStats, format_diskcache_table
from .health import HEALTH, HealthRegistry, format_health_table
from .metrics import METRICS, MetricsRegistry, format_histograms
from .serving import SERVING, ServingStats, format_serving_table

#: Saved-stats file format tag (bump on incompatible change).  The
#: ``serving`` and ``diskcache`` sections were added within format 1:
#: readers treat them as optional, so old bundles still load.
STATS_FORMAT = "janus-stats/1"


# -- persistence -------------------------------------------------------------

def stats_payload(metrics=None, health=None, counters=None, serving=None,
                  diskcache=None):
    """The JSON-serializable stats bundle for the given registries."""
    return {
        "format": STATS_FORMAT,
        "metrics": (metrics or METRICS).snapshot(),
        "health": (health or HEALTH).snapshot(),
        "counters": (counters or COUNTERS).snapshot(),
        "serving": (serving or SERVING).snapshot(),
        "diskcache": (diskcache or DISKCACHE).snapshot(),
    }


def write_stats_json(path, metrics=None, health=None, counters=None,
                     serving=None, diskcache=None):
    """Save the registries for later ``janus-stats`` analysis."""
    with open(path, "w") as fh:
        json.dump(stats_payload(metrics, health, counters, serving,
                                diskcache), fh, indent=1)
    return path


def load_stats(path):
    """Load a saved stats JSON into fresh registries.

    Returns ``(metrics, health, counters, serving, diskcache)``.  Raises
    ``ValueError`` on a file that is not a janus-stats bundle (e.g. a
    raw chrome trace).  Bundles written before the serving layer / disk
    cache existed load with empty stats for those sections.
    """
    with open(path) as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict) or "format" not in payload:
        raise ValueError(
            "%s is not a janus-stats file (expected a %r bundle; chrome "
            "traces are not convertible — save stats with "
            "observability.cli.write_stats_json)" % (path, STATS_FORMAT))
    metrics = MetricsRegistry.from_snapshot(payload.get("metrics"))
    health = HealthRegistry.from_snapshot(payload.get("health"))
    counters = CounterRegistry()
    counter_snap = payload.get("counters") or {}
    for name, value in (counter_snap.get("counters") or {}).items():
        counters.inc(name, value)
    for name, (count, total) in (counter_snap.get("timers") or {}).items():
        counters._timers[name] = [int(count), float(total)]
    serving = ServingStats.from_snapshot(payload.get("serving"))
    diskcache = DiskCacheStats.from_snapshot(payload.get("diskcache"))
    return metrics, health, counters, serving, diskcache


# -- report rendering --------------------------------------------------------

def post_mortem(health, name=None):
    """Per-function "why did this fall back / why not converged" detail.

    Returns report lines for every function (or just *name*): the state
    diagnosis, each assumption site's failures with its relax chain, and
    the measured fallback + recompile cost per failure.
    """
    lines = []
    functions = health.functions()
    if name is not None:
        functions = [f for f in functions if f.name == name]
        if not functions:
            return ["  (no health recorded for function %r)" % name]
    for fn in functions:
        lines.append("%s [%s]" % (fn.name, fn.state))
        lines.append("  %s" % fn.diagnosis())
        lines.append(
            "  calls %d | graph runs %d (%.1f%% hit) | profile runs %d | "
            "fallbacks %d | graphs built %d (%d recompiles)"
            % (fn.calls, fn.graph_runs, fn.graph_hit_ratio * 100.0,
               fn.profile_runs, fn.fallbacks, fn.graphs_generated,
               fn.recompiles))
        if fn.cache_evictions or fn.cache_invalidations:
            lines.append("  cache churn: %d evictions, %d invalidations"
                         % (fn.cache_evictions, fn.cache_invalidations))
        for key in sorted(fn.sites):
            sh = fn.sites[key]
            if not (sh.failures or sh.relaxations or sh.fragments_reused
                    or sh.fragments_reconverted):
                continue
            lines.append("  site %s (%s):" % (key, sh.kind or "fragment"))
            if sh.failures:
                lines.append(
                    "    %d assumption failure%s%s" % (
                        sh.failures, "s" if sh.failures != 1 else "",
                        " — guard: %s" % sh.last_guard
                        if sh.last_guard else ""))
            if sh.fallback_count:
                lines.append(
                    "    fallback cost: %d run%s, %.3f ms total "
                    "(%.3f ms avg)" % (
                        sh.fallback_count,
                        "s" if sh.fallback_count != 1 else "",
                        sh.fallback_total * 1e3,
                        sh.fallback_total / sh.fallback_count * 1e3))
            if sh.recompile_count:
                lines.append(
                    "    recompile cost: %d build%s, %.3f ms total "
                    "(%.3f ms avg)" % (
                        sh.recompile_count,
                        "s" if sh.recompile_count != 1 else "",
                        sh.recompile_total * 1e3,
                        sh.recompile_total / sh.recompile_count * 1e3))
            for step in sh.relax_chain:
                detail = step.get("detail")
                lines.append("    relax: %s%s" % (
                    step.get("action"),
                    " (%s)" % detail if detail else ""))
            ratio = sh.fragment_reuse_ratio
            if ratio is not None:
                lines.append(
                    "    fragment reuse: %d/%d splices accepted (%.0f%%)"
                    % (sh.fragments_reused,
                       sh.fragments_reused + sh.fragments_reconverted,
                       ratio * 100.0))
    return lines


def render_report(metrics=None, health=None, counters=None, function=None,
                  serving=None, diskcache=None):
    """The full ``janus-stats`` text report."""
    metrics = metrics if metrics is not None else METRICS
    health = health if health is not None else HEALTH
    counters = counters if counters is not None else COUNTERS
    serving = serving if serving is not None else SERVING
    diskcache = diskcache if diskcache is not None else DISKCACHE
    lines = ["== janus-stats =="]

    health_lines = format_health_table(health)
    lines.append("-- speculation health --")
    if health_lines:
        lines.extend(health_lines)
    else:
        lines.append("  (no functions recorded — enable metrics with "
                     "JANUS_METRICS=1 or set_metrics_enabled(True))")

    serving_lines = format_serving_table(serving)
    if serving_lines:
        lines.append("-- serving --")
        lines.extend(serving_lines)

    diskcache_lines = format_diskcache_table(diskcache)
    if diskcache_lines:
        lines.append("-- disk cache --")
        lines.extend(diskcache_lines)

    lines.append("-- latency histograms --")
    hist_lines = format_histograms(metrics)
    if hist_lines:
        lines.extend(hist_lines)
    else:
        lines.append("  (no observations recorded)")

    mortem = post_mortem(health, function)
    if mortem:
        lines.append("-- post-mortem --")
        lines.extend("  " + line if line and not line.startswith(" ")
                     else line for line in mortem)

    snap = counters.snapshot()
    interesting = {name: value for name, value
                   in snap.get("counters", {}).items() if value}
    if interesting:
        lines.append("-- counters --")
        for name in sorted(interesting):
            lines.append("  %-40s %d" % (name, interesting[name]))
    return "\n".join(lines)


# -- Prometheus text exposition ----------------------------------------------

def _prom_escape(value):
    return str(value).replace("\\", "\\\\").replace('"', '\\"') \
                     .replace("\n", "\\n")


def _prom_name(name):
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    return "".join(out)


def prometheus_text(metrics=None, health=None, counters=None, serving=None,
                    diskcache=None):
    """The scrape-friendly subset in Prometheus text exposition format.

    Histograms map to the standard ``_bucket``/``_sum``/``_count``
    triple with cumulative ``le`` labels; per-function health maps to
    gauges labelled by function (plus a one-hot ``state`` gauge);
    counters map to ``janus_counter_total``; the serving layer maps to
    ``janus_serving_*`` gauges plus queue-depth / batch-size / wait
    histograms; the disk compile cache maps to ``janus_diskcache_*``
    gauges (misses labelled by reason) plus the load-latency histogram.
    """
    metrics = metrics if metrics is not None else METRICS
    health = health if health is not None else HEALTH
    counters = counters if counters is not None else COUNTERS
    serving = serving if serving is not None else SERVING
    diskcache = diskcache if diskcache is not None else DISKCACHE
    lines = []

    def emit_histogram(base, hist):
        lines.append("# TYPE %s histogram" % base)
        snap = hist.snapshot()
        cumulative = 0
        for bound, count in zip(hist.BOUNDS, snap["counts"]):
            cumulative += count
            lines.append('%s_bucket{le="%g"} %d'
                         % (base, bound, cumulative))
        cumulative += snap["counts"][-1]
        lines.append('%s_bucket{le="+Inf"} %d' % (base, cumulative))
        lines.append("%s_sum %g" % (base, snap["sum"]))
        lines.append("%s_count %d" % (base, snap["count"]))

    for name in metrics.names():
        hist = metrics.get(name)
        if hist is None:
            continue
        emit_histogram("janus_%s_seconds" % _prom_name(name), hist)

    functions = health.functions()
    if functions:
        gauges = (
            ("janus_function_calls_total", "calls"),
            ("janus_function_graph_runs_total", "graph_runs"),
            ("janus_function_fallbacks_total", "fallbacks"),
            ("janus_function_recompiles_total", "recompiles"),
            ("janus_function_graph_hit_ratio", "graph_hit_ratio"),
        )
        for metric, attr in gauges:
            lines.append("# TYPE %s gauge" % metric)
            for fn in functions:
                lines.append('%s{function="%s"} %g'
                             % (metric, _prom_escape(fn.name),
                                getattr(fn, attr)))
        lines.append("# TYPE janus_function_state gauge")
        for fn in functions:
            lines.append('janus_function_state{function="%s",state="%s"} 1'
                         % (_prom_escape(fn.name), fn.state))
        lines.append("# TYPE janus_site_failures_total gauge")
        for fn in functions:
            for key in sorted(fn.sites):
                sh = fn.sites[key]
                if not sh.failures:
                    continue
                lines.append(
                    'janus_site_failures_total{function="%s",site="%s",'
                    'kind="%s"} %d'
                    % (_prom_escape(fn.name), _prom_escape(key),
                       _prom_escape(sh.kind or "unknown"), sh.failures))

    serving_snap = serving.snapshot()
    if serving_snap["requests"] or serving_snap["rejected"] \
            or serving_snap["active_clients"]:
        serving_gauges = (
            ("janus_serving_requests_total", "requests"),
            ("janus_serving_rejected_total", "rejected"),
            ("janus_serving_batches_total", "batches"),
            ("janus_serving_batched_requests_total", "batched_requests"),
            ("janus_serving_active_clients", "active_clients"),
            ("janus_serving_peak_clients", "peak_clients"),
            ("janus_serving_recompiles_in_flight", "recompiles_in_flight"),
        )
        for metric, key in serving_gauges:
            lines.append("# TYPE %s gauge" % metric)
            lines.append("%s %d" % (metric, serving_snap[key]))
        emit_histogram("janus_serving_queue_depth", serving.queue_depth)
        emit_histogram("janus_serving_batch_size", serving.batch_size)
        emit_histogram("janus_serving_queue_wait_seconds",
                       serving.queue_wait)

    disk_snap = diskcache.snapshot()
    if disk_snap["loads"] or disk_snap["stores"] \
            or disk_snap["store_skips"]:
        disk_gauges = (
            ("janus_diskcache_loads_total", "loads"),
            ("janus_diskcache_hits_total", "hits"),
            ("janus_diskcache_stores_total", "stores"),
            ("janus_diskcache_store_bytes_total", "store_bytes"),
            ("janus_diskcache_store_skips_total", "store_skips"),
            ("janus_diskcache_evictions_total", "evictions"),
            ("janus_diskcache_bytes_on_disk", "bytes_on_disk"),
            ("janus_diskcache_entries_on_disk", "entries_on_disk"),
        )
        for metric, key in disk_gauges:
            lines.append("# TYPE %s gauge" % metric)
            lines.append("%s %d" % (metric, disk_snap[key]))
        if disk_snap["miss_reasons"]:
            lines.append("# TYPE janus_diskcache_misses_total gauge")
            for reason in sorted(disk_snap["miss_reasons"]):
                lines.append(
                    'janus_diskcache_misses_total{reason="%s"} %d'
                    % (_prom_escape(reason),
                       disk_snap["miss_reasons"][reason]))
        emit_histogram("janus_diskcache_load_seconds",
                       diskcache.load_latency)

    counter_snap = counters.snapshot().get("counters", {})
    if counter_snap:
        lines.append("# TYPE janus_counter_total counter")
        for name in sorted(counter_snap):
            lines.append('janus_counter_total{name="%s"} %d'
                         % (_prom_escape(name), counter_snap[name]))
    return "\n".join(lines) + ("\n" if lines else "")


# -- CLI entry point ---------------------------------------------------------

def _selfcheck(metrics, health):
    """CI smoke gate: both the health table and histograms must be live."""
    problems = []
    if not len(health):
        problems.append("health table is empty (no functions recorded)")
    if not any((metrics.get(n) or None) and metrics.get(n).count
               for n in metrics.names()):
        problems.append("no histogram has a non-zero observation count")
    return problems


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="janus-stats",
        description="Speculation-health report for JANUS runs.")
    parser.add_argument(
        "--input", "-i", metavar="STATS_JSON", default=None,
        help="saved stats bundle (from write_stats_json / the demo); "
             "defaults to the live in-process registries")
    parser.add_argument(
        "--function", "-f", default=None,
        help="restrict the post-mortem to one janus.function name")
    parser.add_argument(
        "--prometheus", action="store_true",
        help="emit the Prometheus text exposition format instead of the "
             "report")
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless the health table and histogram counts "
             "are populated (CI smoke gate)")
    args = parser.parse_args(argv)

    if args.input:
        try:
            metrics, health, counters, serving, diskcache = \
                load_stats(args.input)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print("janus-stats: %s" % exc, file=sys.stderr)
            return 2
    else:
        metrics, health, counters, serving, diskcache = (
            METRICS, HEALTH, COUNTERS, SERVING, DISKCACHE)

    if args.prometheus:
        sys.stdout.write(prometheus_text(metrics, health, counters,
                                         serving, diskcache))
    else:
        print(render_report(metrics, health, counters, args.function,
                            serving=serving, diskcache=diskcache))

    if args.check:
        problems = _selfcheck(metrics, health)
        if problems:
            for problem in problems:
                print("janus-stats --check FAILED: %s" % problem,
                      file=sys.stderr)
            return 1
        print("janus-stats --check ok", file=sys.stderr)
    return 0

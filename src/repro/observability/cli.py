"""``janus-stats`` — the speculation-health diagnostics report.

Run as ``python -m repro.observability.stats``.  The report answers the
questions flat counters cannot: per-function graph-hit ratio and
convergence state, per-site assumption-failure counts with their relax
chains, measured fallback/recompile cost, and p50/p95/p99 latency for
graph runs, fallbacks, and recompiles — plus the serving layer's
windowed SLO view and the flight recorder's slowest/failed request
exemplars.

Input is either the **live registries** (imported and rendered in-process
— useful from a REPL or when a training script calls
:func:`render_report` directly) or a **saved stats JSON** produced by
:func:`write_stats_json` (the demo writes one; any program can).  The
``--prometheus`` flag instead emits the scrape-friendly subset in the
Prometheus text exposition format; ``--requests`` dumps the flight
recorder's post-mortem exemplars.

:func:`load_stats` returns a :class:`StatsBundle` — named attribute
access (``bundle.serving``) that still unpacks as the historical
``(metrics, health, counters, serving, diskcache)`` 5-tuple, so the
bundle can keep growing sections without breaking legacy callers.

Typical uses::

    # post-mortem on a saved run
    python -m repro.observability.stats --input stats.json

    # one function's "why is this not converged" detail
    python -m repro.observability.stats --input stats.json --function step

    # scrape-format metrics
    python -m repro.observability.stats --input stats.json --prometheus

    # flight-recorder exemplars (slowest + failed/fallback requests)
    python -m repro.observability.stats --input stats.json --requests

    # CI smoke: exit non-zero unless health + histograms are populated
    python -m repro.observability.stats --input stats.json --check

For a *live* scrape target (no JSON hop), run the serving process with
``python -m repro.observability.httpstat`` — it serves ``/metrics``
(this module's Prometheus text), ``/health``, and ``/requests``.
"""

import argparse
import json
import sys

from .counters import COUNTERS, CounterRegistry
from .diskcache import DISKCACHE, DiskCacheStats, format_diskcache_table
from .health import HEALTH, HealthRegistry, format_health_table
from .metrics import (METRICS, MetricsRegistry, WindowedHistogram,
                      format_histograms)
from .reqtrace import RECORDER, FlightRecorder
from .serving import SERVING, ServingStats, format_serving_table

#: Saved-stats file format tag (bump on incompatible change).  The
#: ``serving``, ``diskcache``, and ``requests`` sections were added
#: within format 1: readers treat them as optional, so old bundles
#: still load (with those sections empty).
STATS_FORMAT = "janus-stats/1"


class StatsBundle:
    """Named registries loaded from (or backing) a janus-stats bundle.

    Attribute access is the API (``bundle.serving.rejection_rate``);
    iteration and indexing reproduce the historical 5-tuple
    ``(metrics, health, counters, serving, diskcache)`` so legacy
    ``a, b, c, d, e = load_stats(path)`` unpacking keeps working.
    Sections added later (``requests``) are attribute-only — the tuple
    view is frozen at five elements forever.
    """

    #: The frozen legacy tuple protocol.
    _TUPLE_FIELDS = ("metrics", "health", "counters", "serving",
                     "diskcache")

    def __init__(self, metrics, health, counters, serving, diskcache,
                 requests=None):
        self.metrics = metrics
        self.health = health
        self.counters = counters
        self.serving = serving
        self.diskcache = diskcache
        #: Flight-recorder exemplars (attribute-only; not in the tuple).
        self.requests = requests if requests is not None \
            else FlightRecorder.from_snapshot(None)

    def _tuple(self):
        return tuple(getattr(self, field) for field in self._TUPLE_FIELDS)

    def __iter__(self):
        return iter(self._tuple())

    def __len__(self):
        return len(self._TUPLE_FIELDS)

    def __getitem__(self, index):
        return self._tuple()[index]

    @classmethod
    def live(cls):
        """The process-wide registries as one bundle."""
        return cls(METRICS, HEALTH, COUNTERS, SERVING, DISKCACHE,
                   RECORDER)

    def __repr__(self):
        return ("StatsBundle(metrics=%r, health=%r, serving=%r)"
                % (self.metrics, self.health, self.serving))


# -- persistence -------------------------------------------------------------

def stats_payload(metrics=None, health=None, counters=None, serving=None,
                  diskcache=None, requests=None):
    """The JSON-serializable stats bundle for the given registries."""
    return {
        "format": STATS_FORMAT,
        "metrics": (metrics or METRICS).snapshot(),
        "health": (health or HEALTH).snapshot(),
        "counters": (counters or COUNTERS).snapshot(),
        "serving": (serving or SERVING).snapshot(),
        "diskcache": (diskcache or DISKCACHE).snapshot(),
        "requests": (requests or RECORDER).snapshot(),
    }


def write_stats_json(path, metrics=None, health=None, counters=None,
                     serving=None, diskcache=None, requests=None):
    """Save the registries for later ``janus-stats`` analysis."""
    with open(path, "w") as fh:
        json.dump(stats_payload(metrics, health, counters, serving,
                                diskcache, requests), fh, indent=1)
    return path


def load_stats(path):
    """Load a saved stats JSON into a :class:`StatsBundle`.

    Raises ``ValueError`` on a file that is not a janus-stats bundle
    (e.g. a raw chrome trace).  Bundles written before the serving
    layer / disk cache / flight recorder existed load with empty stats
    for those sections.
    """
    with open(path) as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict) or "format" not in payload:
        raise ValueError(
            "%s is not a janus-stats file (expected a %r bundle; chrome "
            "traces are not convertible — save stats with "
            "observability.cli.write_stats_json)" % (path, STATS_FORMAT))
    metrics = MetricsRegistry.from_snapshot(payload.get("metrics"))
    health = HealthRegistry.from_snapshot(payload.get("health"))
    counters = CounterRegistry()
    counter_snap = payload.get("counters") or {}
    for name, value in (counter_snap.get("counters") or {}).items():
        counters.inc(name, value)
    for name, (count, total) in (counter_snap.get("timers") or {}).items():
        counters._timers[name] = [int(count), float(total)]
    serving = ServingStats.from_snapshot(payload.get("serving"))
    diskcache = DiskCacheStats.from_snapshot(payload.get("diskcache"))
    requests = FlightRecorder.from_snapshot(payload.get("requests"))
    return StatsBundle(metrics, health, counters, serving, diskcache,
                       requests)


# -- report rendering --------------------------------------------------------

def post_mortem(health, name=None):
    """Per-function "why did this fall back / why not converged" detail.

    Returns report lines for every function (or just *name*): the state
    diagnosis, each assumption site's failures with its relax chain, and
    the measured fallback + recompile cost per failure.
    """
    lines = []
    functions = health.functions()
    if name is not None:
        functions = [f for f in functions if f.name == name]
        if not functions:
            return ["  (no health recorded for function %r)" % name]
    for fn in functions:
        lines.append("%s [%s]" % (fn.name, fn.state))
        lines.append("  %s" % fn.diagnosis())
        lines.append(
            "  calls %d | graph runs %d (%.1f%% hit) | profile runs %d | "
            "fallbacks %d | graphs built %d (%d recompiles)"
            % (fn.calls, fn.graph_runs, fn.graph_hit_ratio * 100.0,
               fn.profile_runs, fn.fallbacks, fn.graphs_generated,
               fn.recompiles))
        if fn.cache_evictions or fn.cache_invalidations:
            lines.append("  cache churn: %d evictions, %d invalidations"
                         % (fn.cache_evictions, fn.cache_invalidations))
        for key in sorted(fn.sites):
            sh = fn.sites[key]
            if not (sh.failures or sh.relaxations or sh.fragments_reused
                    or sh.fragments_reconverted):
                continue
            lines.append("  site %s (%s):" % (key, sh.kind or "fragment"))
            if sh.failures:
                lines.append(
                    "    %d assumption failure%s%s" % (
                        sh.failures, "s" if sh.failures != 1 else "",
                        " — guard: %s" % sh.last_guard
                        if sh.last_guard else ""))
            if sh.fallback_count:
                lines.append(
                    "    fallback cost: %d run%s, %.3f ms total "
                    "(%.3f ms avg)" % (
                        sh.fallback_count,
                        "s" if sh.fallback_count != 1 else "",
                        sh.fallback_total * 1e3,
                        sh.fallback_total / sh.fallback_count * 1e3))
            if sh.recompile_count:
                lines.append(
                    "    recompile cost: %d build%s, %.3f ms total "
                    "(%.3f ms avg)" % (
                        sh.recompile_count,
                        "s" if sh.recompile_count != 1 else "",
                        sh.recompile_total * 1e3,
                        sh.recompile_total / sh.recompile_count * 1e3))
            for step in sh.relax_chain:
                detail = step.get("detail")
                lines.append("    relax: %s%s" % (
                    step.get("action"),
                    " (%s)" % detail if detail else ""))
            ratio = sh.fragment_reuse_ratio
            if ratio is not None:
                lines.append(
                    "    fragment reuse: %d/%d splices accepted (%.0f%%)"
                    % (sh.fragments_reused,
                       sh.fragments_reused + sh.fragments_reconverted,
                       ratio * 100.0))
    return lines


def _exemplar_line(summary):
    duration = summary.get("duration_s")
    flags = summary.get("flags") or []
    return "  %s %-20s %8.3f ms  [%s]%s" % (
        summary.get("trace_id", "?" * 16),
        summary.get("name") or "?",
        (duration or 0.0) * 1e3,
        summary.get("outcome") or "?",
        " " + ",".join(flags) if flags else "")


def format_requests_table(recorder):
    """Text lines for the flight-recorder section ([] when idle)."""
    snap = recorder.snapshot()
    if not snap["completed"]:
        return []
    lines = ["  %d requests recorded, %d retained as failed/fallback "
             "exemplars" % (snap["completed"], snap["failures"])]
    if snap["slowest"]:
        lines.append("  slowest:")
        lines.extend("  " + _exemplar_line(s) for s in snap["slowest"])
    if snap["failed"]:
        lines.append("  failed / flagged:")
        lines.extend("  " + _exemplar_line(s) for s in snap["failed"])
    return lines


def render_report(metrics=None, health=None, counters=None, function=None,
                  serving=None, diskcache=None, requests=None):
    """The full ``janus-stats`` text report."""
    metrics = metrics if metrics is not None else METRICS
    health = health if health is not None else HEALTH
    counters = counters if counters is not None else COUNTERS
    serving = serving if serving is not None else SERVING
    diskcache = diskcache if diskcache is not None else DISKCACHE
    requests = requests if requests is not None else RECORDER
    lines = ["== janus-stats =="]

    health_lines = format_health_table(health)
    lines.append("-- speculation health --")
    if health_lines:
        lines.extend(health_lines)
    else:
        lines.append("  (no functions recorded — enable metrics with "
                     "JANUS_METRICS=1 or set_metrics_enabled(True))")

    serving_lines = format_serving_table(serving)
    if serving_lines:
        lines.append("-- serving --")
        lines.extend(serving_lines)

    diskcache_lines = format_diskcache_table(diskcache)
    if diskcache_lines:
        lines.append("-- disk cache --")
        lines.extend(diskcache_lines)

    request_lines = format_requests_table(requests)
    if request_lines:
        lines.append("-- flight recorder --")
        lines.extend(request_lines)

    lines.append("-- latency histograms --")
    hist_lines = format_histograms(metrics)
    if hist_lines:
        lines.extend(hist_lines)
    else:
        lines.append("  (no observations recorded)")

    mortem = post_mortem(health, function)
    if mortem:
        lines.append("-- post-mortem --")
        lines.extend("  " + line if line and not line.startswith(" ")
                     else line for line in mortem)

    snap = counters.snapshot()
    interesting = {name: value for name, value
                   in snap.get("counters", {}).items() if value}
    if interesting:
        lines.append("-- counters --")
        for name in sorted(interesting):
            lines.append("  %-40s %d" % (name, interesting[name]))
    return "\n".join(lines)


# -- Prometheus text exposition ----------------------------------------------

def _prom_escape(value):
    return str(value).replace("\\", "\\\\").replace('"', '\\"') \
                     .replace("\n", "\\n")


def _prom_name(name):
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    return "".join(out)


class _PromWriter:
    """Accumulates exposition lines with once-per-family HELP/TYPE.

    Labeled families (e.g. the per-outcome request-latency histograms)
    emit several sample groups under one header — repeating ``# TYPE``
    for the same metric name is invalid exposition, which is exactly
    what the lint test checks.
    """

    def __init__(self):
        self.lines = []
        self._declared = set()

    def header(self, name, kind, help_text):
        if name in self._declared:
            return
        self._declared.add(name)
        self.lines.append("# HELP %s %s" % (name, help_text))
        self.lines.append("# TYPE %s %s" % (name, kind))

    def sample(self, name, value, labels=None):
        label_text = ""
        if labels:
            label_text = "{%s}" % ",".join(
                '%s="%s"' % (k, _prom_escape(v))
                for k, v in labels.items())
        if isinstance(value, float):
            self.lines.append("%s%s %g" % (name, label_text, value))
        else:
            self.lines.append("%s%s %d" % (name, label_text, value))

    def gauge(self, name, value, help_text, labels=None):
        self.header(name, "gauge", help_text)
        self.sample(name, value, labels)

    def histogram(self, base, hist, help_text, labels=None):
        """Standard ``_bucket``/``_sum``/``_count`` triple with
        cumulative ``le`` labels (monotonic, ``+Inf`` last)."""
        self.header(base, "histogram", help_text)
        snap = hist.snapshot()
        cumulative = 0
        for bound, count in zip(hist.BOUNDS, snap["counts"]):
            cumulative += count
            bucket_labels = dict(labels or {})
            bucket_labels["le"] = "%g" % bound
            self.sample(base + "_bucket", cumulative, bucket_labels)
        cumulative += snap["counts"][-1]
        inf_labels = dict(labels or {})
        inf_labels["le"] = "+Inf"
        self.sample(base + "_bucket", cumulative, inf_labels)
        self.sample(base + "_sum", float(snap["sum"]), labels)
        self.sample(base + "_count", snap["count"], labels)

    def window_quantiles(self, base, hist, help_text, labels=None):
        """Trailing-window p50/p95/p99 as a quantile-labelled gauge."""
        if not isinstance(hist, WindowedHistogram):
            return
        stats = hist.window_percentiles()
        if not stats["count"]:
            return
        self.header(base, "gauge", help_text)
        for quantile, key in (("0.5", "p50"), ("0.95", "p95"),
                              ("0.99", "p99")):
            q_labels = dict(labels or {})
            q_labels["quantile"] = quantile
            self.sample(base, float(stats[key]), q_labels)

    def text(self):
        return "\n".join(self.lines) + ("\n" if self.lines else "")


def prometheus_text(metrics=None, health=None, counters=None, serving=None,
                    diskcache=None, requests=None):
    """The scrape-friendly subset in Prometheus text exposition format.

    Histograms map to the standard ``_bucket``/``_sum``/``_count``
    triple with cumulative ``le`` labels; windowed histograms
    additionally expose trailing-window p50/p95/p99 as
    ``*_window_seconds`` quantile gauges; per-function health maps to
    gauges labelled by function (plus a one-hot ``state`` gauge);
    counters map to ``janus_counter_total``; the serving layer maps to
    ``janus_serving_*`` gauges, queue/batch histograms, and the
    per-outcome ``janus_serving_request_latency_seconds`` family; the
    disk compile cache maps to ``janus_diskcache_*`` gauges (misses
    labelled by reason) plus the load-latency histogram; the flight
    recorder contributes ``janus_requests_*`` totals.

    Every line is valid exposition format — HELP/TYPE once per family,
    escaped label values, monotonic cumulative buckets — and the lint
    test in ``tests/test_prometheus_lint.py`` holds it to that.
    """
    metrics = metrics if metrics is not None else METRICS
    health = health if health is not None else HEALTH
    counters = counters if counters is not None else COUNTERS
    serving = serving if serving is not None else SERVING
    diskcache = diskcache if diskcache is not None else DISKCACHE
    requests = requests if requests is not None else RECORDER
    w = _PromWriter()

    for name in metrics.names():
        hist = metrics.get(name)
        if hist is None:
            continue
        base = "janus_%s_seconds" % _prom_name(name)
        w.histogram(base, hist, "Latency histogram for %s." % name)
        w.window_quantiles(base + "_window", hist,
                           "Trailing-window percentiles for %s." % name)

    functions = health.functions()
    if functions:
        gauges = (
            ("janus_function_calls_total", "calls",
             "Calls dispatched through the janus function."),
            ("janus_function_graph_runs_total", "graph_runs",
             "Calls served by a compiled graph."),
            ("janus_function_fallbacks_total", "fallbacks",
             "Calls that fell back imperatively on a failed guard."),
            ("janus_function_recompiles_total", "recompiles",
             "Post-relaxation graph regenerations."),
            ("janus_function_graph_hit_ratio", "graph_hit_ratio",
             "Fraction of calls served by a compiled graph."),
        )
        for metric, attr, help_text in gauges:
            w.header(metric, "gauge", help_text)
            for fn in functions:
                w.sample(metric, getattr(fn, attr),
                         {"function": fn.name})
        w.header("janus_function_state", "gauge",
                 "One-hot speculation state per function.")
        for fn in functions:
            w.sample("janus_function_state", 1,
                     {"function": fn.name, "state": fn.state})
        w.header("janus_site_failures_total", "gauge",
                 "Assumption failures per profiled site.")
        for fn in functions:
            for key in sorted(fn.sites):
                sh = fn.sites[key]
                if not sh.failures:
                    continue
                w.sample("janus_site_failures_total", sh.failures,
                         {"function": fn.name, "site": key,
                          "kind": sh.kind or "unknown"})

    serving_snap = serving.snapshot()
    if serving_snap["requests"] or serving_snap["rejected"] \
            or serving_snap["active_clients"]:
        serving_gauges = (
            ("janus_serving_requests_total", "requests",
             "Requests accepted into an endpoint queue."),
            ("janus_serving_rejected_total", "rejected",
             "Requests refused at the admission bound."),
            ("janus_serving_batches_total", "batches",
             "Dispatches (each coalescing >= 1 request)."),
            ("janus_serving_batched_requests_total", "batched_requests",
             "Requests that shared a dynamic batch."),
            ("janus_serving_active_clients", "active_clients",
             "Currently connected client threads."),
            ("janus_serving_peak_clients", "peak_clients",
             "Peak concurrent client threads."),
            ("janus_serving_recompiles_in_flight", "recompiles_in_flight",
             "Compile tickets currently owned across endpoints."),
        )
        for metric, key, help_text in serving_gauges:
            w.gauge(metric, serving_snap[key], help_text)
        w.gauge("janus_serving_rejection_rate", serving.rejection_rate,
                "Rejected / offered requests since start.")
        w.histogram("janus_serving_queue_depth", serving.queue_depth,
                    "Queue depth seen by each accepted request.")
        w.histogram("janus_serving_batch_size", serving.batch_size,
                    "Requests coalesced per dispatch.")
        w.histogram("janus_serving_queue_wait_seconds",
                    serving.queue_wait,
                    "Seconds each request waited before dispatch.")
        w.window_quantiles("janus_serving_queue_wait_window_seconds",
                           serving.queue_wait,
                           "Trailing-window queue-wait percentiles.")
        latency_help = ("End-to-end request latency by outcome "
                        "(ok / error / rejected).")
        for outcome in sorted(serving.request_latency):
            hist = serving.request_latency[outcome]
            if not hist.count:
                continue
            w.histogram("janus_serving_request_latency_seconds", hist,
                        latency_help, {"outcome": outcome})
            w.window_quantiles(
                "janus_serving_request_latency_window_seconds", hist,
                "Trailing-window request-latency percentiles by outcome.",
                {"outcome": outcome})

    disk_snap = diskcache.snapshot()
    if disk_snap["loads"] or disk_snap["stores"] \
            or disk_snap["store_skips"]:
        disk_gauges = (
            ("janus_diskcache_loads_total", "loads",
             "Disk-cache load attempts."),
            ("janus_diskcache_hits_total", "hits",
             "Disk-cache loads that produced an artifact."),
            ("janus_diskcache_stores_total", "stores",
             "Artifacts published to the disk tier."),
            ("janus_diskcache_store_bytes_total", "store_bytes",
             "Bytes written to the disk tier."),
            ("janus_diskcache_store_skips_total", "store_skips",
             "Publishes skipped (unportable payloads)."),
            ("janus_diskcache_evictions_total", "evictions",
             "Disk-tier entries evicted by the size bound."),
            ("janus_diskcache_bytes_on_disk", "bytes_on_disk",
             "Current bytes on disk."),
            ("janus_diskcache_entries_on_disk", "entries_on_disk",
             "Current entries on disk."),
        )
        for metric, key, help_text in disk_gauges:
            w.gauge(metric, disk_snap[key], help_text)
        if disk_snap["miss_reasons"]:
            w.header("janus_diskcache_misses_total", "gauge",
                     "Disk-cache misses by reason.")
            for reason in sorted(disk_snap["miss_reasons"]):
                w.sample("janus_diskcache_misses_total",
                         disk_snap["miss_reasons"][reason],
                         {"reason": reason})
        w.histogram("janus_diskcache_load_seconds",
                    diskcache.load_latency,
                    "Disk-cache load latency.")

    request_snap = requests.snapshot()
    if request_snap["completed"]:
        w.gauge("janus_requests_recorded_total",
                request_snap["completed"],
                "Requests seen by the flight recorder.")
        w.gauge("janus_requests_failed_total", request_snap["failures"],
                "Requests retained as failed/fallback exemplars.")

    counter_snap = counters.snapshot().get("counters", {})
    if counter_snap:
        w.header("janus_counter_total", "counter",
                 "Flat runtime counters by name.")
        for name in sorted(counter_snap):
            w.sample("janus_counter_total", counter_snap[name],
                     {"name": name})
    return w.text()


# -- CLI entry point ---------------------------------------------------------

def _selfcheck(metrics, health):
    """CI smoke gate: both the health table and histograms must be live."""
    problems = []
    if not len(health):
        problems.append("health table is empty (no functions recorded)")
    if not any((metrics.get(n) or None) and metrics.get(n).count
               for n in metrics.names()):
        problems.append("no histogram has a non-zero observation count")
    return problems


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="janus-stats",
        description="Speculation-health report for JANUS runs.")
    parser.add_argument(
        "--input", "-i", metavar="STATS_JSON", default=None,
        help="saved stats bundle (from write_stats_json / the demo); "
             "defaults to the live in-process registries")
    parser.add_argument(
        "--function", "-f", default=None,
        help="restrict the post-mortem to one janus.function name")
    parser.add_argument(
        "--prometheus", action="store_true",
        help="emit the Prometheus text exposition format instead of the "
             "report")
    parser.add_argument(
        "--requests", action="store_true",
        help="dump the flight recorder's request exemplars as JSON "
             "(slowest + failed/fallback, with their captured spans)")
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless the health table and histogram counts "
             "are populated (CI smoke gate)")
    args = parser.parse_args(argv)

    if args.input:
        try:
            bundle = load_stats(args.input)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print("janus-stats: %s" % exc, file=sys.stderr)
            return 2
    else:
        bundle = StatsBundle.live()

    if args.prometheus:
        sys.stdout.write(prometheus_text(
            bundle.metrics, bundle.health, bundle.counters,
            bundle.serving, bundle.diskcache, bundle.requests))
    elif args.requests:
        json.dump(bundle.requests.snapshot(), sys.stdout, indent=1)
        sys.stdout.write("\n")
    else:
        print(render_report(bundle.metrics, bundle.health,
                            bundle.counters, args.function,
                            serving=bundle.serving,
                            diskcache=bundle.diskcache,
                            requests=bundle.requests))

    if args.check:
        problems = _selfcheck(bundle.metrics, bundle.health)
        if problems:
            for problem in problems:
                print("janus-stats --check FAILED: %s" % problem,
                      file=sys.stderr)
            return 1
        print("janus-stats --check ok", file=sys.stderr)
    return 0

"""``python -m repro.observability.stats`` — the janus-stats CLI.

Thin module wrapper so the diagnostics report is runnable without
installing an entry point; all logic lives in
:mod:`repro.observability.cli`.
"""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())

"""``python -m repro.observability.stats`` — the janus-stats CLI.

Thin module wrapper so the diagnostics report is runnable without
installing an entry point; all logic lives in
:mod:`repro.observability.cli` (``--prometheus`` for scrape text,
``--requests`` for flight-recorder exemplars, ``--check`` for the CI
gate).  For a *live* HTTP scrape target inside a running process, see
``python -m repro.observability.httpstat``.
"""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())

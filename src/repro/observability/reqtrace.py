"""Request-scoped causal tracing and the flight recorder.

The tracer answers "what happened, in order"; this module answers "what
happened *to this request*".  A :class:`RequestContext` is created when
a request enters the serving layer (``Server.call`` → ``submit``) and
travels with it through queueing, batch dispatch, ``janus.function``
dispatch (warm hit / stampede loss / ticket win / background recompile /
imperative fallback), disk-cache probes, and co-execution fragment/gap
handoffs — Dapper-style causal propagation with the *request*, not the
process, as the unit of observability.

Two cooperating mechanisms:

1. **Trace-event annotation.**  :func:`_annotate` is installed as the
   tracer's request hook (:func:`repro.observability.tracer.set_request_hook`)
   and runs once per *recorded* event — never on the ``JANUS_TRACE=0``
   path.  While a request context is active on the emitting thread it
   stamps ``trace_id``/``span_id``/``parent_span`` into the event args
   and mirrors the event into the request's bounded capture, so every
   existing instrumentation site (``cache_hit``, ``assumption_fail``,
   ``diskcache_*``, …) joins the request's causal flow without being
   rewritten.  Request contexts cross threads explicitly: the serving
   dispatcher re-activates the context it pulled off the queue with
   :func:`using`.

2. **The flight recorder.**  Every finished request leaves a summary
   (trace id, outcome, duration, captured spans).  :data:`RECORDER`
   retains the N slowest plus *all* failed/fallback/rejected requests
   as post-mortem exemplars, dumpable via ``janus-stats --requests``
   and the ``/requests`` endpoint of
   ``python -m repro.observability.httpstat``.

Cost model, mirroring the tracer's:

* ``JANUS_TRACE=0`` and recorder disabled → :func:`new_request` returns
  None and every site degenerates to one attribute load / contextvar
  read; no allocation, no timestamps.
* Recorder enabled (the default for the serving layer) → one small
  context object per request plus one dict per captured span; captures
  are bounded by :attr:`RequestContext.MAX_EVENTS`.

Standard library only, importable from any subsystem without cycles.
"""

import contextvars
import itertools
import os
import threading
import time
from bisect import insort
from collections import deque

from . import tracer as tracer_mod
from .tracer import TRACER, TraceEvent

__all__ = ["RECORDER", "FlightRecorder", "RequestContext", "current",
           "finish", "flag", "new_request", "note", "record_span",
           "span", "using", "get_flight_recorder"]

_perf_counter = time.perf_counter

#: The active request context for this thread/task (None = no request).
_CURRENT = contextvars.ContextVar("janus_request", default=None)


class RequestContext:
    """One request's causal trace: id, span stack, bounded capture."""

    __slots__ = ("trace_id", "name", "started", "events", "dropped",
                 "flags", "outcome", "detail", "duration", "_ids",
                 "_stack")

    #: Per-request capture bound; events beyond it are counted, not kept.
    MAX_EVENTS = 200

    def __init__(self, name):
        self.trace_id = os.urandom(8).hex()
        self.name = name
        self.started = _perf_counter()
        self.events = []
        self.dropped = 0
        #: Dispatch-path markers ("fallback", "stampede_loss", ...) set
        #: via :func:`note`; a flagged request is retained by the
        #: recorder even when its outcome is "ok".
        self.flags = set()
        self.outcome = None
        self.detail = None
        self.duration = None
        self._ids = itertools.count(1)
        self._stack = []

    # -- capture -------------------------------------------------------------

    def _note(self, event):
        """Mirror one TraceEvent into the bounded capture."""
        if len(self.events) >= self.MAX_EVENTS:
            self.dropped += 1
            return
        self.events.append({
            "cat": event.category, "name": event.name, "ph": event.ph,
            "rel_s": event.ts - self.started, "dur_s": event.dur,
            "args": dict(event.args) if event.args else {},
        })

    def summary(self):
        """JSON-serializable post-mortem record for the recorder."""
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "outcome": self.outcome,
            "detail": self.detail,
            "flags": sorted(self.flags),
            "duration_s": self.duration,
            "started_unix": TRACER.epoch + self.started,
            "events": list(self.events),
            "dropped_events": self.dropped,
        }

    def __repr__(self):
        return "RequestContext(%s, %s, %d events)" % (
            self.trace_id, self.name, len(self.events))


def _annotate(event):
    """The tracer's request hook: stamp causal ids + mirror to capture.

    Runs only when an event is actually recorded (trace level > 0), so
    the disabled path never reaches it.  Events that already carry a
    ``trace_id`` (pre-stamped by :func:`record_span` / :class:`_ReqSpan`)
    are captured without re-stamping.
    """
    ctx = _CURRENT.get()
    if ctx is None:
        return
    args = event.args
    if args is None:
        args = {}
        event.args = args
    if "trace_id" not in args:
        args["trace_id"] = ctx.trace_id
        args["span_id"] = next(ctx._ids)
        if ctx._stack:
            args["parent_span"] = ctx._stack[-1]
    ctx._note(event)


tracer_mod.set_request_hook(_annotate)


# -- request lifecycle -------------------------------------------------------

def _active():
    return TRACER.level > 0 or RECORDER.enabled


def new_request(name):
    """A fresh :class:`RequestContext`, or None when request tracing is
    fully off (``JANUS_TRACE=0`` and the flight recorder disabled)."""
    if not _active():
        return None
    return RequestContext(name)


def current():
    """The request context active on this thread, or None."""
    return _CURRENT.get()


class using:
    """Activate *ctx* on the current thread for the ``with`` body.

    The serving dispatcher uses this to continue the trace a client
    thread started; ``using(None)`` is a no-op context manager.
    """

    __slots__ = ("_ctx", "_token")

    def __init__(self, ctx):
        self._ctx = ctx

    def __enter__(self):
        self._token = _CURRENT.set(self._ctx) \
            if self._ctx is not None else None
        return self._ctx

    def __exit__(self, exc_type, exc, tb):
        if self._token is not None:
            _CURRENT.reset(self._token)
        return False


def finish(ctx, outcome, detail=None):
    """Close out a request: stamp outcome + duration, feed the recorder."""
    if ctx is None:
        return
    ctx.outcome = outcome
    ctx.detail = detail
    ctx.duration = _perf_counter() - ctx.started
    RECORDER.record(ctx)


# -- span recording ----------------------------------------------------------

class _ReqSpan:
    """Timed span inside the active request (parented on the stack)."""

    __slots__ = ("_ctx", "_category", "_name", "_args", "_span_id",
                 "_parent", "_start")

    def __init__(self, ctx, category, name, args):
        self._ctx = ctx
        self._category = category
        self._name = name
        self._args = args

    def __enter__(self):
        ctx = self._ctx
        self._span_id = next(ctx._ids)
        self._parent = ctx._stack[-1] if ctx._stack else None
        ctx._stack.append(self._span_id)
        self._start = _perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        end = _perf_counter()
        ctx = self._ctx
        if ctx._stack and ctx._stack[-1] == self._span_id:
            ctx._stack.pop()
        args = dict(self._args)
        if exc_type is not None:
            args["error"] = exc_type.__name__
        args["trace_id"] = ctx.trace_id
        args["span_id"] = self._span_id
        if self._parent is not None:
            args["parent_span"] = self._parent
        event = TraceEvent(self._category, self._name, "X", self._start,
                           end - self._start, threading.get_ident(), args)
        if TRACER.level:
            TRACER._append(event)    # hook captures (trace_id pre-set)
        else:
            ctx._note(event)         # recorder-only mode
        return False


def span(category, name, **args):
    """Context manager for a request-scoped span.

    With an active request context the span joins its causal flow (and
    its bounded capture, even at ``JANUS_TRACE=0``).  Without one it
    degrades to a plain ``TRACER.span`` — visible in ordinary traces,
    free when tracing is off.
    """
    ctx = _CURRENT.get()
    if ctx is None:
        return TRACER.span(category, name, **args)
    return _ReqSpan(ctx, category, name, args)


def record_span(ctx, category, name, start, duration, **args):
    """Record an externally-timed span into *ctx* (no activation needed).

    Used for spans measured on another thread's clock — e.g. the queue
    wait, timed from the client thread's enqueue to the dispatcher's
    pickup.
    """
    if ctx is None:
        return
    args["trace_id"] = ctx.trace_id
    args["span_id"] = next(ctx._ids)
    event = TraceEvent(category, name, "X", start, duration,
                       threading.get_ident(), args)
    if TRACER.level:
        TRACER._append(event)
    else:
        ctx._note(event)


def flag(name):
    """Tag the active request (no event) so the recorder retains it.

    Used next to pre-existing ``TRACER.instant`` sites whose events the
    hook already captures — the tag adds retention without a duplicate
    event.
    """
    ctx = _CURRENT.get()
    if ctx is not None:
        ctx.flags.add(name)


def note(category, name, flag=None, **args):
    """Mark an instant on the active request (no-op without one).

    *flag* additionally tags the request itself ("fallback",
    "stampede_loss", …) so the flight recorder retains it as an
    exemplar regardless of outcome.
    """
    ctx = _CURRENT.get()
    if ctx is None:
        return
    if flag is not None:
        ctx.flags.add(flag)
    args["trace_id"] = ctx.trace_id
    args["span_id"] = next(ctx._ids)
    if ctx._stack:
        args["parent_span"] = ctx._stack[-1]
    event = TraceEvent(category, name, "i", _perf_counter(), 0.0,
                       threading.get_ident(), args)
    if TRACER.level:
        TRACER._append(event)
    else:
        ctx._note(event)


# -- the flight recorder -----------------------------------------------------

class FlightRecorder:
    """Bounded retention of post-mortem request exemplars.

    Three views, all bounded:

    * **slowest** — the ``keep_slowest`` highest-latency requests seen,
    * **failed** — the most recent ``keep_failed`` requests whose
      outcome was not "ok" *or* that carry a dispatch flag (fallback,
      stampede loss, …),
    * **recent** — the last ``keep_recent`` requests regardless.

    Thread-safe; snapshot/restore round-trips through the
    ``janus-stats`` bundle like the other registries.
    """

    def __init__(self, keep_slowest=8, keep_failed=32, keep_recent=32):
        #: Plain attribute read by the request-creation gate.
        self.enabled = _env_enabled()
        self.keep_slowest = int(keep_slowest)
        self._lock = threading.Lock()
        self._slowest = []          # [(duration, seq, summary)] ascending
        self._seq = itertools.count()
        self._failed = deque(maxlen=int(keep_failed))
        self._recent = deque(maxlen=int(keep_recent))
        self.completed = 0
        self.failures = 0

    def record(self, ctx):
        if not self.enabled:
            return
        summary = ctx.summary()
        failed = ctx.outcome != "ok" or bool(ctx.flags)
        with self._lock:
            self.completed += 1
            self._recent.append(summary)
            if failed:
                self.failures += 1
                self._failed.append(summary)
            insort(self._slowest,
                   (summary["duration_s"] or 0.0, next(self._seq),
                    summary))
            if len(self._slowest) > self.keep_slowest:
                self._slowest.pop(0)

    # -- inspection ----------------------------------------------------------

    def slowest(self):
        """Summaries, slowest first."""
        with self._lock:
            return [item[2] for item in reversed(self._slowest)]

    def failed(self):
        """Failed/flagged summaries, oldest first."""
        with self._lock:
            return list(self._failed)

    def recent(self):
        with self._lock:
            return list(self._recent)

    # -- serialization -------------------------------------------------------

    def snapshot(self):
        with self._lock:
            return {
                "completed": self.completed,
                "failures": self.failures,
                "slowest": [item[2] for item in reversed(self._slowest)],
                "failed": list(self._failed),
                "recent": list(self._recent),
            }

    @classmethod
    def from_snapshot(cls, snap):
        recorder = cls()
        recorder.enabled = False     # restored recorders are read-only
        snap = snap or {}
        recorder.completed = int(snap.get("completed", 0))
        recorder.failures = int(snap.get("failures", 0))
        for summary in reversed(snap.get("slowest") or ()):
            recorder._slowest.append(
                (summary.get("duration_s") or 0.0,
                 next(recorder._seq), summary))
        recorder._slowest.sort(key=lambda item: (item[0], item[1]))
        recorder._failed.extend(snap.get("failed") or ())
        recorder._recent.extend(snap.get("recent") or ())
        return recorder

    def set_enabled(self, enabled):
        self.enabled = bool(enabled)

    def clear(self):
        with self._lock:
            self._slowest = []
            self._failed.clear()
            self._recent.clear()
            self.completed = 0
            self.failures = 0

    def __repr__(self):
        return "FlightRecorder(%s, %d completed, %d failures)" % (
            "enabled" if self.enabled else "disabled", self.completed,
            self.failures)


def _env_enabled():
    raw = os.environ.get("JANUS_FLIGHT_RECORDER", "").strip().lower()
    return raw not in ("0", "false", "off", "no")


#: The process-wide flight recorder; populated by the serving layer.
#: Default on (like SERVING, a server that is up wants its post-mortem
#: exemplars); disable with ``JANUS_FLIGHT_RECORDER=0``.
RECORDER = FlightRecorder()


def get_flight_recorder():
    return RECORDER


def disabled_request_cost(iterations=200_000):
    """Measured per-site cost (seconds) of an *inactive* request gate.

    Times the exact operation every request-scoped site performs with no
    request in flight — one contextvar read returning None — minus empty
    loop overhead.  Reported (informationally) by
    ``benchmarks/bench_observability_overhead.py``.
    """
    get = _CURRENT.get
    r = range(iterations)
    start = _perf_counter()
    for _ in r:
        if get() is not None:
            raise AssertionError("unreachable")
    gated = _perf_counter() - start
    start = _perf_counter()
    for _ in r:
        pass
    empty = _perf_counter() - start
    return max(gated - empty, 0.0) / iterations

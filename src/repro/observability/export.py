"""Trace exporters: Chrome trace-event JSON and a plain-text summary.

The JSON exporter emits the `Trace Event Format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
consumed by ``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_:
a top-level object with a ``traceEvents`` list whose entries carry
``name``/``cat``/``ph``/``ts`` (µs) and, for complete events, ``dur``.

The text summary is the quick look: event counts per category, the
hottest ops by cumulative time, counter totals, and timer averages.
"""

import json
import os
import threading

from .counters import COUNTERS
from .health import HEALTH, format_health_table
from .metrics import METRICS, format_histograms
from .reqtrace import RECORDER
from .tracer import TRACER

_PID = os.getpid()


def chrome_trace_events(tracer=None):
    """The ``traceEvents`` list for the buffered events."""
    tracer = tracer or TRACER
    tid_alias = {}
    out = [{
        "name": "process_name", "ph": "M", "ts": 0, "pid": _PID, "tid": 0,
        "args": {"name": "janus-repro"},
    }]
    for event in tracer.events:
        tid = tid_alias.setdefault(event.tid, len(tid_alias))
        record = {
            "name": event.name,
            "cat": event.category,
            "ph": event.ph,
            "ts": event.ts * 1e6,
            "pid": _PID,
            "tid": tid,
        }
        if event.ph == "X":
            record["dur"] = event.dur * 1e6
        elif event.ph == "i":
            record["s"] = "t"   # instant scope: thread
        if event.args:
            record["args"] = {k: _jsonable(v)
                              for k, v in event.args.items()}
        out.append(record)
    return out


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def write_chrome_trace(path, tracer=None, counters=None, metrics=None,
                       health=None, requests=None):
    """Write a ``chrome://tracing``-loadable JSON file; returns ``path``.

    Besides the counters, ``otherData`` carries the latency-histogram
    snapshots, per-function health summaries, and the flight recorder's
    request exemplars when any were recorded, so a single trace file
    preserves the percentile and per-request data alongside the events.
    Events emitted inside a request carry ``trace_id``/``span_id``/
    ``parent_span`` args, so one serving request renders as a causally
    linked flow across threads.
    """
    counters = counters or COUNTERS
    metrics = metrics if metrics is not None else METRICS
    health = health if health is not None else HEALTH
    requests = requests if requests is not None else RECORDER
    other = {
        "tool": "repro.observability",
        "counters": counters.snapshot()["counters"],
    }
    metric_snaps = metrics.snapshot()
    if metric_snaps:
        other["metrics"] = {
            name: {"count": snap["count"], "sum": snap["sum"],
                   "min": snap["min"], "max": snap["max"],
                   "percentiles": metrics.percentiles(name)}
            for name, snap in metric_snaps.items()}
    if len(health):
        other["health"] = {
            fn.name: {"state": fn.state,
                      "graph_hit_ratio": fn.graph_hit_ratio,
                      "calls": fn.calls, "fallbacks": fn.fallbacks,
                      "recompiles": fn.recompiles}
            for fn in health.functions()}
    request_snap = requests.snapshot()
    if request_snap["completed"]:
        other["requests"] = request_snap
    payload = {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": other,
    }
    with open(path, "w") as fh:
        json.dump(payload, fh)
    _mark_written()
    return path


def text_summary(tracer=None, counters=None, top=12, metrics=None,
                 health=None):
    """A human-readable digest of the buffered trace + counters.

    When latency histograms or speculation-health models were recorded
    (``JANUS_METRICS=1`` / ``set_metrics_enabled``), the summary also
    renders their tables; ``janus-stats`` renders the full post-mortem.
    """
    tracer = tracer or TRACER
    counters = counters or COUNTERS
    metrics = metrics if metrics is not None else METRICS
    health = health if health is not None else HEALTH
    events = tracer.events
    lines = ["== janus trace summary (level %d, %d buffered events) =="
             % (tracer.level, len(events))]

    by_category = {}
    for event in events:
        by_category.setdefault(event.category, []).append(event)
    if by_category:
        lines.append("-- events by category --")
        for category in sorted(by_category):
            members = by_category[category]
            total = sum(e.dur for e in members)
            lines.append("  %-18s %6d events  %9.3f ms total"
                         % (category, len(members), total * 1e3))

    ops = {}
    for event in events:
        if event.category in ("op", "pass", "level") and event.ph == "X":
            entry = ops.setdefault((event.category, event.name), [0, 0.0])
            entry[0] += 1
            entry[1] += event.dur
    if ops:
        lines.append("-- hottest timed spans (by cumulative time) --")
        ranked = sorted(ops.items(), key=lambda kv: -kv[1][1])[:top]
        for (category, name), (count, total) in ranked:
            lines.append("  %-28s %6d calls  %9.3f ms  (%8.2f us/call)"
                         % ("%s:%s" % (category, name), count, total * 1e3,
                            total / count * 1e6))

    health_lines = format_health_table(health)
    if health_lines:
        lines.append("-- speculation health --")
        lines.extend(health_lines)
    hist_lines = format_histograms(metrics)
    if hist_lines:
        lines.append("-- latency histograms --")
        lines.extend(hist_lines)

    snap = counters.snapshot()
    # Heap-read memo / write-barrier health is always reported (zeros
    # included): a zero memo_hit row on a tensor-attr workload is itself
    # the signal that the barrier is off or tracking is refusing.
    lines.append("-- heap-read memo / write barrier --")
    for name in ("executor.memo_hit", "executor.memo_stale",
                 "tensor.cow_copies"):
        lines.append("  %-40s %d" % (name, snap["counters"].get(name, 0)))
    generic = {name: value for name, value in snap["counters"].items()
               if name not in ("executor.memo_hit", "executor.memo_stale",
                               "tensor.cow_copies")}
    if generic:
        lines.append("-- counters --")
        for name in sorted(generic):
            lines.append("  %-40s %d" % (name, generic[name]))
    if snap["timers"]:
        lines.append("-- timers --")
        for name in sorted(snap["timers"]):
            count, total = snap["timers"][name]
            mean = total / count if count else 0.0
            lines.append("  %-40s %6d calls  %9.3f ms  (%8.2f us/call)"
                         % (name, count, total * 1e3, mean * 1e6))
    return "\n".join(lines)


# -- atexit auto-dump --------------------------------------------------------
#
# When tracing was enabled through the JANUS_TRACE environment variable,
# dump the trace on interpreter exit unless the program already exported
# one explicitly.  This is what makes
#   JANUS_TRACE=1 python examples/quickstart.py
# produce trace.json with no example-side code.

_written = False
_written_lock = threading.Lock()


def _mark_written():
    global _written
    with _written_lock:
        _written = True


def _atexit_dump():
    if _written or TRACER.level <= 0 or len(TRACER) == 0:
        return
    path = os.environ.get("JANUS_TRACE_FILE", "trace.json")
    try:
        write_chrome_trace(path)
    except OSError:
        return
    import sys
    print(text_summary(), file=sys.stderr)
    print("[janus-trace] wrote %s (load in chrome://tracing or "
          "https://ui.perfetto.dev)" % path, file=sys.stderr)


def install_atexit_dump():
    """Register the exit-time trace dump (idempotent)."""
    import atexit
    if not getattr(install_atexit_dump, "_installed", False):
        atexit.register(_atexit_dump)
        install_atexit_dump._installed = True

"""Trace demo: run a small JANUS training loop with tracing on.

Usage (also wired as ``make trace-demo`` / ``make stats-demo``)::

    PYTHONPATH=src python -m repro.observability.demo [--out trace.json]
                                                      [--steps 12]
                                                      [--level 2]
                                                      [--stats-out stats.json]

The demo trains the quickstart MLP for a few steps — enough for the
full lifecycle to appear in the trace: imperative profiling runs, one
``graphgen`` span, ``cache_store`` + ``cache_hit`` events, per-op
timing (at level 2) — then deliberately changes a heap attribute the
generated graph speculated on, so one ``assumption_fail`` + ``fallback``
+ ``relax`` + regeneration sequence is recorded too.  It writes the
Chrome-trace JSON and prints the text summary.
"""

import argparse

import numpy as np


def build_step():
    """The quickstart training step plus a speculated-on scale attribute."""
    import repro as R
    from repro import janus, nn

    nn.init.seed(0)
    model = nn.Sequential([
        nn.Dense(8, 32, activation=R.relu),
        nn.Dense(32, 2),
    ])
    optimizer = nn.SGD(0.1)

    class LossScale:
        def __init__(self):
            self.value = 1.0
            # A Tensor-typed heap attribute: read through a guarded
            # py_get_attr whose identity memo (write barrier) skips
            # re-internalization once the value is sealed — the
            # ``executor.memo_hit`` counts in the demo summary.
            self.class_weights = R.constant(
                np.array([1.0, 1.5], dtype=np.float32))

    scale = LossScale()

    @janus.function(optimizer=optimizer)
    def train_step(x, y, flag):
        logits = model(x) * scale.class_weights
        loss = nn.losses.softmax_cross_entropy(logits, y) * scale.value
        # The flag alternates sign across calls, so this branch profiles
        # as dynamic and converts to a cond fragment — which the
        # incremental regeneration after the scale.value change reuses.
        if R.reduce_sum(flag) > 0.0:
            extra = loss * 2.0
        else:
            extra = loss * 0.5
        return loss, extra

    return train_step, scale


def run(steps=12, out="trace.json", level=2, metrics=True, stats_out=None):
    from . import (clear, set_metrics_enabled, set_trace_level,
                   text_summary, trace_level, write_chrome_trace)
    from .cli import write_stats_json

    if trace_level() < level:
        set_trace_level(level)
    if metrics:
        set_metrics_enabled(True)
    clear()

    train_step, scale = build_step()
    rng = np.random.default_rng(0)
    x = rng.normal(size=(64, 8)).astype(np.float32)
    y = (x[:, 0] > 0).astype(np.int64)

    for step in range(steps):
        if step == steps - 3:
            # Break the burned-in constant: assumption fails, the runtime
            # falls back, relaxes the spec, and regenerates the graph —
            # reusing the dynamic-branch fragment from the first build.
            scale.value = 0.5
        flag = np.full((1,), 1.0 if step % 2 == 0 else -1.0, np.float32)
        loss, _extra = train_step(x, y, flag)

    print(text_summary())
    path = write_chrome_trace(out)
    print("\nwrote %s — open chrome://tracing (or https://ui.perfetto.dev) "
          "and load it" % path)
    if stats_out:
        write_stats_json(stats_out)
        print("wrote %s — inspect with `python -m "
              "repro.observability.stats --input %s`"
              % (stats_out, stats_out))
    print("final loss %.4f, stats %r" % (float(loss.numpy()),
                                         train_step.cache_stats()))
    return path


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="trace.json",
                        help="chrome-trace output path (default trace.json)")
    parser.add_argument("--steps", type=int, default=12)
    parser.add_argument("--level", type=int, default=2,
                        help="trace level: 1 lifecycle, 2 per-op")
    parser.add_argument("--no-metrics", action="store_true",
                        help="leave histogram/health collection off")
    parser.add_argument("--stats-out", default=None,
                        help="also save a janus-stats JSON bundle here")
    args = parser.parse_args(argv)
    run(steps=args.steps, out=args.out, level=args.level,
        metrics=not args.no_metrics, stats_out=args.stats_out)


if __name__ == "__main__":
    main()

"""Low-overhead structured event tracing for the JANUS runtime.

A :class:`Tracer` holds a bounded ring buffer of :class:`TraceEvent`
records emitted from the hot paths of the system: graph generation,
cache retrieval, assumption failures/fallbacks, optimization passes,
and (at the detailed level) per-op execution timing.

Design constraints, in order:

1. **Near-zero overhead when off.**  Every instrumentation site first
   reads ``TRACER.level`` (a plain attribute) and only then builds an
   event.  With the default level 0 the cost per site is one attribute
   load and one integer compare.
2. **Bounded memory.**  Events go into a ``collections.deque`` with a
   fixed ``maxlen``; a long benchmark run keeps the most recent window
   instead of growing without bound.
3. **No dependencies on the rest of the runtime.**  This module imports
   only the standard library, so any subsystem (eager executor, graph
   executor, janus core) may import it without cycles.

Levels:

* ``0`` — tracing off (the default),
* ``1`` — lifecycle events: ``graphgen``, ``cache_*``, ``pass``,
  ``assumption_fail``, ``fallback``, ``relax``, per-graph-run ``op``
  spans, eager dispatch counters,
* ``2`` — everything above plus per-op and per-level timing inside the
  graph executor.

The process-wide singleton is :data:`TRACER`; the initial level comes
from the ``JANUS_TRACE`` environment variable.
"""

import os
import threading
import time
from collections import deque

#: Event categories emitted by the runtime (docs/observability.md).
CATEGORIES = (
    "graphgen",          # speculative graph generation / regeneration
    "cache_hit",         # graph cache retrieval: prechecks passed
    "cache_miss",        # graph cache retrieval: absent or precheck failed
    "cache_store",       # a compiled graph entered the cache
    "cache_evict",       # LRU bound exceeded: oldest entry dropped
    "cache_invalidate",  # an entry was dropped (relaxation pending)
    "assumption_fail",   # a runtime guard (AssertOp) fired
    "fallback",          # execution fell back to the imperative executor
    "relax",             # a profiled assumption moved down the lattice
    "pass",              # one optimization pass over one graph
    "op",                # graph-executor timing (per run; per node at level 2)
    "level",             # parallel-schedule level timing (level 2)
    "bench",             # benchmark-harness measurement windows
    "distributed",       # cluster simulation / ring all-reduce (figure 8)
    "serve_queue",       # request time spent queued in the serving layer
    "serve_dispatch",    # serving-layer batch execution span
    "coexec_fragment",   # one symbolic fragment run of a co-execution plan
    "coexec_gap",        # one imperative gap run of a co-execution plan
    "diskcache_probe",   # persistent-cache load attempt on the warm path
)

_perf_counter = time.perf_counter

#: Request-context annotator installed by :mod:`.reqtrace`.  Called for
#: every recorded event (so never on the disabled path) to stamp
#: ``trace_id``/``span_id`` args and mirror the event into the active
#: request's bounded capture.  A plain module global: one load + None
#: test per recorded event.
_REQUEST_HOOK = None


def set_request_hook(hook):
    """Install (or clear, with None) the per-event request annotator."""
    global _REQUEST_HOOK
    _REQUEST_HOOK = hook


class TraceEvent:
    """One structured runtime event.

    ``ph`` follows the Chrome trace-event phase vocabulary: ``"i"`` for
    instant events, ``"X"`` for complete (timed span) events.  ``ts``
    and ``dur`` are in seconds (converted to microseconds on export).
    """

    __slots__ = ("category", "name", "ph", "ts", "dur", "tid", "args")

    def __init__(self, category, name, ph, ts, dur=0.0, tid=0, args=None):
        self.category = category
        self.name = name
        self.ph = ph
        self.ts = ts
        self.dur = dur
        self.tid = tid
        self.args = args

    def __repr__(self):
        return "TraceEvent(%s/%s ph=%s ts=%.6f dur=%.6f %r)" % (
            self.category, self.name, self.ph, self.ts, self.dur,
            self.args or {})


class _Span:
    """Context manager that records one complete ("X") event on exit."""

    __slots__ = ("_tracer", "_category", "_name", "_args", "_start")

    def __init__(self, tracer, category, name, args):
        self._tracer = tracer
        self._category = category
        self._name = name
        self._args = args

    def __enter__(self):
        self._start = _perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        end = _perf_counter()
        if exc_type is not None:
            args = dict(self._args or {})
            args["error"] = exc_type.__name__
            self._args = args
        self._tracer._append(TraceEvent(
            self._category, self._name, "X", self._start,
            end - self._start, threading.get_ident(), self._args))
        return False


class _NullSpan:
    """Shared no-op context manager for disabled trace levels."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """A ring-buffered structured event recorder.

    Instrumentation sites call :meth:`instant` / :meth:`complete` /
    :meth:`span` guarded by a ``tracer.level`` check; nothing is
    allocated when the requested level exceeds the current one.
    """

    def __init__(self, level=0, capacity=65536):
        self.level = level
        self.capacity = capacity
        self._events = deque(maxlen=capacity)
        self._lock = threading.Lock()
        #: Wall-clock epoch paired with the perf_counter origin, so
        #: exported timestamps can be correlated across processes.
        self.epoch = time.time() - _perf_counter()

    # -- recording ---------------------------------------------------------

    def _append(self, event):
        # deque.append is atomic under the GIL; the lock only guards
        # clear-vs-append races from drain().
        hook = _REQUEST_HOOK
        if hook is not None:
            hook(event)
        self._events.append(event)

    def instant(self, category, name, level=1, **args):
        """Record a point-in-time event if tracing is at ``level``."""
        if self.level < level:
            return
        self._append(TraceEvent(category, name, "i", _perf_counter(),
                                0.0, threading.get_ident(), args or None))

    def complete(self, category, name, start, duration, level=1, **args):
        """Record an externally-timed span (caller took the timestamps)."""
        if self.level < level:
            return
        self._append(TraceEvent(category, name, "X", start, duration,
                                threading.get_ident(), args or None))

    def span(self, category, name, level=1, **args):
        """Context manager timing a block as a complete event."""
        if self.level < level:
            return _NULL_SPAN
        return _Span(self, category, name, args or None)

    # -- inspection / control ----------------------------------------------

    @property
    def events(self):
        """Snapshot list of buffered events (oldest first)."""
        with self._lock:
            return list(self._events)

    def drain(self):
        """Return and remove all buffered events."""
        with self._lock:
            events = list(self._events)
            self._events.clear()
        return events

    def clear(self):
        with self._lock:
            self._events.clear()

    def set_level(self, level):
        self.level = int(level)

    def category_counts(self):
        """``{category: number of buffered events}``."""
        counts = {}
        for event in self.events:
            counts[event.category] = counts.get(event.category, 0) + 1
        return counts

    def __len__(self):
        return len(self._events)


def _env_level():
    raw = os.environ.get("JANUS_TRACE", "").strip()
    if not raw:
        return 0
    try:
        return max(0, int(raw))
    except ValueError:
        # Any non-integer truthy value ("on", "chrome", ...) means level 1.
        return 1


#: The process-wide tracer.  Hot paths hold a module-level reference to
#: this object; it is never replaced, only re-leveled or cleared.
TRACER = Tracer(level=_env_level())


def get_tracer():
    return TRACER


def trace_level():
    return TRACER.level


def set_trace_level(level):
    """Set the global trace level (0 = off, 1 = lifecycle, 2 = per-op)."""
    TRACER.set_level(level)


class override_level:
    """Temporarily run the global tracer at a different level.

    Used by :class:`repro.janus.api.JanusFunction` when its config sets
    an explicit ``trace_level`` — the override spans one call.
    """

    __slots__ = ("_level", "_saved")

    def __init__(self, level):
        self._level = level

    def __enter__(self):
        self._saved = TRACER.level
        TRACER.level = int(self._level)
        return TRACER

    def __exit__(self, exc_type, exc, tb):
        TRACER.level = self._saved
        return False

"""Runtime observability for the JANUS reproduction.

Structured event tracing, counters/timers, and exporters that make the
speculate → guard → fallback → relax lifecycle visible:

* :mod:`repro.observability.tracer` — ring-buffered :class:`TraceEvent`
  recorder with level gating (``JANUS_TRACE`` / ``set_trace_level``),
* :mod:`repro.observability.counters` — counters + scoped timers,
* :mod:`repro.observability.metrics` — log-bucket latency histograms
  with p50/p95/p99 (``JANUS_METRICS`` / ``set_metrics_enabled``), plus
  :class:`WindowedHistogram` trailing-window views,
* :mod:`repro.observability.reqtrace` — request-scoped tracing: a
  contextvar-carried :class:`RequestContext` links every event a
  served request touches under one trace id, and the
  :class:`FlightRecorder` retains slowest/failed request exemplars,
* :mod:`repro.observability.health` — per-``janus.function``,
  per-assumption-site speculation health (state, hit ratio, failure and
  relax chains, measured fallback/recompile cost),
* :mod:`repro.observability.export` — ``chrome://tracing`` JSON and a
  plain-text summary,
* :mod:`repro.observability.cli` / ``python -m repro.observability.stats``
  — the ``janus-stats`` diagnostics report + Prometheus text exporter,
* :mod:`repro.observability.httpstat` — a live HTTP scrape endpoint
  (``/metrics``, ``/health``, ``/requests``) for serving workers,
* :mod:`repro.observability.demo` — ``python -m repro.observability.demo``
  runs a small training loop with tracing on and writes ``trace.json``.

Quick use::

    JANUS_TRACE=1 python examples/quickstart.py   # writes trace.json on exit

or programmatically::

    from repro import observability as obs
    obs.set_trace_level(2)
    train_step(x, y)
    print(obs.text_summary())
    obs.write_chrome_trace("trace.json")

See ``docs/observability.md`` for the full guide and
``docs/architecture.md`` for where each event category is emitted.
"""

from .tracer import (TRACER, CATEGORIES, TraceEvent, Tracer, get_tracer,
                     override_level, set_trace_level, trace_level)
from .counters import COUNTERS, CounterRegistry, get_counters
from .metrics import (METRICS, Histogram, MetricsRegistry,
                      WindowedHistogram, get_metrics, metrics_enabled,
                      set_metrics_enabled)
from .health import (HEALTH, HealthRegistry, SiteHealth, SpeculationHealth,
                     get_health)
from .serving import SERVING, ServingStats, get_serving
from .diskcache import DISKCACHE, DiskCacheStats, get_diskcache
from . import reqtrace
from .reqtrace import (RECORDER, FlightRecorder, RequestContext,
                       get_flight_recorder)
from .export import (chrome_trace_events, install_atexit_dump, text_summary,
                     write_chrome_trace)
from .cli import (StatsBundle, load_stats, prometheus_text, render_report,
                  write_stats_json)

__all__ = [
    "TRACER", "CATEGORIES", "TraceEvent", "Tracer", "get_tracer",
    "override_level", "set_trace_level", "trace_level",
    "COUNTERS", "CounterRegistry", "get_counters",
    "METRICS", "Histogram", "MetricsRegistry", "WindowedHistogram",
    "get_metrics", "metrics_enabled", "set_metrics_enabled",
    "HEALTH", "HealthRegistry", "SiteHealth", "SpeculationHealth",
    "get_health",
    "SERVING", "ServingStats", "get_serving",
    "DISKCACHE", "DiskCacheStats", "get_diskcache",
    "RECORDER", "FlightRecorder", "RequestContext", "get_flight_recorder",
    "reqtrace",
    "chrome_trace_events", "install_atexit_dump", "text_summary",
    "write_chrome_trace",
    "StatsBundle", "load_stats", "prometheus_text", "render_report",
    "write_stats_json",
    "clear",
]


def clear():
    """Reset the tracer buffer, counters, histograms, health models,
    serving stats, and the flight recorder."""
    TRACER.clear()
    COUNTERS.clear()
    METRICS.clear()
    HEALTH.clear()
    SERVING.clear()
    DISKCACHE.clear()
    RECORDER.clear()


# Env-var-enabled tracing dumps the trace at interpreter exit.
if TRACER.level > 0:
    install_atexit_dump()

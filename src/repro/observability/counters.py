"""Counters and scoped timers for the JANUS runtime.

A :class:`CounterRegistry` aggregates two kinds of scalar metrics:

* **counters** — monotonically-increasing integers (eager dispatches,
  graph runs, fallbacks), incremented with :meth:`CounterRegistry.inc`;
* **timers** — ``(call count, total seconds)`` pairs accumulated either
  directly via :meth:`CounterRegistry.add_time` or with the
  :meth:`CounterRegistry.timer` scoped context manager.

Unlike the event tracer (which keeps a bounded *window* of recent
events), the registry is a running total: it is what the text summary
reports and what benchmark results embed.  Registries from independent
runs (e.g. worker subprocesses, or per-function registries) combine
with :meth:`CounterRegistry.merge`.
"""

import threading
import time

_perf_counter = time.perf_counter


class _ScopedTimer:
    """Context manager adding its elapsed wall time to one timer."""

    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry, name):
        self._registry = registry
        self._name = name

    def __enter__(self):
        self._start = _perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        self._registry.add_time(self._name, _perf_counter() - self._start)
        return False


class CounterRegistry:
    """Thread-safe named counters and timers."""

    def __init__(self):
        self._counters = {}
        self._timers = {}       # name -> [count, total_seconds]
        self._lock = threading.Lock()

    # -- counters ----------------------------------------------------------

    def inc(self, name, amount=1):
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def get(self, name, default=0):
        return self._counters.get(name, default)

    # -- timers -------------------------------------------------------------

    def add_time(self, name, seconds):
        with self._lock:
            entry = self._timers.get(name)
            if entry is None:
                self._timers[name] = [1, seconds]
            else:
                entry[0] += 1
                entry[1] += seconds

    def timer(self, name):
        """Scoped timer: ``with counters.timer("executor.run"): ...``."""
        return _ScopedTimer(self, name)

    def timer_stats(self, name):
        """``(count, total_seconds)`` for one timer (``(0, 0.0)`` if unused)."""
        entry = self._timers.get(name)
        return (0, 0.0) if entry is None else (entry[0], entry[1])

    # -- aggregation ---------------------------------------------------------

    def merge(self, other):
        """Accumulate ``other``'s counters and timers into this registry.

        Returns ``self`` so merges chain:
        ``total = CounterRegistry().merge(a).merge(b)``.
        """
        with self._lock:
            for name, value in other.snapshot()["counters"].items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, (count, total) in other.snapshot()["timers"].items():
                entry = self._timers.get(name)
                if entry is None:
                    self._timers[name] = [count, total]
                else:
                    entry[0] += count
                    entry[1] += total
        return self

    def snapshot(self):
        """Plain-dict copy: ``{"counters": {...}, "timers": {name: (n, s)}}``."""
        return {
            "counters": dict(self._counters),
            "timers": {k: (v[0], v[1]) for k, v in self._timers.items()},
        }

    def clear(self):
        with self._lock:
            self._counters.clear()
            self._timers.clear()

    def __repr__(self):
        return "CounterRegistry(%d counters, %d timers)" % (
            len(self._counters), len(self._timers))


#: The process-wide registry used by the runtime's instrumentation sites.
COUNTERS = CounterRegistry()


def get_counters():
    return COUNTERS

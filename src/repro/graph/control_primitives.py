"""Low-level dataflow control-flow primitives (paper section 4.2.1).

The paper expresses Python control flow with the classic tagged-token
dataflow primitives that TensorFlow also uses: ``Switch`` and ``Merge``
for conditionals, plus ``Enter`` / ``Exit`` / ``NextIteration`` creating
iteration frames for loops (Yu et al., EuroSys'18 — ref. [50]).

JANUS's graph *generator* emits the higher-level functional ops
(:meth:`~repro.graph.builder.GraphBuilder.cond` etc.), which are easier
to differentiate and schedule; this module provides a faithful executable
model of the primitives themselves — used by tests, documentation, and
anyone studying the translation rules — including a small tagged-token
interpreter that runs graphs built from them.
"""

from ..errors import ExecutionError


class Frame:
    """An iteration frame: (parent, loop-id, iteration counter)."""

    __slots__ = ("parent", "loop_name", "iteration")

    def __init__(self, parent, loop_name, iteration=0):
        self.parent = parent
        self.loop_name = loop_name
        self.iteration = iteration

    def child_tag(self):
        return (self.loop_name, self.iteration)

    def next_iteration(self):
        return Frame(self.parent, self.loop_name, self.iteration + 1)

    def __repr__(self):
        return "Frame(%s@%d)" % (self.loop_name, self.iteration)


ROOT_FRAME = Frame(None, "<root>", 0)


class Token:
    """A value tagged with the frame it belongs to."""

    __slots__ = ("value", "frame", "dead")

    def __init__(self, value, frame, dead=False):
        self.value = value
        self.frame = frame
        self.dead = dead

    def __repr__(self):
        return "Token(%r, %r%s)" % (self.value, self.frame,
                                    ", dead" if self.dead else "")


class PrimitiveOp:
    """A vertex in the primitive dataflow graph."""

    def __init__(self, name, inputs):
        self.name = name
        # Normalize: a bare op means its first output.
        self.inputs = [(i, 0) if isinstance(i, PrimitiveOp) else i
                       for i in inputs]
        self.num_outputs = 1

    def fire(self, tokens):
        """Consume one token per input; emit a list of output tokens.

        Returns None when the op is not ready to fire (Merge semantics).
        """
        raise NotImplementedError


class Compute(PrimitiveOp):
    """A plain computation: fn over input token values."""

    def __init__(self, name, inputs, fn):
        super().__init__(name, inputs)
        self.fn = fn

    def fire(self, tokens):
        if any(t.dead for t in tokens):
            return [Token(None, tokens[0].frame, dead=True)]
        value = self.fn(*[t.value for t in tokens])
        frame = tokens[0].frame if tokens else ROOT_FRAME
        return [Token(value, frame)]


class Switch(PrimitiveOp):
    """Demultiplexer: routes the data input to output 0 (false branch is
    dead) when the predicate is true, to output 1 otherwise."""

    def __init__(self, name, data, pred):
        super().__init__(name, [data, pred])
        self.num_outputs = 2

    def fire(self, tokens):
        data, pred = tokens
        if data.dead or pred.dead:
            dead = Token(None, data.frame, dead=True)
            return [dead, Token(None, data.frame, dead=True)]
        if pred.value:
            return [Token(data.value, data.frame),
                    Token(None, data.frame, dead=True)]
        return [Token(None, data.frame, dead=True),
                Token(data.value, data.frame)]


class Merge(PrimitiveOp):
    """Multiplexer: forwards whichever input arrives alive first."""

    def fire(self, tokens):
        alive = [t for t in tokens if t is not None and not t.dead]
        if not alive:
            present = [t for t in tokens if t is not None]
            if len(present) == len(self.inputs):
                return [Token(None, present[0].frame, dead=True)]
            return None  # wait for more tokens
        return [Token(alive[0].value, alive[0].frame)]

    #: Merge fires on the first live token; the interpreter knows this.
    fires_eagerly = True


class Enter(PrimitiveOp):
    """Pushes a value into a fresh iteration frame of a named loop."""

    def __init__(self, name, data, loop_name):
        super().__init__(name, [data])
        self.loop_name = loop_name

    def fire(self, tokens):
        (data,) = tokens
        if data.dead:
            return [Token(None, data.frame, dead=True)]
        frame = Frame(data.frame, self.loop_name, 0)
        return [Token(data.value, frame)]


class Exit(PrimitiveOp):
    """Pops a value out of its iteration frame into the parent frame."""

    def fire(self, tokens):
        (data,) = tokens
        if data.dead:
            return [Token(None, data.frame.parent or ROOT_FRAME,
                          dead=True)]
        if data.frame.parent is None:
            raise ExecutionError("Exit outside of a loop frame")
        return [Token(data.value, data.frame.parent)]


class NextIteration(PrimitiveOp):
    """Advances a value to the next iteration of its frame."""

    def fire(self, tokens):
        (data,) = tokens
        if data.dead:
            return [Token(None, data.frame, dead=True)]
        return [Token(data.value, data.frame.next_iteration())]


class PrimitiveGraph:
    """A graph of primitive ops plus a tiny tagged-token interpreter.

    This models how a dataflow runtime executes Switch/Merge/Enter/Exit/
    NextIteration: tokens queue on edges, an op fires when every input
    edge for a matching frame holds a token (Merge fires on the first
    live token), and execution ends when the designated sink receives a
    token in the root frame.
    """

    def __init__(self):
        self.ops = []
        self.sources = {}

    def add(self, op):
        self.ops.append(op)
        return op

    def source(self, name, value):
        op = Compute(name, [], lambda: value)
        self.sources[name] = op
        return self.add(op)

    def run(self, sink, max_steps=100000):
        """Run until ``sink`` (an op) produces a live token; return value."""
        consumers = {}
        for op in self.ops:
            for port, edge in enumerate(op.inputs):
                if edge is None:
                    continue
                src, idx = (edge, 0) if isinstance(edge, PrimitiveOp) \
                    else edge
                consumers.setdefault((src, idx), []).append((op, port))
        # pending[(op, frame_tag)] -> list of tokens per input port
        pending = {}
        ready = []
        for op in self.ops:
            if not op.inputs:
                ready.append((op, []))

        result = None
        steps = 0
        while ready:
            steps += 1
            if steps > max_steps:
                raise ExecutionError("primitive graph did not terminate")
            op, tokens = ready.pop()
            outputs = op.fire(tokens)
            if outputs is None:
                continue
            produced_by = op._op if isinstance(op, _Prefired) else op
            for idx, token in enumerate(outputs):
                if produced_by is sink and idx == 0 and not token.dead:
                    result = token.value
                for consumer, port in consumers.get((produced_by, idx),
                                                     []):
                    self._deliver(consumer, port, token, pending, ready)
        if result is None:
            raise ExecutionError("sink never produced a live token")
        return result

    @staticmethod
    def _frame_tag(frame):
        tags = []
        while frame is not None:
            tags.append((frame.loop_name, frame.iteration))
            frame = frame.parent
        return tuple(tags)

    def _deliver(self, consumer, port, token, pending, ready):
        tag = self._frame_tag(token.frame)
        key = (id(consumer), tag)
        slots = pending.get(key)
        if slots is None:
            slots = [None] * len(consumer.inputs)
            pending[key] = slots
        slots[port] = token
        eager = getattr(consumer, "fires_eagerly", False)
        if eager:
            outputs = consumer.fire(list(slots))
            if outputs is not None:
                pending.pop(key, None)
                ready.append((_Prefired(consumer, outputs), []))
            return
        if all(s is not None for s in slots):
            pending.pop(key, None)
            ready.append((consumer, list(slots)))


class _Prefired(PrimitiveOp):
    """Wrapper replaying already-computed outputs (Merge eager firing)."""

    def __init__(self, op, outputs):
        super().__init__(op.name, [])
        self._op = op
        self._outputs = outputs
        self.num_outputs = op.num_outputs

    def fire(self, tokens):
        return self._outputs




def build_cond(graph, pred_op, true_fn, false_fn, data_op):
    """Wire an if/else from Switch and Merge (basic translation rule)."""
    switch = graph.add(Switch("switch", (data_op, 0), (pred_op, 0)))
    t = true_fn(graph, (switch, 0))
    f = false_fn(graph, (switch, 1))
    return graph.add(Merge("merge", [t, f]))


def build_while(graph, init_op, cond_fn, body_fn, loop_name="loop"):
    """Wire a while-loop from Enter/Merge/Switch/Body/NextIteration/Exit."""
    enter = graph.add(Enter("enter", (init_op, 0), loop_name))
    merge = Merge("merge", [(enter, 0), None])
    graph.add(merge)
    pred = cond_fn(graph, (merge, 0))
    switch = graph.add(Switch("switch", (merge, 0), (pred, 0)))
    body = body_fn(graph, (switch, 0))
    next_it = graph.add(NextIteration("next", [(body, 0)]))
    merge.inputs[1] = (next_it, 0)
    exit_op = graph.add(Exit("exit", [(switch, 1)]))
    return exit_op

"""Graph-building execution context.

While a :class:`GraphBuilder` is the active context, every call into the
op API adds symbolic nodes instead of computing — the same mechanism the
JANUS graph generator, the symbolic baseline, and symbolic autodiff all
use to emit graphs.
"""

import numpy as np

from ..errors import GraphError
from ..ops.dispatch import ExecutionContext
from ..tensor import TensorValue, PyRef
from ..tensor.shape import Shape
from .core import Graph, GraphFunction


class GraphBuilder(ExecutionContext):
    """Builds a :class:`Graph` through the dispatching op API."""

    def __init__(self, graph=None, name="graph"):
        self.graph = graph if graph is not None else Graph(name)
        self._constant_cache = {}
        self._var_read_cache = {}
        self._var_last_write = {}   # variable -> assign Node (hazard dep)
        self._py_hazards = {}       # (id(obj), key) -> last access Node

    # -- ExecutionContext interface -----------------------------------------

    def convert(self, value, dtype=None):
        from ..imperative.eager import Tensor
        from ..imperative.variable import Variable
        from .core import NodeOutput
        if isinstance(value, NodeOutput):
            if value.node.graph is not self.graph:
                raise GraphError("symbolic value belongs to another graph")
            return value
        if isinstance(value, Variable):
            return self.read_variable(value)
        if isinstance(value, Tensor):
            return self.constant(value.value)
        if isinstance(value, PyRef):
            return self.pyref_constant(value)
        return self.constant(TensorValue.of(value, dtype=dtype))

    def execute(self, op_def, inputs, attrs):
        num = op_def.num_outputs
        if callable(num):
            num = num(attrs)
        node = self.graph.new_node(op_def.name, op_def=op_def, attrs=attrs,
                                   inputs=inputs)
        in_shapes = [i.shape for i in inputs]
        in_dtypes = [i.dtype for i in inputs]
        try:
            specs = op_def.shape_fn(attrs, in_shapes, in_dtypes)
        except Exception:
            specs = [(Shape.unknown(), in_dtypes[0] if in_dtypes else None)
                     ] * num
        for shape, dt in specs:
            node.add_output(shape, dt)
        if len(node.outputs) == 1:
            return node.outputs[0]
        return tuple(node.outputs)

    # -- graph-construction primitives -----------------------------------------

    def placeholder(self, name, shape=None, dtype=None):
        """A graph input; ``dtype=None`` marks a PyRef (non-tensor) input."""
        node = self.graph.new_node("placeholder",
                                   attrs={"ph_name": name}, name=name)
        node.add_output(Shape.of(shape) if shape is not None
                        else Shape.unknown(), dtype)
        self.graph.placeholders.append(node)
        return node.outputs[0]

    def constant(self, value):
        value = value if isinstance(value, TensorValue) \
            else TensorValue.of(value)
        key = None
        if value.array.nbytes <= 256:
            key = (value.dtype.name, value.array.shape,
                   value.array.tobytes())
            cached = self._constant_cache.get(key)
            if cached is not None:
                return cached
        node = self.graph.new_node("constant")
        node.constant_value = value
        out = node.add_output(value.shape, value.dtype)
        if key is not None:
            self._constant_cache[key] = out
        return out

    def pyref_constant(self, ref):
        node = self.graph.new_node("constant")
        node.constant_value = ref
        return node.add_output(Shape.scalar(), None)

    def read_variable(self, variable):
        """Read a Variable; read-after-write inside the graph sees the write."""
        pending = self._var_last_write.get(variable)
        if pending is not None:
            return pending.inputs[0]
        cached = self._var_read_cache.get(variable)
        if cached is not None:
            return cached
        node = self.graph.new_node("var_read", name="read_%s" % variable.name)
        node.variable = variable
        out = node.add_output(variable.shape, variable.dtype)
        self._var_read_cache[variable] = out
        return out

    def assign_variable(self, variable, value):
        """Deferred variable assignment (applied at commit, section 4.2.3)."""
        value = self.convert(value)
        deps = []
        prev = self._var_last_write.get(variable)
        if prev is not None:
            deps.append(prev)
        node = self.graph.new_node("var_assign", inputs=[value],
                                   control_inputs=deps,
                                   name="assign_%s" % variable.name)
        node.variable = variable
        node.add_output(variable.shape, variable.dtype)
        self._var_last_write[variable] = node
        self._var_read_cache.pop(variable, None)
        return node.outputs[0]

    # -- Python-heap access ops (paper section 4.2.3) ----------------------------

    def _hazard_dep(self, obj, key, node, is_write):
        hkey = (id(obj), key)
        prev = self._py_hazards.get(hkey)
        if prev is not None and (is_write or prev.op_name.startswith("py_set")):
            node.control_inputs.append(prev)
        if is_write or prev is None or prev.op_name.startswith("py_set"):
            self._py_hazards[hkey] = node

    def py_get_attr(self, obj_value, attr_name, expected=None):
        """Read ``obj.attr`` from the Python heap (or its local copy)."""
        node = self.graph.new_node("py_get_attr",
                                   attrs={"name": attr_name},
                                   name="getattr_%s" % attr_name)
        obj, inputs = self._resolve_py_object(obj_value)
        node.py_object = obj
        node.inputs = inputs
        shape, dtype = self._expected_spec(node, expected)
        self._hazard_dep(self._hazard_obj(obj, inputs), attr_name, node,
                         is_write=False)
        return node.add_output(shape, dtype)

    def py_set_attr(self, obj_value, attr_name, value):
        value = self.convert(value)
        node = self.graph.new_node("py_set_attr",
                                   attrs={"name": attr_name},
                                   name="setattr_%s" % attr_name)
        obj, inputs = self._resolve_py_object(obj_value)
        node.py_object = obj
        node.inputs = inputs + [value]
        self._hazard_dep(self._hazard_obj(obj, inputs), attr_name, node,
                         is_write=True)
        return node.add_output(Shape.scalar(), None)

    def py_get_subscr(self, obj_value, key, expected=None):
        node = self.graph.new_node("py_get_subscr", attrs={"key": key},
                                   name="getsubscr")
        obj, inputs = self._resolve_py_object(obj_value)
        node.py_object = obj
        node.inputs = inputs
        shape, dtype = self._expected_spec(node, expected)
        self._hazard_dep(self._hazard_obj(obj, inputs), ("[]", key), node,
                         is_write=False)
        return node.add_output(shape, dtype)

    def py_set_subscr(self, obj_value, key, value):
        value = self.convert(value)
        node = self.graph.new_node("py_set_subscr", attrs={"key": key},
                                   name="setsubscr")
        obj, inputs = self._resolve_py_object(obj_value)
        node.py_object = obj
        node.inputs = inputs + [value]
        self._hazard_dep(self._hazard_obj(obj, inputs), ("[]", key), node,
                         is_write=True)
        return node.add_output(Shape.scalar(), None)

    def _resolve_py_object(self, obj_value):
        from .core import NodeOutput
        if isinstance(obj_value, NodeOutput):
            return None, [obj_value]
        if isinstance(obj_value, PyRef):
            return obj_value, []
        return PyRef(obj_value), []

    @staticmethod
    def _hazard_obj(obj, inputs):
        if obj is not None:
            return obj.obj
        return inputs[0].node  # dynamic object: key hazards on producer

    @staticmethod
    def _expected_spec(node, expected):
        """Shape/dtype of a heap read under the profiled type assumption."""
        if expected is None:
            return Shape.unknown(), None
        node.attrs["expected"] = expected
        kind = expected[0]
        if kind == "tensor":
            _, dtype, shape = expected
            return Shape.of(shape), dtype
        if kind == "const":
            _, dtype, value = expected
            return Shape(np.asarray(value).shape), dtype
        return Shape.scalar(), None

    def py_call(self, fn, inputs, name=None):
        """Run an arbitrary Python callable as a graph operation.

        This is the paper's *naive* PyFuncOp strategy (section 4.2.3):
        effectful, GIL-bound, and executed in place.  JANUS only emits it
        when ``deferred_state_update`` is disabled (the ablation).
        """
        inputs = [self.convert(i) for i in inputs]
        node = self.graph.new_node("py_call", inputs=inputs,
                                   name=name or "py_call")
        node.py_object = PyRef(fn)
        node.add_output(Shape.scalar(), None)
        return node.outputs[0]

    # -- functional control flow -----------------------------------------------

    def invoke(self, func, args, out_specs, name=None):
        """Call a :class:`GraphFunction` (supports recursion, ref. [20])."""
        args = [self.convert(a) for a in args]
        node = self.graph.new_node("invoke", inputs=args,
                                   name=name or ("invoke_%s" % func.name))
        node.func = func
        for shape, dtype in out_specs:
            node.add_output(shape, dtype)
        if len(node.outputs) == 1:
            return node.outputs[0]
        return tuple(node.outputs)

    def cond(self, pred, true_func, false_func, captured, out_specs):
        pred = self.convert(pred)
        captured = [self.convert(c) for c in captured]
        node = self.graph.new_node("cond", inputs=[pred] + captured,
                                   name="cond")
        node.branches = {"true": true_func, "false": false_func}
        for shape, dtype in out_specs:
            node.add_output(shape, dtype)
        if len(node.outputs) == 1:
            return node.outputs[0]
        return tuple(node.outputs)

    def while_loop(self, cond_func, body_func, loop_vars, out_specs=None):
        loop_vars = [self.convert(v) for v in loop_vars]
        node = self.graph.new_node("while_loop", inputs=loop_vars,
                                   name="while")
        node.attrs["cond_func"] = cond_func
        node.attrs["body_func"] = body_func
        if out_specs is None:
            out_specs = [(v.shape, v.dtype) for v in loop_vars]
        for shape, dtype in out_specs:
            node.add_output(shape, dtype)
        return tuple(node.outputs)

    # -- helpers -----------------------------------------------------------------

    def mark_outputs(self, outputs):
        from .core import NodeOutput
        flat = []
        for out in outputs:
            if not isinstance(out, NodeOutput):
                out = self.convert(out)
            flat.append(out)
        self.graph.outputs = flat
        return flat

    def finalize_function(self, name):
        func = GraphFunction(name)
        func.finalize(self.graph)
        return func

"""Symbolic dataflow graph IR.

A :class:`Graph` is a DAG of :class:`Node` s.  Each node is either

* a *registered op* (its ``op_def`` points into :mod:`repro.ops.registry`
  and the executor runs its numpy kernel), or
* a *special node* interpreted directly by the executor: placeholders,
  constants, variable reads/assignments, the Python-heap access ops
  (``py_get_attr`` and friends, paper section 4.2.3), and the functional
  control-flow ops ``cond`` / ``while_loop`` / ``invoke`` (section 4.2.1)
  whose bodies are nested :class:`GraphFunction` s.

Edges are :class:`NodeOutput` handles carrying static shape/dtype
information.  A ``dtype`` of ``None`` marks a non-tensor edge transporting
a :class:`~repro.tensor.PyRef` (arbitrary Python object), mirroring the
paper's encoding of Python values as pointer-holding scalars.
"""

from ..errors import GraphError
from ..tensor.shape import Shape

#: Node op_names interpreted by the executor rather than the op registry.
SPECIAL_OPS = frozenset([
    "placeholder", "constant", "var_read", "var_assign",
    "py_get_attr", "py_set_attr", "py_get_subscr", "py_set_subscr",
    "py_call", "cond", "while_loop", "invoke",
    "cond_grad", "while_grad", "invoke_grad", "group",
])

#: Special ops with side effects: never pruned, folded, or deduplicated.
EFFECT_OPS = frozenset([
    "var_assign", "py_set_attr", "py_set_subscr", "py_call", "group",
])


class NodeOutput:
    """One output edge of a node; the symbolic tensor handle."""

    __slots__ = ("node", "index", "shape", "dtype")

    def __init__(self, node, index, shape, dtype):
        self.node = node
        self.index = index
        self.shape = Shape.of(shape) if shape is not None else Shape.unknown()
        self.dtype = dtype  # DType, or None for PyRef edges

    @property
    def is_tensor(self):
        return self.dtype is not None

    def __repr__(self):
        dt = self.dtype.name if self.dtype else "pyref"
        return "%s:%d<%s, %s>" % (self.node.debug_name, self.index, dt,
                                  self.shape)

    # -- operator overloads shared with eager tensors -------------------------

    def _binop(self, other, fn, reverse=False):
        from ..ops import api
        f = getattr(api, fn)
        return f(other, self) if reverse else f(self, other)

    def __add__(self, o):
        return self._binop(o, "add")

    def __radd__(self, o):
        return self._binop(o, "add", True)

    def __sub__(self, o):
        return self._binop(o, "sub")

    def __rsub__(self, o):
        return self._binop(o, "sub", True)

    def __mul__(self, o):
        return self._binop(o, "mul")

    def __rmul__(self, o):
        return self._binop(o, "mul", True)

    def __truediv__(self, o):
        return self._binop(o, "div")

    def __rtruediv__(self, o):
        return self._binop(o, "div", True)

    def __floordiv__(self, o):
        return self._binop(o, "floordiv")

    def __mod__(self, o):
        return self._binop(o, "mod")

    def __pow__(self, o):
        return self._binop(o, "pow")

    def __rpow__(self, o):
        return self._binop(o, "pow", True)

    def __matmul__(self, o):
        return self._binop(o, "matmul")

    def __neg__(self):
        from ..ops import api
        return api.neg(self)

    def __abs__(self):
        from ..ops import api
        return api.abs(self)

    def __eq__(self, o):
        return self._binop(o, "equal")

    def __ne__(self, o):
        return self._binop(o, "not_equal")

    def __lt__(self, o):
        return self._binop(o, "less")

    def __le__(self, o):
        return self._binop(o, "less_equal")

    def __gt__(self, o):
        return self._binop(o, "greater")

    def __ge__(self, o):
        return self._binop(o, "greater_equal")

    def __hash__(self):
        return hash((id(self.node), self.index))

    def __getitem__(self, index):
        from ..ops import api
        return api.getitem(self, index)

    def __len__(self):
        from ..errors import ShapeError
        if self.shape.dims is None or self.shape.dims == () or \
                self.shape.dims[0] is None:
            raise ShapeError("len() needs a static leading dimension")
        return self.shape.dims[0]

    def __iter__(self):
        # Lets imperative-style loops build unrolled TF-1-style graphs
        # directly under a GraphBuilder (the symbolic baseline).
        from ..ops import api
        for i in range(len(self)):
            yield api.getitem(self, i)


class Node:
    """A vertex of the dataflow graph."""

    __slots__ = ("graph", "id", "op_name", "op_def", "attrs", "inputs",
                 "control_inputs", "outputs", "variable", "py_object",
                 "func", "branches", "constant_value", "name")

    def __init__(self, graph, node_id, op_name, op_def=None, attrs=None,
                 inputs=(), control_inputs=(), name=None):
        self.graph = graph
        self.id = node_id
        self.op_name = op_name
        self.op_def = op_def
        self.attrs = dict(attrs or {})
        self.inputs = list(inputs)
        self.control_inputs = list(control_inputs)
        self.outputs = []
        self.variable = None        # for var_read / var_assign
        self.py_object = None       # for py_get/set_attr with static object
        self.func = None            # GraphFunction for invoke/while body...
        self.branches = None        # dict of GraphFunction for cond
        self.constant_value = None  # TensorValue or PyRef for constants
        self.name = name or ("%s_%d" % (op_name, node_id))

    @property
    def debug_name(self):
        return self.name

    @property
    def is_special(self):
        return self.op_def is None

    @property
    def is_stateful(self):
        if self.op_def is not None:
            return self.op_def.stateful
        return self.op_name in SPECIAL_OPS and self.op_name not in (
            "constant", "placeholder")

    @property
    def has_effects(self):
        """True if the node must execute even when its outputs are unused."""
        return self._has_effects(set())

    def _has_effects(self, seen_graphs):
        if self.op_name in EFFECT_OPS:
            return True
        if self.op_name in ("py_get_attr", "py_get_subscr"):
            expected = self.attrs.get("expected")
            # Constant-value guards must run even though their output is
            # unused: they validate a speculative assumption.
            return bool(expected) and expected[0] == "const"
        if self.op_def is not None and self.op_def.stateful:
            # random ops are stateful but side-effect free; asserts and
            # prints must always run.
            return self.op_name in ("assert", "print")
        # Functional control flow may contain effects inside its bodies
        # (visited set guards against recursive functions).
        if self.op_name in ("cond", "while_loop", "invoke"):
            for func in self._nested_functions():
                if func is None or func.graph is None:
                    continue
                if id(func.graph) in seen_graphs:
                    continue
                seen_graphs.add(id(func.graph))
                if any(n._has_effects(seen_graphs)
                       for n in func.graph.nodes):
                    return True
        return False

    def _nested_functions(self):
        if self.branches:
            for f in self.branches.values():
                yield f
        if self.func is not None:
            yield self.func
        for key in ("cond_func", "body_func"):
            f = self.attrs.get(key)
            if f is not None:
                yield f

    def add_output(self, shape, dtype):
        out = NodeOutput(self, len(self.outputs), shape, dtype)
        self.outputs.append(out)
        return out

    def signature(self):
        """Structural key used by CSE; None when not deduplicable."""
        if self.is_special or self.is_stateful or self.control_inputs:
            return None
        attr_key = tuple(sorted(self.attrs.items()))
        input_key = tuple((id(i.node), i.index) for i in self.inputs)
        if self.op_def is not None and self.op_def.commutative:
            input_key = tuple(sorted(input_key))
        return (self.op_name, attr_key, input_key)

    def __repr__(self):
        return "Node(%s)" % self.debug_name

    def __hash__(self):
        return id(self)

    def __eq__(self, other):
        return self is other


class Graph:
    """A dataflow graph: nodes plus designated placeholder/output lists."""

    def __init__(self, name="graph"):
        self.name = name
        self.nodes = []
        self.placeholders = []      # Nodes, in positional-argument order
        self.outputs = []           # NodeOutputs returned by execution
        self._next_id = 0
        self._executor_cache = {}   # config key -> compiled executor
        #: Monotonic structural version: bumped on node addition/removal.
        #: Cached whole-graph analyses (see graph.passes.AnalysisContext)
        #: key off it so they can never serve a stale order.
        self.version = 0
        #: (version, pass-pipeline key) of the last full PassManager run,
        #: or None.  Any structural change bumps ``version`` and thereby
        #: invalidates the stamp, so an already-optimized graph spliced
        #: unchanged into a regeneration is skipped by the passes.
        self._opt_stamp = None

    def new_node(self, op_name, op_def=None, attrs=None, inputs=(),
                 control_inputs=(), name=None):
        node = Node(self, self._next_id, op_name, op_def, attrs, inputs,
                    control_inputs, name)
        self._next_id += 1
        self.nodes.append(node)
        self.version += 1
        self._executor_cache.clear()
        return node

    def __getstate__(self):
        # Executor closures are per-process; a deserialized graph starts
        # with an empty cache and rebuilds them on first execution.
        state = self.__dict__.copy()
        state["_executor_cache"] = {}
        return state

    def remove_nodes(self, dead):
        """Drop a set of nodes (used by optimization passes)."""
        dead = set(dead)
        self.nodes = [n for n in self.nodes if n not in dead]
        self.version += 1
        self._executor_cache.clear()

    def topological_order(self, targets=None):
        """Nodes in dependency order; restricted to ancestors of targets.

        ``targets`` is an iterable of Nodes; None means every node.
        """
        if targets is None:
            wanted = list(self.nodes)
        else:
            wanted = list(targets)
        order = []
        state = {}  # node -> 1 visiting, 2 done
        stack = [(n, False) for n in reversed(wanted)]
        while stack:
            node, processed = stack.pop()
            if processed:
                state[node] = 2
                order.append(node)
                continue
            st = state.get(node)
            if st == 2:
                continue
            if st == 1:
                raise GraphError("cycle through %s" % node.debug_name)
            state[node] = 1
            stack.append((node, True))
            deps = [i.node for i in node.inputs] + list(node.control_inputs)
            for dep in reversed(deps):
                if state.get(dep) != 2:
                    if state.get(dep) == 1:
                        raise GraphError("cycle through %s"
                                         % dep.debug_name)
                    stack.append((dep, False))
        return order

    def live_nodes(self):
        """Ancestors of graph outputs plus all effectful nodes."""
        roots = [o.node for o in self.outputs]
        roots += [n for n in self.nodes if n.has_effects]
        roots += self.placeholders  # feeds bind positionally: keep them all
        return set(self.topological_order(roots))

    def consumer_info(self):
        """Edge-consumer map plus control-dependency users.

        Returns ``(consumers, control_users)`` where ``consumers`` maps
        ``(id(node), output index)`` to the list of nodes reading that
        edge (one entry per consuming *edge*, so a node reading the same
        output twice appears twice) and ``control_users`` is the set of
        ``id(node)`` values referenced by any ``control_inputs`` list.
        Fusion-style passes use this to prove an intermediate value is
        invisible outside a candidate group before erasing it.
        """
        consumers = {}
        control_users = set()
        for node in self.nodes:
            for inp in node.inputs:
                consumers.setdefault((id(inp.node), inp.index),
                                     []).append(node)
            for dep in node.control_inputs:
                control_users.add(id(dep))
        return consumers, control_users

    def validate(self):
        node_set = set(self.nodes)
        for node in self.nodes:
            for inp in node.inputs:
                if inp.node not in node_set:
                    raise GraphError("%s consumes output of removed node %s"
                                     % (node.debug_name,
                                        inp.node.debug_name))
        self.topological_order()  # raises on cycles
        return True

    def summary(self):
        """Human-readable multi-line description (debugging aid)."""
        lines = ["graph %s (%d nodes)" % (self.name, len(self.nodes))]
        for node in self.topological_order():
            ins = ", ".join("%s:%d" % (i.node.debug_name, i.index)
                            for i in node.inputs)
            lines.append("  %s = %s(%s)" % (node.debug_name, node.op_name,
                                            ins))
        outs = ", ".join(repr(o) for o in self.outputs)
        lines.append("  return %s" % outs)
        return "\n".join(lines)

    def __repr__(self):
        return "Graph(%r, %d nodes)" % (self.name, len(self.nodes))


class GraphFunction:
    """A graph with a call signature, usable as a callee for invoke/cond/while.

    Supports recursion: the function object is registered (and can be
    referenced by invoke nodes) *before* its body graph is finalized.
    ``variables`` is the transitive list of Variables read anywhere inside,
    in deterministic (uid) order — gradient machinery relies on it.
    """

    def __init__(self, name):
        self.name = name
        self.graph = None
        self._variables = None
        self._grad = None           # lazily-built gradient GraphFunction
        self.grad_meta = None       # set on gradient functions
        self.janus_meta = None      # set by the JANUS graph generator
        self._memo_effects = None   # cached has_effects (executor memo)

    def __getstate__(self):
        # Variables, gradient functions, and effect memos are lazily
        # derived (or, for janus_meta, conversion-time only) and may
        # capture process-local identity; rebuild them on demand in the
        # loading process.
        state = self.__dict__.copy()
        state["_variables"] = None
        state["_grad"] = None
        state["_memo_effects"] = None
        state["janus_meta"] = None
        return state

    @property
    def is_finalized(self):
        return self.graph is not None

    def finalize(self, graph):
        if self.graph is not None:
            raise GraphError("function %s already finalized" % self.name)
        self.graph = graph

    @property
    def variables(self):
        """Transitive Variables read inside, uid-ordered (lazy: recursion)."""
        if self._variables is None:
            if self.graph is None:
                return []
            self._variables = sorted(collect_variables(self.graph),
                                     key=lambda v: v.uid)
        return self._variables

    @property
    def has_effects(self):
        if self.graph is None:
            return False
        seen = {id(self.graph)}
        return any(n._has_effects(seen) for n in self.graph.nodes)

    @property
    def arg_outputs(self):
        return [ph.outputs[0] for ph in self.graph.placeholders]

    def __repr__(self):
        status = "%d nodes" % len(self.graph.nodes) if self.graph else \
            "unfinalized"
        return "GraphFunction(%r, %s)" % (self.name, status)


def collect_variables(graph, _seen_graphs=None):
    """All Variables read transitively inside a graph (handles recursion)."""
    if _seen_graphs is None:
        _seen_graphs = set()
    if id(graph) in _seen_graphs:
        return set()
    _seen_graphs.add(id(graph))
    found = set()
    for node in graph.nodes:
        if node.op_name in ("var_read", "var_assign") and node.variable:
            found.add(node.variable)
        for func in node._nested_functions():
            if func is not None and func.graph is not None:
                found |= collect_variables(func.graph, _seen_graphs)
    return found

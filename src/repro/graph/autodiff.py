"""Reverse-mode automatic differentiation over symbolic graphs.

The static portion of a graph is differentiated by walking it in reverse
topological order and invoking the mode-polymorphic gradient registry
under a :class:`~repro.graph.builder.GraphBuilder` context, so gradient
*subgraphs* are appended to the same graph.

Functional control flow is differentiated compositionally:

* ``invoke`` (recursive functions, ref. [20] of the paper) — the callee's
  gradient is itself a :class:`GraphFunction` that recomputes the forward
  body and backpropagates through it; a recursive callee yields a
  recursive gradient function.
* ``cond`` — gradient is a ``cond`` over the two branch-gradient
  functions, built with a *shared* variable ordering so either branch
  produces grads for the union of variables (zeros for the untouched).
* ``while_loop`` — the forward node records per-iteration loop-variable
  snapshots; a ``while_grad`` node replays them in reverse through the
  body-gradient function, threading loop-variable adjoints and summing
  per-iteration variable gradients.

Because models read parameters through ``var_read`` nodes (possibly deep
inside nested functions), gradients are reported per-:class:`Variable` —
this is what the JANUS training path uses to append optimizer update ops.
"""

import numpy as np

from ..errors import GraphError
from ..ops import api
from ..ops.registry import GradContext
from .builder import GraphBuilder
from .core import Graph, GraphFunction


def _key(node_output):
    return (id(node_output.node), node_output.index)


def _is_float(node_output):
    return node_output.dtype is not None and node_output.dtype.is_floating


class _Accumulator:
    """Adjoint accumulation with NodeOutput-safe keys."""

    def __init__(self):
        self._grads = {}

    def add(self, node_output, grad):
        if grad is None or not _is_float(node_output):
            return
        k = _key(node_output)
        existing = self._grads.get(k)
        self._grads[k] = grad if existing is None \
            else api.add(existing, grad)

    def get(self, node_output):
        return self._grads.get(_key(node_output))


def backprop(builder, seeds, var_grads=None):
    """Backpropagate ``seeds`` (NodeOutput -> grad handle) through a graph.

    Returns ``(accumulator, var_grads)``: the adjoint accumulator plus a
    dict mapping each touched Variable to its gradient handle.
    New gradient nodes are appended via ``builder``.
    """
    acc = _Accumulator()
    if var_grads is None:
        var_grads = {}
    seed_nodes = []
    for node_output, grad in seeds:
        acc.add(node_output, grad)
        seed_nodes.append(node_output.node)

    order = builder.graph.topological_order(targets=seed_nodes)
    for node in reversed(order):
        out_grads = [acc.get(o) for o in node.outputs]
        if all(g is None for g in out_grads):
            continue
        op = node.op_name
        if op == "var_read":
            total = out_grads[0]
            prior = var_grads.get(node.variable)
            var_grads[node.variable] = total if prior is None \
                else api.add(prior, total)
        elif op in ("placeholder", "constant", "var_assign",
                    "py_get_attr", "py_get_subscr", "py_call"):
            continue
        elif op == "invoke":
            _invoke_grad(builder, node, out_grads, acc, var_grads)
        elif op == "cond":
            _cond_grad(builder, node, out_grads, acc, var_grads)
        elif op == "while_loop":
            _while_grad(builder, node, out_grads, acc, var_grads)
        elif node.op_def is not None:
            _op_grad(builder, node, out_grads, acc)
        # everything else (assert, print, set ops) terminates gradients
    return acc, var_grads


def _op_grad(builder, node, out_grads, acc):
    grad_fn = node.op_def.grad_fn
    if grad_fn is None:
        return
    filled = [g if g is not None else api.zeros_like(o)
              for g, o in zip(out_grads, node.outputs)]
    ctx = GradContext(node.op_name, node.attrs, node.inputs, node.outputs)
    in_grads = grad_fn(ctx, filled)
    for inp, grad in zip(node.inputs, in_grads):
        acc.add(inp, grad)


def _filled_out_grads(node, out_grads, float_outputs):
    grads = []
    for out, g in zip(node.outputs, out_grads):
        if not _is_float(out):
            continue
        grads.append(g if g is not None else api.zeros_like(out))
    return grads


def _invoke_grad(builder, node, out_grads, acc, var_grads):
    gfunc = grad_function(node.func)
    meta = gfunc.grad_meta
    inputs = list(node.inputs) + _filled_out_grads(node, out_grads, None)
    out_specs = meta["out_specs"]
    results = builder.invoke(gfunc, inputs, out_specs,
                             name="invoke_grad_%s" % node.func.name)
    if not isinstance(results, tuple):
        results = (results,)
    _scatter_grad_results(node, meta, results, acc, var_grads)


def _scatter_grad_results(node, meta, results, acc, var_grads):
    i = 0
    for arg_idx in meta["float_arg_indices"]:
        acc.add(node.inputs[meta["arg_offset"] + arg_idx], results[i])
        i += 1
    for variable in meta["var_list"]:
        g = results[i]
        i += 1
        prior = var_grads.get(variable)
        var_grads[variable] = g if prior is None else api.add(prior, g)


def _cond_grad(builder, node, out_grads, acc, var_grads):
    true_f = node.branches["true"]
    false_f = node.branches["false"]
    union_vars = sorted(set(true_f.variables) | set(false_f.variables),
                        key=lambda v: v.uid)
    tg = grad_function(true_f, var_order=union_vars)
    fg = grad_function(false_f, var_order=union_vars)
    meta = tg.grad_meta
    pred = node.inputs[0]
    captured = list(node.inputs[1:])
    args = captured + _filled_out_grads(node, out_grads, None)
    results = builder.cond(pred, tg, fg, args, meta["out_specs"])
    if not isinstance(results, tuple):
        results = (results,)
    # arg_offset=1 because cond inputs are [pred, *captured]
    meta = dict(meta, arg_offset=1)
    _scatter_grad_results(node, meta, results, acc, var_grads)


def _while_grad(builder, node, out_grads, acc, var_grads):
    body_f = node.attrs["body_func"]
    node.attrs["record_grad"] = True
    bg = grad_function(body_f)
    meta = bg.grad_meta
    float_idx = meta["float_arg_indices"]
    float_mask = tuple(1 if i in set(float_idx) else 0
                       for i in range(len(node.inputs)))
    in_grads = []
    for i in float_idx:
        g = out_grads[i]
        in_grads.append(g if g is not None
                        else api.zeros_like(node.outputs[i]))
    gnode = builder.graph.new_node("while_grad", inputs=in_grads,
                                   name="while_grad")
    gnode.attrs["forward_node"] = node
    gnode.attrs["body_grad_func"] = bg
    gnode.attrs["grad_var_count"] = len(meta["var_list"])
    gnode.attrs["float_mask"] = float_mask
    for shape, dtype in meta["out_specs"]:
        gnode.add_output(shape, dtype)
    results = gnode.outputs
    meta = dict(meta, arg_offset=0)
    _scatter_grad_results(node, meta, results, acc, var_grads)


def grad_function(func, var_order=None):
    """Build (or fetch) the gradient GraphFunction of ``func``.

    Signature of the returned function:
      placeholders: [*forward_args, *grads_for_float_outputs]
      outputs:      [*grads_for_float_args, *grads_per_variable]

    ``var_order`` overrides the variable ordering (used by cond so both
    branch gradients agree); the default is ``func.variables``.
    The gradient function *recomputes* the forward body internally, which
    sidesteps forward-value bookkeeping across recursive invocations.
    """
    if var_order is None:
        var_order = func.variables
        cache_key = "default"
    else:
        cache_key = tuple(v.uid for v in var_order)
    if func._grad is None:
        func._grad = {}
    cached = func._grad.get(cache_key)
    if cached is not None:
        return cached

    gfunc = GraphFunction(func.name + "_grad")
    func._grad[cache_key] = gfunc  # registered first: recursion-safe

    fwd = func.graph
    # The gradient signature depends only on the forward signature and the
    # variable list, so it is known before the body exists — this is what
    # makes *recursive* gradient functions well-defined.
    fwd_float_args = [i for i, ph in enumerate(fwd.placeholders)
                      if _is_float(ph.outputs[0])]
    out_specs = [(ph.outputs[0].shape, ph.outputs[0].dtype)
                 for i, ph in enumerate(fwd.placeholders)
                 if i in set(fwd_float_args)]
    out_specs += [(v.shape, v.dtype) for v in var_order]
    gfunc.grad_meta = {
        "float_arg_indices": fwd_float_args,
        "var_list": list(var_order),
        "arg_offset": 0,
        "out_specs": out_specs,
    }
    builder = GraphBuilder(name=gfunc.name)
    with builder:
        arg_phs = []
        for i, ph in enumerate(fwd.placeholders):
            out = ph.outputs[0]
            arg_phs.append(builder.placeholder("arg_%d" % i,
                                               shape=out.shape,
                                               dtype=out.dtype))
        value_map = {}
        for ph, new in zip(fwd.placeholders, arg_phs):
            value_map[_key(ph.outputs[0])] = new
        copy_graph_into(fwd, builder, value_map)
        fwd_outs = [value_map[_key(o)] for o in fwd.outputs]

        grad_phs = []
        seeds = []
        for j, out in enumerate(fwd_outs):
            if not _is_float(out):
                continue
            gph = builder.placeholder("out_grad_%d" % j, shape=out.shape,
                                      dtype=out.dtype)
            grad_phs.append(gph)
            seeds.append((out, gph))

        acc, vgrads = backprop(builder, seeds)

        outputs = []
        for i in fwd_float_args:
            g = acc.get(arg_phs[i])
            outputs.append(g if g is not None
                           else api.zeros_like(arg_phs[i]))
        for variable in var_order:
            g = vgrads.get(variable)
            if g is None:
                g = api.fill(variable.shape.as_tuple(), 0,
                             variable.dtype)
            outputs.append(g)
        builder.mark_outputs(outputs)

    gfunc.finalize(builder.graph)
    return gfunc


def copy_graph_into(src_graph, builder, value_map):
    """Clone ``src_graph``'s nodes into the builder's graph.

    ``value_map`` maps ``_key(src NodeOutput) -> dst NodeOutput`` and must
    already contain entries for every source placeholder.  It is updated
    in place with every copied output and returned.
    """
    dst = builder.graph
    node_map = {}
    for node in src_graph.topological_order():
        if node.op_name == "placeholder":
            out = value_map.get(_key(node.outputs[0]))
            if out is None:
                raise GraphError("placeholder %s missing from value map"
                                 % node.debug_name)
            node_map[node] = out.node
            continue
        inputs = [value_map[_key(i)] for i in node.inputs]
        controls = [node_map[c] for c in node.control_inputs
                    if c in node_map]
        clone = dst.new_node(node.op_name, op_def=node.op_def,
                             attrs=dict(node.attrs), inputs=inputs,
                             control_inputs=controls)
        clone.variable = node.variable
        clone.py_object = node.py_object
        clone.func = node.func
        clone.branches = dict(node.branches) if node.branches else None
        clone.constant_value = node.constant_value
        for out in node.outputs:
            new_out = clone.add_output(out.shape, out.dtype)
            value_map[_key(out)] = new_out
        node_map[node] = clone
    return value_map


def add_training_gradients(builder, loss, variables=None):
    """Gradients of a scalar ``loss`` w.r.t. Variables (JANUS train path).

    Returns ``dict Variable -> NodeOutput``.  ``variables=None`` means
    every variable touched by the loss computation.
    """
    ones = api.ones_like(loss)
    acc, var_grads = backprop(builder, [(loss, ones)])
    if variables is not None:
        wanted = set(id(v) for v in variables)
        var_grads = {v: g for v, g in var_grads.items()
                     if id(v) in wanted}
    return var_grads


def gradients(builder, ys, xs, grad_ys=None):
    """Gradients of outputs ``ys`` w.r.t. arbitrary handles ``xs``."""
    if grad_ys is None:
        grad_ys = [api.ones_like(y) for y in ys]
    acc, _ = backprop(builder, list(zip(ys, grad_ys)))
    return [acc.get(x) for x in xs]

"""Dataflow graph executor.

Compiles a graph into a flat instruction schedule and runs it over numpy
buffers.  Three properties reproduce the paper's execution model:

* **Low per-op overhead** — the schedule is precompiled (kernel, input
  slots, output slots), so running a node costs one kernel call plus list
  indexing, unlike the eager executor's full dispatch path.  This is the
  BASE speedup of figure 7.
* **Deferred, all-or-nothing state updates** (section 4.2.3) — variable
  assignments and Python-heap writes go to per-run *local copies*; the
  Python heap is only mutated in the commit phase after every assertion
  has passed, so an :class:`~repro.errors.AssumptionFailed` abort never
  leaves partial state behind and fallback is always safe.
* **Inter-op parallelism** (+PARL of figure 7) — an optional level-wise
  schedule runs independent nodes on a thread pool (numpy kernels release
  the GIL for the heavy lifting).
"""

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor, wait

import numpy as np

from ..errors import AssumptionFailed, ExecutionError, GraphError
from ..observability import COUNTERS, METRICS, TRACER
from ..tensor import TensorValue, PyRef

_POOL_LOCK = threading.Lock()
_POOL = None


def _shared_pool():
    global _POOL
    with _POOL_LOCK:
        if _POOL is None:
            workers = max(2, (os.cpu_count() or 2))
            _POOL = ThreadPoolExecutor(max_workers=workers,
                                       thread_name_prefix="repro-graph")
        return _POOL


class RunState:
    """Per-top-level-run mutable state shared with nested subgraph runs."""

    __slots__ = ("var_local", "py_local", "while_records", "stats",
                 "invoke_memo", "py_read_cache", "memo_counts")

    def __init__(self):
        #: [memo hits, stale revalidations] for this run's py_get
        #: closures.  Private to the run (nested executors share the
        #: RunState), so increments need no lock even under concurrent
        #: top-level runs; merged into COUNTERS by ``_flush_memo`` when
        #: the run finishes.
        self.memo_counts = [0, 0]
        self.var_local = {}        # Variable -> np.ndarray (local copy)
        self.py_local = {}         # (id(obj), kind, key) -> raw value
        self.while_records = {}    # Node -> stack of per-execution records
        #: (id(func), arg identities) -> outputs, for effect-free invokes.
        #: Gradient functions recompute their forward bodies (see
        #: graph.autodiff); memoizing pure recursive calls within one run
        #: collapses that recomputation from O(n * depth) to O(n) — the
        #: executor-side counterpart of the InvokeOp bookkeeping in the
        #: paper's reference [20].
        self.invoke_memo = {}
        #: (id(obj), kind, key) -> internalized heap read.  Heap state is
        #: stable within a run (writes go to py_local, which shadows this
        #: cache), so repeated reads — e.g. during gradient-side forward
        #: recomputation — skip getattr/convert/assumption checking.
        self.py_read_cache = {}
        self.stats = {"nodes_executed": 0}

    def commit(self, py_objects):
        """Write local copies back to variables and the Python heap."""
        for variable, array in self.var_local.items():
            variable.storage = TensorValue(array, variable.dtype)
            variable.version += 1
        for (obj_id, kind, key), raw in self.py_local.items():
            obj = py_objects[obj_id]
            value = _externalize(raw)
            if kind == "attr":
                setattr(obj, key, value)
            else:
                obj[key] = value


_Tensor = None
_Variable = None


def _lazy_types():
    global _Tensor, _Variable
    if _Tensor is None:
        from ..imperative.eager import Tensor
        from ..imperative.variable import Variable
        _Tensor = Tensor
        _Variable = Variable
    return _Tensor, _Variable


def _externalize(raw):
    """Convert an executor-internal value into user-facing form."""
    tensor_cls, _ = _lazy_types()
    if isinstance(raw, PyRef):
        return raw.obj
    if isinstance(raw, np.ndarray):
        return tensor_cls(TensorValue.of(raw))
    return raw


#: Sentinel meaning "no value validated yet" in a py_get identity memo.
_MEMO_MISS = object()
_MEMO_SAFE = None


def _flush_memo(run_state):
    """Merge one run's private memo tallies into COUNTERS.

    The tallies live on the :class:`RunState` — private to the run, so
    the hot closures increment a plain list without locking — and merge
    here through ``COUNTERS.inc`` (which takes the registry lock) once
    per top-level run.  This replaces the old module-global tally list,
    which lost increments when concurrent runs raced the unlocked
    read-modify-write and the flush's read-then-zero.
    """
    hits, stale = run_state.memo_counts
    if hits:
        COUNTERS.inc("executor.memo_hit", hits)
        run_state.memo_counts[0] = 0
    if stale:
        COUNTERS.inc("executor.memo_stale", stale)
        run_state.memo_counts[1] = 0


def _memo_safe_types():
    """Types whose identity *alone* pins internal form and guard verdict.

    The py_get identity memo may only skip re-internalization and
    re-checking when ``value is memo[0]`` implies the internalized form
    and the guard outcome are unchanged.  That holds for immutable
    scalars and for Variable (internalized to a PyRef that reads through
    to current storage; its guard only checks the type name).  It does
    NOT hold for lists or dicts — in-place mutation preserves identity
    while changing content, which would let a stale memo bypass the
    assumption guard.  Tensors / TensorValues / ndarrays are handled
    separately by the version-stamped memo in ``_compile_py_get``, whose
    hit test additionally compares the write-barrier version and the
    buffer's shape and dtype (see docs/compilation.md#write-barrier).
    """
    global _MEMO_SAFE
    if _MEMO_SAFE is None:
        _, variable_cls = _lazy_types()
        _MEMO_SAFE = frozenset([bool, int, float, complex, str, bytes,
                                type(None), variable_cls])
    return _MEMO_SAFE


def _internalize(value):
    """Convert a heap/user value into executor-internal form."""
    if type(value) is np.ndarray:
        return value
    tensor_cls, variable_cls = _lazy_types()
    if isinstance(value, tensor_cls):
        return value.value.array
    if isinstance(value, TensorValue):
        return value.array
    if isinstance(value, PyRef):
        return value
    if isinstance(value, variable_cls):
        return PyRef(value)
    if isinstance(value, bool):
        return np.asarray(value, np.bool_)
    if isinstance(value, int):
        return np.asarray(value, np.int64)
    if isinstance(value, float):
        # Framework conversion rules: python floats are float32.
        return np.asarray(value, np.float32)
    if isinstance(value, (np.bool_, np.integer, np.floating)):
        return np.asarray(value)
    if isinstance(value, np.ndarray):
        return value
    if isinstance(value, (list, tuple)):
        try:
            arr = np.asarray(value)
        except (ValueError, TypeError):
            return PyRef(value)
        if arr.dtype.kind in "bif":
            if arr.dtype == np.float64:
                arr = arr.astype(np.float32)
            return arr
        return PyRef(value)
    return PyRef(value)


class GraphExecutor:
    """A compiled, reusable schedule for one graph."""

    def __init__(self, graph, parallel=False, _nested=False,
                 heavy_threshold=2, tensor_write_barrier=True):
        self.graph = graph
        # Inter-op parallelism needs real cores; on a single-CPU host the
        # level-parallel schedule only adds synchronization overhead.
        self.parallel = (parallel and not _nested
                         and (os.cpu_count() or 1) > 1)
        self._nested = _nested
        #: Heavy ops per level required before the level fans out across
        #: threads; see ``JanusConfig.parallel_heavy_ops_threshold``.
        self.heavy_threshold = max(1, int(heavy_threshold))
        #: Whether py_get memos may cover Tensor-typed heap reads, keyed
        #: on identity + TensorValue.version (JanusConfig flag; nested
        #: executors inherit it through ``_function_executor``).
        self.tensor_write_barrier = bool(tensor_write_barrier)
        self._compile()

    # -- compilation -------------------------------------------------------

    def _compile(self):
        graph = self.graph
        live = graph.live_nodes()
        order = [n for n in graph.topological_order() if n in live]
        self._slots = {}
        slot_count = 0
        for node in order:
            for out in node.outputs:
                self._slots[(id(node), out.index)] = slot_count
                slot_count += 1
        self._slot_count = slot_count
        self._py_objects = {}

        instructions = []
        labels = []
        self._placeholder_slots = {}
        for node in order:
            in_slots = tuple(self._slots[(id(i.node), i.index)]
                             for i in node.inputs)
            out_slots = tuple(self._slots[(id(node), out.index)]
                              for out in node.outputs)
            instr = self._compile_node(node, in_slots, out_slots)
            if instr is not None:
                instructions.append(instr)
                labels.append((node.op_name, node.debug_name))
        self._instructions = instructions
        #: Aligned with _instructions; consumed by level-2 op tracing.
        self._instr_labels = labels
        self._ph_slot_order = [
            self._placeholder_slots[node.attrs["ph_name"]]
            for node in graph.placeholders]
        self._output_slots = [self._slots[(id(o.node), o.index)]
                              for o in graph.outputs]
        if self.parallel:
            self._compile_levels(order)

    def _compile_node(self, node, in_slots, out_slots):
        op = node.op_name
        if op == "placeholder":
            self._placeholder_slots[node.attrs["ph_name"]] = out_slots[0]
            index = len(self._placeholder_slots) - 1
            return None  # filled during feed binding
        if op == "constant":
            value = node.constant_value
            raw = value.array if isinstance(value, TensorValue) else value
            slot = out_slots[0]

            def run_const(values, run_state, raw=raw, slot=slot):
                values[slot] = raw
            return ("closure", run_const)
        if op == "var_read":
            variable = node.variable
            slot = out_slots[0]

            def run_read(values, run_state, variable=variable, slot=slot):
                local = run_state.var_local.get(variable)
                values[slot] = local if local is not None \
                    else variable.storage.array
            return ("closure", run_read)
        if op == "var_assign":
            return ("var_assign", node.variable, in_slots[0], out_slots[0])
        if op in ("py_get_attr", "py_get_subscr"):
            return self._compile_py_get(node, in_slots, out_slots)
        if op in ("py_set_attr", "py_set_subscr"):
            return self._compile_py_set(node, in_slots, out_slots)
        if op == "py_call":
            return ("py_call", node.py_object.obj, in_slots, out_slots)
        if op == "invoke":
            return ("invoke", node, in_slots, out_slots)
        if op == "cond":
            return ("cond", node, in_slots, out_slots)
        if op == "while_loop":
            return ("while", node, in_slots, out_slots)
        if op == "while_grad":
            return ("while_grad", node, in_slots, out_slots)
        if op == "group":
            return None
        if node.op_def is not None:
            return ("closure",
                    self._make_op_closure(node.op_def.kernel, node.attrs,
                                          in_slots, out_slots))
        raise GraphError("cannot compile node %s" % node.debug_name)

    @staticmethod
    def _make_op_closure(kernel, attrs, in_slots, out_slots):
        """A pre-bound callable for one registered-op node.

        Binding slots and kernel at compile time removes the per-node
        tuple unpacking and dispatch from the hot loop — the 'low per-op
        overhead' property the symbolic executor owes its BASE speedup to.
        """
        asarray = np.asarray
        ndarray = np.ndarray
        if len(out_slots) == 1:
            o0 = out_slots[0]
            if len(in_slots) == 1:
                a0 = in_slots[0]

                def run1(values, run_state):
                    r = kernel(attrs, values[a0])
                    values[o0] = r if type(r) is ndarray else asarray(r)
                return run1
            if len(in_slots) == 2:
                a0, a1 = in_slots

                def run2(values, run_state):
                    r = kernel(attrs, values[a0], values[a1])
                    values[o0] = r if type(r) is ndarray else asarray(r)
                return run2

            def run_n(values, run_state):
                r = kernel(attrs, *[values[s] for s in in_slots])
                values[o0] = r if type(r) is ndarray else asarray(r)
            return run_n

        def run_multi(values, run_state):
            results = kernel(attrs, *[values[s] for s in in_slots])
            for slot, r in zip(out_slots, results):
                values[slot] = r if type(r) is ndarray else asarray(r)
        return run_multi

    def _compile_py_get(self, node, in_slots, out_slots):
        """Specialize one heap read into a precompiled closure.

        Mirrors :meth:`_make_op_closure`: the object, key, guard check
        and output slot are all bound at compile time, so a run costs
        two dict probes plus (at most) one getattr.  A per-node identity
        memo additionally skips re-internalizing and re-checking a value
        that was already validated on an earlier run.  Immutable scalars
        and PyRef wrappers hit on identity alone; Tensor-typed reads
        (``memo[2]`` non-None) also require an unchanged write-barrier
        version stamp plus the buffer's shape and dtype — the version
        catches sanctioned in-place writes and COW rebinds, the
        shape/dtype compare re-proves the guard for metadata mutation
        that ``writeable=False`` cannot intercept (``a.shape = ...``).
        A hit returns the *live* buffer, so content stays aliased
        exactly as on the slow path (tensor guards never pin content).
        """
        kind = "attr" if node.op_name == "py_get_attr" else "subscr"
        key = node.attrs["name"] if kind == "attr" else node.attrs["key"]
        check = _compile_expected_check(node.attrs.get("expected"), node)
        out_slot = out_slots[0]
        if node.py_object is None:
            # Dynamic receiver: the object arrives on an input edge, so
            # only the guard check can be precompiled.
            return ("py_get", kind, in_slots[0], key, check, out_slot)
        obj = node.py_object.obj
        self._py_objects[id(obj)] = obj
        local_key = (id(obj), kind, key)
        memo_safe = _memo_safe_types()
        tensor_cls, _ = _lazy_types()
        barrier = self.tensor_write_barrier
        # Single-cell publication: the memo holds one immutable tuple
        # (value, raw, None | (tv-or-None, version, shape, dtype)) or
        # None.  Concurrent runs share this closure, so the entry is
        # read once and published in one store — readers can never see
        # a value from one validation paired with the raw form of
        # another (the old three-slot layout could tear that way).
        memo = [None]
        internalize = _internalize
        ndarray = np.ndarray
        if kind == "attr":
            def fetch(obj=obj, key=key):
                return getattr(obj, key)
        else:
            def fetch(obj=obj, key=key):
                return obj[key]

        def run_get(values, run_state, fetch=fetch, local_key=local_key,
                    check=check, memo=memo,
                    out_slot=out_slot, metrics=METRICS,
                    perf=time.perf_counter):
            raw = run_state.py_local.get(local_key)
            if raw is None:
                raw = run_state.py_read_cache.get(local_key)
                if raw is None:
                    value = fetch()
                    entry = memo[0]
                    if entry is not None and value is entry[0]:
                        state = entry[2]
                        if state is None:
                            raw = entry[1]
                            run_state.memo_counts[0] += 1
                        else:
                            tv = state[0]
                            arr = value if tv is None else tv.array
                            if (tv is None
                                    or (tv.version == state[1]
                                        and (value is tv
                                             or value.value is tv))) \
                                    and arr.shape == state[2] \
                                    and arr.dtype is state[3]:
                                raw = arr
                                run_state.memo_counts[0] += 1
                            else:
                                run_state.memo_counts[1] += 1
                    elif entry is not None:
                        run_state.memo_counts[1] += 1
                    if raw is None:
                        raw = internalize(value)
                        if check is not None:
                            if metrics.enabled:
                                guard_start = perf()
                                try:
                                    check(raw)
                                finally:
                                    metrics.observe("guard.check",
                                                    perf() - guard_start)
                            else:
                                check(raw)
                        t = type(value)
                        if t in memo_safe:
                            memo[0] = (value, raw, None)
                        elif barrier:
                            if t is tensor_cls:
                                tv = value.value
                            elif t is TensorValue:
                                tv = value
                            else:
                                tv = None
                            if (tv is not None and tv.track()) \
                                    or t is ndarray:
                                memo[0] = (
                                    value, raw,
                                    (tv, 0 if tv is None else tv.version,
                                     raw.shape, raw.dtype))
                    run_state.py_read_cache[local_key] = raw
            values[out_slot] = raw
        return ("closure", run_get)

    def _compile_py_set(self, node, in_slots, out_slots):
        kind = "attr" if node.op_name == "py_set_attr" else "subscr"
        key = node.attrs["name"] if kind == "attr" else node.attrs["key"]
        obj = None
        value_slot = in_slots[-1]
        if node.py_object is not None:
            obj = node.py_object.obj
            self._py_objects[id(obj)] = obj
            dyn_slot = None
        else:
            dyn_slot = in_slots[0]
        return ("py_set", kind, obj, dyn_slot, key, value_slot,
                out_slots[0])

    #: Ops heavy enough to amortize a thread-pool submission.
    _HEAVY_OPS = frozenset([
        "matmul", "conv2d", "conv2d_transpose", "conv2d_input_grad",
        "conv2d_filter_grad", "max_pool", "max_pool_grad", "avg_pool",
        "avg_pool_grad", "invoke", "gather_grad",
    ])

    def _compile_levels(self, order):
        """Group instructions into dependency levels for parallel runs.

        A level only runs on the thread pool when it contains at least
        ``heavy_threshold`` *heavy* instructions (default 2, tunable via
        ``JanusConfig.parallel_heavy_ops_threshold``) — scattering
        sub-microsecond elementwise ops across threads costs far more
        than it saves.  This mirrors how a
        real dataflow runtime's inter-op parallelism only pays off for
        coarse kernels (paper section 6.3.1: +PARL gains are largest for
        TreeNNs with many concurrently executable matmuls).
        """
        node_level = {}
        for node in order:
            deps = [i.node for i in node.inputs] + list(node.control_inputs)
            lvl = 0
            for dep in deps:
                lvl = max(lvl, node_level.get(dep, -1) + 1)
            node_level[node] = lvl
        live_nodes = [n for n in order
                      if n.op_name not in ("placeholder", "group")]
        if len(live_nodes) != len(self._instructions):
            # conservative: fall back to sequential execution
            self.parallel = False
            return
        levels = {}
        for node, instr in zip(live_nodes, self._instructions):
            levels.setdefault(node_level[node], []).append((node, instr))
        self._levels = []
        for key in sorted(levels):
            members = levels[key]
            heavy = sum(1 for node, _ in members
                        if node.op_name in self._HEAVY_OPS)
            run_parallel = heavy >= self.heavy_threshold
            self._levels.append((run_parallel,
                                 [instr for _, instr in members]))
        if not any(p for p, _ in self._levels):
            self.parallel = False

    # -- execution ------------------------------------------------------------

    def run(self, feeds=(), run_state=None):
        """Execute the graph.

        ``feeds`` is a sequence of values bound positionally to the
        graph's placeholders.  Returns the list of output values
        (numpy arrays, or the wrapped object for PyRef outputs is kept as
        PyRef — callers externalize).  A fresh top-level run commits
        deferred state updates on success; nested runs share
        ``run_state`` and never commit.
        """
        top_level = run_state is None
        if top_level:
            run_state = RunState()
        run_start = time.perf_counter() \
            if (top_level and (TRACER.level or METRICS.enabled)) else 0.0
        values = [None] * self._slot_count
        ph_slots = self._ph_slot_order
        if len(feeds) != len(ph_slots):
            raise ExecutionError("graph %s expects %d feeds, got %d"
                                 % (self.graph.name, len(ph_slots),
                                    len(feeds)))
        for slot, value in zip(ph_slots, feeds):
            values[slot] = value if type(value) is np.ndarray \
                else _internalize(value)

        if self.parallel:
            self._run_parallel(values, run_state)
        elif TRACER.level >= 2:
            self._run_traced(values, run_state)
        else:
            execute = self._execute
            for instr in self._instructions:
                execute(instr, values, run_state)

        outputs = [values[s] for s in self._output_slots]
        if top_level:
            run_state.commit(self._py_objects_transitive())
            run_state.stats["nodes_executed"] += len(self._instructions)
            _flush_memo(run_state)
            if TRACER.level:
                TRACER.complete("op", "run:%s" % self.graph.name,
                                run_start,
                                time.perf_counter() - run_start,
                                instructions=len(self._instructions),
                                parallel=self.parallel)
            if METRICS.enabled and run_start:
                METRICS.observe("graph.run",
                                time.perf_counter() - run_start)
        return outputs

    def _run_traced(self, values, run_state):
        """Sequential execution with a level-2 timing event per node."""
        execute = self._execute
        perf = time.perf_counter
        for instr, (op_name, debug_name) in zip(self._instructions,
                                                self._instr_labels):
            start = perf()
            execute(instr, values, run_state)
            TRACER.complete("op", op_name, start, perf() - start,
                            level=2, node=debug_name,
                            graph=self.graph.name)

    def _py_objects_transitive(self):
        """Python objects referenced here and in nested subgraphs."""
        cached = getattr(self, "_py_objects_cache", None)
        if cached is not None:
            # py_set on dynamic objects adds entries at run time; merge.
            cached.update(self._py_objects)
            return cached
        objs = self._collect_py_objects()
        self._py_objects_cache = objs
        return objs

    def _collect_py_objects(self):
        objs = dict(self._py_objects)
        seen = set()
        stack = [self.graph]
        while stack:
            graph = stack.pop()
            if id(graph) in seen:
                continue
            seen.add(id(graph))
            for node in graph.nodes:
                if node.py_object is not None:
                    objs[id(node.py_object.obj)] = node.py_object.obj
                for func in node._nested_functions():
                    if func is not None and func.graph is not None:
                        stack.append(func.graph)
        return objs

    def _run_parallel(self, values, run_state):
        pool = _shared_pool()
        trace_levels = TRACER.level >= 2
        for index, (run_parallel, level) in enumerate(self._levels):
            start = time.perf_counter() if trace_levels else 0.0
            if not run_parallel or len(level) == 1:
                for instr in level:
                    self._execute(instr, values, run_state)
            else:
                futures = [pool.submit(self._execute, instr, values,
                                       run_state)
                           for instr in level]
                done, _ = wait(futures)
                for future in done:
                    exc = future.exception()
                    if exc is not None:
                        for f in futures:
                            f.cancel()
                        raise exc
            if trace_levels:
                TRACER.complete("level", "L%d" % index, start,
                                time.perf_counter() - start, level=2,
                                graph=self.graph.name,
                                instructions=len(level),
                                parallel=run_parallel)

    # -- instruction dispatch -----------------------------------------------------

    def _execute(self, instr, values, run_state):
        kind = instr[0]
        if kind == "closure":
            instr[1](values, run_state)
        elif kind == "var_assign":
            _, variable, in_slot, out_slot = instr
            value = values[in_slot]
            run_state.var_local[variable] = value
            values[out_slot] = value
        elif kind == "py_get":
            self._exec_py_get(instr, values, run_state)
        elif kind == "py_set":
            self._exec_py_set(instr, values, run_state)
        elif kind == "py_call":
            _, fn, in_slots, out_slots = instr
            args = [_externalize(values[s]) for s in in_slots]
            result = fn(*args)
            # An arbitrary Python call may mutate the heap (the naive
            # state-update ablation does): cached reads are now stale.
            run_state.py_read_cache.clear()
            if len(out_slots) == 1:
                values[out_slots[0]] = _internalize(result)
            else:
                for slot, r in zip(out_slots, result):
                    values[slot] = _internalize(r)
        elif kind == "invoke":
            _, node, in_slots, out_slots = instr
            func = node.func
            args = [values[s] for s in in_slots]
            memo_key = _invoke_memo_key(func, args)
            if memo_key is not None:
                cached = run_state.invoke_memo.get(memo_key)
                if cached is not None:
                    for slot, r in zip(out_slots, cached):
                        values[slot] = r
                    return
            sub = _function_executor(func, self.tensor_write_barrier)
            results = sub.run(args, run_state)
            if memo_key is not None:
                run_state.invoke_memo[memo_key] = results
            for slot, r in zip(out_slots, results):
                values[slot] = r
        elif kind == "cond":
            self._exec_cond(instr, values, run_state)
        elif kind == "while":
            self._exec_while(instr, values, run_state)
        elif kind == "while_grad":
            self._exec_while_grad(instr, values, run_state)
        else:
            raise ExecutionError("unknown instruction %r" % (kind,))

    def _exec_py_get(self, instr, values, run_state):
        _, kind, dyn_slot, key, check, out_slot = instr
        ref = values[dyn_slot]
        if not isinstance(ref, PyRef):
            raise ExecutionError("py_get on non-PyRef input")
        obj = ref.obj
        local_key = (id(obj), kind, key)
        raw = run_state.py_local.get(local_key)
        if raw is None:
            raw = run_state.py_read_cache.get(local_key)
            if raw is None:
                raw = _internalize(getattr(obj, key) if kind == "attr"
                                   else obj[key])
                if check is not None:
                    if METRICS.enabled:
                        guard_start = time.perf_counter()
                        try:
                            check(raw)
                        finally:
                            METRICS.observe(
                                "guard.check",
                                time.perf_counter() - guard_start)
                    else:
                        check(raw)
                run_state.py_read_cache[local_key] = raw
        values[out_slot] = raw

    def _exec_py_set(self, instr, values, run_state):
        _, kind, obj, dyn_slot, key, value_slot, out_slot = instr
        if obj is None:
            ref = values[dyn_slot]
            obj = ref.obj
        run_state.py_local[(id(obj), kind, key)] = values[value_slot]
        # keep the object reachable for commit
        self._py_objects[id(obj)] = obj
        values[out_slot] = PyRef(obj)

    def _exec_cond(self, instr, values, run_state):
        _, node, in_slots, out_slots = instr
        pred = values[in_slots[0]]
        branch = node.branches["true" if bool(np.all(pred)) \
                               else "false"]
        sub = _function_executor(branch, self.tensor_write_barrier)
        results = sub.run([values[s] for s in in_slots[1:]], run_state)
        for slot, r in zip(out_slots, results):
            values[slot] = r

    def _exec_while(self, instr, values, run_state):
        _, node, in_slots, out_slots = instr
        cond_exec = _function_executor(node.attrs["cond_func"],
                                       self.tensor_write_barrier)
        body_exec = _function_executor(node.attrs["body_func"],
                                       self.tensor_write_barrier)
        state = [values[s] for s in in_slots]
        record = [] if node.attrs.get("record_grad") else None
        iteration = 0
        max_iters = node.attrs.get("max_iterations", 1_000_000)
        while True:
            keep_going = cond_exec.run(state, run_state)[0]
            if not bool(np.all(keep_going)):
                break
            if record is not None:
                record.append(list(state))
            state = body_exec.run(state, run_state)
            iteration += 1
            if iteration > max_iters:
                raise ExecutionError("while_loop exceeded %d iterations"
                                     % max_iters)
        if record is not None:
            run_state.while_records.setdefault(node, []).append(record)
        for slot, value in zip(out_slots, state):
            values[slot] = value

    def _exec_while_grad(self, instr, values, run_state):
        _, node, in_slots, out_slots = instr
        forward = node.attrs["forward_node"]
        body_grad = _function_executor(node.attrs["body_grad_func"],
                                       self.tensor_write_barrier)
        grad_var_count = node.attrs["grad_var_count"]
        float_mask = node.attrs["float_mask"]
        stack = run_state.while_records.get(forward)
        if not stack:
            raise ExecutionError("while_grad has no recorded iterations")
        record = stack.pop()
        state_grads = [values[s] for s in in_slots]
        var_totals = [None] * grad_var_count
        for iteration_state in reversed(record):
            results = body_grad.run(list(iteration_state) + state_grads,
                                    run_state)
            n_float = sum(float_mask)
            state_grads = results[:n_float]
            for i, g in enumerate(results[n_float:]):
                var_totals[i] = g if var_totals[i] is None \
                    else var_totals[i] + g
        outputs = list(state_grads) + [
            g if g is not None else np.zeros(1, np.float32)
            for g in var_totals]
        for slot, value in zip(out_slots, outputs):
            values[slot] = value


def _compile_expected_check(expected, node):
    """Precompile a node's expected-value guard into a bound check closure.

    The per-kind reference data (the profiled constant as an ndarray, the
    numpy dtype, the Shape object, the type name) is derived once at
    compile time; the returned closure performs only the comparisons.
    Returns None when the node carries no expectation.
    """
    if expected is None:
        return None
    kind = expected[0]
    debug_name = node.debug_name
    if kind == "const":
        _, _dtype, value = expected
        expected_arr = np.asarray(value)
        expected_shape = expected_arr.shape
        site = node.attrs.get("prof_site", debug_name)
        array_equal = np.array_equal
        ndarray = np.ndarray

        def check_const(raw):
            if not isinstance(raw, ndarray) or raw.shape != expected_shape \
                    or not array_equal(raw, expected_arr):
                raise AssumptionFailed(
                    "heap read %s: value changed from its profiled constant"
                    % debug_name, site=site, observed=raw)
        return check_const
    if kind == "tensor":
        _, dtype, shape = expected
        np_dtype = dtype.np_dtype if dtype is not None else None
        dtype_name = dtype.name if dtype is not None else None
        if shape is not None:
            from ..tensor.shape import Shape
            shape_obj = Shape.of(shape)
        else:
            shape_obj = None
        ndarray = np.ndarray

        def check_tensor(raw):
            if not isinstance(raw, ndarray):
                raise AssumptionFailed(
                    "heap read %s: expected a tensor, got %s"
                    % (debug_name, type(raw).__name__),
                    site=debug_name, observed=raw)
            if np_dtype is not None and raw.dtype != np_dtype:
                raise AssumptionFailed(
                    "heap read %s: dtype %s != expected %s"
                    % (debug_name, raw.dtype, dtype_name),
                    site=debug_name, observed=raw)
            if shape_obj is not None \
                    and not shape_obj.matches_value(raw.shape):
                raise AssumptionFailed(
                    "heap read %s: shape %s violates assumption %s"
                    % (debug_name, raw.shape, shape),
                    site=debug_name, observed=raw)
        return check_tensor
    if kind == "pyref":
        type_name = expected[1]

        def check_pyref(raw):
            obj = raw.obj if isinstance(raw, PyRef) else raw
            if type(obj).__name__ != type_name:
                raise AssumptionFailed(
                    "heap read %s: type %s != expected %s"
                    % (debug_name, type(obj).__name__, type_name),
                    site=debug_name, observed=raw)
        return check_pyref
    return None


def _invoke_memo_key(func, args):
    """Memo key for a pure invoke, or None when not memoizable.

    Safe only for effect-free callees and identity-keyable arguments:
    PyRefs key by object identity, tiny arrays by content.
    """
    if getattr(func, "_memo_effects", None) is None:
        func._memo_effects = func.has_effects
    if func._memo_effects:
        return None
    parts = [id(func)]
    for a in args:
        if isinstance(a, PyRef):
            parts.append(("r", id(a.obj)))
        elif isinstance(a, np.ndarray) and a.nbytes <= 64:
            parts.append(("v", a.dtype.str, a.shape, a.tobytes()))
        else:
            return None
    return tuple(parts)


def _function_executor(func, tensor_write_barrier=True):
    """Compiled (sequential) executor for a GraphFunction, cached.

    Cached per barrier setting: the parent executor's flag decides
    whether nested py_get closures may memoize Tensor reads, and both
    variants can coexist (e.g. tests flipping the config).
    """
    if func.graph is None:
        raise GraphError("function %s invoked before finalization"
                         % func.name)
    cache = func.graph._executor_cache
    cache_key = "nested" if tensor_write_barrier else "nested-nobarrier"
    executor = cache.get(cache_key)
    if executor is None:
        executor = GraphExecutor(func.graph, parallel=False, _nested=True,
                                 tensor_write_barrier=tensor_write_barrier)
        cache[cache_key] = executor
    return executor
